//! **hybrid-lsh** — a reproduction of Pham, *"Hybrid LSH: Faster Near
//! Neighbors Reporting in High-dimensional Space"* (EDBT 2017).
//!
//! This umbrella crate re-exports the whole workspace under one import:
//!
//! * [`index`] / [`HybridLshIndex`] / [`IndexBuilder`] — the hybrid
//!   r-near-neighbor-reporting index (per-bucket HyperLogLog sketches,
//!   per-query cost-based choice between LSH search and a linear scan);
//! * [`TopKIndex`] / [`TopKEngine`] — k-nearest-neighbor queries via
//!   the classic reduction to rNNR over a geometric [`RadiusSchedule`],
//!   with HLL-driven level skipping and an exact-scan fallback;
//! * [`families`] — the LSH families: bit sampling (Hamming),
//!   SimHash (cosine), p-stable projections (L1/L2), MinHash (Jaccard);
//! * [`hll`] — mergeable HyperLogLog sketches;
//! * [`vec`](mod@vec) — vector types, metrics and data-set containers;
//! * [`probe`] — multi-probe LSH and covering LSH extensions;
//! * [`datagen`] — synthetic analogs of the paper's four evaluation
//!   data sets plus exact ground truth;
//! * [`server`] — the TCP serving layer: length-prefixed wire
//!   protocol, admission-batching server, sync client (see
//!   `docs/PROTOCOL.md` and the `serve`/`loadgen` binaries);
//! * [`save_snapshot`] / [`load_snapshot`] — the versioned on-disk
//!   snapshot format: cold-start a server from a file in milliseconds,
//!   buffered or zero-copy `mmap` (see `docs/SNAPSHOT.md`).
//!
//! # Quickstart
//!
//! ```
//! use hybrid_lsh::prelude::*;
//!
//! // Index 1,000 unit vectors under cosine distance.
//! let mut data = DenseDataset::new(16);
//! for i in 0..1000u32 {
//!     let mut v = vec![0.0f32; 16];
//!     v[(i % 16) as usize] = 1.0;
//!     v[((i / 16) % 16) as usize] += 0.5;
//!     data.push(&v);
//! }
//! data.normalize_l2();
//!
//! let index = IndexBuilder::new(SimHash::new(16), UnitCosine)
//!     .tables(20)
//!     .hash_len(8)
//!     .seed(1)
//!     .build(data);
//!
//! let q = index.data().row(0).to_vec();
//! let out = index.query(&q, 0.2);
//! assert!(out.ids.contains(&0));
//! println!("{} near neighbors via {:?}", out.ids.len(), out.report.executed);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub use hlsh_core as index;
pub use hlsh_datagen as datagen;
pub use hlsh_families as families;
pub use hlsh_hll as hll;
pub use hlsh_probe as probe;
pub use hlsh_server as server;
pub use hlsh_vec as vec;

pub use hlsh_core::{
    load_snapshot, read_layout, read_manifest, save_snapshot, BucketStore, BuildMode, CostModel,
    FrozenStore, HybridLshIndex, IndexBuilder, LoadMode, LoadPlan, LoadedSnapshot, MapStore,
    MutationError, Neighbor, QueryEngine, QueryOutput, RadiusSchedule, SegmentedIndex,
    SegmentedQueryEngine, SegmentedTopKEngine, SegmentedTopKIndex, ShardAssignment, ShardedIndex,
    ShardedTopKIndex, SnapshotError, SnapshotLayout, SnapshotManifest, StorageProfile, Strategy,
    TopKEngine, TopKIndex, TopKOutput, VerifyMode,
};

/// One-line import for applications.
pub mod prelude {
    pub use hlsh_core::{
        load_snapshot, read_layout, read_manifest, save_snapshot, BucketStore, BuildMode,
        CostModel, FrozenStore, HybridLshIndex, IndexBuilder, LoadMode, LoadedSnapshot, MapStore,
        MutationError, Neighbor, QueryEngine, QueryOutput, QueryReport, RadiusSchedule,
        SegmentedIndex, SegmentedQueryEngine, SegmentedTopKEngine, SegmentedTopKIndex,
        ShardAssignment, ShardedIndex, ShardedQueryEngine, ShardedTopKEngine, ShardedTopKIndex,
        SnapshotError, SnapshotManifest, StorageProfile, Strategy, TopKEngine, TopKIndex,
        TopKOutput, TopKReport, VerifyMode,
    };
    pub use hlsh_families::{
        k_paper, k_safe, BitSampling, LshFamily, MinHash, PStableL1, PStableL2, PaperParams,
        SimHash,
    };
    pub use hlsh_hll::{HllConfig, HyperLogLog};
    pub use hlsh_vec::{
        BinaryDataset, BinaryVec, Cosine, DenseDataset, Distance, Hamming, Jaccard, PointId,
        PointSet, SubsetPointSet, UnitCosine, L1, L2,
    };
}
