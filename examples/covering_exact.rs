//! Covering LSH (Pagh, SODA'16) with the hybrid cost decision — the
//! extension §5 of the paper names as future work.
//!
//! Covering LSH guarantees **zero false negatives** within the
//! construction radius, so the reported set is *exactly* the rNNR
//! answer while still probing buckets instead of scanning — and the
//! per-bucket HyperLogLogs let Algorithm 2 fall back to a scan whenever
//! probing would be slower.
//!
//! ```text
//! cargo run --release --example covering_exact
//! ```

use hybrid_lsh::datagen::mnist_like;
use hybrid_lsh::prelude::*;
use hybrid_lsh::probe::CoveringLshIndex;

fn main() {
    // MNIST-style 64-bit fingerprints.
    let n = 20_000;
    let data = mnist_like(n, 21);
    let queries: Vec<u64> = (0..6).map(|i| data.row(i * 3_000)[0]).collect();

    // Exact reporting at Hamming radius 8 with dimension splitting:
    // 4 chunks × (2^(8/4+1) − 1) = 28 tables, no false negatives.
    let radius = 8u32;
    let index =
        CoveringLshIndex::build(data, Hamming, 64, radius, 4, 9, CostModel::from_ratio(1.0));
    println!(
        "covering index: {} tables for guarantee radius {radius} (zero false negatives)",
        index.tables()
    );

    for (qi, &q) in queries.iter().enumerate() {
        let lsh = index.query(&[q], radius as f64, Strategy::LshOnly);
        let linear = index.query(&[q], radius as f64, Strategy::LinearOnly);
        let hybrid = index.query(&[q], radius as f64, Strategy::Hybrid);
        // All three agree exactly — that is the covering guarantee.
        let canon = |mut v: Vec<u32>| {
            v.sort_unstable();
            v
        };
        assert_eq!(canon(lsh.ids.clone()), canon(linear.ids.clone()));
        assert_eq!(canon(hybrid.ids.clone()), canon(linear.ids));
        println!(
            "query {qi}: {} exact neighbors, hybrid executed {} \
             ({} collisions over {} tables)",
            lsh.ids.len(),
            hybrid.report.executed.label(),
            hybrid.report.collisions,
            index.tables(),
        );
    }
    println!("all strategies returned identical exact answers ✓");
}
