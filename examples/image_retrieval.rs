//! Content-based image retrieval — the paper's second motivating
//! application (Yu et al., ICML'14): spherical range reporting over
//! colour-histogram features under L2, using the p-stable family and
//! the paper's Corel parameters (`k = 7, w = 2r`).
//!
//! ```text
//! cargo run --release --example image_retrieval
//! ```

// Queries and ground truth are parallel arrays; indexed loops are intentional.
#![allow(clippy::needless_range_loop)]
use hybrid_lsh::datagen::{corel_like, ground_truth};
use hybrid_lsh::prelude::*;

fn main() {
    // Corel-style colour histograms: 32-dim, non-negative, clustered by
    // image theme with one near-duplicate burst group.
    let n = 10_000;
    let mut data = corel_like(n, 11);
    let query_rows: Vec<usize> = (0..8).map(|i| i * 1_200).collect();
    let queries = data.split_off_rows(&query_rows);

    // The paper's Corel setting: k = 7, w = 2r, L = 50, δ = 0.1.
    let radius = 0.45;
    let params = PaperParams::default();
    let (k, w) = params.pstable_k_w(hybrid_lsh::vec::MetricKind::L2, radius);
    let index = IndexBuilder::new(PStableL2::new(data.dim(), w), L2)
        .tables(params.l)
        .hash_len(k)
        .seed(5)
        .build(data);
    println!(
        "indexed {} histograms: L = {}, k = {k}, w = {w}, β/α = {:.1}",
        index.len(),
        index.tables(),
        index.cost_model().ratio()
    );

    // Retrieve images within L2 radius 0.45 of each query image.
    let truth = ground_truth(index.data(), &queries, &L2, radius);
    let mut total_time = std::time::Duration::ZERO;
    for qi in 0..queries.len() {
        let q = queries.row(qi);
        let t = std::time::Instant::now();
        let out = index.query(q, radius);
        total_time += t.elapsed();
        let recall = hybrid_lsh::index::evaluate_recall(&out.ids, &truth[qi]);
        println!(
            "image {qi}: {} matches via {} (recall {:.3})",
            out.ids.len(),
            out.report.executed.label(),
            recall.recall()
        );
    }
    println!("total query time: {total_time:?}");

    // Compare all three strategies on the densest query (the paper's
    // Figure 2d comparison, one point).
    let densest =
        (0..queries.len()).max_by_key(|&qi| truth[qi].len()).expect("non-empty query set");
    let q = queries.row(densest);
    for strategy in [Strategy::Hybrid, Strategy::LshOnly, Strategy::LinearOnly] {
        let t = std::time::Instant::now();
        let out = index.query_with_strategy(q, radius, strategy);
        println!("densest image, {strategy:>6}: {} matches in {:?}", out.ids.len(), t.elapsed());
    }
}
