//! Top-k nearest-neighbor search: build a multi-radius index family
//! over clustered vectors, query the k nearest neighbors, and inspect
//! the radius-schedule walk (early exits, HLL level skips, exact
//! fallbacks).
//!
//! ```text
//! cargo run --release --example topk_search
//! ```

use hybrid_lsh::datagen::{benchmark_mixture, ground_truth_topk};
use hybrid_lsh::prelude::*;

fn main() {
    // 1. Data: the benchmark mixture — a near-duplicate mega-cluster,
    //    medium clusters, diffuse background. k-NN neighborhoods range
    //    from ultra-dense to isolated, so every schedule mechanism
    //    (early exit, skip, fallback) gets exercised.
    let (n, dim, base_r, k) = (12_000, 24, 1.5, 10);
    let (mut data, _) = benchmark_mixture(dim, n, base_r, 42);
    let q_rows: Vec<usize> = (0..8).map(|i| i * (n / 8)).collect();
    let queries = data.split_off_rows(&q_rows);
    println!("generated {} points in {dim} dims, {} held-out queries", data.len(), queries.len());

    // 2. Build the top-k index: one hybrid rNNR index per radius level
    //    r, 2r, 4r, 8r (all levels share one copy of the data), each
    //    level's p-stable hash width tuned to its own radius. Freeze
    //    for read-optimised serving.
    let schedule = RadiusSchedule::doubling(base_r, 4);
    let index = TopKIndex::build(data, schedule, |_, r| {
        IndexBuilder::new(PStableL2::new(dim, 2.0 * r), L2)
            .tables(20)
            .hash_len(6)
            .seed(42)
            .cost_model(CostModel::from_ratio(6.0))
    })
    .freeze();
    println!(
        "built {} levels at radii {:?}\n",
        schedule.levels(),
        schedule.radii().collect::<Vec<f64>>()
    );

    // 3. Query the k nearest neighbors, one query at a time.
    for qi in 0..queries.len() {
        let out = index.query_topk(queries.row(qi), k);
        let r = &out.report;
        println!(
            "query {qi}: k-th distance {:.3} | levels run {} / skipped {}{}{}",
            out.neighbors.last().map(|nb| nb.dist).unwrap_or(f64::NAN),
            r.levels_executed,
            r.levels_skipped,
            if r.early_exit { ", early exit" } else { "" },
            if r.exact_fallback { ", exact fallback" } else { "" },
        );
    }

    // 4. Batch path: sharded over all cores, byte-identical results.
    let qs: Vec<Vec<f32>> = (0..queries.len()).map(|i| queries.row(i).to_vec()).collect();
    let batch = index.query_topk_batch(&qs, k);
    for (qi, out) in batch.iter().enumerate() {
        assert_eq!(out.neighbors, index.query_topk(queries.row(qi), k).neighbors);
    }

    // 5. Score against the exact ground truth with the harness metric.
    let truth = ground_truth_topk(index.data(), &queries, &L2, k);
    let recall = hlsh_bench::experiment::recall_at_k(&batch, &truth);
    println!("\nmean recall@{k} over {} queries: {recall:.3}", batch.len());
}
