//! Quickstart: build a hybrid-LSH index over clustered vectors, run
//! radius queries, and inspect the per-query strategy decisions.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

// Queries and ground truth are parallel arrays; indexed loops are intentional.
#![allow(clippy::needless_range_loop)]
use hybrid_lsh::datagen::{ground_truth, webspam_like};
use hybrid_lsh::prelude::*;

fn main() {
    // 1. Data: a Webspam-style corpus — one huge near-duplicate region,
    //    some medium clusters, diffuse background (unit-norm rows).
    let n = 8_000;
    let mut data = webspam_like(n, 7);
    println!("generated {} points in {} dims", data.len(), data.dim());

    // 2. Hold out a few queries, exactly like the paper's protocol.
    let queries = data.split_off_rows(&[10, 2_000, 4_000, 6_000, 7_999]);

    // 3. Build the index: SimHash for cosine distance, L = 30 tables,
    //    k from the paper's δ-rule at the target radius. The cost model
    //    is calibrated automatically on the data.
    let radius = 0.08;
    let family = SimHash::new(data.dim());
    let k = k_paper(0.1, 30, family.collision_prob(radius));
    let index = IndexBuilder::new(family, UnitCosine).tables(30).hash_len(k).seed(42).build(data);
    println!(
        "index: L = {}, k = {}, calibrated β/α = {:.1}",
        index.tables(),
        index.k(),
        index.cost_model().ratio()
    );

    // 4. Query. The hybrid strategy decides per query whether LSH-based
    //    search or a linear scan is cheaper.
    for qi in 0..queries.len() {
        let q = queries.row(qi);
        let est = index.explain(q);
        let out = index.query(q, radius);
        println!(
            "query {qi}: {} neighbors | {} collisions, candSize ≈ {:.0} → \
             LSHCost/LinearCost = {:.2} → executed {}",
            out.ids.len(),
            est.collisions,
            est.cand_size_estimate,
            est.lsh_cost / est.linear_cost,
            out.report.executed.label(),
        );
    }

    // 5. Verify against exact ground truth.
    let truth = ground_truth(index.data(), &queries, &UnitCosine, radius);
    for qi in 0..queries.len() {
        let out = index.query(queries.row(qi), radius);
        let report = hybrid_lsh::index::evaluate_recall(&out.ids, &truth[qi]);
        assert!(report.precision() >= 1.0 - 1e-9, "reported a far point!");
        println!(
            "query {qi}: recall {:.3} ({} of {})",
            report.recall(),
            report.true_positives,
            report.truth_size
        );
    }
}
