//! Near-duplicate document detection — the paper's motivating
//! application ("finding near-duplicate web pages", Henzinger SIGIR'06).
//!
//! Pipeline: shingle documents → MinHash-style binary feature vectors →
//! SimHash 64-bit fingerprints → hybrid-LSH rNNR in Hamming space. The
//! duplicate groups make some queries "hard" (Figure 1's q2): their
//! fingerprint buckets contain most of the corpus cluster, and the
//! hybrid index switches those queries to a linear scan.
//!
//! ```text
//! cargo run --release --example near_duplicates
//! ```

use hybrid_lsh::families::simhash_fingerprints;
use hybrid_lsh::prelude::*;

/// Tiny deterministic "document corpus": templates with token noise.
fn synth_corpus(docs: usize, seed: u64) -> Vec<Vec<u32>> {
    // Each document is a bag of token ids. Template t owns tokens
    // [t*50, t*50+40); copies perturb a few tokens.
    let mut corpus = Vec::with_capacity(docs);
    let mut state = seed;
    let mut next = || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        hybrid_lsh::hll::hash::splitmix64(state)
    };
    for i in 0..docs {
        // 60% of docs come from template 0 (the spam farm), the rest
        // from 40 small templates.
        let template = if i % 10 < 6 { 0 } else { 1 + (next() % 40) as usize };
        let mut tokens: Vec<u32> = (0..40).map(|t| (template * 50 + t) as u32).collect();
        // Perturb 3 tokens per copy.
        for _ in 0..3 {
            let idx = (next() % 40) as usize;
            tokens[idx] = 2_100 + (next() % 400) as u32;
        }
        corpus.push(tokens);
    }
    corpus
}

fn main() {
    let docs = synth_corpus(20_000, 99);

    // Token bags → dense tf vectors over a 2,500-token vocabulary.
    let vocab = 2_500;
    let mut tf = DenseDataset::new(vocab);
    let mut row = vec![0.0f32; vocab];
    for doc in &docs {
        row.iter_mut().for_each(|v| *v = 0.0);
        for &t in doc {
            row[t as usize] += 1.0;
        }
        tf.push(&row);
    }

    // tf vectors → 64-bit SimHash fingerprints (the paper's MNIST
    // pipeline, §4): cosine-similar documents get Hamming-close prints.
    let fingerprints = simhash_fingerprints(&tf, 64, 7);
    println!("fingerprinted {} documents", fingerprints.len());

    // Index the fingerprints for near-duplicate reporting at Hamming
    // radius 12 (≈ 19% disagreeing bits ⇒ cosine distance ≈ 0.17).
    let radius = 12.0;
    let family = BitSampling::new(64);
    let k = k_paper(0.1, 50, family.collision_prob(radius));
    let index =
        IndexBuilder::new(family, Hamming).tables(50).hash_len(k).seed(3).build(fingerprints);
    println!("index: L = 50, k = {k}, calibrated β/α = {:.2}", index.cost_model().ratio());

    // Report near-duplicates of a farm document and a rare document.
    let farm_doc = 0usize; // template 0 → huge duplicate group
    let rare_doc = 7usize; // i % 10 >= 6 → small template
    for (label, id) in [("farm", farm_doc), ("rare", rare_doc)] {
        let q = index.data().row(id).to_vec();
        let out = index.query(&q, radius);
        println!(
            "{label} doc {id}: {} near-duplicates, executed {} \
             ({} collisions, candSize ≈ {:.0})",
            out.ids.len(),
            out.report.executed.label(),
            out.report.collisions,
            out.report.cand_size_estimate,
        );
    }

    // The hybrid index reports every duplicate the exact scan finds.
    let q = index.data().row(farm_doc).to_vec();
    let exact: Vec<u32> = (0..index.len() as u32)
        .filter(|&i| {
            hybrid_lsh::vec::binary::hamming_words(index.data().row(i as usize), &q) as f64
                <= radius
        })
        .collect();
    let hybrid = index.query(&q, radius);
    let recall = hybrid_lsh::index::evaluate_recall(&hybrid.ids, &exact);
    println!("farm doc: exact group size {}, hybrid recall {:.3}", exact.len(), recall.recall());
    assert!(recall.recall() >= 0.85, "hybrid recall below 1 − δ target");
}
