//! Serve a sharded index over a loopback socket and query it with the
//! sync client — demonstrating that network answers are byte-identical
//! to in-process batch calls.
//!
//! ```text
//! cargo run --release --example socket_roundtrip
//! ```
//!
//! For a standalone deployment use the `serve` and `loadgen` binaries
//! instead (`README.md` → "Serving over the network").

use std::sync::Arc;
use std::time::Duration;

use hybrid_lsh::prelude::*;
use hybrid_lsh::server::{Client, ServerConfig, ShardedLshService};

fn main() {
    // A small mixture corpus, sharded in two, frozen for serving.
    let dim = 16;
    let r = 1.5;
    let (data, _) = hybrid_lsh::datagen::benchmark_mixture(dim, 4_000, r, 5);
    let queries: Vec<Vec<f32>> = (0..8).map(|i| data.row(i * 500).to_vec()).collect();
    let builder = |radius: f64| {
        IndexBuilder::new(PStableL2::new(dim, 2.0 * radius), L2)
            .tables(12)
            .hash_len(6)
            .seed(5)
            .cost_model(CostModel::from_ratio(6.0))
    };
    let assignment = ShardAssignment::new(5, 2);
    let rnnr = ShardedIndex::build_frozen(data.clone(), assignment, builder(r));
    let topk =
        ShardedTopKIndex::build(data, assignment, RadiusSchedule::doubling(r, 3), |_, radius| {
            builder(radius)
        })
        .freeze();

    // The in-process reference answers.
    let expect_rnnr: Vec<Vec<u32>> =
        rnnr.query_batch(&queries, r).into_iter().map(|o| o.ids).collect();
    let expect_topk = topk.query_topk_batch(&queries, 5);

    // Serve on an ephemeral loopback port…
    let service = Arc::new(ShardedLshService::new(rnnr, Some(topk), dim));
    let mut server =
        hybrid_lsh::server::spawn(service, "127.0.0.1:0", ServerConfig::default()).unwrap();
    println!("serving on {}", server.local_addr());

    // …and ask the same questions over the wire.
    let mut client = Client::connect_retry(server.local_addr(), Duration::from_secs(10)).unwrap();
    let info = client.info().unwrap();
    println!("server reports {} points, {} shards", info.points, info.shards);

    let got_rnnr = client.query_batch(&queries, r).unwrap();
    assert_eq!(got_rnnr, expect_rnnr, "socket rNNR must equal in-process query_batch");
    println!("rNNR  : {} queries byte-identical to in-process query_batch", queries.len());

    let got_topk = client.query_topk_batch(&queries, 5).unwrap();
    for (g, e) in got_topk.iter().zip(&expect_topk) {
        assert_eq!(g.len(), e.neighbors.len());
        for (a, b) in g.iter().zip(&e.neighbors) {
            assert_eq!(a.0, b.id);
            assert_eq!(a.1.to_bits(), b.dist.to_bits(), "distances must match bit for bit");
        }
    }
    println!("top-k : {} queries byte-identical to in-process query_topk_batch", queries.len());

    for (qi, ids) in got_rnnr.iter().enumerate().take(3) {
        println!("query {qi}: {} neighbors within r={r}", ids.len());
    }
    server.shutdown();
}
