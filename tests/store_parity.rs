//! Storage-backend parity and batch-engine equivalence.
//!
//! The refactor's contract: (1) `FrozenStore` is observationally
//! identical to `MapStore` for any insert sequence; (2) `query_batch`
//! returns byte-identical ids (and the same executed arm) as a
//! sequential `query` loop, on any thread count, on both backends.

use hybrid_lsh::hll::HllConfig;
use hybrid_lsh::index::store::{BucketStore, MapStore};
use hybrid_lsh::prelude::*;
use proptest::collection::vec;
use proptest::prelude::*;

// Both globs export a `Strategy`; the index's enum is the one we mean.
use hybrid_lsh::{Strategy, VerifyMode};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// For arbitrary insert sequences — including duplicate ids, key
    /// collisions, and lazy thresholds low enough to materialise
    /// sketches — freezing preserves every observable: bucket count,
    /// per-key membership (order included), sketch presence and sketch
    /// registers. Thawing restores mutability without loss.
    #[test]
    fn frozen_store_matches_map_store(
        inserts in vec((0u64..12, 0u32..500), 0..400),
        lazy_threshold in 1usize..40,
        seed in 0u64..1000,
    ) {
        let config = HllConfig::new(5, seed);
        let mut map = MapStore::new();
        for &(key, id) in &inserts {
            // Spread keys so adjacent test keys don't share buckets.
            map.insert(key.wrapping_mul(0x9E37_79B9_7F4A_7C15), id, config, lazy_threshold);
        }
        let frozen = map.clone().freeze();

        prop_assert_eq!(map.bucket_count(), frozen.bucket_count());
        for probe_key in (0u64..16).map(|k| k.wrapping_mul(0x9E37_79B9_7F4A_7C15)) {
            match (map.get(probe_key), frozen.get(probe_key)) {
                (Some(a), Some(b)) => {
                    prop_assert_eq!(a.members(), b.members());
                    prop_assert_eq!(a.has_sketch(), b.has_sketch());
                    if let (Some(sa), Some(sb)) = (a.sketch(), b.sketch()) {
                        prop_assert_eq!(sa.registers(), sb.registers());
                    }
                }
                (None, None) => {}
                (a, b) => {
                    prop_assert!(false, "presence mismatch: map {} frozen {}",
                        a.is_some(), b.is_some());
                }
            }
        }

        // Frozen iteration is sorted and covers exactly the map's keys.
        let frozen_keys: Vec<u64> = frozen.iter().map(|(k, _)| k).collect();
        prop_assert!(frozen_keys.windows(2).all(|w| w[0] < w[1]));
        let mut map_keys: Vec<u64> = map.iter().map(|(k, _)| k).collect();
        map_keys.sort_unstable();
        prop_assert_eq!(&frozen_keys, &map_keys);

        // Thaw round-trips.
        let thawed = frozen.thaw();
        prop_assert_eq!(thawed.bucket_count(), map.bucket_count());
        for (key, bucket) in map.iter() {
            let t = thawed.get(key).expect("key lost in thaw");
            prop_assert_eq!(bucket.members(), t.members());
        }
    }
}

type MixtureIndex<B> = HybridLshIndex<DenseDataset, PStableL2, L2, B>;

/// Builds the mixture-workload index pair (hashmap + frozen) and the
/// held-out query list shared by the equivalence tests.
fn mixture_setup() -> (MixtureIndex<MapStore>, MixtureIndex<FrozenStore>, Vec<Vec<f32>>, f64) {
    let dim = 16;
    let r = 1.4;
    let make_data = || {
        let (mut data, _) = hybrid_lsh::datagen::benchmark_mixture(dim, 3_000, r, 77);
        let q_rows: Vec<usize> = (0..60).map(|i| i * 49).collect();
        let queries = data.split_off_rows(&q_rows);
        (data, queries)
    };
    let (data, queries_ds) = make_data();
    let queries: Vec<Vec<f32>> =
        (0..queries_ds.len()).map(|i| queries_ds.row(i).to_vec()).collect();
    // β/α = 2: hard queries (mega-cluster collisions in most of the 12
    // tables) cost more than 2n and flip to the linear arm; easy ones
    // stay on LSH — the split the equivalence tests must cover.
    let build = |data| {
        IndexBuilder::new(PStableL2::new(dim, 2.0 * r), L2)
            .tables(12)
            .hash_len(6)
            .seed(5)
            .cost_model(CostModel::from_ratio(2.0))
            .build(data)
    };
    let map_index = build(data);
    let frozen_index = build(make_data().0).freeze();
    (map_index, frozen_index, queries, r)
}

#[test]
fn query_batch_equals_sequential_loop_on_mixture() {
    let (map_index, _frozen_index, queries, r) = mixture_setup();
    for strategy in Strategy::ALL {
        let sequential: Vec<QueryOutput> =
            queries.iter().map(|q| map_index.query_with_strategy(q, r, strategy)).collect();
        // Mixture data must exercise BOTH arms under Hybrid, or the
        // equivalence claim is vacuous.
        if matches!(strategy, Strategy::Hybrid) {
            let linear = sequential
                .iter()
                .filter(|o| {
                    matches!(o.report.executed, hybrid_lsh::index::search::ExecutedArm::Linear)
                })
                .count();
            assert!(linear > 0, "no hard queries in the mixture workload");
            assert!(linear < queries.len(), "no easy queries in the mixture workload");
        }
        for threads in [Some(1), Some(2), Some(4), None] {
            let batch = map_index.query_batch_with_strategy(&queries, r, strategy, threads);
            assert_eq!(batch.len(), sequential.len());
            for (qi, (b, s)) in batch.iter().zip(&sequential).enumerate() {
                assert_eq!(b.ids, s.ids, "{strategy} query {qi} ({threads:?} threads)");
                assert_eq!(b.report.executed, s.report.executed);
                assert_eq!(b.report.collisions, s.report.collisions);
            }
        }
    }
}

#[test]
fn frozen_index_answers_identically_on_mixture() {
    let (map_index, frozen_index, queries, r) = mixture_setup();
    let map_out = map_index.query_batch(&queries, r);
    let frozen_out = frozen_index.query_batch(&queries, r);
    for (qi, (a, b)) in map_out.iter().zip(&frozen_out).enumerate() {
        assert_eq!(a.ids, b.ids, "query {qi}");
        assert_eq!(a.report.executed, b.report.executed);
        assert_eq!(a.report.collisions, b.report.collisions);
        assert_eq!(a.report.cand_size_estimate, b.report.cand_size_estimate);
    }
    // Strategy decisions must be the same per-query, so strategy
    // distribution across backends matches exactly too.
    assert_eq!(map_index.stats().member_slots, frozen_index.stats().member_slots);
}

#[test]
fn multiprobe_works_on_frozen_backend() {
    let (map_index, frozen_index, queries, r) = mixture_setup();
    for q in queries.iter().take(12) {
        let a = hybrid_lsh::probe::multiprobe_query(&map_index, q, r, 6, Strategy::LshOnly);
        let b = hybrid_lsh::probe::multiprobe_query(&frozen_index, q, r, 6, Strategy::LshOnly);
        assert_eq!(a.ids, b.ids);
        assert_eq!(a.report.collisions, b.report.collisions);
    }
}

/// The packed register slab must be observationally lossless: every
/// sketched bucket's cardinality estimate is *byte-identical* (not
/// merely close) between the per-bucket `HyperLogLog` path and the
/// frozen slab's `SketchRef` path, per table and per key.
#[test]
fn frozen_slab_sketch_estimates_are_byte_identical() {
    let (map_index, frozen_index, _queries, _r) = mixture_setup();
    let mut sketched = 0usize;
    for (mt, ft) in map_index.raw_tables().iter().zip(frozen_index.raw_tables()) {
        for (key, mb) in mt.buckets() {
            let fb = ft.bucket_for_key(key).expect("key lost in freeze");
            assert_eq!(mb.has_sketch(), fb.has_sketch(), "sketch presence for key {key}");
            if let (Some(ms), Some(fs)) = (mb.sketch(), fb.sketch()) {
                assert_eq!(ms.registers(), fs.registers(), "registers for key {key}");
                assert_eq!(
                    ms.estimate().to_bits(),
                    fs.estimate().to_bits(),
                    "estimate for key {key} must be byte-identical"
                );
                sketched += 1;
            }
        }
    }
    assert!(sketched > 0, "mixture workload must materialise some sketches");
}

/// The kernelized S3 filter (batched one-to-many verification) and the
/// scalar per-candidate loop must produce identical ids and identical
/// executed arms on the mixture corpus — the engine-level guarantee
/// that kernel rounding never flips an accept/reject decision at the
/// tested radius.
#[test]
fn kernel_and_scalar_verify_modes_agree_on_mixture() {
    let (map_index, frozen_index, queries, r) = mixture_setup();
    for strategy in Strategy::ALL {
        let mut kernel_engine = QueryEngine::with_verify_mode(VerifyMode::Kernel);
        let mut scalar_engine = QueryEngine::with_verify_mode(VerifyMode::Scalar);
        assert_eq!(kernel_engine.verify_mode(), VerifyMode::Kernel);
        for (qi, q) in queries.iter().enumerate() {
            let k = kernel_engine.query_with_strategy(&map_index, q, r, strategy);
            let s = scalar_engine.query_with_strategy(&map_index, q, r, strategy);
            assert_eq!(k.ids, s.ids, "{strategy} query {qi}");
            assert_eq!(k.report.executed, s.report.executed, "{strategy} query {qi}");
            assert_eq!(k.report.cand_size_actual, s.report.cand_size_actual);

            let kf = kernel_engine.query_with_strategy(&frozen_index, q, r, strategy);
            assert_eq!(kf.ids, s.ids, "frozen {strategy} query {qi}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Snapshot round trip is one more backend-parity claim: the
    /// frozen stores that come back from disk — via buffered read and
    /// via zero-copy mmap — must answer `query_batch` and
    /// `query_topk_batch` byte-identically to the in-memory index that
    /// was saved, for arbitrary mixture corpora and shard counts.
    #[test]
    fn snapshot_round_trip_preserves_query_and_topk_batches(
        n in 120usize..320,
        shards_idx in 0usize..3,
        seed in 0u64..400,
        k in 1usize..16,
    ) {
        let dim = 8;
        let r = 1.3;
        let shards = [1usize, 2, 4][shards_idx];
        let (data, _) = hybrid_lsh::datagen::benchmark_mixture(dim, n, r, seed);
        let queries: Vec<Vec<f32>> = (0..n).step_by(31).map(|i| data.row(i).to_vec()).collect();
        let builder = |s: u64| {
            IndexBuilder::new(PStableL2::new(dim, 2.0 * r), L2)
                .tables(4)
                .hash_len(4)
                .seed(s)
                .lazy_threshold(8)
                .cost_model(CostModel::from_ratio(3.0))
        };
        let assignment = ShardAssignment::new(seed ^ 0x5A, shards);
        let rnnr = ShardedIndex::build_frozen(data.clone(), assignment, builder(seed));
        let topk = ShardedTopKIndex::build(
            data,
            assignment,
            RadiusSchedule::doubling(0.9, 2),
            |li, _| builder(seed.wrapping_add(li as u64)),
        )
        .freeze();
        let expect_rnnr = rnnr.query_batch(&queries, r);
        let expect_topk = topk.query_topk_batch(&queries, k);

        let dir = std::env::temp_dir().join("hlsh-snapshot-tests");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join(format!("parity-{}-{seed}-{n}-{shards}.hlsh", std::process::id()));
        hybrid_lsh::save_snapshot(&path, &rnnr, Some(&topk)).expect("save");

        for mode in [hybrid_lsh::LoadMode::Read, hybrid_lsh::LoadMode::Mmap] {
            let loaded =
                hybrid_lsh::load_snapshot::<PStableL2, L2>(&path, mode).expect("load");
            let got_rnnr = loaded.rnnr.query_batch(&queries, r);
            for (qi, (e, g)) in expect_rnnr.iter().zip(&got_rnnr).enumerate() {
                prop_assert_eq!(&e.ids, &g.ids, "{:?} query {}", mode, qi);
                // Everything but the wall-clock timing fields.
                prop_assert_eq!(e.report.executed, g.report.executed, "{:?} query {}", mode, qi);
                prop_assert_eq!(e.report.collisions, g.report.collisions, "{:?} query {}", mode, qi);
                prop_assert_eq!(
                    e.report.cand_size_estimate.to_bits(),
                    g.report.cand_size_estimate.to_bits(),
                    "{:?} query {}", mode, qi
                );
            }
            let ladder = loaded.topk.expect("ladder round-trips");
            prop_assert_eq!(&expect_topk, &ladder.query_topk_batch(&queries, k), "{:?}", mode);
        }
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn frozen_index_thaws_back_to_streaming() {
    let (map_index, frozen_index, queries, r) = mixture_setup();
    let mut thawed = frozen_index.thaw();
    let grown_id = thawed.insert(&queries[0]);
    assert_eq!(grown_id as usize, map_index.len());
    // The fresh point is its own exact neighbor now.
    let out = thawed.query(&queries[0], r);
    assert!(out.ids.contains(&grown_id));
}
