//! Shard-merge equivalence: a [`ShardedIndex`] must report exactly the
//! unsharded index's rNNR id set (canonical ascending order), and a
//! [`ShardedTopKIndex`] must produce byte-identical `(distance, id)`
//! rankings and walk reports — across shard counts {1, 2, 4, 7}, both
//! storage backends, and both verify modes.

use hybrid_lsh::prelude::*;
use proptest::prelude::*;

// Both globs export a `Strategy`; the index's enum is the one we mean.
use hybrid_lsh::Strategy;

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 7];

fn mixture(n: usize, dim: usize, seed: u64) -> DenseDataset {
    let (data, _) = hybrid_lsh::datagen::benchmark_mixture(dim, n, 1.3, seed);
    data
}

fn rnnr_builder(dim: usize, seed: u64) -> IndexBuilder<PStableL2, L2> {
    IndexBuilder::new(PStableL2::new(dim, 2.6), L2)
        .tables(6)
        .hash_len(4)
        .seed(seed)
        .lazy_threshold(8)
        .cost_model(CostModel::from_ratio(4.0))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// rNNR: for every strategy, the sharded output ids equal the
    /// unsharded ids sorted ascending (same set — the shard merge's
    /// canonical order is ascending), on the map and frozen backends
    /// and under both verify modes.
    #[test]
    fn sharded_rnnr_ids_match_unsharded(
        seed in 0u64..300,
        shard_idx in 0usize..4,
        n in 150usize..350,
        qsel in 1usize..29,
    ) {
        let dim = 12;
        let shards = SHARD_COUNTS[shard_idx];
        let data = mixture(n, dim, seed);
        let unsharded = rnnr_builder(dim, seed).build(data.clone());
        let sharded =
            ShardedIndex::build(data.clone(), ShardAssignment::new(seed ^ 0xA5, shards), rnnr_builder(dim, seed));
        let frozen = ShardedIndex::build_frozen(
            data.clone(),
            ShardAssignment::new(seed ^ 0xA5, shards),
            rnnr_builder(dim, seed),
        );
        let r = 1.3;
        for qi in (0..n).step_by(qsel) {
            let q = data.row(qi).to_vec();
            for strategy in Strategy::ALL {
                let mut expect = unsharded.query_with_strategy(&q[..], r, strategy).ids;
                expect.sort_unstable();
                let got = sharded.query_with_strategy(&q[..], r, strategy);
                prop_assert_eq!(&got.ids, &expect, "map shards={} q={} {}", shards, qi, strategy);
                let got_frozen = frozen.query_with_strategy(&q[..], r, strategy);
                prop_assert_eq!(&got_frozen.ids, &expect, "frozen shards={} q={} {}", shards, qi, strategy);

                // Global decision statistics match the unsharded ones.
                let un = unsharded.query_with_strategy(&q[..], r, strategy);
                prop_assert_eq!(got.report.executed, un.report.executed);
                prop_assert_eq!(got.report.collisions, un.report.collisions);

                // Scalar verification agrees with the kernel default.
                let mut scalar = ShardedQueryEngine::with_verify_mode(VerifyMode::Scalar);
                let got_scalar = scalar.query_with_strategy(&sharded, &q[..], r, strategy);
                prop_assert_eq!(&got_scalar.ids, &expect, "scalar shards={} q={}", shards, qi);
            }
        }
    }

    /// Top-k: the sharded ladder's `(distance, id)` rankings and walk
    /// reports are byte-identical to the unsharded [`TopKIndex`], on
    /// both backends and under both verify modes, for every shard
    /// count.
    #[test]
    fn sharded_topk_matches_unsharded(
        seed in 0u64..300,
        shard_idx in 0usize..4,
        n in 120usize..260,
        k in 1usize..12,
    ) {
        let dim = 10;
        let shards = SHARD_COUNTS[shard_idx];
        let data = mixture(n, dim, seed);
        let schedule = RadiusSchedule::doubling(0.9, 3);
        let level_builder = move |_li: usize, r: f64| {
            IndexBuilder::new(PStableL2::new(dim, 2.0 * r), L2)
                .tables(6)
                .hash_len(4)
                .seed(seed)
                .lazy_threshold(8)
                .cost_model(CostModel::from_ratio(4.0))
        };
        let unsharded = TopKIndex::build(data.clone(), schedule, level_builder);
        let assignment = ShardAssignment::new(seed ^ 0x51, shards);
        let sharded = ShardedTopKIndex::build(data.clone(), assignment, schedule, level_builder);
        let queries: Vec<Vec<f32>> = (0..n).step_by(23).map(|qi| data.row(qi).to_vec()).collect();
        for q in &queries {
            let expect = unsharded.query_topk(&q[..], k);
            let got = sharded.query_topk(&q[..], k);
            // TopKOutput equality covers neighbors (distance bits
            // included) and the report minus wall time.
            prop_assert_eq!(&got, &expect, "map shards={} k={}", shards, k);

            let mut scalar = ShardedTopKEngine::with_verify_mode(VerifyMode::Scalar);
            let got_scalar = scalar.query_topk(&sharded, &q[..], k);
            prop_assert_eq!(&got_scalar, &expect, "scalar shards={} k={}", shards, k);
        }

        // Frozen backend and batch path: byte-identical again.
        let frozen = sharded.freeze();
        let batch = frozen.query_topk_batch(&queries, k);
        for (qi, q) in queries.iter().enumerate() {
            let expect = unsharded.query_topk(&q[..], k);
            prop_assert_eq!(&batch[qi], &expect, "frozen batch shards={} q={}", shards, qi);
        }
    }
}
