//! Loader robustness: every way a snapshot file can be damaged —
//! wrong magic, unknown version, foreign endianness, flipped bytes in
//! any CRC-protected region, truncation at **every** possible length,
//! and v2-specific tampering (bit flips in compressed payloads,
//! mid-varint truncation, encoding tags pointed at the wrong section,
//! over-declared decoded lengths) — must surface as a typed
//! [`SnapshotError`], never a panic, an over-allocation, or a silently
//! wrong index.

use std::path::PathBuf;

use hybrid_lsh::datagen::benchmark_mixture;
use hybrid_lsh::index::snapshot::format::{
    crc32, DirEntry, Header, SectionEncoding, DIR_ENTRY_LEN, HEADER_LEN,
};
use hybrid_lsh::prelude::*;
use hybrid_lsh::{LoadMode, SnapshotError, StorageProfile};

fn temp_path(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("hlsh-snapshot-tests");
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(format!("corrupt-{}-{}.hlsh", tag, std::process::id()))
}

fn cleanup(path: &PathBuf) {
    std::fs::remove_file(path).ok();
    std::fs::remove_file(StorageProfile::cache_path(path)).ok();
}

fn builder(dim: usize, tables: usize, seed: u64) -> IndexBuilder<PStableL2, L2> {
    IndexBuilder::new(PStableL2::new(dim, 2.4), L2)
        .tables(tables)
        .hash_len(3)
        .seed(seed)
        .cost_model(CostModel::from_ratio(4.0))
}

/// A small but structurally complete snapshot: two shards, an rNNR
/// index and a two-level top-k ladder (so every section kind appears).
fn write_fixture(tag: &str) -> PathBuf {
    let (n, dim, seed) = (150usize, 6usize, 9u64);
    let (data, _) = benchmark_mixture(dim, n, 1.2, seed);
    let assignment = ShardAssignment::new(seed, 2);
    let rnnr = ShardedIndex::build_frozen(data.clone(), assignment, builder(dim, 3, seed));
    let topk =
        ShardedTopKIndex::build(data, assignment, RadiusSchedule::doubling(0.8, 2), |li, _| {
            builder(dim, 3, seed.wrapping_add(li as u64))
        })
        .freeze();
    let path = temp_path(tag);
    save_snapshot(&path, &rnnr, Some(&topk)).expect("save fixture");
    path
}

/// The smallest structurally valid snapshot we can make — one shard,
/// two tables, no ladder — so exhaustive per-byte sweeps stay cheap.
fn write_minimal_fixture(tag: &str) -> PathBuf {
    let (n, dim, seed) = (40usize, 4usize, 5u64);
    let (data, _) = benchmark_mixture(dim, n, 1.2, seed);
    let rnnr =
        ShardedIndex::build_frozen(data, ShardAssignment::new(seed, 1), builder(dim, 2, seed));
    let path = temp_path(tag);
    save_snapshot(&path, &rnnr, None).expect("save minimal fixture");
    path
}

fn load_all_modes(bytes: &[u8], path: &PathBuf) -> Vec<Result<(), SnapshotError>> {
    std::fs::write(path, bytes).expect("write corrupted copy");
    [LoadMode::Read, LoadMode::Mmap, LoadMode::MmapVerify, LoadMode::Auto]
        .into_iter()
        .map(|mode| load_snapshot::<PStableL2, L2>(path, mode).map(|_| ()))
        .collect()
}

/// Reads directory entry `i` of a pristine v2 file.
fn entry_at(bytes: &[u8], header: &Header, i: usize) -> DirEntry {
    let at = header.dir_off as usize + i * DIR_ENTRY_LEN;
    DirEntry::decode(&bytes[at..at + DIR_ENTRY_LEN], header.total_len).expect("pristine dir entry")
}

/// Overwrites directory entry `i` with `entry` and re-signs the
/// directory and header CRCs, so tampering with entry *fields* reaches
/// the section decoders instead of tripping the directory checksum.
fn patch_entry(bytes: &mut [u8], header: &Header, i: usize, entry: &DirEntry) {
    let at = header.dir_off as usize + i * DIR_ENTRY_LEN;
    bytes[at..at + DIR_ENTRY_LEN].copy_from_slice(&entry.encode());
    let dir_len = header.dir_count as usize * DIR_ENTRY_LEN;
    let dir_crc = crc32(&bytes[header.dir_off as usize..header.dir_off as usize + dir_len]);
    bytes[56..60].copy_from_slice(&dir_crc.to_le_bytes());
    let header_crc = crc32(&bytes[..60]);
    bytes[60..64].copy_from_slice(&header_crc.to_le_bytes());
}

#[test]
fn structural_corruption_yields_typed_errors_in_every_mode() {
    let fixture = write_fixture("structural");
    let pristine = std::fs::read(&fixture).expect("read fixture");
    let path = temp_path("structural-mutant");

    // Wrong magic.
    let mut bytes = pristine.clone();
    bytes[0] ^= 0xFF;
    for res in load_all_modes(&bytes, &path) {
        assert!(matches!(&res, Err(SnapshotError::BadMagic)), "{res:?}");
    }

    // Unknown format version (future file read by an old binary).
    let mut bytes = pristine.clone();
    bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
    for res in load_all_modes(&bytes, &path) {
        assert!(matches!(&res, Err(SnapshotError::BadVersion(99))), "{res:?}");
    }

    // Foreign endianness canary.
    let mut bytes = pristine.clone();
    bytes[12..16].reverse();
    for res in load_all_modes(&bytes, &path) {
        assert!(matches!(&res, Err(SnapshotError::BadEndian)), "{res:?}");
    }

    // A flipped bit anywhere else in the header trips the header CRC.
    for off in [16usize, 33, 47, 50, 55, 59] {
        let mut bytes = pristine.clone();
        bytes[off] ^= 0x40;
        for res in load_all_modes(&bytes, &path) {
            assert!(
                matches!(&res, Err(SnapshotError::ChecksumMismatch("header"))),
                "header byte {off}: {res:?}"
            );
        }
    }

    // Empty and header-only-prefix files are truncation, not panics.
    for len in [0usize, 1, 8, HEADER_LEN - 1] {
        for res in load_all_modes(&pristine[..len], &path) {
            assert!(res.is_err(), "prefix {len}: {res:?}");
        }
    }

    // Trailing garbage makes the file longer than the header declares.
    let mut bytes = pristine.clone();
    bytes.extend_from_slice(&[0xAB; 17]);
    for res in load_all_modes(&bytes, &path) {
        assert!(matches!(&res, Err(SnapshotError::Malformed(_))), "{res:?}");
    }

    std::fs::remove_file(&fixture).ok();
    std::fs::remove_file(&path).ok();
}

#[test]
fn param_and_directory_corruption_is_caught_in_every_mode() {
    let fixture = write_fixture("params");
    let pristine = std::fs::read(&fixture).expect("read fixture");
    let header = Header::decode(&pristine).expect("fixture header");
    let path = temp_path("params-mutant");

    // Param block bytes are CRC-protected in all modes.
    let param_mid = (header.param_off + header.param_len / 2) as usize;
    for off in [header.param_off as usize, param_mid] {
        let mut bytes = pristine.clone();
        bytes[off] ^= 0x01;
        for res in load_all_modes(&bytes, &path) {
            assert!(
                matches!(&res, Err(SnapshotError::ChecksumMismatch(_))),
                "param byte {off}: {res:?}"
            );
        }
    }

    // Directory bytes likewise.
    let dir_len = header.dir_count as usize * DIR_ENTRY_LEN;
    for off in [header.dir_off as usize, header.dir_off as usize + dir_len - 1] {
        let mut bytes = pristine.clone();
        bytes[off] ^= 0x01;
        for res in load_all_modes(&bytes, &path) {
            assert!(
                matches!(&res, Err(SnapshotError::ChecksumMismatch(_))),
                "dir byte {off}: {res:?}"
            );
        }
    }

    std::fs::remove_file(&fixture).ok();
    std::fs::remove_file(&path).ok();
}

#[test]
fn section_payload_corruption_is_caught_by_verifying_modes() {
    let fixture = write_fixture("sections");
    let pristine = std::fs::read(&fixture).expect("read fixture");
    let header = Header::decode(&pristine).expect("fixture header");
    let path = temp_path("sections-mutant");

    // Corrupt the first payload byte of every section. `Read` and
    // `MmapVerify` must reject each one; plain `Mmap` deliberately
    // skips payload CRCs (the documented lazy-paging trade-off), so it
    // is only required not to panic while loading.
    let dir_off = header.dir_off as usize;
    for i in 0..header.dir_count as usize {
        let at = dir_off + i * DIR_ENTRY_LEN;
        let entry = DirEntry::decode(&pristine[at..at + DIR_ENTRY_LEN], header.total_len)
            .expect("fixture dir entry");
        if entry.enc_len == 0 {
            continue;
        }
        let mut bytes = pristine.clone();
        bytes[entry.offset as usize] ^= 0x01;
        std::fs::write(&path, &bytes).expect("write corrupted copy");
        for mode in [LoadMode::Read, LoadMode::MmapVerify] {
            let res = load_snapshot::<PStableL2, L2>(&path, mode).map(|_| ());
            assert!(
                matches!(
                    &res,
                    Err(SnapshotError::ChecksumMismatch(_)) | Err(SnapshotError::Malformed(_))
                ),
                "section {i} mode {mode:?}: {res:?}"
            );
        }
        // Must not panic; success or a typed error are both acceptable.
        let _ = load_snapshot::<PStableL2, L2>(&path, LoadMode::Mmap);
    }

    std::fs::remove_file(&fixture).ok();
    std::fs::remove_file(&path).ok();
}

#[test]
fn truncation_at_every_length_is_a_typed_error_in_every_mode() {
    let fixture = write_minimal_fixture("truncate");
    let total = std::fs::metadata(&fixture).expect("fixture metadata").len();
    let file = std::fs::OpenOptions::new().write(true).open(&fixture).expect("open for truncate");

    // Shrink the same file one byte at a time from full length down to
    // empty; every proper prefix must load as an error (the header pins
    // the exact total length, so even cutting only trailing padding is
    // caught).
    for len in (0..total).rev() {
        file.set_len(len).expect("truncate");
        for mode in [LoadMode::Read, LoadMode::Mmap, LoadMode::MmapVerify] {
            // Any typed error is fine; panics and successes are not.
            if load_snapshot::<PStableL2, L2>(&fixture, mode).is_ok() {
                panic!("truncated to {len} bytes but load ({mode:?}) succeeded");
            }
        }
    }

    std::fs::remove_file(&fixture).ok();
}

#[test]
fn encoded_payload_corruption_is_caught_in_every_mode_including_plain_mmap() {
    let fixture = write_fixture("encoded-flip");
    let pristine = std::fs::read(&fixture).expect("read fixture");
    let header = Header::decode(&pristine).expect("fixture header");
    let path = temp_path("encoded-flip-mutant");

    // Encoded sections are decoded (hence checksummed) in every load
    // mode — unlike raw sections, a flipped bit in a varint stream must
    // be caught even under plain `Mmap`.
    let mut tested = 0;
    for i in 0..header.dir_count as usize {
        let entry = entry_at(&pristine, &header, i);
        if entry.encoding == SectionEncoding::Raw || entry.enc_len == 0 {
            continue;
        }
        tested += 1;
        for flip_at in
            [entry.offset, entry.offset + entry.enc_len / 2, entry.offset + entry.enc_len - 1]
        {
            let mut bytes = pristine.clone();
            bytes[flip_at as usize] ^= 0x10;
            for res in load_all_modes(&bytes, &path) {
                assert!(
                    matches!(
                        &res,
                        Err(SnapshotError::ChecksumMismatch(_)) | Err(SnapshotError::Malformed(_))
                    ),
                    "section {i} flip at {flip_at}: {res:?}"
                );
            }
        }
    }
    assert!(tested > 0, "fixture must contain encoded sections");

    cleanup(&fixture);
    cleanup(&path);
}

#[test]
fn truncation_mid_varint_is_a_typed_error() {
    let fixture = write_fixture("mid-varint");
    let pristine = std::fs::read(&fixture).expect("read fixture");
    let header = Header::decode(&pristine).expect("fixture header");
    let path = temp_path("mid-varint-mutant");

    // Shorten an encoded section's declared length by one byte and
    // re-sign its CRC over the shortened payload, so the varint decoder
    // (not the checksum) sees a stream that ends mid-element.
    let mut tested = 0;
    for i in 0..header.dir_count as usize {
        let entry = entry_at(&pristine, &header, i);
        // Need strictly more encoded bytes than elements, or the
        // shortened entry fails the structural length bound instead.
        if entry.encoding == SectionEncoding::Raw || entry.enc_len <= entry.elem_count() {
            continue;
        }
        tested += 1;
        let mut bytes = pristine.clone();
        let cut = DirEntry {
            enc_len: entry.enc_len - 1,
            crc: crc32(
                &pristine[entry.offset as usize..(entry.offset + entry.enc_len - 1) as usize],
            ),
            ..entry
        };
        patch_entry(&mut bytes, &header, i, &cut);
        for res in load_all_modes(&bytes, &path) {
            assert!(
                matches!(&res, Err(SnapshotError::Truncated) | Err(SnapshotError::Malformed(_))),
                "section {i}: {res:?}"
            );
        }
    }
    assert!(tested > 0, "fixture must contain multi-byte varint sections");

    cleanup(&fixture);
    cleanup(&path);
}

#[test]
fn encoding_tag_and_length_tampering_is_rejected() {
    let fixture = write_fixture("tamper");
    let pristine = std::fs::read(&fixture).expect("read fixture");
    let header = Header::decode(&pristine).expect("fixture header");
    let path = temp_path("tamper-mutant");

    let raw_f32 = (0..header.dir_count as usize)
        .map(|i| (i, entry_at(&pristine, &header, i)))
        .find(|(_, e)| e.encoding == SectionEncoding::Raw && e.elem_size == 4 && e.raw_len > 0)
        .expect("fixture has a raw f32/u32 section");
    let encoded = (0..header.dir_count as usize)
        .map(|i| (i, entry_at(&pristine, &header, i)))
        .find(|(_, e)| e.encoding != SectionEncoding::Raw && e.elem_count() > 1)
        .expect("fixture has an encoded section");

    // An encoding tag pointed at a section that was written raw: the
    // bytes cannot parse as the declared element count of varints.
    let (i, e) = raw_f32;
    let mut bytes = pristine.clone();
    patch_entry(&mut bytes, &header, i, &DirEntry { encoding: SectionEncoding::Varint, ..e });
    for res in load_all_modes(&bytes, &path) {
        assert!(
            matches!(&res, Err(SnapshotError::Malformed(_)) | Err(SnapshotError::Truncated)),
            "raw section retagged varint: {res:?}"
        );
    }

    // Over-declared decoded length: the structural bound (>= 1 encoded
    // byte per element) rejects the entry before any allocation.
    let (i, e) = encoded;
    let mut bytes = pristine.clone();
    let oversold = DirEntry { raw_len: (e.enc_len + 1) * e.elem_size as u64, ..e };
    patch_entry(&mut bytes, &header, i, &oversold);
    for res in load_all_modes(&bytes, &path) {
        assert!(matches!(&res, Err(SnapshotError::Malformed(_))), "oversold length: {res:?}");
    }

    // A length off by one element in either direction still decodes
    // structurally but must fail the exact-consumption check.
    for delta in [-1i64, 1] {
        let mut bytes = pristine.clone();
        let skewed =
            DirEntry { raw_len: (e.raw_len as i64 + delta * e.elem_size as i64) as u64, ..e };
        patch_entry(&mut bytes, &header, i, &skewed);
        for res in load_all_modes(&bytes, &path) {
            assert!(
                matches!(&res, Err(SnapshotError::Malformed(_)) | Err(SnapshotError::Truncated)),
                "length skew {delta}: {res:?}"
            );
        }
    }

    cleanup(&fixture);
    cleanup(&path);
}

#[test]
fn family_and_distance_mismatches_are_rejected_before_any_decode() {
    let fixture = write_fixture("mismatch");

    for mode in [LoadMode::Read, LoadMode::Mmap, LoadMode::MmapVerify] {
        let res = load_snapshot::<SimHash, Cosine>(&fixture, mode).map(|_| ());
        assert!(
            matches!(
                &res,
                Err(SnapshotError::FamilyMismatch { .. })
                    | Err(SnapshotError::DistanceMismatch { .. })
            ),
            "{mode:?}: {res:?}"
        );
        // Same family, wrong metric: specifically a distance mismatch.
        let res = load_snapshot::<PStableL2, L1>(&fixture, mode).map(|_| ());
        assert!(matches!(&res, Err(SnapshotError::DistanceMismatch { .. })), "{mode:?}: {res:?}");
    }

    std::fs::remove_file(&fixture).ok();
}
