//! Snapshot determinism contract: queries against a loaded snapshot
//! are byte-identical to queries against the index that wrote it —
//! every load mode (`Read`, zero-copy `Mmap`, `MmapVerify`, and the
//! planner-driven `Auto`), across shard counts {1, 2, 4}, for both
//! `query_batch` and `query_topk_batch`. The v2 writer picks per-section
//! encodings, so this suite also pins both varint codecs' decode paths.
//!
//! Nothing may be re-sampled or re-derived at load time, so every
//! g-function, sketch slab, cost coefficient and owner list must
//! round-trip verbatim; any drift shows up here as a changed id set,
//! ranking, or walk report.

use std::path::PathBuf;
use std::sync::Arc;

use hybrid_lsh::datagen::benchmark_mixture;
use hybrid_lsh::prelude::*;
use hybrid_lsh::Strategy;

/// A unique temp path per test so parallel test binaries never collide.
fn temp_snapshot(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("hlsh-snapshot-tests");
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(format!("{}-{}.hlsh", tag, std::process::id()))
}

fn rnnr_builder(dim: usize, seed: u64) -> IndexBuilder<PStableL2, L2> {
    IndexBuilder::new(PStableL2::new(dim, 2.6), L2)
        .tables(5)
        .hash_len(4)
        .seed(seed)
        .lazy_threshold(8)
        .cost_model(CostModel::from_ratio(4.0))
}

const MODES: [LoadMode; 4] = [LoadMode::Read, LoadMode::Mmap, LoadMode::MmapVerify, LoadMode::Auto];

/// Removes a snapshot and the profile sidecar `LoadMode::Auto` caches
/// next to it.
fn cleanup(path: &std::path::Path) {
    std::fs::remove_file(path).ok();
    std::fs::remove_file(hybrid_lsh::StorageProfile::cache_path(path)).ok();
}

fn assert_rnnr_identical(
    expect: &[hybrid_lsh::QueryOutput],
    got: &[hybrid_lsh::QueryOutput],
    ctx: &str,
) {
    assert_eq!(expect.len(), got.len(), "{ctx}: batch length");
    for (qi, (e, g)) in expect.iter().zip(got).enumerate() {
        assert_eq!(e.ids, g.ids, "{ctx}: ids of query {qi}");
        // All report fields except the wall-clock timings.
        assert_eq!(e.report.executed, g.report.executed, "{ctx}: arm of query {qi}");
        assert_eq!(e.report.collisions, g.report.collisions, "{ctx}: collisions of query {qi}");
        assert_eq!(
            e.report.cand_size_estimate.to_bits(),
            g.report.cand_size_estimate.to_bits(),
            "{ctx}: sketch estimate of query {qi}"
        );
        assert_eq!(
            e.report.cand_size_actual, g.report.cand_size_actual,
            "{ctx}: candidate count of query {qi}"
        );
        assert_eq!(e.report.output_size, g.report.output_size, "{ctx}: output size of query {qi}");
    }
}

#[test]
fn rnnr_and_topk_round_trip_byte_identical_across_shards_and_modes() {
    let (n, dim, seed, r, k) = (600usize, 10usize, 42u64, 1.3f64, 12usize);
    let (data, _) = benchmark_mixture(dim, n, r, seed);
    let queries: Vec<Vec<f32>> = (0..n).step_by(37).map(|i| data.row(i).to_vec()).collect();
    let schedule = RadiusSchedule::doubling(0.9, 3);

    for shards in [1usize, 2, 4] {
        let assignment = ShardAssignment::new(seed ^ 0xA5, shards);
        let rnnr = ShardedIndex::build_frozen(data.clone(), assignment, rnnr_builder(dim, seed));
        let topk = ShardedTopKIndex::build(data.clone(), assignment, schedule, |li, radius| {
            rnnr_builder(dim, seed.wrapping_add(li as u64))
                .cost_model(CostModel::from_ratio(4.0))
                .tables(4 + li)
                .hash_len(3)
                .seed(seed ^ (radius.to_bits()))
        })
        .freeze();

        let expect_rnnr = rnnr.query_batch(&queries, r);
        let expect_topk = topk.query_topk_batch(&queries, k);

        let path = temp_snapshot(&format!("roundtrip-{shards}"));
        let stats = save_snapshot(&path, &rnnr, Some(&topk)).expect("save");
        assert!(stats.bytes > 0 && stats.sections > 0);

        // The manifest is readable without instantiating family types.
        let manifest = read_manifest(&path).expect("manifest");
        assert_eq!(manifest.n, n);
        assert_eq!(manifest.dim, dim);
        assert_eq!(manifest.shards, shards);
        assert_eq!(manifest.seed, seed ^ 0xA5);
        assert_eq!(manifest.tables, 5);
        assert_eq!(manifest.k, 4);
        let tk = manifest.topk.expect("ladder was snapshotted");
        assert_eq!(tk.levels, schedule.levels());
        assert_eq!(tk.base, schedule.base());
        assert_eq!(tk.ratio, schedule.ratio());

        for mode in MODES {
            let loaded = load_snapshot::<PStableL2, L2>(&path, mode).expect("load");
            let ctx = format!("shards={shards} mode={mode:?}");
            assert_eq!(loaded.manifest, manifest, "{ctx}: manifest");

            let got_rnnr = loaded.rnnr.query_batch(&queries, r);
            assert_rnnr_identical(&expect_rnnr, &got_rnnr, &ctx);
            // Every strategy, not just the hybrid default.
            for strategy in Strategy::ALL {
                for (qi, q) in queries.iter().enumerate() {
                    let e = rnnr.query_with_strategy(&q[..], r, strategy);
                    let g = loaded.rnnr.query_with_strategy(&q[..], r, strategy);
                    assert_eq!(e.ids, g.ids, "{ctx} {strategy} q={qi}");
                    assert_eq!(e.report.executed, g.report.executed, "{ctx} {strategy} q={qi}");
                    assert_eq!(e.report.collisions, g.report.collisions, "{ctx} {strategy} q={qi}");
                }
            }

            let ladder = loaded.topk.expect("ladder survives the round trip");
            let got_topk = ladder.query_topk_batch(&queries, k);
            assert_eq!(expect_topk, got_topk, "{ctx}: topk batch");
        }
        cleanup(&path);
    }
}

#[test]
fn rnnr_only_snapshot_round_trips_without_a_ladder() {
    let (n, dim, seed, r) = (300usize, 8usize, 7u64, 1.2f64);
    let (data, _) = benchmark_mixture(dim, n, r, seed);
    let queries: Vec<Vec<f32>> = (0..n).step_by(29).map(|i| data.row(i).to_vec()).collect();

    let rnnr =
        ShardedIndex::build_frozen(data, ShardAssignment::new(seed, 2), rnnr_builder(dim, seed));
    let expect = rnnr.query_batch(&queries, r);

    let path = temp_snapshot("rnnr-only");
    save_snapshot(&path, &rnnr, None).expect("save");
    let manifest = read_manifest(&path).expect("manifest");
    assert!(manifest.topk.is_none());

    for mode in MODES {
        let loaded = load_snapshot::<PStableL2, L2>(&path, mode).expect("load");
        assert!(loaded.topk.is_none());
        assert_rnnr_identical(&expect, &loaded.rnnr.query_batch(&queries, r), &format!("{mode:?}"));
    }
    cleanup(&path);
}

/// A second family/metric pair (SimHash under cosine) exercises the
/// other codec arm: hyperplane g-functions instead of p-stable ones.
#[test]
fn simhash_cosine_snapshot_round_trips() {
    let (n, dim, seed) = (250usize, 12usize, 11u64);
    let (mut data, _) = benchmark_mixture(dim, n, 1.0, seed);
    data.normalize_l2();
    let queries: Vec<Vec<f32>> = (0..n).step_by(23).map(|i| data.row(i).to_vec()).collect();

    let rnnr = ShardedIndex::build_frozen(
        data,
        ShardAssignment::new(seed, 3),
        IndexBuilder::new(SimHash::new(dim), Cosine)
            .tables(6)
            .hash_len(5)
            .seed(seed)
            .cost_model(CostModel::from_ratio(5.0)),
    );
    let r = 0.25;
    let expect = rnnr.query_batch(&queries, r);

    let path = temp_snapshot("simhash");
    save_snapshot(&path, &rnnr, None).expect("save");
    for mode in MODES {
        let loaded = load_snapshot::<SimHash, Cosine>(&path, mode).expect("load");
        assert_rnnr_identical(&expect, &loaded.rnnr.query_batch(&queries, r), &format!("{mode:?}"));
    }
    cleanup(&path);
}

/// An mmap-loaded index must stay valid after the loader and its local
/// state are gone (the mapping is kept alive by the sections), and
/// across threads (the mapping is `Send + Sync`).
#[test]
fn mmap_loaded_index_outlives_the_loader_and_crosses_threads() {
    let (n, dim, seed, r) = (200usize, 6usize, 3u64, 1.2f64);
    let (data, _) = benchmark_mixture(dim, n, r, seed);
    let q: Vec<f32> = data.row(5).to_vec();

    let rnnr =
        ShardedIndex::build_frozen(data, ShardAssignment::new(seed, 2), rnnr_builder(dim, seed));
    let expect = rnnr.query(&q[..], r);

    let path = temp_snapshot("outlive");
    save_snapshot(&path, &rnnr, None).expect("save");
    let loaded = {
        // The file handle and loader scope end here; the mapping must
        // keep the sections readable regardless.
        load_snapshot::<PStableL2, L2>(&path, LoadMode::Mmap).expect("load")
    };
    std::fs::remove_file(&path).ok(); // unlinked file: mapping stays valid on unix

    let index = Arc::new(loaded.rnnr);
    let handles: Vec<_> = (0..4)
        .map(|_| {
            let index = Arc::clone(&index);
            let q = q.clone();
            std::thread::spawn(move || index.query(&q[..], r).ids)
        })
        .collect();
    for h in handles {
        assert_eq!(h.join().expect("thread"), expect.ids);
    }
}
