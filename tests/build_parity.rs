//! Blocked-construction byte-identity: the staged build pipeline
//! (block-hash → key-group → bulk insert) must produce **exactly** the
//! same index as the per-point Algorithm 1 loop — same bucket keys,
//! same member order, same sketch registers — on every family and both
//! storage backends. CI runs this as the build-parity gate.

use hybrid_lsh::index::pipeline::BuildPipeline;
use hybrid_lsh::prelude::*;
use hybrid_lsh::vec::PointId;

/// Frozen-store equality across every table of two indexes (the
/// `FrozenStore` `PartialEq` compares the full CSR arena: keys,
/// offsets, member slab, sketch bitmap and register slab).
macro_rules! assert_tables_identical {
    ($a:expr, $b:expr, $ctx:expr) => {{
        let (a, b) = ($a, $b);
        assert_eq!(a.tables(), b.tables(), "{}: table count", $ctx);
        for j in 0..a.tables() {
            assert_eq!(
                a.raw_tables()[j].store(),
                b.raw_tables()[j].store(),
                "{}: table {j} diverged",
                $ctx
            );
        }
    }};
}

fn mixture(n: usize, dim: usize) -> DenseDataset {
    let (data, _) = hybrid_lsh::datagen::benchmark_mixture(dim, n, 1.5, 71);
    data
}

#[test]
fn blocked_build_is_byte_identical_to_per_point_pstable() {
    // The CI gate's fixed-seed configuration: p-stable L2 on dense
    // mixture data, enough points that buckets cross the lazy-sketch
    // threshold, a dimension that exercises lane remainders.
    let data = mixture(4_000, 28);
    let builder = || {
        IndexBuilder::new(PStableL2::new(28, 2.0), L2)
            .tables(12)
            .hash_len(6)
            .seed(42)
            .lazy_threshold(16)
            .cost_model(CostModel::from_ratio(4.0))
    };
    let per_point = builder().per_point().build(data.clone()).freeze();
    for block in [1usize, 64, 256, 8192] {
        let blocked = builder().block_size(block).build(data.clone()).freeze();
        assert_tables_identical!(&per_point, &blocked, format!("map path, block={block}"));
        let direct = builder().block_size(block).build_frozen(data.clone());
        assert_tables_identical!(&per_point, &direct, format!("frozen path, block={block}"));
    }
}

#[test]
fn blocked_build_is_byte_identical_to_per_point_simhash() {
    let mut data = mixture(2_000, 19);
    data.normalize_l2();
    let builder = || {
        IndexBuilder::new(SimHash::new(19), UnitCosine)
            .tables(10)
            .hash_len(12)
            .seed(9)
            .lazy_threshold(8)
            .cost_model(CostModel::from_ratio(4.0))
    };
    let per_point = builder().per_point().build(data.clone()).freeze();
    let direct = builder().build_frozen(data.clone()); // default blocked mode
    assert_tables_identical!(&per_point, &direct, "simhash");
}

#[test]
fn blocked_build_is_byte_identical_to_per_point_bitsampling() {
    // Binary data has no dense block view: the blocked pipeline falls
    // back to per-point hashing inside each block, but key-grouping and
    // bulk insertion still run — the result must stay identical.
    let fps: Vec<u64> = (0..1500u64).map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15)).collect();
    let data = BinaryDataset::from_fingerprints(&fps);
    let builder = || {
        IndexBuilder::new(BitSampling::new(64), Hamming)
            .tables(8)
            .hash_len(10)
            .seed(4)
            .lazy_threshold(8)
            .cost_model(CostModel::from_ratio(4.0))
    };
    let per_point = builder().per_point().build(data.clone()).freeze();
    let direct = builder().build_frozen(data.clone());
    assert_tables_identical!(&per_point, &direct, "bit sampling");
}

#[test]
fn blocked_and_per_point_indexes_answer_identically() {
    let data = mixture(3_000, 16);
    let builder = || {
        IndexBuilder::new(PStableL2::new(16, 2.4), L2)
            .tables(10)
            .hash_len(5)
            .seed(13)
            .cost_model(CostModel::from_ratio(6.0))
    };
    let a = builder().per_point().build(data.clone());
    let b = builder().build_frozen(data.clone());
    for qi in (0..3_000).step_by(311) {
        let q = data.row(qi).to_vec();
        for strategy in Strategy::ALL {
            let oa = a.query_with_strategy(&q[..], 1.2, strategy);
            let ob = b.query_with_strategy(&q[..], 1.2, strategy);
            assert_eq!(oa.ids, ob.ids, "q={qi} {strategy}");
            assert_eq!(oa.report.executed, ob.report.executed, "q={qi} {strategy}");
            assert_eq!(
                oa.report.cand_size_estimate.to_bits(),
                ob.report.cand_size_estimate.to_bits(),
                "q={qi} {strategy}: merged sketch estimates must be byte-identical"
            );
        }
    }
}

#[test]
fn pipeline_hash_points_matches_per_point_keys_on_binary_fallback() {
    use hybrid_lsh::families::{GFunction, LshFamily};
    let fps: Vec<u64> = (0..130u64).map(|i| i.wrapping_mul(0xABCD_EF12_3456_789B)).collect();
    let data = BinaryDataset::from_fingerprints(&fps);
    let g = BitSampling::new(64).sample(9, &mut hybrid_lsh::families::sampling::rng_stream(8, 0));
    let keys = BuildPipeline::with_block(32).hash_points(&g, &data);
    assert_eq!(keys.len(), fps.len());
    for (id, &key) in keys.iter().enumerate() {
        assert_eq!(key, g.bucket_key(data.row(id)), "id {id}");
    }
}

#[test]
fn bulk_insert_run_matches_per_id_inserts() {
    use hybrid_lsh::index::store::{BucketStore, MapStore};
    use hybrid_lsh::prelude::HllConfig;
    let config = HllConfig::new(6, 77);
    // Split one bucket's members across several runs, straddling the
    // lazy threshold, plus a second bucket fed per-id.
    let mut bulk = MapStore::new();
    bulk.insert_run(5, &[0, 1, 2], config, 4);
    bulk.insert_run(5, &[3, 4, 5, 6], config, 4);
    bulk.insert_run(9, &[7], config, 4);
    let mut per_id = MapStore::new();
    for id in 0..7 {
        per_id.insert(5, id as PointId, config, 4);
    }
    per_id.insert(9, 7, config, 4);
    assert_eq!(bulk.freeze(), per_id.freeze());
}
