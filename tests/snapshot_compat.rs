//! Format backward compatibility: v1 snapshot files (written by the
//! retained [`save_snapshot_v1`] writer) must keep loading through the
//! version-dispatched reader, in every load mode, with query results
//! byte-identical to both the source index and a v2 file of the same
//! index.
//!
//! [`save_snapshot_v1`]: hybrid_lsh::index::snapshot::save_snapshot_v1

use std::path::{Path, PathBuf};

use hybrid_lsh::datagen::benchmark_mixture;
use hybrid_lsh::index::snapshot::save_snapshot_v1;
use hybrid_lsh::prelude::*;
use hybrid_lsh::StorageProfile;

fn temp_path(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("hlsh-snapshot-tests");
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(format!("compat-{}-{}.hlsh", tag, std::process::id()))
}

fn cleanup(path: &Path) {
    std::fs::remove_file(path).ok();
    std::fs::remove_file(StorageProfile::cache_path(path)).ok();
}

fn builder(dim: usize, seed: u64) -> IndexBuilder<PStableL2, L2> {
    IndexBuilder::new(PStableL2::new(dim, 2.5), L2)
        .tables(4)
        .hash_len(4)
        .seed(seed)
        .lazy_threshold(8)
        .cost_model(CostModel::from_ratio(4.0))
}

const MODES: [LoadMode; 4] = [LoadMode::Read, LoadMode::Mmap, LoadMode::MmapVerify, LoadMode::Auto];

#[test]
fn v1_files_load_byte_identical_to_v2_across_modes_and_shards() {
    let (n, dim, seed, r, k) = (500usize, 8usize, 17u64, 1.25f64, 10usize);
    let (data, _) = benchmark_mixture(dim, n, r, seed);
    let queries: Vec<Vec<f32>> = (0..n).step_by(31).map(|i| data.row(i).to_vec()).collect();
    let schedule = RadiusSchedule::doubling(0.9, 2);

    for shards in [1usize, 2, 4] {
        let assignment = ShardAssignment::new(seed, shards);
        let rnnr = ShardedIndex::build_frozen(data.clone(), assignment, builder(dim, seed));
        let topk = ShardedTopKIndex::build(data.clone(), assignment, schedule, |li, _| {
            builder(dim, seed.wrapping_add(li as u64)).tables(3 + li)
        })
        .freeze();
        let expect_rnnr = rnnr.query_batch(&queries, r);
        let expect_topk = topk.query_topk_batch(&queries, k);

        let v1_path = temp_path(&format!("v1-{shards}"));
        let v2_path = temp_path(&format!("v2-{shards}"));
        let v1_stats = save_snapshot_v1(&v1_path, &rnnr, Some(&topk)).expect("save v1");
        let v2_stats = save_snapshot(&v2_path, &rnnr, Some(&topk)).expect("save v2");

        // The two writers declare their versions, and the v2 file is
        // strictly smaller (packed encoded sections, tighter alignment,
        // one g-function area instead of one per shard).
        let v1_layout = read_layout(&v1_path).expect("v1 layout");
        let v2_layout = read_layout(&v2_path).expect("v2 layout");
        assert_eq!(v1_layout.version, 1);
        assert_eq!(v2_layout.version, 2);
        assert_eq!(v1_layout.sections.len(), v2_layout.sections.len());
        assert!(
            v2_stats.bytes < v1_stats.bytes,
            "v2 ({}) must be smaller than v1 ({})",
            v2_stats.bytes,
            v1_stats.bytes
        );
        // Same decoded payload either way; v1 never compresses.
        assert_eq!(v1_stats.raw_payload_bytes, v2_stats.raw_payload_bytes);
        assert_eq!(v1_stats.encoded_payload_bytes, v1_stats.raw_payload_bytes);
        assert!(v2_stats.encoded_payload_bytes < v2_stats.raw_payload_bytes);
        assert!(v2_stats.varint_sections + v2_stats.delta_sections > 0);

        // Both versions and the live index agree bit-for-bit in every
        // load mode.
        for path in [&v1_path, &v2_path] {
            let manifest = read_manifest(path).expect("manifest");
            assert_eq!(manifest.n, n);
            assert_eq!(manifest.shards, shards);
            for mode in MODES {
                let loaded = load_snapshot::<PStableL2, L2>(path, mode).expect("load");
                let ctx = format!("{} shards={shards} mode={mode:?}", path.display());
                assert_eq!(loaded.manifest, manifest, "{ctx}: manifest");
                let got = loaded.rnnr.query_batch(&queries, r);
                for (qi, (e, g)) in expect_rnnr.iter().zip(&got).enumerate() {
                    assert_eq!(e.ids, g.ids, "{ctx}: ids of query {qi}");
                    assert_eq!(e.report.executed, g.report.executed, "{ctx}: arm of query {qi}");
                    assert_eq!(
                        e.report.collisions, g.report.collisions,
                        "{ctx}: collisions of query {qi}"
                    );
                }
                let ladder = loaded.topk.expect("ladder survives");
                assert_eq!(expect_topk, ladder.query_topk_batch(&queries, k), "{ctx}: topk");
            }
        }
        cleanup(&v1_path);
        cleanup(&v2_path);
    }
}

#[test]
fn v2_layout_labels_follow_the_schema_and_stats_add_up() {
    let (n, dim, seed) = (200usize, 6usize, 23u64);
    let (data, _) = benchmark_mixture(dim, n, 1.2, seed);
    let rnnr = ShardedIndex::build_frozen(data, ShardAssignment::new(seed, 2), builder(dim, seed));
    let path = temp_path("layout");
    save_snapshot(&path, &rnnr, None).expect("save");

    let layout = read_layout(&path).expect("layout");
    assert_eq!(layout.version, 2);
    // 2 shards × (owners + data + 4 tables × 7 arrays).
    assert_eq!(layout.sections.len(), 2 * (2 + 4 * 7));
    assert_eq!(layout.sections[0].label, "shard0/owners");
    assert_eq!(layout.sections[1].label, "shard0/data");
    assert_eq!(layout.sections[2].label, "shard0/rnnr/t0/keys");
    assert_eq!(layout.sections[8].label, "shard0/rnnr/t0/regs");
    let per_shard = 2 + 4 * 7;
    assert_eq!(layout.sections[per_shard].label, "shard1/owners");

    let stats = layout.stats();
    assert_eq!(stats.total_bytes, layout.file_len);
    let sum: u64 = layout.sections.iter().map(|s| s.enc_len).sum();
    assert_eq!(stats.raw_section_bytes + stats.encoded_section_bytes, sum);
    assert!(stats.raw_section_bytes > 0, "point data always stays raw");
    assert!(stats.encoded_section_bytes > 0, "offsets/prefix always compress");

    cleanup(&path);
}
