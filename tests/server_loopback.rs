//! CI gate: the serving layer over a real loopback socket.
//!
//! Pins the network determinism contract: responses decoded from the
//! wire are **byte-identical** to the in-process
//! `query_batch`/`query_topk_batch` calls on the same index — ids,
//! order, and `f64` distance bit patterns — regardless of how the
//! admission batcher slices concurrent traffic. Also exercises the
//! failure surface a third-party client will hit: error frames
//! (dimension mismatch, malformed body, unknown kind, bad version) and
//! oversized-request rejection.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use hybrid_lsh::prelude::*;
use hybrid_lsh::server::{
    spawn, Client, ClientError, ErrorCode, LiveLshService, QueryService, ServerConfig,
    ServerHandle, ShardNodeService, ShardedLshService,
};

const DIM: usize = 16;
const RADIUS: f64 = 1.5;

type Service = ShardedLshService<DenseDataset, PStableL2, L2>;

/// The standard fixture: a sharded frozen rNNR index + top-k ladder
/// over a fixed-seed mixture, the in-process reference outputs, and a
/// server on an ephemeral loopback port.
struct Fixture {
    service: Arc<Service>,
    queries: Vec<Vec<f32>>,
    server: ServerHandle,
}

fn fixture(config: ServerConfig) -> Fixture {
    let (data, _) = hybrid_lsh::datagen::benchmark_mixture(DIM, 3_000, RADIUS, 11);
    let queries: Vec<Vec<f32>> = (0..24).map(|i| data.row(i * 125).to_vec()).collect();
    let builder = |radius: f64| {
        IndexBuilder::new(PStableL2::new(DIM, 2.0 * radius), L2)
            .tables(10)
            .hash_len(5)
            .seed(11)
            .cost_model(CostModel::from_ratio(6.0))
    };
    let assignment = ShardAssignment::new(11, 2);
    let rnnr = ShardedIndex::build_frozen(data.clone(), assignment, builder(RADIUS));
    let topk =
        ShardedTopKIndex::build(data, assignment, RadiusSchedule::doubling(RADIUS, 3), |_, r| {
            builder(r)
        })
        .freeze();
    let service = Arc::new(ShardedLshService::new(rnnr, Some(topk), DIM));
    let server = spawn(Arc::clone(&service) as Arc<dyn QueryService>, "127.0.0.1:0", config)
        .expect("bind loopback");
    Fixture { service, queries, server }
}

fn connect(server: &ServerHandle) -> Client {
    Client::connect_retry(server.local_addr(), Duration::from_secs(10)).expect("connect")
}

#[test]
fn rnnr_responses_byte_identical_to_in_process_batch() {
    let mut fx = fixture(ServerConfig::default());
    let expect: Vec<Vec<u32>> = fx
        .service
        .rnnr_index()
        .query_batch(&fx.queries, RADIUS)
        .into_iter()
        .map(|o| o.ids)
        .collect();
    assert!(expect.iter().any(|ids| !ids.is_empty()), "fixture must produce non-trivial output");

    let mut client = connect(&fx.server);
    // The whole batch in one request, then the same queries one by one
    // over the reused connection: identical either way.
    assert_eq!(client.query_batch(&fx.queries, RADIUS).unwrap(), expect);
    for (qi, q) in fx.queries.iter().enumerate() {
        let one = client.query_batch(std::slice::from_ref(q), RADIUS).unwrap();
        assert_eq!(one, vec![expect[qi].clone()], "query {qi} diverged over the socket");
    }
    fx.server.shutdown();
}

#[test]
fn topk_responses_byte_identical_including_distance_bits() {
    let mut fx = fixture(ServerConfig::default());
    let k = 7;
    let expect = fx.service.topk_index().unwrap().query_topk_batch(&fx.queries, k);

    let mut client = connect(&fx.server);
    let got = client.query_topk_batch(&fx.queries, k).unwrap();
    assert_eq!(got.len(), expect.len());
    for (qi, (g, e)) in got.iter().zip(&expect).enumerate() {
        assert_eq!(g.len(), e.neighbors.len(), "query {qi} neighbor count");
        for (a, b) in g.iter().zip(&e.neighbors) {
            assert_eq!(a.0, b.id, "query {qi} id");
            assert_eq!(a.1.to_bits(), b.dist.to_bits(), "query {qi} distance bits");
        }
    }
    fx.server.shutdown();
}

#[test]
fn concurrent_clients_are_coalesced_without_changing_answers() {
    // A generous admission window guarantees genuinely concurrent
    // requests land in one tick, exercising the group/scatter path.
    let mut fx = fixture(ServerConfig {
        admission: hybrid_lsh::server::AdmissionWindow::Fixed(Duration::from_millis(20)),
        ..Default::default()
    });
    let expect: Vec<Vec<u32>> = fx
        .service
        .rnnr_index()
        .query_batch(&fx.queries, RADIUS)
        .into_iter()
        .map(|o| o.ids)
        .collect();
    let k = 5;
    let expect_topk = fx.service.topk_index().unwrap().query_topk_batch(&fx.queries, k);

    std::thread::scope(|scope| {
        for (qi, q) in fx.queries.iter().enumerate() {
            let addr = fx.server.local_addr();
            let expect_ids = &expect[qi];
            let expect_nb = &expect_topk[qi].neighbors;
            scope.spawn(move || {
                let mut client =
                    Client::connect_retry(addr, Duration::from_secs(10)).expect("connect");
                let ids = client.query_batch(std::slice::from_ref(q), RADIUS).unwrap();
                assert_eq!(&ids[0], expect_ids, "concurrent rnnr query {qi}");
                let nb = client.query_topk_batch(std::slice::from_ref(q), k).unwrap();
                assert_eq!(nb[0].len(), expect_nb.len());
                for (a, b) in nb[0].iter().zip(expect_nb) {
                    assert_eq!((a.0, a.1.to_bits()), (b.id, b.dist.to_bits()));
                }
            });
        }
    });

    let (ticks, admitted) = fx.server.batch_stats();
    assert_eq!(admitted, 2 * fx.queries.len() as u64);
    assert!(ticks >= 2, "at least one tick per request kind");
    assert!(
        ticks < admitted,
        "admission batcher never coalesced: {ticks} ticks for {admitted} requests"
    );
    fx.server.shutdown();
}

#[test]
fn info_and_error_frames() {
    let mut fx = fixture(ServerConfig::default());
    let mut client = connect(&fx.server);

    let info = client.info().unwrap();
    assert_eq!(info.points, 3_000);
    assert_eq!(info.dim, DIM as u32);
    assert_eq!(info.shards, 2);
    assert_eq!(info.topk_levels, 3);

    // Dimension mismatch → typed error frame, connection stays usable.
    let wrong = vec![vec![0.0f32; DIM + 3]];
    match client.query_batch(&wrong, RADIUS) {
        Err(ClientError::Server { code: ErrorCode::DimMismatch, message }) => {
            assert!(message.contains("16"), "diagnostic should name the index dim: {message}")
        }
        other => panic!("expected DimMismatch, got {other:?}"),
    }

    // A nonsensical radius is rejected as malformed.
    match client.query_batch(&[vec![0.0f32; DIM]], f64::NAN) {
        Err(ClientError::Server { code: ErrorCode::Malformed, .. }) => {}
        other => panic!("expected Malformed for NaN radius, got {other:?}"),
    }

    // An empty batch short-circuits to an empty response.
    assert_eq!(client.query_batch(&[], RADIUS).unwrap(), Vec::<Vec<u32>>::new());

    // The connection survived every error above.
    assert_eq!(client.info().unwrap().points, 3_000);
    fx.server.shutdown();
}

/// Speaks raw bytes to the server to exercise frame-level rejection.
fn raw_exchange(server: &ServerHandle, bytes: &[u8]) -> Vec<u8> {
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream.write_all(bytes).expect("write");
    // Half-close: the server drains our frames, replies, sees EOF and
    // closes, so read_to_end returns promptly with every response.
    stream.shutdown(std::net::Shutdown::Write).expect("half-close");
    let mut out = Vec::new();
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let _ = stream.read_to_end(&mut out);
    out
}

/// Decodes `(code, kind)` of the first frame in `bytes`, asserting it
/// is an error frame.
fn first_error_code(bytes: &[u8]) -> ErrorCode {
    assert!(bytes.len() >= 14, "expected at least one error frame, got {} bytes", bytes.len());
    assert_eq!(&bytes[4..8], b"HLSH");
    assert_eq!(bytes[9], 0x7F, "expected an error frame, kind was {:#04x}", bytes[9]);
    let code = u16::from_le_bytes([bytes[12], bytes[13]]);
    ErrorCode::from_u16(code).expect("valid error code")
}

#[test]
fn oversized_requests_are_rejected_and_connection_closed() {
    let mut fx = fixture(ServerConfig { max_frame_bytes: 4 * 1024, ..ServerConfig::default() });

    // Declare a frame far past the limit; send nothing else. The
    // server must answer TooLarge without reading the phantom payload,
    // then close (read_to_end returning proves the close).
    let mut evil = Vec::new();
    evil.extend_from_slice(&(50 * 1024 * 1024u32).to_le_bytes());
    let reply = raw_exchange(&fx.server, &evil);
    assert_eq!(first_error_code(&reply), ErrorCode::TooLarge);

    // A well-formed client on the same server still works after the
    // rejection.
    let mut client = connect(&fx.server);
    assert_eq!(client.info().unwrap().points, 3_000);
    fx.server.shutdown();
}

#[test]
fn frame_level_garbage_gets_typed_errors() {
    let mut fx = fixture(ServerConfig::default());

    // Valid length, wrong magic.
    let mut bad_magic = hybrid_lsh::server::Request::Info.encode();
    bad_magic[4] = b'X';
    assert_eq!(first_error_code(&raw_exchange(&fx.server, &bad_magic)), ErrorCode::BadMagic);

    // Unsupported version.
    let mut bad_version = hybrid_lsh::server::Request::Info.encode();
    bad_version[8] = 9;
    assert_eq!(first_error_code(&raw_exchange(&fx.server, &bad_version)), ErrorCode::BadVersion);

    // Unknown kind: recoverable — the server answers and keeps the
    // connection; a follow-up Info on the same socket must succeed.
    let mut unknown = hybrid_lsh::server::Request::Info.encode();
    unknown[9] = 0x5A;
    let mut follow_up = unknown.clone();
    follow_up[9] = 0x03; // Info
    let mut both = unknown;
    both.extend_from_slice(&follow_up);
    let reply = raw_exchange(&fx.server, &both);
    assert_eq!(first_error_code(&reply), ErrorCode::UnknownKind);
    // The second frame in the reply stream is the Info response.
    let first_len = 4 + u32::from_le_bytes(reply[0..4].try_into().unwrap()) as usize;
    assert!(reply.len() > first_len, "no second response after recoverable error");
    assert_eq!(reply[first_len + 9], 0x83, "expected INFO_RESP after recoverable error");

    // Truncated body: declared rNNR frame whose body is empty.
    let mut malformed = hybrid_lsh::server::Request::Info.encode();
    malformed[9] = 0x01; // RNNR with no radius/block
    assert_eq!(first_error_code(&raw_exchange(&fx.server, &malformed)), ErrorCode::Malformed);

    // A frame declaring len < 8 leaves its declared bytes unread, so
    // the server must answer Malformed and CLOSE — if it kept reading,
    // the phantom bytes would desync the stream and the trailing valid
    // Info frame would be misparsed instead of ignored.
    let mut desync = Vec::new();
    desync.extend_from_slice(&4u32.to_le_bytes());
    desync.extend_from_slice(&[0xAA; 4]);
    desync.extend_from_slice(&hybrid_lsh::server::Request::Info.encode());
    let reply = raw_exchange(&fx.server, &desync);
    assert_eq!(first_error_code(&reply), ErrorCode::Malformed);
    let first_len = 4 + u32::from_le_bytes(reply[0..4].try_into().unwrap()) as usize;
    assert_eq!(reply.len(), first_len, "connection must close after a too-short frame");

    fx.server.shutdown();
}

// ---------------------------------------------------------------------
// Living index over the wire: Insert/Delete frames against a
// `LiveLshService`, the post-churn byte-identity contract, and the
// mutation failure surface.
// ---------------------------------------------------------------------

const LIVE_N: usize = 1_200;

fn live_builder(radius: f64) -> IndexBuilder<PStableL2, L2> {
    IndexBuilder::new(PStableL2::new(DIM, 2.0 * radius), L2)
        .tables(10)
        .hash_len(5)
        .seed(11)
        .cost_model(CostModel::from_ratio(6.0))
}

/// A segmented (mutable) fixture: rNNR index + top-k ladder served by
/// a [`LiveLshService`], plus the corpus for insert vectors and
/// rebuild oracles.
struct LiveFixture {
    data: DenseDataset,
    queries: Vec<Vec<f32>>,
    server: ServerHandle,
}

fn live_fixture() -> LiveFixture {
    let (data, _) = hybrid_lsh::datagen::benchmark_mixture(DIM, LIVE_N, RADIUS, 11);
    let queries: Vec<Vec<f32>> = (0..16).map(|i| data.row(i * 75).to_vec()).collect();
    let assignment = ShardAssignment::new(11, 2);
    let ids: Vec<PointId> = (0..LIVE_N as PointId).collect();
    let rnnr = SegmentedIndex::build_bulk(data.clone(), &ids, assignment, live_builder(RADIUS));
    let topk = SegmentedTopKIndex::build_bulk(
        data.clone(),
        &ids,
        assignment,
        RadiusSchedule::doubling(RADIUS, 3),
        |_, r| live_builder(r),
    );
    let service = Arc::new(LiveLshService::new(rnnr, Some(topk)));
    let server = spawn(
        Arc::clone(&service) as Arc<dyn QueryService>,
        "127.0.0.1:0",
        ServerConfig::default(),
    )
    .expect("bind loopback");
    LiveFixture { data, queries, server }
}

#[test]
fn live_mutations_keep_answers_byte_identical_to_rebuild() {
    let mut fx = live_fixture();
    let mut client = connect(&fx.server);
    assert_eq!(client.info().unwrap().points, LIVE_N as u64);

    // Delete a spread of original ids, insert fresh points (corpus
    // rows under new ids), and mirror both locally.
    let deleted: Vec<PointId> = (0..LIVE_N as PointId).step_by(9).collect();
    assert_eq!(client.delete_batch(&deleted).unwrap(), deleted.len() as u32);
    let fresh_ids: Vec<PointId> = (0..40).map(|i| LIVE_N as PointId + i).collect();
    let fresh_points: Vec<Vec<f32>> = (0..40).map(|i| fx.data.row(i * 7 + 3).to_vec()).collect();
    assert_eq!(client.insert_batch(&fresh_ids, &fresh_points).unwrap(), 40);
    assert_eq!(
        client.info().unwrap().points,
        (LIVE_N - deleted.len() + 40) as u64,
        "info must reflect the mutated live count"
    );

    // The survivors, as a rebuild-from-scratch oracle.
    let dead: std::collections::HashSet<PointId> = deleted.iter().copied().collect();
    let mut survivors: Vec<(PointId, Vec<f32>)> = (0..LIVE_N as PointId)
        .filter(|id| !dead.contains(id))
        .map(|id| (id, fx.data.row(id as usize).to_vec()))
        .collect();
    survivors.extend(fresh_ids.iter().copied().zip(fresh_points.iter().cloned()));
    let ids: Vec<PointId> = survivors.iter().map(|(id, _)| *id).collect();
    let surviving = DenseDataset::from_rows(DIM, survivors.iter().map(|(_, p)| p.as_slice()));
    let assignment = ShardAssignment::new(11, 2);
    let oracle =
        SegmentedIndex::build_bulk(surviving.clone(), &ids, assignment, live_builder(RADIUS));
    let oracle_topk = SegmentedTopKIndex::build_bulk(
        surviving,
        &ids,
        assignment,
        RadiusSchedule::doubling(RADIUS, 3),
        |_, r| live_builder(r),
    );

    // Post-churn answers over the wire: byte-identical to the rebuild.
    let served = client.query_batch(&fx.queries, RADIUS).unwrap();
    let mut engine = SegmentedQueryEngine::new();
    let mut nonempty = 0;
    for (qi, (got, q)) in served.iter().zip(&fx.queries).enumerate() {
        let want = engine.query(&oracle, q, RADIUS).ids;
        assert_eq!(got, &want, "post-churn rNNR query {qi} diverged from the rebuild");
        nonempty += usize::from(!want.is_empty());
    }
    assert!(nonempty > 0, "fixture must produce non-trivial post-churn output");

    let k = 6;
    let served = client.query_topk_batch(&fx.queries, k).unwrap();
    let mut engine = SegmentedTopKEngine::new();
    for (qi, (got, q)) in served.iter().zip(&fx.queries).enumerate() {
        let want = engine.query_topk(&oracle_topk, q, k).neighbors;
        assert_eq!(got.len(), want.len(), "post-churn top-k query {qi} neighbor count");
        for (a, b) in got.iter().zip(&want) {
            assert_eq!(a.0, b.id, "post-churn top-k query {qi} id");
            assert_eq!(a.1.to_bits(), b.dist.to_bits(), "post-churn top-k query {qi} bits");
        }
    }
    fx.server.shutdown();
}

#[test]
fn mutation_error_frames_are_recoverable_and_all_or_nothing() {
    let mut fx = live_fixture();
    let mut client = connect(&fx.server);
    let fresh = LIVE_N as PointId + 1_000;
    let point = fx.data.row(0).to_vec();

    // Wrong dimensionality → typed error, nothing applied.
    match client.insert_batch(&[fresh], &[vec![0.0f32; DIM + 1]]) {
        Err(ClientError::Server { code: ErrorCode::DimMismatch, message }) => {
            assert!(message.contains("16"), "diagnostic should name the index dim: {message}")
        }
        other => panic!("expected DimMismatch, got {other:?}"),
    }

    // Inserting a live id → DuplicateId; the batch's fresh id must NOT
    // have been applied (all-or-nothing), so inserting it afterwards
    // succeeds.
    match client.insert_batch(&[fresh, 0], &[point.clone(), point.clone()]) {
        Err(ClientError::Server { code: ErrorCode::DuplicateId, message }) => {
            assert!(message.contains('0'), "diagnostic should name the id: {message}")
        }
        other => panic!("expected DuplicateId, got {other:?}"),
    }
    assert_eq!(client.info().unwrap().points, LIVE_N as u64, "failed batch must not apply");
    assert_eq!(client.insert_batch(&[fresh], std::slice::from_ref(&point)).unwrap(), 1);

    // An id repeated within one batch is also DuplicateId.
    let (a, b) = (fresh + 1, fresh + 1);
    match client.insert_batch(&[a, b], &[point.clone(), point.clone()]) {
        Err(ClientError::Server { code: ErrorCode::DuplicateId, .. }) => {}
        other => panic!("expected DuplicateId for a repeated id, got {other:?}"),
    }

    // Deleting a never-inserted id → UnknownId; pairing it with a live
    // id must leave the live id alive (all-or-nothing again).
    match client.delete_batch(&[3, fresh + 77]) {
        Err(ClientError::Server { code: ErrorCode::UnknownId, message }) => {
            assert!(message.contains(&(fresh + 77).to_string()), "{message}")
        }
        other => panic!("expected UnknownId, got {other:?}"),
    }
    // A duplicate delete within one batch fails the same way: the
    // second occurrence is no longer live.
    match client.delete_batch(&[3, 3]) {
        Err(ClientError::Server { code: ErrorCode::UnknownId, .. }) => {}
        other => panic!("expected UnknownId for a duplicate delete, got {other:?}"),
    }
    // Delete-then-reinsert on one connection: both succeed.
    assert_eq!(client.delete_batch(&[3]).unwrap(), 1);
    assert_eq!(client.insert_batch(&[3], &[fx.data.row(3).to_vec()]).unwrap(), 1);

    // Truncated mutation bodies over the raw socket → Malformed.
    let mut empty_insert = hybrid_lsh::server::Request::Info.encode();
    empty_insert[9] = 0x04; // INSERT with no body
    assert_eq!(first_error_code(&raw_exchange(&fx.server, &empty_insert)), ErrorCode::Malformed);
    let mut empty_delete = hybrid_lsh::server::Request::Info.encode();
    empty_delete[9] = 0x05; // DELETE with no body
    assert_eq!(first_error_code(&raw_exchange(&fx.server, &empty_delete)), ErrorCode::Malformed);

    // The connection survived every recoverable error above and the
    // index reflects exactly the acked mutations (+1 for `fresh`).
    assert_eq!(client.info().unwrap().points, LIVE_N as u64 + 1);
    fx.server.shutdown();
}

#[test]
fn frozen_and_shard_deployments_refuse_mutation_with_typed_errors() {
    // A frozen standalone server: mutation is Unsupported, and the
    // connection keeps serving queries afterwards.
    let mut fx = fixture(ServerConfig::default());
    let mut client = connect(&fx.server);
    match client.insert_batch(&[9_999], &[vec![0.0f32; DIM]]) {
        Err(ClientError::Server { code: ErrorCode::Unsupported, message }) => {
            assert!(message.contains("--live"), "should point at the living mode: {message}")
        }
        other => panic!("expected Unsupported from a frozen server, got {other:?}"),
    }
    match client.delete_batch(&[0]) {
        Err(ClientError::Server { code: ErrorCode::Unsupported, .. }) => {}
        other => panic!("expected Unsupported from a frozen server, got {other:?}"),
    }
    assert_eq!(client.info().unwrap().points, 3_000);
    fx.server.shutdown();

    // A shard node refuses too — mutating one shard behind a
    // coordinator's back would desync the fleet.
    let (data, _) = hybrid_lsh::datagen::benchmark_mixture(DIM, 600, RADIUS, 11);
    let assignment = ShardAssignment::new(11, 2);
    let rnnr = ShardedIndex::build_frozen(data, assignment, live_builder(RADIUS));
    let shard_node = Arc::new(ShardNodeService::new(ShardedLshService::new(rnnr, None, DIM), 0));
    let mut server =
        spawn(shard_node as Arc<dyn QueryService>, "127.0.0.1:0", ServerConfig::default())
            .expect("bind loopback");
    let mut client = Client::connect_retry(server.local_addr(), Duration::from_secs(10)).unwrap();
    match client.insert_batch(&[9_999], &[vec![0.0f32; DIM]]) {
        Err(ClientError::Server { code: ErrorCode::Unsupported, message }) => {
            assert!(message.contains("shard"), "should explain the refusal: {message}")
        }
        other => panic!("expected Unsupported from a shard node, got {other:?}"),
    }
    match client.delete_batch(&[0]) {
        Err(ClientError::Server { code: ErrorCode::Unsupported, .. }) => {}
        other => panic!("expected Unsupported from a shard node, got {other:?}"),
    }
    assert_eq!(client.info().unwrap().points, 600);
    server.shutdown();
}
