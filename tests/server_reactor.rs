//! CI gate: the readiness-driven event loop's connection handling.
//!
//! `tests/server_loopback.rs` pins *what* the server answers (the
//! byte-identity determinism contract); this file pins *how* the
//! reactor gets there under adversarial socket conditions:
//!
//! * partial reads — a request split at **every** byte offset, with a
//!   pause between the halves, must produce a byte-identical response;
//! * pipelining — many requests concatenated into one write come back
//!   as the concatenation of their individual responses, in order;
//! * connection limits — an over-limit connect receives a typed
//!   [`ErrorCode::Busy`] frame and EOF while existing clients keep
//!   working;
//! * idle eviction — a client stalled mid-frame is evicted after the
//!   idle timeout (the slow-loris defence);
//! * request deadlines — an expired request gets an
//!   [`ErrorCode::Deadline`] frame and the connection survives to
//!   serve later requests.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use hybrid_lsh::prelude::*;
use hybrid_lsh::server::{
    spawn, Client, ClientError, ErrorCode, QueryBlock, QueryService, Request, ServerConfig,
    ServerHandle, ShardedLshService,
};

const DIM: usize = 8;
const RADIUS: f64 = 1.2;

type Service = ShardedLshService<DenseDataset, PStableL2, L2>;

/// A small sharded fixture — these tests exercise connection
/// machinery, not query quality, so the corpus stays tiny.
struct Fixture {
    queries: Vec<Vec<f32>>,
    server: ServerHandle,
}

fn fixture(config: ServerConfig) -> Fixture {
    let (data, _) = hybrid_lsh::datagen::benchmark_mixture(DIM, 600, RADIUS, 5);
    let queries: Vec<Vec<f32>> = (0..8).map(|i| data.row(i * 75).to_vec()).collect();
    let index = ShardedIndex::build_frozen(
        data,
        ShardAssignment::new(5, 2),
        IndexBuilder::new(PStableL2::new(DIM, 2.0 * RADIUS), L2)
            .tables(8)
            .hash_len(4)
            .seed(5)
            .cost_model(CostModel::from_ratio(6.0)),
    );
    let service: Arc<Service> = Arc::new(ShardedLshService::new(index, None, DIM));
    let server = spawn(service as Arc<dyn QueryService>, "127.0.0.1:0", config).expect("bind");
    Fixture { queries, server }
}

fn rnnr_frame(query: &[f32]) -> Vec<u8> {
    Request::Rnnr { radius: RADIUS, queries: QueryBlock::pack(&[query.to_vec()], DIM) }.encode()
}

/// Writes `bytes`, half-closes, reads everything the server answers.
fn raw_exchange(server: &ServerHandle, bytes: &[u8]) -> Vec<u8> {
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream.write_all(bytes).expect("write");
    stream.shutdown(std::net::Shutdown::Write).expect("half-close");
    let mut out = Vec::new();
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    stream.read_to_end(&mut out).expect("read replies");
    out
}

/// Asserts the first frame in `bytes` is an error frame, returning its
/// code.
fn first_error_code(bytes: &[u8]) -> ErrorCode {
    assert!(bytes.len() >= 14, "expected at least one error frame, got {} bytes", bytes.len());
    assert_eq!(&bytes[4..8], b"HLSH");
    assert_eq!(bytes[9], 0x7F, "expected an error frame, kind was {:#04x}", bytes[9]);
    ErrorCode::from_u16(u16::from_le_bytes([bytes[12], bytes[13]])).expect("valid error code")
}

#[test]
fn request_split_at_every_byte_offset_decodes_identically() {
    let mut fx = fixture(ServerConfig::default());
    let frame = rnnr_frame(&fx.queries[0]);
    let expect = raw_exchange(&fx.server, &frame);
    assert!(!expect.is_empty(), "reference exchange produced no reply");

    // Split the frame at every interior byte boundary with a pause in
    // between, forcing the decoder through two (or more) partial reads
    // whose cut lands inside the length prefix, the header, and the
    // body. The reply must be byte-identical every time.
    for split in 1..frame.len() {
        let mut stream = TcpStream::connect(fx.server.local_addr()).expect("connect");
        stream.write_all(&frame[..split]).expect("first half");
        stream.flush().unwrap();
        std::thread::sleep(Duration::from_millis(1));
        stream.write_all(&frame[split..]).expect("second half");
        stream.shutdown(std::net::Shutdown::Write).expect("half-close");
        let mut got = Vec::new();
        stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        stream.read_to_end(&mut got).expect("read reply");
        assert_eq!(got, expect, "split at byte {split} changed the response");
    }
    fx.server.shutdown();
}

#[test]
fn pipelined_requests_answer_in_request_order() {
    let mut fx = fixture(ServerConfig::default());

    // Reference: each request exchanged alone.
    let frames: Vec<Vec<u8>> = fx.queries.iter().map(|q| rnnr_frame(q)).collect();
    let info = Request::Info.encode();
    let singles: Vec<Vec<u8>> = frames.iter().map(|f| raw_exchange(&fx.server, f)).collect();
    let info_reply = raw_exchange(&fx.server, &info);

    // All requests (queries interleaved with an Info) in ONE write.
    // The reply stream must be the exact concatenation of the solo
    // replies, in request order — the slot queue may fill out of
    // order internally, but never releases out of order.
    let mut pipelined = Vec::new();
    let mut expect = Vec::new();
    for (f, s) in frames.iter().zip(&singles) {
        pipelined.extend_from_slice(f);
        pipelined.extend_from_slice(&info);
        expect.extend_from_slice(s);
        expect.extend_from_slice(&info_reply);
    }
    let got = raw_exchange(&fx.server, &pipelined);
    assert_eq!(got, expect, "pipelined replies diverged from solo replies");
    fx.server.shutdown();
}

#[test]
fn over_limit_connection_gets_busy_frame_and_eof() {
    let mut fx = fixture(ServerConfig { max_connections: 1, ..ServerConfig::default() });

    // Occupy the only slot and prove it works.
    let mut first = Client::connect_retry(fx.server.local_addr(), Duration::from_secs(10))
        .expect("first connect");
    assert_eq!(first.info().expect("first client serves").points, 600);

    // The second connection must be answered with a Busy frame and
    // closed. Only read — writing would race the server's close into
    // an RST that could discard the Busy frame in flight.
    let mut second = TcpStream::connect(fx.server.local_addr()).expect("second connect");
    second.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let mut reply = Vec::new();
    second.read_to_end(&mut reply).expect("read busy + EOF");
    assert_eq!(first_error_code(&reply), ErrorCode::Busy);
    let frame_len = 4 + u32::from_le_bytes(reply[0..4].try_into().unwrap()) as usize;
    assert_eq!(reply.len(), frame_len, "connection must close right after the Busy frame");
    assert_eq!(fx.server.stats().rejected_busy, 1);

    // The admitted client is unaffected.
    assert_eq!(first.info().expect("first client still serves").points, 600);
    fx.server.shutdown();
}

#[test]
fn stalled_half_written_client_is_evicted_by_idle_timeout() {
    let mut fx = fixture(ServerConfig {
        idle_timeout: Some(Duration::from_millis(300)),
        ..ServerConfig::default()
    });

    // Dribble half a frame, then stall — the classic slow-loris shape.
    // The server must evict us: EOF, no reply, within a few timeouts.
    let frame = rnnr_frame(&fx.queries[0]);
    let mut stream = TcpStream::connect(fx.server.local_addr()).expect("connect");
    stream.write_all(&frame[..frame.len() / 2]).expect("half a frame");
    stream.flush().unwrap();

    let start = Instant::now();
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let mut out = Vec::new();
    stream.read_to_end(&mut out).expect("EOF from eviction");
    assert!(out.is_empty(), "evicted connection must not receive a reply, got {out:?}");
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "eviction took {:?}, far beyond the 300ms idle timeout",
        start.elapsed()
    );
    assert_eq!(fx.server.stats().evicted_idle, 1);
    fx.server.shutdown();
}

#[test]
fn expired_deadline_answers_deadline_frame_and_connection_survives() {
    // A 100ms fixed admission window with a 1ms deadline guarantees
    // every batched request expires before the batcher drains it.
    let mut fx = fixture(ServerConfig {
        admission: hybrid_lsh::server::AdmissionWindow::Fixed(Duration::from_millis(100)),
        request_deadline: Some(Duration::from_millis(1)),
        ..ServerConfig::default()
    });

    let mut client =
        Client::connect_retry(fx.server.local_addr(), Duration::from_secs(10)).expect("connect");
    match client.query_batch(std::slice::from_ref(&fx.queries[0]), RADIUS) {
        Err(ClientError::Server { code: ErrorCode::Deadline, .. }) => {}
        other => panic!("expected Deadline error frame, got {other:?}"),
    }
    assert!(fx.server.stats().expired_deadlines >= 1);

    // Per-request verdict, not a connection verdict: the same socket
    // keeps serving (Info bypasses the batcher, so no deadline).
    assert_eq!(client.info().expect("connection survived the deadline").points, 600);
    fx.server.shutdown();
}
