//! Living-index equivalence: an arbitrary interleaving of insert /
//! delete / flush / merge / query operations on a [`SegmentedIndex`]
//! (and its [`SegmentedTopKIndex`] twin) must answer **byte-identically**
//! to an index rebuilt from scratch on the surviving points — same
//! rNNR id sets, same executed arm, same S1 collision counts, same S2
//! estimate bits, same top-k `(distance, id)` rankings — across shard
//! counts {1, 2, 4}, kernel and scalar verification, and both LSM
//! extremes (flush-after-every-op with aggressive merging, and
//! never-flush so everything stays in the memtables).

use hybrid_lsh::prelude::*;
use proptest::prelude::*;

// Both globs export a `Strategy`; the index's enum is the one we mean.
use hybrid_lsh::Strategy;

const DIM: usize = 8;
const RADIUS: f64 = 1.3;
const SHARD_COUNTS: [usize; 3] = [1, 2, 4];
/// `(flush_threshold, max_segments)`: the first flushes after every
/// mutation and keeps at most two segments (so merges fire
/// constantly); the second never flushes, leaving every point in the
/// memtables.
const LSM_LIMITS: [(usize, usize); 2] = [(1, 2), (usize::MAX, usize::MAX)];

fn pool(seed: u64) -> DenseDataset {
    let (data, _) = hybrid_lsh::datagen::benchmark_mixture(DIM, 512, RADIUS, seed);
    data
}

fn rnnr_builder(seed: u64) -> IndexBuilder<PStableL2, L2> {
    IndexBuilder::new(PStableL2::new(DIM, 2.0 * RADIUS), L2)
        .tables(6)
        .hash_len(4)
        .seed(seed)
        .cost_model(CostModel::from_ratio(4.0))
}

fn level_builder(seed: u64, r: f64) -> IndexBuilder<PStableL2, L2> {
    IndexBuilder::new(PStableL2::new(DIM, 2.0 * r), L2)
        .tables(6)
        .hash_len(4)
        .seed(seed)
        .cost_model(CostModel::from_ratio(4.0))
}

/// The mutated index must answer exactly like `build_bulk` over its
/// surviving `(id, point)` set, for every strategy × verify mode.
fn assert_rnnr_matches_rebuild(
    index: &SegmentedIndex<PStableL2, L2>,
    live: &[(PointId, Vec<f32>)],
    seed: u64,
    queries: &[Vec<f32>],
    context: &str,
) {
    let ids: Vec<PointId> = live.iter().map(|(id, _)| *id).collect();
    let data = DenseDataset::from_rows(DIM, live.iter().map(|(_, p)| p.as_slice()));
    let oracle = SegmentedIndex::build_bulk(data, &ids, index.assignment(), rnnr_builder(seed));
    assert_eq!(index.len(), oracle.len(), "{context}: live count");
    for (qi, q) in queries.iter().enumerate() {
        for strategy in Strategy::ALL {
            for verify in [VerifyMode::Kernel, VerifyMode::Scalar] {
                let mut engine = SegmentedQueryEngine::with_verify_mode(verify);
                let got = engine.query_with_strategy(index, q, RADIUS, strategy);
                let mut oracle_engine = SegmentedQueryEngine::with_verify_mode(verify);
                let want = oracle_engine.query_with_strategy(&oracle, q, RADIUS, strategy);
                let tag = format!("{context} q={qi} {strategy} {verify:?}");
                assert_eq!(got.ids, want.ids, "{tag}: ids");
                assert_eq!(got.report.executed, want.report.executed, "{tag}: arm");
                assert_eq!(got.report.collisions, want.report.collisions, "{tag}: S1");
                assert_eq!(
                    got.report.cand_size_estimate.to_bits(),
                    want.report.cand_size_estimate.to_bits(),
                    "{tag}: S2"
                );
                assert_eq!(
                    got.report.cand_size_actual, want.report.cand_size_actual,
                    "{tag}: distinct candidates"
                );
            }
        }
    }
}

/// Same contract for the ladder: byte-identical `TopKOutput` (the
/// `PartialEq` impl covers neighbor distance bits and the walk report
/// minus wall time) under both verify modes.
fn assert_topk_matches_rebuild(
    index: &SegmentedTopKIndex<PStableL2, L2>,
    live: &[(PointId, Vec<f32>)],
    seed: u64,
    schedule: RadiusSchedule,
    queries: &[Vec<f32>],
    k: usize,
    context: &str,
) {
    let ids: Vec<PointId> = live.iter().map(|(id, _)| *id).collect();
    let data = DenseDataset::from_rows(DIM, live.iter().map(|(_, p)| p.as_slice()));
    let oracle =
        SegmentedTopKIndex::build_bulk(data, &ids, index.assignment(), schedule, |_, r| {
            level_builder(seed, r)
        });
    for (qi, q) in queries.iter().enumerate() {
        for verify in [VerifyMode::Kernel, VerifyMode::Scalar] {
            let mut engine = SegmentedTopKEngine::with_verify_mode(verify);
            let got = engine.query_topk(index, q, k);
            let mut oracle_engine = SegmentedTopKEngine::with_verify_mode(verify);
            let want = oracle_engine.query_topk(&oracle, q, k);
            assert_eq!(got, want, "{context} q={qi} k={k} {verify:?}: top-k output");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The tentpole gate: seed a corpus, apply a random op tape
    /// (inserts of fresh points, reinserts of previously deleted ids,
    /// deletes, whole-index and single-shard flushes and merges,
    /// mid-tape query checkpoints), and demand rebuild-equivalence at
    /// every checkpoint and at the end — for the rNNR index and the
    /// top-k ladder in lockstep.
    #[test]
    fn interleaved_mutations_match_rebuild(
        seed in 0u64..200,
        shard_idx in 0usize..3,
        limit_idx in 0usize..2,
        ops in proptest::collection::vec((0u8..16, 0usize..4096), 1..32),
    ) {
        let shards = SHARD_COUNTS[shard_idx];
        let (flush_threshold, max_segments) = LSM_LIMITS[limit_idx];
        let assignment = ShardAssignment::new(seed ^ 0x3C, shards);
        let points = pool(seed);
        let schedule = RadiusSchedule::doubling(0.9, 3);

        let mut index = SegmentedIndex::with_limits(
            DIM, assignment, rnnr_builder(seed), flush_threshold, max_segments,
        );
        let mut topk = SegmentedTopKIndex::with_limits(
            DIM, assignment, schedule, |_, r| level_builder(seed, r),
            flush_threshold, max_segments,
        );

        // The mirror the rebuild oracle is computed from, plus the
        // graveyard reinserts draw on.
        let mut live: Vec<(PointId, Vec<f32>)> = Vec::new();
        let mut dead: Vec<(PointId, Vec<f32>)> = Vec::new();
        let mut next_id: PointId = 0;
        let insert = |index: &mut SegmentedIndex<PStableL2, L2>,
                          topk: &mut SegmentedTopKIndex<PStableL2, L2>,
                          live: &mut Vec<(PointId, Vec<f32>)>,
                          id: PointId,
                          p: Vec<f32>| {
            index.insert(id, &p).expect("fresh insert");
            topk.insert(id, &p).expect("fresh insert (topk)");
            live.push((id, p));
        };

        // Seed corpus so early checkpoints already exercise both arms.
        for i in 0..96usize {
            let p = points.row(i).to_vec();
            insert(&mut index, &mut topk, &mut live, next_id, p);
            next_id += 1;
        }

        let queries: Vec<Vec<f32>> =
            (0..points.len()).step_by(97).map(|i| points.row(i).to_vec()).collect();
        let mut checkpoint = 0usize;
        for &(op, sel) in &ops {
            match op {
                // Half the tape inserts fresh points: the corpus grows.
                0..=7 => {
                    let p = points.row(sel % points.len()).to_vec();
                    insert(&mut index, &mut topk, &mut live, next_id, p);
                    next_id += 1;
                }
                // Reinsert of a previously deleted id (tombstone must
                // not shadow the new incarnation).
                8 => {
                    if !dead.is_empty() {
                        let (id, p) = dead.swap_remove(sel % dead.len());
                        insert(&mut index, &mut topk, &mut live, id, p);
                    }
                }
                9..=11 => {
                    if live.len() > 1 {
                        let (id, p) = live.swap_remove(sel % live.len());
                        index.delete(id).expect("delete of a live id");
                        topk.delete(id).expect("delete of a live id (topk)");
                        dead.push((id, p));
                    }
                }
                12 => {
                    index.flush();
                    topk.flush();
                }
                13 => {
                    let si = sel % shards;
                    index.flush_shard(si);
                    topk.flush_shard(si);
                }
                14 => {
                    index.compact();
                    topk.compact();
                }
                // Mid-tape checkpoint — including queries issued while
                // only some shards have been flushed or merged.
                15 => {
                    checkpoint += 1;
                    let ctx = format!(
                        "checkpoint {checkpoint} shards={shards} limits={flush_threshold}/{max_segments}"
                    );
                    assert_rnnr_matches_rebuild(&index, &live, seed, &queries[..2], &ctx);
                    assert_topk_matches_rebuild(
                        &topk, &live, seed, schedule, &queries[..2], 5, &ctx,
                    );
                }
                _ => unreachable!("op range is 0..16"),
            }
        }

        let ctx = format!(
            "final shards={shards} limits={flush_threshold}/{max_segments} ops={}", ops.len()
        );
        assert_rnnr_matches_rebuild(&index, &live, seed, &queries, &ctx);
        assert_topk_matches_rebuild(&topk, &live, seed, schedule, &queries, 7, &ctx);
    }
}
