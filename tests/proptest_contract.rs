//! Property-based tests of the rNNR contract across random data sets,
//! radii and parameters: whatever the configuration, the index must
//! never report a far point, the linear arm must be exact, and both
//! arms must agree with brute force up to the allowed failure
//! probability.

use hybrid_lsh::prelude::*;
use proptest::collection::vec;
use proptest::prelude::*;

// Both globs export a `Strategy`; the index's enum is the one we mean.
use hybrid_lsh::Strategy;

fn brute_force(data: &DenseDataset, q: &[f32], r: f64) -> Vec<u32> {
    (0..data.len() as u32)
        .filter(|&i| hybrid_lsh::vec::dense::l2(data.row(i as usize), q) <= r)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Precision is always exactly 1: every reported id is within r.
    #[test]
    fn never_reports_far_points(
        points in vec(vec(-10.0f32..10.0, 4), 20..120),
        qx in -10.0f32..10.0,
        r in 0.1f64..20.0,
        seed in 0u64..1000,
    ) {
        let data = DenseDataset::from_rows(4, points.iter().map(|p| {
            let mut a = [0.0f32; 4];
            a.copy_from_slice(p);
            a
        }));
        let q = [qx, 0.0, 1.0, -1.0];
        let index = IndexBuilder::new(PStableL2::new(4, (r).max(0.5)), L2)
            .tables(6)
            .hash_len(3)
            .seed(seed)
            .cost_model(CostModel::from_ratio(2.0))
            .build(data);
        let out = index.query(&q, r);
        for &id in &out.ids {
            let d = hybrid_lsh::vec::dense::l2(index.data().row(id as usize), &q);
            prop_assert!(d <= r + 1e-9, "id {id} at distance {d} > {r}");
        }
        // No duplicates in the output.
        let mut sorted = out.ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), out.ids.len());
    }

    /// The linear strategy equals brute force exactly, independent of
    /// any LSH parameter.
    #[test]
    fn linear_strategy_is_brute_force(
        points in vec(vec(-5.0f32..5.0, 3), 10..80),
        r in 0.1f64..10.0,
        k in 1usize..6,
        l in 1usize..8,
    ) {
        let data = DenseDataset::from_rows(3, points.iter().map(|p| {
            let mut a = [0.0f32; 3];
            a.copy_from_slice(p);
            a
        }));
        let q = [0.0f32, 0.0, 0.0];
        let expected = brute_force(&data, &q, r);
        let index = IndexBuilder::new(PStableL2::new(3, 1.0), L2)
            .tables(l)
            .hash_len(k)
            .seed(1)
            .cost_model(CostModel::from_ratio(1.0))
            .build(data);
        let mut got = index.query_with_strategy(&q, r, Strategy::LinearOnly).ids;
        got.sort_unstable();
        prop_assert_eq!(got, expected);
    }

    /// Points identical to the query are reported with certainty by
    /// every strategy (they collide in every table).
    #[test]
    fn exact_duplicates_always_reported(
        dup_count in 1usize..20,
        noise in vec(vec(5.0f32..50.0, 3), 5..40),
        strategy_idx in 0usize..3,
    ) {
        let q = [1.0f32, 2.0, 3.0];
        let mut data = DenseDataset::new(3);
        for _ in 0..dup_count {
            data.push(&q);
        }
        for p in &noise {
            let mut a = [0.0f32; 3];
            a.copy_from_slice(p);
            data.push(&a);
        }
        let index = IndexBuilder::new(PStableL2::new(3, 2.0), L2)
            .tables(5)
            .hash_len(4)
            .seed(3)
            .cost_model(CostModel::from_ratio(1.0))
            .build(data);
        let strategy = Strategy::ALL[strategy_idx];
        let out = index.query_with_strategy(&q, 0.0, strategy);
        prop_assert_eq!(out.ids.len(), dup_count, "strategy {}", strategy);
        prop_assert!(out.ids.iter().all(|&id| (id as usize) < dup_count));
    }

    /// The hybrid report is internally consistent.
    #[test]
    fn report_invariants(
        points in vec(vec(-3.0f32..3.0, 3), 20..100),
        r in 0.5f64..5.0,
    ) {
        let data = DenseDataset::from_rows(3, points.iter().map(|p| {
            let mut a = [0.0f32; 3];
            a.copy_from_slice(p);
            a
        }));
        let q = [0.0f32, 1.0, 0.0];
        let index = IndexBuilder::new(PStableL2::new(3, 2.0), L2)
            .tables(6)
            .hash_len(3)
            .seed(5)
            .cost_model(CostModel::from_ratio(3.0))
            .build(data);
        let out = index.query(&q, r);
        let rep = &out.report;
        prop_assert_eq!(rep.output_size, out.ids.len());
        prop_assert!(rep.cand_size_estimate >= 0.0);
        if let Some(actual) = rep.cand_size_actual {
            // Candidates are a subset of all collisions.
            prop_assert!(actual <= rep.collisions);
            // Output points all passed the distance filter on candidates.
            prop_assert!(rep.output_size <= actual);
        }
        prop_assert!(rep.total_nanos >= rep.hll_nanos);
    }

    /// Larger radii never shrink the linear-arm output (monotonicity).
    #[test]
    fn output_monotone_in_radius(
        points in vec(vec(-5.0f32..5.0, 2), 10..60),
        r1 in 0.1f64..3.0,
        dr in 0.0f64..3.0,
    ) {
        let data = DenseDataset::from_rows(2, points.iter().map(|p| {
            let mut a = [0.0f32; 2];
            a.copy_from_slice(p);
            a
        }));
        let q = [0.0f32, 0.0];
        let index = IndexBuilder::new(PStableL2::new(2, 1.0), L2)
            .tables(4)
            .hash_len(2)
            .seed(7)
            .cost_model(CostModel::from_ratio(1.0))
            .build(data);
        let small = index.query_with_strategy(&q, r1, Strategy::LinearOnly).ids.len();
        let large = index.query_with_strategy(&q, r1 + dr, Strategy::LinearOnly).ids.len();
        prop_assert!(large >= small);
    }
}
