//! Property tests for the top-k subsystem.
//!
//! The two contracts the ISSUE pins down: (1) `query_topk` with
//! `k = n` degenerates to an exact full sort of the data set by
//! `(distance, id)`; (2) batch top-k is byte-identical to the
//! sequential per-query loop on any thread count (the top-k mirror of
//! `store_parity.rs`'s batch-equivalence property).

use hybrid_lsh::datagen::benchmark_mixture;
use hybrid_lsh::prelude::*;
use hybrid_lsh::Strategy;
use proptest::prelude::*;

type MixtureTopK = TopKIndex<DenseDataset, PStableL2, L2>;

/// A small deterministic mixture index plus its held-out queries.
fn build(n: usize, dim: usize, levels: usize, seed: u64) -> (MixtureTopK, Vec<Vec<f32>>) {
    let base_r = 1.2;
    let (mut data, _) = benchmark_mixture(dim, n, base_r, seed);
    let q_rows: Vec<usize> = (0..8).map(|i| i * (n / 8)).collect();
    let queries_ds = data.split_off_rows(&q_rows);
    let queries: Vec<Vec<f32>> =
        (0..queries_ds.len()).map(|i| queries_ds.row(i).to_vec()).collect();
    let index = TopKIndex::build(data, RadiusSchedule::doubling(base_r, levels), |_, r| {
        IndexBuilder::new(PStableL2::new(dim, 2.0 * r), L2)
            .tables(8)
            .hash_len(5)
            .seed(seed)
            .cost_model(CostModel::from_ratio(4.0))
    });
    (index, queries)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// `k = n` must return every point, exactly sorted by `(dist, id)`
    /// — byte-identical distances to a scalar reference sort, no LSH
    /// approximation anywhere (the exact fallback guarantees it).
    #[test]
    fn k_equals_n_is_a_full_exact_sort(
        n in 60usize..220,
        dim in 3usize..10,
        levels in 1usize..5,
        seed in 0u64..500,
    ) {
        let (index, queries) = build(n, dim, levels, seed);
        let data = index.data();
        for q in queries.iter().take(3) {
            let out = index.query_topk(q, index.len());
            prop_assert_eq!(out.neighbors.len(), index.len());
            // Reference: exact distances, sorted by (dist, id).
            let mut reference: Vec<(u32, f64)> = (0..data.len())
                .map(|i| (i as u32, L2.distance(data.row(i), q)))
                .collect();
            reference.sort_unstable_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
            for (rank, (n_out, &(id, dist))) in out.neighbors.iter().zip(&reference).enumerate() {
                prop_assert_eq!(n_out.id, id, "rank {}", rank);
                prop_assert_eq!(n_out.dist.to_bits(), dist.to_bits(), "rank {}", rank);
            }
        }
    }

    /// Batch sharding must not change a single byte of any result,
    /// whatever the thread count — the mirror of `store_parity.rs`'s
    /// batch-equivalence property for rNNR.
    #[test]
    fn batch_topk_ids_match_sequential_loop(
        n in 80usize..300,
        k in 1usize..20,
        levels in 2usize..5,
        seed in 0u64..500,
        threads in 1usize..6,
    ) {
        let (index, queries) = build(n, 6, levels, seed);
        let mut engine = TopKEngine::new();
        let sequential: Vec<TopKOutput> =
            queries.iter().map(|q| engine.query_topk(&index, q, k)).collect();
        let batch =
            index.query_topk_batch_with(&queries, k, Strategy::Hybrid, Some(threads));
        // Whole-output equality: TopKReport equality excludes wall time.
        prop_assert_eq!(&batch, &sequential, "{} threads", threads);
    }

    /// Sanity: for any k, results are sorted, unique, of length
    /// `min(k, n)`, and the reported distances are the true distances.
    #[test]
    fn topk_output_invariants(
        n in 60usize..200,
        k in 1usize..40,
        seed in 0u64..500,
    ) {
        let (index, queries) = build(n, 5, 3, seed);
        let data = index.data();
        for q in queries.iter().take(3) {
            let out = index.query_topk(q, k);
            prop_assert_eq!(out.neighbors.len(), k.min(index.len()));
            let mut seen = std::collections::HashSet::new();
            for w in out.neighbors.windows(2) {
                prop_assert!(w[0] < w[1], "not strictly (dist, id)-ascending");
            }
            for nb in &out.neighbors {
                prop_assert!(seen.insert(nb.id), "duplicate id {}", nb.id);
                let true_dist = L2.distance(data.row(nb.id as usize), q);
                prop_assert_eq!(nb.dist.to_bits(), true_dist.to_bits(), "id {}", nb.id);
            }
        }
    }
}
