//! End-to-end integration tests spanning every crate: data generation →
//! family → index → hybrid query → recall against exact ground truth.

// Queries and ground truth are parallel arrays; indexed loops are intentional.
#![allow(clippy::needless_range_loop)]
use hybrid_lsh::datagen::{corel_like, covertype_like, ground_truth, mnist_like, webspam_like};
use hybrid_lsh::index::search::ExecutedArm;
use hybrid_lsh::prelude::*;

/// Builds + queries one dense configuration and checks the rNNR
/// contract: precision 1 (never report a far point), recall ≥ target.
fn check_dense<F: LshFamily<[f32]>>(
    mut data: DenseDataset,
    family: F,
    metric: impl Distance<[f32]>,
    r: f64,
    k: usize,
    l: usize,
    min_recall: f64,
) {
    let q_rows: Vec<usize> = (0..10).map(|i| i * (data.len() / 10)).collect();
    let queries = data.split_off_rows(&q_rows);
    let index =
        IndexBuilder::new(family, metric.clone()).tables(l).hash_len(k).seed(77).build(data);
    let truth = ground_truth(index.data(), &queries, &metric, r);
    let mut recalls = Vec::new();
    for qi in 0..queries.len() {
        let out = index.query(queries.row(qi), r);
        let rep = hybrid_lsh::index::evaluate_recall(&out.ids, &truth[qi]);
        assert!(rep.precision() >= 1.0 - 1e-12, "query {qi} reported a point outside the radius");
        recalls.push(rep.recall());
    }
    let mean = recalls.iter().sum::<f64>() / recalls.len() as f64;
    assert!(mean >= min_recall, "mean recall {mean} below {min_recall}");
}

#[test]
fn webspam_simhash_pipeline() {
    let family = SimHash::new(254);
    let r = 0.08;
    let k = k_paper(0.1, 20, family.collision_prob(r));
    check_dense(webspam_like(1_500, 3), family, UnitCosine, r, k, 20, 0.85);
}

#[test]
fn corel_pstable_l2_pipeline() {
    let r = 0.45;
    let (k, w) = PaperParams::default().pstable_k_w(hybrid_lsh::vec::MetricKind::L2, r);
    check_dense(corel_like(1_500, 4), PStableL2::new(32, w), L2, r, k, 50, 0.85);
}

#[test]
fn covertype_pstable_l1_pipeline() {
    let r = 3_500.0;
    let (k, w) = PaperParams::default().pstable_k_w(hybrid_lsh::vec::MetricKind::L1, r);
    check_dense(covertype_like(1_500, 5), PStableL1::new(54, w), L1, r, k, 50, 0.85);
}

#[test]
fn mnist_bitsampling_pipeline() {
    let mut data = mnist_like(2_000, 6);
    let q_rows: Vec<usize> = (0..10).map(|i| i * 190).collect();
    let queries = data.split_off_rows(&q_rows);
    let family = BitSampling::new(64);
    let r = 14.0;
    let k = k_paper(0.1, 30, family.collision_prob(r));
    let index = IndexBuilder::new(family, Hamming).tables(30).hash_len(k).seed(8).build(data);
    let truth = ground_truth(index.data(), &queries, &Hamming, r);
    for qi in 0..queries.len() {
        let out = index.query(queries.row(qi), r);
        let rep = hybrid_lsh::index::evaluate_recall(&out.ids, &truth[qi]);
        assert!(rep.precision() >= 1.0 - 1e-12);
        // Per-query recall must meet the 1 − δ bound with slack for the
        // ceil-k rule and sampling noise.
        assert!(rep.recall() >= 0.7, "query {qi} recall {}", rep.recall());
    }
}

#[test]
fn linear_strategy_is_exact_everywhere() {
    let mut data = webspam_like(800, 9);
    let queries = data.split_off_rows(&[1, 100, 700]);
    let index =
        IndexBuilder::new(SimHash::new(254), UnitCosine).tables(8).hash_len(10).seed(1).build(data);
    let truth = ground_truth(index.data(), &queries, &UnitCosine, 0.1);
    for qi in 0..queries.len() {
        let mut out = index.query_with_strategy(queries.row(qi), 0.1, Strategy::LinearOnly).ids;
        out.sort_unstable();
        assert_eq!(out, truth[qi], "linear arm must equal brute force");
    }
}

#[test]
fn hybrid_switches_arms_on_duplicate_heavy_data() {
    // All-identical data: every bucket holds everything → candSize ≈ n
    // → the linear arm is provably cheaper (dedup is pure overhead).
    let data = DenseDataset::from_rows(8, (0..600).map(|_| [0.5f32; 8]));
    let index = IndexBuilder::new(PStableL2::new(8, 1.0), L2)
        .tables(10)
        .hash_len(4)
        .seed(2)
        .cost_model(CostModel::from_ratio(2.0))
        .build(data);
    let out = index.query(&[0.5f32; 8], 0.1);
    assert_eq!(out.report.executed, ExecutedArm::Linear);
    assert_eq!(out.ids.len(), 600);

    // Spread data: tiny buckets → LSH arm.
    let data = DenseDataset::from_rows(
        8,
        (0..600).map(|i| {
            let mut v = [0.0f32; 8];
            v[0] = i as f32 * 100.0;
            v
        }),
    );
    let index = IndexBuilder::new(PStableL2::new(8, 1.0), L2)
        .tables(10)
        .hash_len(4)
        .seed(2)
        .cost_model(CostModel::from_ratio(2.0))
        .build(data);
    let out = index.query(&[0.0f32; 8], 0.1);
    assert_eq!(out.report.executed, ExecutedArm::Lsh);
    assert!(out.ids.contains(&0));
}

#[test]
fn candsize_estimate_tracks_exact_count() {
    // Table 1's claim: the merged-HLL estimate lands within ~10% of the
    // exact distinct candidate count (m = 128 ⇒ σ ≈ 9.2%; allow 3σ).
    let mut data = webspam_like(2_000, 12);
    let queries = data.split_off_rows(&[0, 500, 1_000, 1_500]);
    let index = IndexBuilder::new(SimHash::new(254), UnitCosine)
        .tables(20)
        .hash_len(12)
        .seed(4)
        .build(data);
    for qi in 0..queries.len() {
        let q = queries.row(qi);
        let est = index.explain(q).cand_size_estimate;
        let exact = index.exact_cand_size(q) as f64;
        if exact > 200.0 {
            let rel = (est - exact).abs() / exact;
            assert!(rel < 0.28, "query {qi}: estimate {est} vs exact {exact}");
        }
    }
}

#[test]
fn rebuilds_are_deterministic() {
    let build = || {
        let data = mnist_like(500, 3);
        IndexBuilder::new(BitSampling::new(64), Hamming)
            .tables(12)
            .hash_len(10)
            .seed(99)
            .cost_model(CostModel::from_ratio(1.0))
            .build(data)
    };
    let (a, b) = (build(), build());
    let q = [0xDEAD_BEEFu64];
    let (oa, ob) = (a.query(&q[..], 20.0), b.query(&q[..], 20.0));
    assert_eq!(oa.ids, ob.ids);
    assert_eq!(oa.report.collisions, ob.report.collisions);
    assert_eq!(oa.report.cand_size_estimate, ob.report.cand_size_estimate);
}

#[test]
fn multiprobe_beats_single_probe_recall_with_few_tables() {
    let mut data = mnist_like(2_000, 14);
    let q_rows: Vec<usize> = (0..8).map(|i| i * 200).collect();
    let queries = data.split_off_rows(&q_rows);
    let family = BitSampling::new(64);
    let index = IndexBuilder::new(family, Hamming)
        .tables(4) // deliberately too few for single-probe
        .hash_len(14)
        .seed(6)
        .cost_model(CostModel::from_ratio(1e12)) // force the LSH arm
        .build(data);
    let truth = ground_truth(index.data(), &queries, &Hamming, 14.0);
    let recall_at = |probes: usize| {
        let mut total = 0.0;
        for qi in 0..queries.len() {
            let out = hybrid_lsh::probe::multiprobe_query(
                &index,
                queries.row(qi),
                14.0,
                probes,
                Strategy::LshOnly,
            );
            total += hybrid_lsh::index::evaluate_recall(&out.ids, &truth[qi]).recall();
        }
        total / queries.len() as f64
    };
    let single = recall_at(1);
    let multi = recall_at(24);
    assert!(
        multi >= single + 0.03 || multi > 0.98,
        "multi-probe recall {multi} did not improve on {single}"
    );
}

#[test]
fn covering_index_is_exact_within_radius() {
    let data = mnist_like(1_200, 18);
    let q = data.row(17)[0];
    let index = hybrid_lsh::probe::CoveringLshIndex::build(
        data,
        Hamming,
        64,
        6,
        3,
        4,
        CostModel::from_ratio(1.0),
    );
    let mut got = index.query(&[q], 6.0, Strategy::LshOnly).ids;
    let mut exact = index.query(&[q], 6.0, Strategy::LinearOnly).ids;
    got.sort_unstable();
    exact.sort_unstable();
    assert_eq!(got, exact, "covering LSH must have zero false negatives");
}

#[test]
fn io_round_trip_feeds_the_index() {
    // libsvm text → parser → index → query: the path a user of the real
    // Webspam file would take.
    let mut text = String::new();
    for i in 0..200 {
        let x = (i % 20) as f32 * 0.05;
        text.push_str(&format!("+1 1:{x} 2:{:.2} 3:1.0\n", 1.0 - x));
    }
    let (mut data, labels) = hybrid_lsh::vec::io::parse_libsvm(text.as_bytes(), 3).unwrap();
    assert_eq!(labels.len(), 200);
    data.normalize_l2();
    let queries = data.split_off_rows(&[0]);
    let index =
        IndexBuilder::new(SimHash::new(3), UnitCosine).tables(10).hash_len(4).seed(0).build(data);
    let out = index.query(queries.row(0), 0.05);
    assert!(!out.ids.is_empty());
}
