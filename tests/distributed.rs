//! CI gate: the distributed fan-out path, in-process.
//!
//! Spawns real shard-node servers on loopback sockets, assembles a
//! [`Coordinator`] over them, and pins the distributed determinism
//! contract: coordinator answers are **byte-identical** — ids, order,
//! and `f64` distance bit patterns — to the single-process sharded
//! engines over the same build, for every shard count. Also exercises
//! the failure surface: a dead shard yields a typed
//! `ErrorCode::Unavailable` frame (never a hang), the client
//! connection survives it, and a restarted shard rejoins cleanly.
//!
//! The multi-*process* variant of this gate (separate `serve`
//! executables cold-started from shipped snapshots) lives in
//! `crates/server/tests/multiprocess.rs`.

use std::sync::Arc;
use std::time::{Duration, Instant};

use hybrid_lsh::prelude::*;
use hybrid_lsh::server::{
    spawn, Client, ClientError, Coordinator, CoordinatorConfig, ErrorCode, QueryService,
    ServerConfig, ServerHandle, ShardNodeService, ShardedLshService,
};

const DIM: usize = 16;
const RADIUS: f64 = 1.5;
const N: usize = 3_000;
const SEED: u64 = 11;

type Node = ShardNodeService<DenseDataset, PStableL2, L2>;

fn builder(radius: f64) -> IndexBuilder<PStableL2, L2> {
    IndexBuilder::new(PStableL2::new(DIM, 2.0 * radius), L2)
        .tables(10)
        .hash_len(5)
        .seed(SEED)
        .cost_model(CostModel::from_ratio(6.0))
}

/// One deterministic build of the rNNR index + top-k ladder for a
/// given shard count. Every call with the same `shards` produces
/// byte-identical indexes — the property the whole deployment rests on.
#[allow(clippy::type_complexity)]
fn build(
    shards: usize,
) -> (
    ShardedIndex<DenseDataset, PStableL2, L2, FrozenStore>,
    ShardedTopKIndex<DenseDataset, PStableL2, L2, FrozenStore>,
) {
    let (data, _) = hybrid_lsh::datagen::benchmark_mixture(DIM, N, RADIUS, SEED);
    let assignment = ShardAssignment::new(SEED, shards);
    let rnnr = ShardedIndex::build_frozen(data.clone(), assignment, builder(RADIUS));
    let topk =
        ShardedTopKIndex::build(data, assignment, RadiusSchedule::doubling(RADIUS, 3), |_, r| {
            builder(r)
        })
        .freeze();
    (rnnr, topk)
}

fn queries() -> Vec<Vec<f32>> {
    let (data, _) = hybrid_lsh::datagen::benchmark_mixture(DIM, N, RADIUS, SEED);
    (0..24).map(|i| data.row(i * 125).to_vec()).collect()
}

/// Spawns one shard-node server per shard of a fresh build and returns
/// the handles plus their addresses.
fn spawn_fleet(shards: usize) -> (Vec<ServerHandle>, Vec<String>) {
    let mut handles = Vec::new();
    let mut addrs = Vec::new();
    for sid in 0..shards {
        let (rnnr, topk) = build(shards);
        let node: Arc<Node> = Arc::new(ShardNodeService::new(
            ShardedLshService::new(rnnr, Some(topk), DIM),
            sid as u32,
        ));
        let handle = spawn(node, "127.0.0.1:0", ServerConfig::default()).expect("bind shard node");
        addrs.push(handle.local_addr().to_string());
        handles.push(handle);
    }
    (handles, addrs)
}

fn quick_config() -> CoordinatorConfig {
    CoordinatorConfig {
        shard_deadline: Duration::from_secs(2),
        connect_timeout: Duration::from_secs(10),
        ..CoordinatorConfig::default()
    }
}

/// Distances compared by bit pattern, not float tolerance.
fn bits(out: Vec<Vec<(u32, f64)>>) -> Vec<Vec<(u32, u64)>> {
    out.into_iter().map(|q| q.into_iter().map(|(id, d)| (id, d.to_bits())).collect()).collect()
}

#[test]
fn byte_identity_across_shard_counts() {
    let queries = queries();
    for shards in [1usize, 2, 4] {
        let (rnnr, topk) = build(shards);
        let expect_rnnr: Vec<Vec<u32>> =
            rnnr.query_batch(&queries, RADIUS).into_iter().map(|o| o.ids).collect();
        // k = 5 walks the ladder; k = 64 starves the heap on some
        // queries and forces the exact fallback; k = 0 is the empty
        // edge. All three must match bit-for-bit.
        let expect_topk: Vec<Vec<Vec<(u32, u64)>>> = [5usize, 64, 0]
            .iter()
            .map(|&k| {
                bits(
                    topk.query_topk_batch(&queries, k)
                        .into_iter()
                        .map(|o| o.neighbors.iter().map(|n| (n.id, n.dist)).collect())
                        .collect(),
                )
            })
            .collect();

        let (_fleet, addrs) = spawn_fleet(shards);
        let coord = Coordinator::connect(&addrs, quick_config()).expect("assemble fleet");

        let got_rnnr = coord.rnnr_batch(&queries, RADIUS, None).expect("distributed rnnr");
        assert_eq!(got_rnnr, expect_rnnr, "rNNR mismatch at {shards} shard(s)");

        for (i, &k) in [5usize, 64, 0].iter().enumerate() {
            let got = bits(coord.topk_batch(&queries, k, None).expect("distributed topk"));
            assert_eq!(got, expect_topk[i], "top-k k={k} mismatch at {shards} shard(s)");
        }
    }
}

#[test]
fn coordinator_serves_the_client_protocol() {
    let queries = queries();
    let (rnnr, topk) = build(2);
    let expect_rnnr: Vec<Vec<u32>> =
        rnnr.query_batch(&queries, RADIUS).into_iter().map(|o| o.ids).collect();
    let expect_topk = bits(
        topk.query_topk_batch(&queries, 5)
            .into_iter()
            .map(|o| o.neighbors.iter().map(|n| (n.id, n.dist)).collect())
            .collect(),
    );

    let (_fleet, addrs) = spawn_fleet(2);
    let coord = Coordinator::connect(&addrs, quick_config()).expect("assemble fleet");
    let front = spawn(Arc::new(coord), "127.0.0.1:0", ServerConfig::default()).expect("bind front");

    let mut client =
        Client::connect_retry(front.local_addr(), Duration::from_secs(5)).expect("connect");
    let info = client.info().expect("info");
    assert_eq!(info.points as usize, N);
    assert_eq!(info.dim as usize, DIM);
    assert_eq!(info.shards, 2);
    assert_eq!(client.query_batch(&queries, RADIUS).expect("rnnr over the wire"), expect_rnnr);
    assert_eq!(
        bits(client.query_topk_batch(&queries, 5).expect("topk over the wire")),
        expect_topk
    );
}

#[test]
fn dead_shard_is_a_typed_error_and_a_restarted_one_rejoins() {
    let queries = queries();
    let (rnnr, _) = build(2);
    let expect: Vec<Vec<u32>> =
        rnnr.query_batch(&queries, RADIUS).into_iter().map(|o| o.ids).collect();

    let (mut fleet, addrs) = spawn_fleet(2);
    let coord = Coordinator::connect(&addrs, quick_config()).expect("assemble fleet");
    let front = spawn(Arc::new(coord), "127.0.0.1:0", ServerConfig::default()).expect("bind front");
    let mut client =
        Client::connect_retry(front.local_addr(), Duration::from_secs(5)).expect("connect");
    assert_eq!(client.query_batch(&queries, RADIUS).expect("healthy fleet"), expect);

    // Kill shard 1. The next query must come back as a typed
    // Unavailable error frame within the shard deadline — not a hang,
    // not a partial answer.
    let dead_addr = addrs[1].clone();
    fleet.remove(1).shutdown();
    let t0 = Instant::now();
    match client.query_batch(&queries, RADIUS) {
        Err(ClientError::Server { code: ErrorCode::Unavailable, message }) => {
            assert!(message.contains("shard 1"), "error should name the shard: {message}");
        }
        other => panic!("expected a typed Unavailable error, got {other:?}"),
    }
    assert!(
        t0.elapsed() < Duration::from_secs(10),
        "shard failure took {:?} to surface",
        t0.elapsed()
    );

    // The client connection survives the error frame.
    match client.query_batch(&queries, RADIUS) {
        Err(ClientError::Server { code: ErrorCode::Unavailable, .. }) => {}
        other => panic!("expected Unavailable on the same connection, got {other:?}"),
    }

    // Restart shard 1 on its old port (SO_REUSEADDR makes the rebind
    // immediate despite TIME_WAIT). The coordinator redials lazily,
    // re-validates the node's parameters and resumes exact answers.
    let (rnnr1, topk1) = build(2);
    let node: Arc<Node> =
        Arc::new(ShardNodeService::new(ShardedLshService::new(rnnr1, Some(topk1), DIM), 1));
    let revived =
        spawn(node, dead_addr.as_str(), ServerConfig::default()).expect("rebind dead shard port");
    assert_eq!(revived.local_addr().to_string(), dead_addr);
    assert_eq!(client.query_batch(&queries, RADIUS).expect("rejoined fleet"), expect);
}

#[test]
fn fleet_assembly_rejects_wrong_topologies() {
    // A 2-shard build dialed as a 1-address fleet must fail fast: the
    // node's advertised shard count disagrees with the list length.
    let (fleet, addrs) = spawn_fleet(2);
    let err = Coordinator::connect(&addrs[..1], quick_config());
    assert!(err.is_err(), "1-address dial of a 2-shard node must fail");

    // Dialing the same node for both slots fails on shard-id mismatch.
    let twice = vec![addrs[0].clone(), addrs[0].clone()];
    let err = Coordinator::connect(&twice, quick_config());
    assert!(err.is_err(), "duplicate shard address must fail");
    drop(fleet);
}
