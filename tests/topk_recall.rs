//! The CI recall gate: top-k quality and batch determinism on a fixed
//! workload, asserted rather than eyeballed.
//!
//! A fixed-seed mixture corpus (n ≈ 6k) is queried through
//! `query_topk_batch`; recall@10 against the exact ground truth must
//! stay at or above a pinned threshold, and the batch output must be
//! byte-identical to a sequential per-query loop on every thread count
//! and under both verify modes. CI runs this file as a dedicated step
//! (`cargo test --release -p hybrid-lsh --test topk_recall`), so a
//! quality regression fails the build like any other test.

use hybrid_lsh::datagen::{benchmark_mixture, ground_truth_topk};
use hybrid_lsh::prelude::*;
use hybrid_lsh::{Strategy, VerifyMode};

const N: usize = 6_000;
const QUERIES: usize = 64;
const DIM: usize = 16;
const BASE_R: f64 = 1.4;
const K: usize = 10;
const SEED: u64 = 77;

/// The pinned quality floor. Measured on this fixed seed: ≈ 0.97;
/// the gate leaves headroom for toolchain-level float noise, none for
/// real regressions.
const MIN_RECALL_AT_10: f64 = 0.9;

type MixtureTopK<B> = TopKIndex<DenseDataset, PStableL2, L2, B>;

fn setup() -> (MixtureTopK<FrozenStore>, DenseDataset, Vec<Vec<f32>>) {
    let (mut data, _) = benchmark_mixture(DIM, N, BASE_R, SEED);
    let q_rows: Vec<usize> = (0..QUERIES).map(|i| i * (N / QUERIES)).collect();
    let queries_ds = data.split_off_rows(&q_rows);
    let queries: Vec<Vec<f32>> =
        (0..queries_ds.len()).map(|i| queries_ds.row(i).to_vec()).collect();
    let index = TopKIndex::build(data, RadiusSchedule::doubling(BASE_R, 4), |_, r| {
        IndexBuilder::new(PStableL2::new(DIM, 2.0 * r), L2)
            .tables(20)
            .hash_len(6)
            .seed(SEED)
            .cost_model(CostModel::from_ratio(6.0))
    })
    .freeze();
    (index, queries_ds, queries)
}

#[test]
fn recall_gate_on_fixed_mixture() {
    let (index, queries_ds, queries) = setup();
    let outputs = index.query_topk_batch(&queries, K);
    let truth = ground_truth_topk(index.data(), &queries_ds, &L2, K);

    for (qi, out) in outputs.iter().enumerate() {
        assert_eq!(out.neighbors.len(), K, "query {qi} returned fewer than k neighbors");
        // Reported distances must be exact and sorted by (dist, id).
        for w in out.neighbors.windows(2) {
            assert!(
                w[0].dist < w[1].dist || (w[0].dist == w[1].dist && w[0].id < w[1].id),
                "query {qi}: neighbors out of (dist, id) order"
            );
        }
    }
    // The same metric implementation the benchmark harness reports.
    let recall = hlsh_bench::experiment::recall_at_k(&outputs, &truth);
    println!("recall@{K} = {recall:.4} over {} queries (gate: {MIN_RECALL_AT_10})", outputs.len());
    assert!(recall >= MIN_RECALL_AT_10, "recall@{K} regressed: {recall:.4} < {MIN_RECALL_AT_10}");
}

#[test]
fn batch_topk_is_byte_identical_to_sequential_loop() {
    let (index, _queries_ds, queries) = setup();
    let mut engine = TopKEngine::new();
    let sequential: Vec<TopKOutput> =
        queries.iter().map(|q| engine.query_topk(&index, q, K)).collect();
    for threads in [Some(1), Some(2), Some(4), None] {
        let batch = index.query_topk_batch_with(&queries, K, Strategy::Hybrid, threads);
        // Output equality (wall time excluded from report equality) is
        // exactly the determinism contract.
        assert_eq!(batch, sequential, "{threads:?} threads");
    }
}

#[test]
fn verify_modes_agree_on_topk() {
    let (index, _queries_ds, queries) = setup();
    let mut kernel = TopKEngine::with_verify_mode(VerifyMode::Kernel);
    let mut scalar = TopKEngine::with_verify_mode(VerifyMode::Scalar);
    for (qi, q) in queries.iter().take(16).enumerate() {
        let a = kernel.query_topk(&index, q, K);
        let b = scalar.query_topk(&index, q, K);
        assert_eq!(a.neighbors, b.neighbors, "query {qi}");
    }
}

#[test]
fn schedule_walk_exercises_both_exits() {
    // The mixture corpus must cover the interesting regimes, or the
    // gate is vacuous: dense-cluster queries stop early, and at least
    // some query either climbs past level 0 or skips a level.
    let (index, _queries_ds, queries) = setup();
    let outputs = index.query_topk_batch(&queries, K);
    let early = outputs.iter().filter(|o| o.report.early_exit).count();
    let deep = outputs.iter().filter(|o| o.report.levels_executed > 1).count();
    assert!(early > 0, "no query early-exited — schedule too coarse for the corpus");
    assert!(deep > 0, "no query climbed the ladder — schedule too fine for the corpus");
}
