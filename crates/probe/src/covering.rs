//! Covering LSH for Hamming space (Pagh, SODA'16): LSH *without false
//! negatives*.
//!
//! The paper's §5 names covering LSH, alongside multi-probe, as a
//! scheme the hybrid strategy fits because it "typically require\[s\] a
//! large number of probes".
//!
//! # Construction
//!
//! For radius `r` over `d ≤ 64` bits, draw a random map
//! `a : [d] → F₂^{r+1}` and build one table per nonzero dual vector
//! `v ∈ F₂^{r+1}`, hashing each point by the bit mask
//! `{i : ⟨a(i), v⟩ = 1 (mod 2)}`. For any difference set `D` with
//! `|D| ≤ r`, the span of `{a(i) : i ∈ D}` has dimension at most
//! `r < r+1`, so a nonzero `v` orthogonal to all of them exists; that
//! table ignores every differing coordinate and the pair collides —
//! deterministically, for **every** pair within distance `r`.
//!
//! The table count `2^{r+1} − 1` explodes at the paper's MNIST radii
//! (r = 12–17), so we also implement the standard dimension-splitting
//! reduction: split the `d` bits into `c` chunks; by pigeonhole a pair
//! within distance `r` matches some chunk within `⌊r/c⌋`, so covering
//! structures of radius `⌊r/c⌋` per chunk preserve the guarantee with
//! `c · (2^{⌊r/c⌋+1} − 1)` tables (e.g. r = 12, c = 4 → 60 tables).
//!
//! Every bucket carries the same lazy HLL sketch as the core index, so
//! Algorithm 2's cost decision applies unchanged.

use hlsh_core::hasher::FxHashSet;
use hlsh_core::search::ExecutedArm;
use hlsh_core::store::{BucketStore, FrozenStore, MapStore};
use hlsh_core::table::HashTable;
use hlsh_core::{BucketRef, CostModel, QueryOutput, QueryReport, Strategy};
use hlsh_families::sampling::rng_stream;
use hlsh_families::GFunction;
use hlsh_hll::{HllConfig, MergeAccumulator};
use hlsh_vec::{Distance, PointId, PointSet};
use rand::Rng;
use std::time::Instant;

/// A covering g-function: projection onto a fixed bit mask.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CoveringGFn {
    mask: u64,
}

impl CoveringGFn {
    /// The projection mask.
    pub fn mask(&self) -> u64 {
        self.mask
    }
}

impl GFunction<[u64]> for CoveringGFn {
    #[inline]
    fn bucket_key(&self, p: &[u64]) -> u64 {
        debug_assert_eq!(p.len(), 1, "covering LSH operates on ≤64-bit points");
        p[0] & self.mask
    }

    fn k(&self) -> usize {
        self.mask.count_ones() as usize
    }
}

/// A covering-LSH index over `≤ 64`-bit binary points with zero false
/// negatives within the construction radius. Generic over the bucket
/// store like the core index: built on [`MapStore`], convertible to
/// the read-optimised [`FrozenStore`] with [`freeze`](Self::freeze).
pub struct CoveringLshIndex<S, D, B = MapStore>
where
    S: PointSet<Point = [u64]>,
    D: Distance<[u64]>,
    B: BucketStore,
{
    data: S,
    distance: D,
    tables: Vec<HashTable<CoveringGFn, B>>,
    radius: u32,
    hll_config: HllConfig,
    cost: CostModel,
}

impl<S, D> CoveringLshIndex<S, D, MapStore>
where
    S: PointSet<Point = [u64]>,
    D: Distance<[u64]>,
{
    /// Builds the index.
    ///
    /// * `dim` — bit width of the points (≤ 64);
    /// * `radius` — the no-false-negative guarantee radius;
    /// * `parts` — dimension-splitting chunk count (`1` = pure Pagh
    ///   construction); table count is `parts · (2^{⌊radius/parts⌋+1} − 1)`.
    ///
    /// # Panics
    /// Panics if `dim == 0`, `dim > 64`, `parts == 0`, `parts > dim`,
    /// or the table count would exceed 4096 (pick more `parts`).
    pub fn build(
        data: S,
        distance: D,
        dim: usize,
        radius: u32,
        parts: usize,
        seed: u64,
        cost: CostModel,
    ) -> Self {
        assert!(dim > 0 && dim <= 64, "covering LSH supports 1..=64 bits, got {dim}");
        assert!(parts > 0 && parts <= dim, "parts must be in 1..={dim}");
        let chunk_radius = radius as usize / parts;
        let tables_per_chunk = (1usize << (chunk_radius + 1)) - 1;
        let total_tables = parts * tables_per_chunk;
        assert!(total_tables <= 4096, "table count {total_tables} too large; increase `parts`");

        let mut rng = rng_stream(seed, 0x434F_5645);
        let mut tables = Vec::with_capacity(total_tables);
        for part in 0..parts {
            // Contiguous chunk of bit positions.
            let lo = part * dim / parts;
            let hi = (part + 1) * dim / parts;
            let chunk_mask: u64 = ((1u128 << hi) - (1u128 << lo)) as u64;
            let m = chunk_radius + 1;
            if chunk_radius == 0 {
                // Exact-match chunk: strictly more selective than a
                // random projection and equally correct (an empty
                // difference set is avoided by any mask).
                tables.push(HashTable::new(CoveringGFn { mask: chunk_mask }));
                continue;
            }
            // Random map a : chunk bits → F₂^m.
            let a: Vec<u32> = (lo..hi).map(|_| rng.gen_range(0..(1u32 << m))).collect();
            for v in 1u32..(1 << m) {
                let mut mask = 0u64;
                for (offset, &ai) in a.iter().enumerate() {
                    if ((ai & v).count_ones() & 1) == 1 {
                        mask |= 1u64 << (lo + offset);
                    }
                }
                tables.push(HashTable::new(CoveringGFn { mask }));
            }
        }

        let hll_config = HllConfig::new(7, seed ^ 0x4356);
        let lazy_threshold = hll_config.registers();
        let mut index = Self { data, distance, tables, radius, hll_config, cost };
        for id in 0..index.data.len() {
            let point = index.data.point(id);
            // Single-word points only (asserted in bucket_key).
            let word = point[0];
            for table in &mut index.tables {
                table.insert(id as PointId, &[word][..], hll_config, lazy_threshold);
            }
        }
        index
    }

    /// Converts every table into the read-optimised frozen arena.
    /// Query answers are byte-identical before and after.
    pub fn freeze(self) -> CoveringLshIndex<S, D, FrozenStore> {
        CoveringLshIndex {
            data: self.data,
            distance: self.distance,
            tables: self.tables.into_iter().map(HashTable::freeze).collect(),
            radius: self.radius,
            hll_config: self.hll_config,
            cost: self.cost,
        }
    }
}

impl<S, D> CoveringLshIndex<S, D, FrozenStore>
where
    S: PointSet<Point = [u64]>,
    D: Distance<[u64]>,
{
    /// Converts back to the mutable hashmap backend.
    pub fn thaw(self) -> CoveringLshIndex<S, D, MapStore> {
        CoveringLshIndex {
            data: self.data,
            distance: self.distance,
            tables: self.tables.into_iter().map(HashTable::thaw).collect(),
            radius: self.radius,
            hll_config: self.hll_config,
            cost: self.cost,
        }
    }
}

impl<S, D, B> CoveringLshIndex<S, D, B>
where
    S: PointSet<Point = [u64]>,
    D: Distance<[u64]>,
    B: BucketStore,
{
    /// The guarantee radius.
    pub fn radius(&self) -> u32 {
        self.radius
    }

    /// Number of tables.
    pub fn tables(&self) -> usize {
        self.tables.len()
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Queries for all points within distance `r` of `q`.
    ///
    /// For `r ≤ self.radius()` the result is **exact** under the LSH
    /// arm (no false negatives, and the distance filter removes false
    /// positives); the hybrid decision only changes *how fast* the
    /// answer is produced, never *what* it is.
    pub fn query(&self, q: &[u64], r: f64, strategy: Strategy) -> QueryOutput {
        let t_start = Instant::now();
        if matches!(strategy, Strategy::LinearOnly) {
            let ids = self.linear_arm(q, r);
            return QueryOutput {
                report: QueryReport {
                    executed: ExecutedArm::Linear,
                    collisions: 0,
                    cand_size_estimate: 0.0,
                    cand_size_actual: None,
                    output_size: ids.len(),
                    hash_nanos: 0,
                    hll_nanos: 0,
                    total_nanos: t_start.elapsed().as_nanos() as u64,
                },
                ids,
            };
        }

        let t_hash = Instant::now();
        let mut buckets: Vec<BucketRef<'_>> = Vec::with_capacity(self.tables.len());
        let mut collisions = 0usize;
        for table in &self.tables {
            if let Some(b) = table.bucket(q) {
                collisions += b.len();
                buckets.push(b);
            }
        }
        let hash_nanos = t_hash.elapsed().as_nanos() as u64;

        let (hll_nanos, prefer_lsh, cand_estimate) = if matches!(strategy, Strategy::Hybrid) {
            let t_hll = Instant::now();
            let mut acc = MergeAccumulator::new(self.hll_config);
            for b in &buckets {
                b.contribute_to(&mut acc);
            }
            let est = acc.estimate();
            let nanos = t_hll.elapsed().as_nanos() as u64;
            (nanos, self.cost.prefer_lsh(collisions, est, self.len()), est)
        } else {
            (0, true, 0.0)
        };

        if prefer_lsh {
            // S2 dedup, then one batched S3 verification call.
            let mut seen: FxHashSet<PointId> = FxHashSet::default();
            let mut cands = Vec::new();
            for b in &buckets {
                for &id in b.members() {
                    if seen.insert(id) {
                        cands.push(id);
                    }
                }
            }
            let mut ids = Vec::new();
            self.distance.verify_many(&self.data, &cands, q, r, &mut ids);
            let cand = cands.len();
            QueryOutput {
                report: QueryReport {
                    executed: ExecutedArm::Lsh,
                    collisions,
                    cand_size_estimate: if matches!(strategy, Strategy::Hybrid) {
                        cand_estimate
                    } else {
                        cand as f64
                    },
                    cand_size_actual: Some(cand),
                    output_size: ids.len(),
                    hash_nanos,
                    hll_nanos,
                    total_nanos: t_start.elapsed().as_nanos() as u64,
                },
                ids,
            }
        } else {
            let ids = self.linear_arm(q, r);
            QueryOutput {
                report: QueryReport {
                    executed: ExecutedArm::Linear,
                    collisions,
                    cand_size_estimate: cand_estimate,
                    cand_size_actual: None,
                    output_size: ids.len(),
                    hash_nanos,
                    hll_nanos,
                    total_nanos: t_start.elapsed().as_nanos() as u64,
                },
                ids,
            }
        }
    }

    fn linear_arm(&self, q: &[u64], r: f64) -> Vec<PointId> {
        let mut out = Vec::new();
        self.distance.scan_within(&self.data, q, r, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlsh_vec::{BinaryDataset, Hamming};

    fn random_fps(n: usize, seed: u64) -> Vec<u64> {
        (0..n as u64).map(|i| hlsh_hll::hash::hash_id(seed, i)).collect()
    }

    #[test]
    fn table_count_formula() {
        let data = BinaryDataset::from_fingerprints(&random_fps(10, 1));
        // r = 3, parts = 1 → 2^4 − 1 = 15 tables.
        let idx = CoveringLshIndex::build(data, Hamming, 64, 3, 1, 0, CostModel::from_ratio(1.0));
        assert_eq!(idx.tables(), 15);

        let data2 = BinaryDataset::from_fingerprints(&random_fps(10, 1));
        // r = 12, parts = 4 → 4·(2^4 − 1) = 60 tables.
        let idx2 =
            CoveringLshIndex::build(data2, Hamming, 64, 12, 4, 0, CostModel::from_ratio(1.0));
        assert_eq!(idx2.tables(), 60);
    }

    #[test]
    fn no_false_negatives_within_radius() {
        // The defining property: every pair within r collides in some
        // table, so LSH-arm queries are exact.
        let n = 300;
        let mut fps = random_fps(n, 7);
        // Plant neighbors of fps[0] at distances 1..=4.
        for d in 1..=4u32 {
            let mut v = fps[0];
            for b in 0..d {
                v ^= 1u64 << (b * 13);
            }
            fps.push(v);
        }
        let data = BinaryDataset::from_fingerprints(&fps);
        let q = fps[0];
        let idx = CoveringLshIndex::build(data, Hamming, 64, 4, 1, 3, CostModel::from_ratio(1e12));
        let out = idx.query(&[q][..], 4.0, Strategy::LshOnly);
        // Exact answer by brute force:
        let expected: Vec<u32> = fps
            .iter()
            .enumerate()
            .filter(|(_, &v)| (v ^ q).count_ones() <= 4)
            .map(|(i, _)| i as u32)
            .collect();
        let mut got = out.ids.clone();
        got.sort_unstable();
        assert_eq!(got, expected, "covering LSH missed a near neighbor");
    }

    #[test]
    fn no_false_negatives_with_dimension_splitting() {
        let n = 200;
        let mut fps = random_fps(n, 11);
        for d in 1..=8u32 {
            let mut v = fps[5];
            for b in 0..d {
                v ^= 1u64 << (b * 7 + 3);
            }
            fps.push(v);
        }
        let data = BinaryDataset::from_fingerprints(&fps);
        let q = fps[5];
        // r = 8 with 4 parts → chunk radius 2 → 4·7 = 28 tables.
        let idx = CoveringLshIndex::build(data, Hamming, 64, 8, 4, 13, CostModel::from_ratio(1e12));
        assert_eq!(idx.tables(), 28);
        let out = idx.query(&[q][..], 8.0, Strategy::LshOnly);
        let expected: Vec<u32> = fps
            .iter()
            .enumerate()
            .filter(|(_, &v)| (v ^ q).count_ones() <= 8)
            .map(|(i, _)| i as u32)
            .collect();
        let mut got = out.ids.clone();
        got.sort_unstable();
        assert_eq!(got, expected);
    }

    #[test]
    fn hybrid_matches_lsh_and_linear_results() {
        let fps = random_fps(500, 23);
        let q = fps[17];
        let make = |ratio: f64| {
            CoveringLshIndex::build(
                BinaryDataset::from_fingerprints(&fps),
                Hamming,
                64,
                3,
                1,
                2,
                CostModel::from_ratio(ratio),
            )
        };
        let idx = make(10.0);
        let mut hybrid = idx.query(&[q][..], 3.0, Strategy::Hybrid).ids;
        let mut lsh = idx.query(&[q][..], 3.0, Strategy::LshOnly).ids;
        let mut linear = idx.query(&[q][..], 3.0, Strategy::LinearOnly).ids;
        hybrid.sort_unstable();
        lsh.sort_unstable();
        linear.sort_unstable();
        assert_eq!(lsh, linear, "covering LSH arm must be exact");
        assert_eq!(hybrid, linear, "hybrid must be exact too");
    }

    #[test]
    fn duplicate_heavy_data_triggers_linear_arm() {
        // Every point identical: all buckets hold everything, candSize
        // ≈ n → hybrid must scan.
        let fps = vec![0xABCDu64; 400];
        let idx = CoveringLshIndex::build(
            BinaryDataset::from_fingerprints(&fps),
            Hamming,
            64,
            2,
            1,
            5,
            CostModel::from_ratio(2.0),
        );
        let out = idx.query(&[0xABCDu64][..], 2.0, Strategy::Hybrid);
        assert_eq!(out.report.executed, ExecutedArm::Linear);
        assert_eq!(out.ids.len(), 400);
    }

    #[test]
    #[should_panic(expected = "too large")]
    fn oversized_table_count_rejected() {
        let data = BinaryDataset::from_fingerprints(&[0u64]);
        let _ = CoveringLshIndex::build(data, Hamming, 64, 16, 1, 0, CostModel::from_ratio(1.0));
    }

    #[test]
    #[should_panic(expected = "1..=64 bits")]
    fn oversized_dim_rejected() {
        let data = BinaryDataset::from_fingerprints(&[0u64]);
        let _ = CoveringLshIndex::build(data, Hamming, 65, 2, 1, 0, CostModel::from_ratio(1.0));
    }
}
