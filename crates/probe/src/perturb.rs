//! Query-directed perturbation-set generation (Lv et al., §4.3).
//!
//! Given per-option scores (the expected "cost" of each elementary
//! perturbation), emit perturbation sets in non-decreasing total score
//! using the classic min-heap of {shift, expand} successors. Options
//! may be grouped into *conflict groups* (for p-stable LSH, the −1 and
//! +1 perturbations of the same atom conflict — a slot cannot move both
//! ways); sets containing two options of one group are skipped.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// One elementary perturbation option.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ProbeOption {
    /// Score (≥ 0); lower = more promising.
    pub score: f64,
    /// Conflict group id (options sharing a group never co-occur).
    pub group: u32,
    /// Opaque payload handed back in generated sets (e.g. atom index
    /// and direction packed by the caller).
    pub payload: u64,
}

/// Candidate set in the heap: indices into the score-sorted option
/// array.
#[derive(Clone, Debug)]
struct Candidate {
    total: f64,
    /// Sorted indices; the last one is always the maximum.
    indices: Vec<u32>,
}

impl PartialEq for Candidate {
    fn eq(&self, other: &Self) -> bool {
        self.total == other.total
    }
}
impl Eq for Candidate {}
impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on total score via reversed comparison.
        other.total.partial_cmp(&self.total).unwrap_or(Ordering::Equal)
    }
}

/// Generates perturbation sets in non-decreasing total score.
#[derive(Debug)]
pub struct PerturbationGenerator {
    /// Options sorted by ascending score.
    options: Vec<ProbeOption>,
    heap: BinaryHeap<Candidate>,
}

impl PerturbationGenerator {
    /// Builds a generator over the given options (any order).
    pub fn new(mut options: Vec<ProbeOption>) -> Self {
        options.sort_by(|a, b| a.score.partial_cmp(&b.score).unwrap_or(Ordering::Equal));
        let mut heap = BinaryHeap::new();
        if !options.is_empty() {
            heap.push(Candidate { total: options[0].score, indices: vec![0] });
        }
        Self { options, heap }
    }

    /// Whether a candidate avoids conflicting options.
    fn is_valid(&self, c: &Candidate) -> bool {
        let mut groups: Vec<u32> =
            c.indices.iter().map(|&i| self.options[i as usize].group).collect();
        groups.sort_unstable();
        groups.windows(2).all(|w| w[0] != w[1])
    }

    /// Pushes the shift/expand successors of a candidate.
    fn push_successors(&mut self, c: &Candidate) {
        let last = *c.indices.last().expect("candidates are non-empty") as usize;
        if last + 1 < self.options.len() {
            // Shift: replace the max element with the next option.
            let mut shifted = c.indices.clone();
            *shifted.last_mut().unwrap() = (last + 1) as u32;
            let total = c.total - self.options[last].score + self.options[last + 1].score;
            self.heap.push(Candidate { total, indices: shifted });
            // Expand: also include the next option.
            let mut expanded = c.indices.clone();
            expanded.push((last + 1) as u32);
            let total = c.total + self.options[last + 1].score;
            self.heap.push(Candidate { total, indices: expanded });
        }
    }
}

impl Iterator for PerturbationGenerator {
    /// Payloads of one perturbation set, in option-score order.
    type Item = Vec<u64>;

    fn next(&mut self) -> Option<Vec<u64>> {
        while let Some(c) = self.heap.pop() {
            self.push_successors(&c);
            if self.is_valid(&c) {
                return Some(c.indices.iter().map(|&i| self.options[i as usize].payload).collect());
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts(scores: &[f64]) -> Vec<ProbeOption> {
        scores
            .iter()
            .enumerate()
            .map(|(i, &s)| ProbeOption { score: s, group: i as u32, payload: i as u64 })
            .collect()
    }

    #[test]
    fn emits_in_nondecreasing_score_order() {
        let gen = PerturbationGenerator::new(opts(&[3.0, 1.0, 2.0, 5.0]));
        let scores_by_payload = [3.0, 1.0, 2.0, 5.0];
        let mut last = 0.0;
        for set in gen.take(12) {
            let total: f64 = set.iter().map(|&p| scores_by_payload[p as usize]).sum();
            assert!(total >= last - 1e-12, "total {total} after {last}");
            last = total;
        }
    }

    #[test]
    fn first_set_is_single_minimum() {
        let mut gen = PerturbationGenerator::new(opts(&[3.0, 1.0, 2.0]));
        assert_eq!(gen.next(), Some(vec![1]));
    }

    #[test]
    fn enumerates_all_subsets_without_conflicts() {
        // 3 options, all different groups → 7 non-empty subsets.
        let gen = PerturbationGenerator::new(opts(&[1.0, 2.0, 4.0]));
        let sets: Vec<Vec<u64>> = gen.collect();
        assert_eq!(sets.len(), 7);
        let mut canon: Vec<Vec<u64>> = sets
            .into_iter()
            .map(|mut s| {
                s.sort_unstable();
                s
            })
            .collect();
        canon.sort();
        canon.dedup();
        assert_eq!(canon.len(), 7, "duplicate subsets emitted");
    }

    #[test]
    fn conflicting_pairs_are_skipped() {
        // Two options in the same group: sets never contain both.
        let options = vec![
            ProbeOption { score: 1.0, group: 0, payload: 10 },
            ProbeOption { score: 2.0, group: 0, payload: 11 },
            ProbeOption { score: 3.0, group: 1, payload: 12 },
        ];
        let gen = PerturbationGenerator::new(options);
        for set in gen {
            let both = set.contains(&10) && set.contains(&11);
            assert!(!both, "conflicting set {set:?}");
        }
    }

    #[test]
    fn empty_options_yield_nothing() {
        let mut gen = PerturbationGenerator::new(vec![]);
        assert_eq!(gen.next(), None);
    }

    #[test]
    fn pstable_style_pairing() {
        // k = 2 atoms → 4 options, groups {0,0,1,1}. Valid sets: each
        // atom contributes at most one direction. Count subsets of
        // options {a-,a+,b-,b+} with no conflict: 3 choices per atom
        // (none/minus/plus) → 9 − 1 (empty) = 8 sets.
        let options = vec![
            ProbeOption { score: 0.1, group: 0, payload: 0 },
            ProbeOption { score: 0.9, group: 0, payload: 1 },
            ProbeOption { score: 0.4, group: 1, payload: 2 },
            ProbeOption { score: 0.6, group: 1, payload: 3 },
        ];
        let gen = PerturbationGenerator::new(options);
        let sets: Vec<_> = gen.collect();
        assert_eq!(sets.len(), 8);
    }
}
