//! Multi-probe and covering LSH — the extensions §5 of the paper names
//! as future work for the hybrid strategy.
//!
//! * **Multi-probe LSH** (Lv, Josephson, Wang, Charikar, Li, VLDB'07):
//!   instead of one bucket per table, probe the `T` most promising
//!   buckets, trading fewer tables for more lookups. The paper observes
//!   that multi-probe schemes "typically require a large number of
//!   probes" — exactly the regime where duplicate removal dominates, so
//!   the hybrid cost model applies verbatim: sum probed bucket sizes
//!   (`#collisions`), merge probed-bucket HLLs (`candSize`), compare
//!   with the linear cost. [`multiprobe_query`] implements that on top
//!   of any [`hlsh_core::HybridLshIndex`] whose g-functions implement
//!   [`ProbeSequence`].
//!
//! * **Covering LSH** (Pagh, SODA'16): a Hamming-space construction
//!   with *zero false negatives* within radius `r`. We implement the
//!   core scheme — random map `a : [d] → F₂^{r+1}`, one table per
//!   nonzero dual vector `v`, each projecting onto
//!   `{i : ⟨a(i), v⟩ = 1}` — plus the dimension-splitting trick that
//!   keeps the table count practical at larger radii, and the same
//!   per-bucket HLL instrumentation so hybrid decisions work there too
//!   ([`CoveringLshIndex`]).
//!
//! # Example
//!
//! Multi-probe trades tables for probes: here 6 tables at 3 probes
//! each stand in for a larger single-probe index, while the hybrid
//! cost model still guards against dense queries. Every reported id is
//! verified, so the output is exact over the probed candidates.
//!
//! ```
//! use hlsh_core::{CostModel, IndexBuilder, Strategy};
//! use hlsh_families::PStableL2;
//! use hlsh_probe::multiprobe_query;
//! use hlsh_vec::{DenseDataset, L2};
//!
//! let data = DenseDataset::from_rows(2, (0..300).map(|i| [(i % 20) as f32, (i / 20) as f32]));
//! let index = IndexBuilder::new(PStableL2::new(2, 2.0), L2)
//!     .tables(6)
//!     .hash_len(4)
//!     .seed(9)
//!     .cost_model(CostModel::from_ratio(6.0))
//!     .build(data);
//!
//! let q = [5.0f32, 5.0];
//! let out = multiprobe_query(&index, &q, 1.0, 3, Strategy::Hybrid);
//! assert!(out.ids.contains(&105)); // the grid point at exactly (5, 5)
//! assert!(out.ids.iter().all(|&id| {
//!     hlsh_vec::dense::l2(index.data().row(id as usize), &q) <= 1.0
//! }));
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod covering;
pub mod multiprobe;
pub mod perturb;
pub mod topk;

pub use covering::CoveringLshIndex;
pub use multiprobe::{multiprobe_query, ProbeSequence};
pub use perturb::PerturbationGenerator;
pub use topk::multiprobe_topk;
