//! Multi-probe and covering LSH — the extensions §5 of the paper names
//! as future work for the hybrid strategy.
//!
//! * **Multi-probe LSH** (Lv, Josephson, Wang, Charikar, Li, VLDB'07):
//!   instead of one bucket per table, probe the `T` most promising
//!   buckets, trading fewer tables for more lookups. The paper observes
//!   that multi-probe schemes "typically require a large number of
//!   probes" — exactly the regime where duplicate removal dominates, so
//!   the hybrid cost model applies verbatim: sum probed bucket sizes
//!   (`#collisions`), merge probed-bucket HLLs (`candSize`), compare
//!   with the linear cost. [`multiprobe_query`] implements that on top
//!   of any [`hlsh_core::HybridLshIndex`] whose g-functions implement
//!   [`ProbeSequence`].
//!
//! * **Covering LSH** (Pagh, SODA'16): a Hamming-space construction
//!   with *zero false negatives* within radius `r`. We implement the
//!   core scheme — random map `a : [d] → F₂^{r+1}`, one table per
//!   nonzero dual vector `v`, each projecting onto
//!   `{i : ⟨a(i), v⟩ = 1}` — plus the dimension-splitting trick that
//!   keeps the table count practical at larger radii, and the same
//!   per-bucket HLL instrumentation so hybrid decisions work there too
//!   ([`CoveringLshIndex`]).

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod covering;
pub mod multiprobe;
pub mod perturb;
pub mod topk;

pub use covering::CoveringLshIndex;
pub use multiprobe::{multiprobe_query, ProbeSequence};
pub use perturb::PerturbationGenerator;
pub use topk::multiprobe_topk;
