//! Multi-probe LSH on top of the hybrid index.
//!
//! Implements Lv et al.'s query-directed probing for the three
//! g-function types of the workspace and a [`multiprobe_query`] that
//! applies the paper's hybrid cost model across the *whole probe
//! sequence*: `#collisions` sums every probed bucket, `candSize` merges
//! every probed bucket's sketch, and the Algorithm 2 comparison against
//! `β·n` decides between probing and scanning.

use std::time::Instant;

use hlsh_core::search::ExecutedArm;
use hlsh_core::store::BucketStore;
use hlsh_core::{BucketRef, HybridLshIndex, QueryOutput, QueryReport, Strategy};
use hlsh_families::bitsampling::BitSamplingGFn;
use hlsh_families::pstable::PStableGFn;
use hlsh_families::simhash::SimHashGFn;
use hlsh_families::{GFunction, LshFamily};
use hlsh_hll::MergeAccumulator;
use hlsh_vec::{Distance, PointId, PointSet};

use crate::perturb::{PerturbationGenerator, ProbeOption};

/// A g-function that can enumerate a query-directed probing sequence.
///
/// `probe_keys` returns up to `t` bucket keys, starting with the base
/// bucket `g(q)` and continuing in decreasing estimated success
/// probability (Lv et al.'s perturbation ordering).
pub trait ProbeSequence<P: ?Sized>: GFunction<P> {
    /// The first `t` probe keys for query `q`.
    fn probe_keys(&self, q: &P, t: usize) -> Vec<u64>;
}

impl ProbeSequence<[f32]> for PStableGFn {
    fn probe_keys(&self, q: &[f32], t: usize) -> Vec<u64> {
        let base = self.atom_values(q);
        let mut keys = Vec::with_capacity(t);
        keys.push(self.key_from_atoms(&base));
        if t <= 1 {
            return keys;
        }
        // Option (j, −1): the projection sits `offset` above the lower
        // boundary; option (j, +1): `w − offset` below the upper one.
        let w = self.w();
        let mut options = Vec::with_capacity(2 * self.k());
        for j in 0..self.k() {
            let off = self.boundary_offset(j, q);
            options.push(ProbeOption {
                score: off * off,
                group: j as u32,
                payload: (j as u64) << 1,
            });
            let up = w - off;
            options.push(ProbeOption {
                score: up * up,
                group: j as u32,
                payload: ((j as u64) << 1) | 1,
            });
        }
        let mut scratch = base.clone();
        for set in PerturbationGenerator::new(options).take(t - 1) {
            scratch.copy_from_slice(&base);
            for payload in set {
                let j = (payload >> 1) as usize;
                let delta = if payload & 1 == 1 { 1 } else { -1 };
                scratch[j] += delta;
            }
            keys.push(self.key_from_atoms(&scratch));
        }
        keys
    }
}

impl ProbeSequence<[f32]> for SimHashGFn {
    fn probe_keys(&self, q: &[f32], t: usize) -> Vec<u64> {
        let base = self.bucket_key(q);
        let mut keys = Vec::with_capacity(t);
        keys.push(base);
        if t <= 1 {
            return keys;
        }
        // Flipping bit j crosses hyperplane j; the smaller the margin,
        // the likelier a near neighbor lies on the other side.
        let options: Vec<ProbeOption> = (0..self.k())
            .map(|j| {
                let m = self.margin(j, q);
                ProbeOption { score: m * m, group: j as u32, payload: j as u64 }
            })
            .collect();
        for set in PerturbationGenerator::new(options).take(t - 1) {
            let mut key = base;
            for bit in set {
                key ^= 1u64 << bit;
            }
            keys.push(key);
        }
        keys
    }
}

impl ProbeSequence<[u64]> for BitSamplingGFn {
    fn probe_keys(&self, q: &[u64], t: usize) -> Vec<u64> {
        let base = self.bucket_key(q);
        let mut keys = Vec::with_capacity(t);
        keys.push(base);
        if t <= 1 {
            return keys;
        }
        // Every sampled bit is equally likely to differ (probability
        // r/d each), so all single-bit flips score identically and the
        // generator enumerates by flip count.
        let options: Vec<ProbeOption> = (0..self.k())
            .map(|j| ProbeOption { score: 1.0, group: j as u32, payload: j as u64 })
            .collect();
        for set in PerturbationGenerator::new(options).take(t - 1) {
            let mut key = base;
            for bit in set {
                key ^= 1u64 << bit;
            }
            keys.push(key);
        }
        keys
    }
}

/// Steps S1–S2 of a multi-probe query plus the Algorithm 2 decision,
/// shared by [`multiprobe_query`] and
/// [`multiprobe_topk`](crate::multiprobe_topk).
///
/// Probes the `probes_per_table` best buckets per table (every lookup
/// goes through the `BucketStore` trait, so this works unchanged on
/// hashmap and frozen backends). Under [`Strategy::Hybrid`] the probed
/// sizes and merged sketches drive the arm choice; [`Strategy::LshOnly`]
/// always prefers the candidate arm; [`Strategy::LinearOnly`] probes
/// nothing and never prefers it. Returns `(buckets, collisions,
/// hash_nanos, cand_estimate, hll_nanos, prefer_lsh)`.
#[allow(clippy::type_complexity)]
pub(crate) fn probe_and_decide<'a, S, F, D, B>(
    index: &'a HybridLshIndex<S, F, D, B>,
    q: &S::Point,
    probes_per_table: usize,
    strategy: Strategy,
) -> (Vec<BucketRef<'a>>, usize, u64, f64, u64, bool)
where
    S: PointSet,
    F: LshFamily<S::Point>,
    F::GFn: ProbeSequence<S::Point>,
    D: Distance<S::Point>,
    B: BucketStore,
{
    assert!(probes_per_table > 0, "need at least one probe per table");
    if matches!(strategy, Strategy::LinearOnly) {
        return (Vec::new(), 0, 0, 0.0, 0, false);
    }
    let t_hash = Instant::now();
    let mut buckets: Vec<BucketRef<'_>> = Vec::new();
    let mut collisions = 0usize;
    for table in index.raw_tables() {
        for key in table.g().probe_keys(q, probes_per_table) {
            if let Some(b) = table.bucket_for_key(key) {
                collisions += b.len();
                buckets.push(b);
            }
        }
    }
    let hash_nanos = t_hash.elapsed().as_nanos() as u64;

    let (hll_nanos, prefer_lsh, cand_estimate) = match strategy {
        Strategy::Hybrid => {
            let t_hll = Instant::now();
            let mut acc = MergeAccumulator::new(index.hll_config());
            for b in &buckets {
                b.contribute_to(&mut acc);
            }
            let est = acc.estimate();
            let hll_nanos = t_hll.elapsed().as_nanos() as u64;
            let prefer = index.cost_model().prefer_lsh(collisions, est, index.len());
            (hll_nanos, prefer, est)
        }
        _ => (0, true, 0.0),
    };
    (buckets, collisions, hash_nanos, cand_estimate, hll_nanos, prefer_lsh)
}

/// Multi-probe query with the hybrid cost decision.
///
/// Probes the `probes_per_table` best buckets in each of the `L`
/// tables. Under [`Strategy::Hybrid`] the probed buckets' sizes and
/// sketches drive the Algorithm 2 decision exactly as in single-probe
/// hybrid search; [`Strategy::LshOnly`] always collects candidates;
/// [`Strategy::LinearOnly`] always scans.
///
/// # Panics
/// Panics if `probes_per_table == 0`.
pub fn multiprobe_query<S, F, D, B>(
    index: &HybridLshIndex<S, F, D, B>,
    q: &S::Point,
    r: f64,
    probes_per_table: usize,
    strategy: Strategy,
) -> QueryOutput
where
    S: PointSet,
    F: LshFamily<S::Point>,
    F::GFn: ProbeSequence<S::Point>,
    D: Distance<S::Point>,
    B: BucketStore,
{
    let t_start = Instant::now();
    let (buckets, collisions, hash_nanos, cand_estimate, hll_nanos, prefer_lsh) =
        probe_and_decide(index, q, probes_per_table, strategy);

    if prefer_lsh {
        // S2 dedup, then one batched S3 kernel call over the whole
        // candidate list (same shape as the core engine's LSH arm).
        let mut seen: hlsh_core::hasher::FxHashSet<PointId> =
            hlsh_core::hasher::FxHashSet::default();
        let mut cands = Vec::new();
        for b in &buckets {
            for &id in b.members() {
                if seen.insert(id) {
                    cands.push(id);
                }
            }
        }
        let mut ids = Vec::new();
        index.distance().verify_many(index.data(), &cands, q, r, &mut ids);
        let cand_actual = cands.len();
        QueryOutput {
            report: QueryReport {
                executed: ExecutedArm::Lsh,
                collisions,
                cand_size_estimate: if matches!(strategy, Strategy::Hybrid) {
                    cand_estimate
                } else {
                    cand_actual as f64
                },
                cand_size_actual: Some(cand_actual),
                output_size: ids.len(),
                hash_nanos,
                hll_nanos,
                total_nanos: t_start.elapsed().as_nanos() as u64,
            },
            ids,
        }
    } else {
        let ids = linear_scan(index, q, r);
        QueryOutput {
            report: QueryReport {
                executed: ExecutedArm::Linear,
                collisions,
                cand_size_estimate: cand_estimate,
                cand_size_actual: None,
                output_size: ids.len(),
                hash_nanos,
                hll_nanos,
                total_nanos: t_start.elapsed().as_nanos() as u64,
            },
            ids,
        }
    }
}

fn linear_scan<S, F, D, B>(index: &HybridLshIndex<S, F, D, B>, q: &S::Point, r: f64) -> Vec<PointId>
where
    S: PointSet,
    F: LshFamily<S::Point>,
    D: Distance<S::Point>,
    B: BucketStore,
{
    let mut out = Vec::new();
    index.distance().scan_within(index.data(), q, r, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlsh_core::{CostModel, IndexBuilder};
    use hlsh_families::sampling::rng_stream;
    use hlsh_families::{BitSampling, PStableL2, SimHash};
    use hlsh_vec::{BinaryDataset, DenseDataset, Hamming, L2};

    #[test]
    fn pstable_probe_keys_start_with_base_and_are_distinct() {
        let family = PStableL2::new(6, 2.0);
        let g = family.sample(5, &mut rng_stream(1, 0));
        let q = [0.3f32, -1.0, 0.7, 2.0, 0.0, -0.4];
        let keys = g.probe_keys(&q, 10);
        assert_eq!(keys.len(), 10);
        assert_eq!(keys[0], g.bucket_key(&q));
        let set: std::collections::HashSet<u64> = keys.iter().copied().collect();
        assert_eq!(set.len(), keys.len(), "duplicate probe keys");
    }

    #[test]
    fn simhash_probe_flips_smallest_margin_first() {
        let family = SimHash::new(4);
        let g = family.sample(10, &mut rng_stream(2, 0));
        let q = [0.5f32, -0.2, 0.9, 0.1];
        let keys = g.probe_keys(&q, 3);
        let base = keys[0];
        // First perturbation must be a single-bit flip of the
        // minimal-margin bit.
        let margins: Vec<f64> = (0..10).map(|j| g.margin(j, &q).abs()).collect();
        let jmin = (0..10).min_by(|&a, &b| margins[a].partial_cmp(&margins[b]).unwrap()).unwrap();
        assert_eq!(keys[1], base ^ (1u64 << jmin));
    }

    #[test]
    fn bitsampling_probes_enumerate_by_flip_count() {
        let family = BitSampling::new(64);
        let g = family.sample(6, &mut rng_stream(3, 0));
        let q = [0xF0F0_F0F0_F0F0_F0F0u64];
        let keys = g.probe_keys(&q[..], 8);
        let base = keys[0];
        // Probes 1..=6 are the single flips; probe 7 flips two bits.
        for key in &keys[1..7] {
            assert_eq!((key ^ base).count_ones(), 1);
        }
        assert_eq!((keys[7] ^ base).count_ones(), 2);
    }

    #[test]
    fn multiprobe_recovers_more_neighbors_than_single_probe() {
        // A small index with few tables: single-probe misses some
        // neighbors; adding probes raises recall.
        let n = 2_000;
        let fps: Vec<u64> = (0..n as u64)
            .map(|i| hlsh_hll::hash::splitmix64(i / 4)) // groups of 4 duplicates
            .collect();
        let data = BinaryDataset::from_fingerprints(&fps);
        let index = IndexBuilder::new(BitSampling::new(64), Hamming)
            .tables(2)
            .hash_len(12)
            .seed(5)
            .cost_model(CostModel::from_ratio(1e9)) // force LSH arm
            .build(data);
        // Query: a fingerprint at distance 2 from a group of 4.
        let mut q = hlsh_hll::hash::splitmix64(100);
        q ^= 0b101;
        let single = multiprobe_query(&index, &[q][..], 3.0, 1, Strategy::LshOnly);
        let multi = multiprobe_query(&index, &[q][..], 3.0, 40, Strategy::LshOnly);
        assert!(
            multi.ids.len() >= single.ids.len(),
            "multi {} < single {}",
            multi.ids.len(),
            single.ids.len()
        );
        assert!(multi.report.collisions >= single.report.collisions);
    }

    #[test]
    fn hybrid_multiprobe_falls_back_to_linear_on_hard_queries() {
        // All points identical → every probe bucket is the whole data
        // set → candSize ≈ n → linear must win.
        let data = DenseDataset::from_rows(4, (0..500).map(|_| [1.0f32, 2.0, 3.0, 4.0]));
        let index = IndexBuilder::new(PStableL2::new(4, 1.0), L2)
            .tables(6)
            .hash_len(4)
            .seed(9)
            .cost_model(CostModel::from_ratio(2.0))
            .build(data);
        let out = multiprobe_query(&index, &[1.0f32, 2.0, 3.0, 4.0][..], 0.5, 4, Strategy::Hybrid);
        assert_eq!(out.report.executed, ExecutedArm::Linear);
        assert_eq!(out.ids.len(), 500);
    }

    #[test]
    fn linear_only_strategy_scans() {
        let data = DenseDataset::from_rows(2, (0..50).map(|i| [i as f32, 0.0]));
        let index = IndexBuilder::new(PStableL2::new(2, 1.0), L2)
            .tables(2)
            .hash_len(2)
            .seed(1)
            .cost_model(CostModel::from_ratio(1.0))
            .build(data);
        let out = multiprobe_query(&index, &[10.0f32, 0.0][..], 1.5, 5, Strategy::LinearOnly);
        assert_eq!(out.report.executed, ExecutedArm::Linear);
        assert_eq!(out.ids, vec![9, 10, 11]);
    }

    #[test]
    #[should_panic(expected = "at least one probe")]
    fn zero_probes_rejected() {
        let data = DenseDataset::from_rows(2, [[0.0f32, 0.0]]);
        let index = IndexBuilder::new(PStableL2::new(2, 1.0), L2)
            .tables(1)
            .hash_len(1)
            .seed(1)
            .cost_model(CostModel::from_ratio(1.0))
            .build(data);
        let _ = multiprobe_query(&index, &[0.0f32, 0.0][..], 1.0, 0, Strategy::Hybrid);
    }
}
