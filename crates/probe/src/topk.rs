//! Top-k nearest neighbors over a *single* index via multi-probe
//! candidate generation.
//!
//! The core crate's [`TopKIndex`](hlsh_core::TopKIndex) maintains one
//! rNNR index per radius level. Multi-probe offers a memory-light
//! alternative for one already-built index: the probe sequence recovers
//! the neighbors a single bucket misses, the candidates are verified
//! with exact distances into the same bounded `(distance, id)` heap,
//! and the hybrid cost model still arbitrates — on hard queries the
//! linear arm runs, which for top-k means an **exact** k-NN scan.
//! Whenever fewer than `k` candidates survive, the exact fallback scan
//! completes the answer, so `multiprobe_topk` always returns
//! `min(k, n)` neighbors.

use std::time::Instant;

use hlsh_core::store::BucketStore;
use hlsh_core::topk::{BoundedHeap, Neighbor, TopKOutput, TopKReport};
use hlsh_core::{HybridLshIndex, Strategy};
use hlsh_families::LshFamily;
use hlsh_vec::{Distance, PointId, PointSet};

use crate::multiprobe::ProbeSequence;

/// Top-k query over one hybrid index, probing the `probes_per_table`
/// best buckets per table.
///
/// Strategy semantics mirror [`multiprobe_query`](crate::multiprobe_query):
/// [`Strategy::Hybrid`] compares the probed collision count and merged
/// sketch estimate against the linear cost; [`Strategy::LshOnly`]
/// always verifies the probed candidates; [`Strategy::LinearOnly`]
/// always scans — the latter two bound the answer from below and above
/// (LinearOnly is exact). The report reuses [`TopKReport`] with
/// `levels_executed = 1`: a single index is one "level" of the top-k
/// reduction.
///
/// Distance ties break by ascending id, so results are deterministic
/// for a fixed index.
///
/// # Panics
/// Panics if `probes_per_table == 0`.
pub fn multiprobe_topk<S, F, D, B>(
    index: &HybridLshIndex<S, F, D, B>,
    q: &S::Point,
    k: usize,
    probes_per_table: usize,
    strategy: Strategy,
) -> TopKOutput
where
    S: PointSet,
    F: LshFamily<S::Point>,
    F::GFn: ProbeSequence<S::Point>,
    D: Distance<S::Point>,
    B: BucketStore,
{
    assert!(probes_per_table > 0, "need at least one probe per table");
    let t_start = Instant::now();
    let n = index.len();
    let k_eff = k.min(n);
    let mut report = TopKReport {
        levels_executed: 0,
        levels_skipped: 0,
        early_exit: false,
        exact_fallback: false,
        verified: 0,
        total_nanos: 0,
    };
    if k_eff == 0 {
        report.total_nanos = t_start.elapsed().as_nanos() as u64;
        return TopKOutput { neighbors: Vec::new(), report };
    }

    let mut heap = BoundedHeap::new(k_eff);
    let (data, distance) = (index.data(), index.distance());

    // Steps S1–S2 plus the Algorithm 2 decision, exactly as in
    // `multiprobe_query`: for top-k the "radius filter" is the heap
    // itself, so LSHCost keeps its shape (α·#collisions + β·candSize)
    // and LinearCost stays β·n.
    let (buckets, _collisions, _hash_nanos, _cand_estimate, _hll_nanos, prefer_lsh) =
        crate::multiprobe::probe_and_decide(index, q, probes_per_table, strategy);

    if prefer_lsh {
        report.levels_executed = 1;
        let mut seen: hlsh_core::hasher::FxHashSet<PointId> =
            hlsh_core::hasher::FxHashSet::default();
        for b in &buckets {
            for &id in b.members() {
                if seen.insert(id) {
                    let dist = distance.distance(data.point(id as usize), q);
                    heap.push(Neighbor { id, dist });
                }
            }
        }
        report.verified = seen.len();
        // Too few distinct candidates: finish exactly over the
        // remaining points (rejections only start once the heap is
        // full, so `seen ⊇ heap` exactly when it matters).
        if heap.len() < k_eff {
            report.exact_fallback = true;
            for id in 0..n {
                let id = id as PointId;
                if !seen.contains(&id) {
                    let dist = distance.distance(data.point(id as usize), q);
                    heap.push(Neighbor { id, dist });
                }
            }
        }
    } else {
        // Linear arm: exact top-k scan.
        report.exact_fallback = true;
        for id in 0..n {
            let dist = distance.distance(data.point(id), q);
            heap.push(Neighbor { id: id as PointId, dist });
        }
        report.verified = n;
    }

    report.total_nanos = t_start.elapsed().as_nanos() as u64;
    TopKOutput { neighbors: heap.into_sorted_vec(), report }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlsh_core::{CostModel, IndexBuilder};
    use hlsh_families::PStableL2;
    use hlsh_vec::{DenseDataset, L2};

    fn line_index(n: usize, ratio: f64) -> HybridLshIndex<DenseDataset, PStableL2, L2> {
        let data = DenseDataset::from_rows(2, (0..n).map(|i| [i as f32, 0.0]));
        IndexBuilder::new(PStableL2::new(2, 3.0), L2)
            .tables(6)
            .hash_len(4)
            .seed(11)
            .cost_model(CostModel::from_ratio(ratio))
            .build(data)
    }

    #[test]
    fn linear_only_is_exact() {
        let index = line_index(120, 4.0);
        let out = multiprobe_topk(&index, &[40.2f32, 0.0][..], 5, 4, Strategy::LinearOnly);
        assert_eq!(out.ids(), vec![40, 41, 39, 42, 38]);
        assert!(out.report.exact_fallback);
        assert_eq!(out.report.verified, 120);
    }

    #[test]
    fn hybrid_returns_full_k_and_contains_the_true_nearest() {
        let index = line_index(200, 4.0);
        for probes in [1, 4, 16] {
            let out = multiprobe_topk(&index, &[77.0f32, 0.0][..], 6, probes, Strategy::Hybrid);
            assert_eq!(out.neighbors.len(), 6, "probes {probes}");
            assert_eq!(out.neighbors[0].id, 77);
            assert_eq!(out.neighbors[0].dist, 0.0);
            // Ascending (dist, id).
            assert!(out.neighbors.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn more_probes_never_worsen_the_kth_distance() {
        let index = line_index(400, 1e9); // force the LSH arm
        let q = [203.4f32, 0.0];
        let few = multiprobe_topk(&index, &q[..], 8, 1, Strategy::LshOnly);
        let many = multiprobe_topk(&index, &q[..], 8, 24, Strategy::LshOnly);
        let kth = |o: &TopKOutput| o.neighbors.last().unwrap().dist;
        assert!(kth(&many) <= kth(&few) + 1e-12);
        assert!(many.report.verified >= few.report.verified);
    }

    #[test]
    fn k_larger_than_n_returns_all_points() {
        let index = line_index(30, 4.0);
        let out = multiprobe_topk(&index, &[5.0f32, 0.0][..], 64, 2, Strategy::Hybrid);
        assert_eq!(out.neighbors.len(), 30);
        assert!(out.report.exact_fallback);
    }

    #[test]
    fn k_zero_is_empty() {
        let index = line_index(20, 4.0);
        let out = multiprobe_topk(&index, &[1.0f32, 0.0][..], 0, 2, Strategy::Hybrid);
        assert!(out.neighbors.is_empty());
        assert_eq!(out.report.levels_executed, 0);
    }

    #[test]
    #[should_panic(expected = "at least one probe")]
    fn zero_probes_rejected() {
        let index = line_index(10, 4.0);
        let _ = multiprobe_topk(&index, &[0.0f32, 0.0][..], 3, 0, Strategy::Hybrid);
    }
}
