//! Property-based tests of the HyperLogLog invariants the hybrid index
//! relies on: merge is a commutative, associative, idempotent semilattice
//! operation; merging equals unioning; estimates respect accuracy bounds.

use hlsh_hll::{HllConfig, HyperLogLog, MergeAccumulator};
use proptest::collection::vec;
use proptest::prelude::*;

fn cfg() -> HllConfig {
    HllConfig::new(7, 0xABCD)
}

fn sketch_of(ids: &[u64]) -> HyperLogLog {
    let mut h = HyperLogLog::new(cfg());
    for &id in ids {
        h.insert(id);
    }
    h
}

proptest! {
    #[test]
    fn merge_commutes(a in vec(any::<u64>(), 0..200), b in vec(any::<u64>(), 0..200)) {
        let sa = sketch_of(&a);
        let sb = sketch_of(&b);
        let mut ab = sa.clone();
        ab.merge_from(&sb);
        let mut ba = sb.clone();
        ba.merge_from(&sa);
        prop_assert_eq!(ab.registers(), ba.registers());
    }

    #[test]
    fn merge_is_associative(
        a in vec(any::<u64>(), 0..100),
        b in vec(any::<u64>(), 0..100),
        c in vec(any::<u64>(), 0..100),
    ) {
        let (sa, sb, sc) = (sketch_of(&a), sketch_of(&b), sketch_of(&c));
        let mut left = sa.clone();
        left.merge_from(&sb);
        left.merge_from(&sc);
        let mut bc = sb.clone();
        bc.merge_from(&sc);
        let mut right = sa.clone();
        right.merge_from(&bc);
        prop_assert_eq!(left.registers(), right.registers());
    }

    #[test]
    fn merge_is_idempotent(a in vec(any::<u64>(), 0..200)) {
        let sa = sketch_of(&a);
        let mut aa = sa.clone();
        aa.merge_from(&sa);
        prop_assert_eq!(aa.registers(), sa.registers());
    }

    #[test]
    fn merge_equals_union_stream(a in vec(any::<u64>(), 0..200), b in vec(any::<u64>(), 0..200)) {
        let mut merged = sketch_of(&a);
        merged.merge_from(&sketch_of(&b));
        let mut union_ids = a.clone();
        union_ids.extend_from_slice(&b);
        let union_sketch = sketch_of(&union_ids);
        prop_assert_eq!(merged.registers(), union_sketch.registers());
    }

    #[test]
    fn insertion_order_is_irrelevant(mut ids in vec(any::<u64>(), 1..300)) {
        let forward = sketch_of(&ids);
        ids.reverse();
        let backward = sketch_of(&ids);
        prop_assert_eq!(forward.registers(), backward.registers());
    }

    #[test]
    fn estimate_never_negative_and_zero_iff_empty(ids in vec(any::<u64>(), 0..300)) {
        let s = sketch_of(&ids);
        let e = s.estimate();
        prop_assert!(e >= 0.0);
        if ids.is_empty() {
            prop_assert_eq!(e, 0.0);
        } else {
            prop_assert!(e > 0.0);
        }
    }

    /// Small distinct sets (< m/4) sit squarely in the linear-counting
    /// regime, where the estimate is accurate to a couple of elements.
    #[test]
    fn small_sets_estimate_tightly(ids in vec(0u64..1_000_000, 1..32)) {
        let distinct: std::collections::HashSet<u64> = ids.iter().copied().collect();
        let s = sketch_of(&ids);
        let e = s.estimate();
        let n = distinct.len() as f64;
        prop_assert!((e - n).abs() <= (0.25 * n).max(2.0),
            "distinct={n} estimate={e}");
    }

    #[test]
    fn accumulator_matches_direct_merge(
        a in vec(any::<u64>(), 0..150),
        b in vec(any::<u64>(), 0..150),
    ) {
        let mut acc = MergeAccumulator::new(cfg());
        acc.add_sketch(&sketch_of(&a));
        acc.add_raw(b.iter().copied());
        let mut direct = sketch_of(&a);
        direct.merge_from(&sketch_of(&b));
        let acc_sketch = acc.into_sketch();
        prop_assert_eq!(acc_sketch.registers(), direct.registers());
    }
}

/// Deterministic accuracy sweep across magnitudes: the observed relative
/// error at m = 128 must stay within 3σ of the theoretical 1.04/√128.
#[test]
fn accuracy_sweep() {
    let sigma = hlsh_hll::relative_error(128);
    for &n in &[100u64, 1_000, 10_000, 50_000] {
        for seed in 0..3u64 {
            let config = HllConfig::new(7, seed * 17 + 1);
            let mut h = HyperLogLog::new(config);
            for i in 0..n {
                h.insert(i.wrapping_mul(0x2545F4914F6CDD1D).wrapping_add(seed));
            }
            let e = h.estimate();
            let rel = (e - n as f64).abs() / n as f64;
            assert!(rel < 3.5 * sigma, "n={n} seed={seed} rel={rel}");
        }
    }
}
