//! Query-time merge accumulation over mixed sketch/raw buckets.
//!
//! Paper §3.2: "For small buckets (e.g. #points < m), we might not need
//! HLL, since we can update the merged HLL on demand at the query time.
//! This trick can save the space overhead and improve the running time."
//!
//! [`MergeAccumulator`] is that merged HLL. Large buckets contribute via
//! [`add_sketch`](MergeAccumulator::add_sketch) (register-wise max,
//! `O(m)`); small buckets contribute their raw member ids via
//! [`add_raw`](MergeAccumulator::add_raw) (`O(#members)` hashing). The
//! result is bit-for-bit identical to having materialised a sketch in
//! every bucket.

use crate::dense::{HllConfig, HyperLogLog, SketchRef};

/// Accumulates the union sketch of several buckets.
#[derive(Clone, Debug)]
pub struct MergeAccumulator {
    sketch: HyperLogLog,
    merged_sketches: usize,
    raw_elements: usize,
}

impl MergeAccumulator {
    /// Creates an empty accumulator.
    pub fn new(config: HllConfig) -> Self {
        Self { sketch: HyperLogLog::new(config), merged_sketches: 0, raw_elements: 0 }
    }

    /// Merges a materialised bucket sketch.
    ///
    /// # Panics
    /// Panics if the sketch's config differs from the accumulator's.
    pub fn add_sketch(&mut self, other: &HyperLogLog) {
        self.add_sketch_ref(other.view());
    }

    /// Merges a borrowed sketch — register-wise `max` straight from the
    /// backing slice, so frozen-store register slabs are consumed with
    /// no intermediate copy or allocation.
    ///
    /// # Panics
    /// Panics if the view's config differs from the accumulator's.
    pub fn add_sketch_ref(&mut self, other: SketchRef<'_>) {
        assert_eq!(
            self.sketch.config(),
            other.config(),
            "cannot merge HyperLogLog sketches with different configs"
        );
        self.sketch.merge_registers(other.registers());
        self.merged_sketches += 1;
    }

    /// Feeds a small bucket's raw member ids directly.
    pub fn add_raw<I: IntoIterator<Item = u64>>(&mut self, ids: I) {
        for id in ids {
            self.sketch.insert(id);
            self.raw_elements += 1;
        }
    }

    /// Estimated number of distinct elements across everything added.
    pub fn estimate(&self) -> f64 {
        self.sketch.estimate()
    }

    /// The configuration this accumulator merges under (lets callers
    /// that pool accumulators across queries check compatibility before
    /// [`clear`](Self::clear)-and-reuse).
    pub fn config(&self) -> HllConfig {
        self.sketch.config()
    }

    /// Number of `add_sketch` calls (instrumentation for the Table 1
    /// cost accounting).
    pub fn merged_sketches(&self) -> usize {
        self.merged_sketches
    }

    /// Number of raw elements hashed (instrumentation).
    pub fn raw_elements(&self) -> usize {
        self.raw_elements
    }

    /// The union sketch's raw registers (`m = 2^precision` bytes) —
    /// what a shard node ships over the wire so a coordinator can
    /// max-merge summaries from every shard.
    pub fn registers(&self) -> &[u8] {
        self.sketch.registers()
    }

    /// Consumes the accumulator, returning the union sketch.
    pub fn into_sketch(self) -> HyperLogLog {
        self.sketch
    }

    /// Resets to empty, keeping the allocation.
    pub fn clear(&mut self) {
        self.sketch.clear();
        self.merged_sketches = 0;
        self.raw_elements = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> HllConfig {
        HllConfig::new(7, 7777)
    }

    #[test]
    fn raw_and_sketch_paths_agree() {
        // Bucket A materialised, bucket B raw: the union must equal a
        // sketch fed every element directly.
        let mut bucket_a = HyperLogLog::new(cfg());
        for i in 0..500u64 {
            bucket_a.insert(i);
        }
        let bucket_b_members: Vec<u64> = (400..520).collect();

        let mut acc = MergeAccumulator::new(cfg());
        acc.add_sketch(&bucket_a);
        acc.add_raw(bucket_b_members.iter().copied());

        let mut reference = HyperLogLog::new(cfg());
        for i in 0..520u64 {
            reference.insert(i);
        }
        assert_eq!(acc.into_sketch().registers(), reference.registers());
    }

    #[test]
    fn counts_instrumentation() {
        let mut acc = MergeAccumulator::new(cfg());
        acc.add_sketch(&HyperLogLog::new(cfg()));
        acc.add_sketch(&HyperLogLog::new(cfg()));
        acc.add_raw([1, 2, 3]);
        assert_eq!(acc.merged_sketches(), 2);
        assert_eq!(acc.raw_elements(), 3);
    }

    #[test]
    fn estimate_of_disjoint_buckets_adds_up() {
        let mut acc = MergeAccumulator::new(cfg());
        let mut a = HyperLogLog::new(cfg());
        let mut b = HyperLogLog::new(cfg());
        for i in 0..3_000u64 {
            a.insert(i);
        }
        for i in 3_000..6_000u64 {
            b.insert(i);
        }
        acc.add_sketch(&a);
        acc.add_sketch(&b);
        let e = acc.estimate();
        assert!((e - 6_000.0).abs() / 6_000.0 < 0.3, "estimate {e}");
    }

    #[test]
    fn duplicates_across_buckets_not_double_counted() {
        // The whole point of candSize: the same point in L buckets is one
        // distinct candidate.
        let members: Vec<u64> = (0..1_000).collect();
        let mut acc = MergeAccumulator::new(cfg());
        for _ in 0..50 {
            acc.add_raw(members.iter().copied());
        }
        let e = acc.estimate();
        assert!((e - 1_000.0).abs() / 1_000.0 < 0.3, "estimate {e}");
    }

    #[test]
    fn clear_resets_state() {
        let mut acc = MergeAccumulator::new(cfg());
        acc.add_raw([1, 2, 3]);
        acc.clear();
        assert_eq!(acc.estimate(), 0.0);
        assert_eq!(acc.raw_elements(), 0);
        assert_eq!(acc.merged_sketches(), 0);
    }
}
