//! Cardinality estimation from a register array.
//!
//! Implements the estimator of Flajolet et al. 2007 exactly as the paper
//! cites it: raw estimate `α_m · m² / Σ 2^{−M[j]}` with the small-range
//! linear-counting correction. The large-range correction of the
//! original paper exists only to patch 32-bit hash saturation; our
//! hashes are 64-bit, so it is unnecessary (and omitted, as in every
//! modern implementation).

/// Bias-correction constant `α_m` for `m = 2^precision` registers.
///
/// Values for m = 16, 32, 64 are the exact constants from Flajolet et
/// al.; larger m uses the asymptotic formula `0.7213 / (1 + 1.079/m)`.
///
/// # Panics
/// Panics if `m < 16` (precision < 4), below the algorithm's validity
/// range.
pub fn alpha(m: usize) -> f64 {
    assert!(m >= 16, "HyperLogLog needs at least 16 registers, got {m}");
    match m {
        16 => 0.673,
        32 => 0.697,
        64 => 0.709,
        _ => 0.7213 / (1.0 + 1.079 / m as f64),
    }
}

/// Theoretical relative standard error `1.04 / √m` of an `m`-register
/// sketch (paper §2: "The relative error of HLL is 1.04/√m").
pub fn relative_error(m: usize) -> f64 {
    1.04 / (m as f64).sqrt()
}

/// The raw HyperLogLog estimate `α_m · m² / Σ_j 2^{−M[j]}`.
pub fn raw_estimate(registers: &[u8]) -> f64 {
    let m = registers.len();
    let sum: f64 = registers.iter().map(|&r| 2f64.powi(-(r as i32))).sum();
    alpha(m) * (m * m) as f64 / sum
}

/// Full estimate with the small-range correction: when the raw estimate
/// is below `2.5·m` and empty registers remain, fall back to linear
/// counting `m · ln(m / V)` where `V` is the number of zero registers.
pub fn estimate(registers: &[u8]) -> f64 {
    let m = registers.len();
    let raw = raw_estimate(registers);
    if raw <= 2.5 * m as f64 {
        let zeros = registers.iter().filter(|&&r| r == 0).count();
        if zeros > 0 {
            return m as f64 * (m as f64 / zeros as f64).ln();
        }
    }
    raw
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alpha_known_values() {
        assert_eq!(alpha(16), 0.673);
        assert_eq!(alpha(32), 0.697);
        assert_eq!(alpha(64), 0.709);
        assert!((alpha(128) - 0.7213 / (1.0 + 1.079 / 128.0)).abs() < 1e-12);
        assert!(alpha(1024) < 0.7213);
    }

    #[test]
    #[should_panic(expected = "at least 16 registers")]
    fn alpha_rejects_tiny_m() {
        let _ = alpha(8);
    }

    #[test]
    fn relative_error_matches_paper() {
        // m = 128 → ~9.2%, which the paper rounds to "at most 10%".
        let e = relative_error(128);
        assert!(e < 0.10 && e > 0.08, "{e}");
        assert!((relative_error(16) - 0.26).abs() < 0.01);
    }

    #[test]
    fn empty_registers_estimate_zero() {
        let regs = vec![0u8; 64];
        // Linear counting with V = m gives m·ln(1) = 0.
        assert_eq!(estimate(&regs), 0.0);
    }

    #[test]
    fn estimate_monotone_in_register_values() {
        let low = vec![1u8; 64];
        let high = vec![2u8; 64];
        assert!(raw_estimate(&high) > raw_estimate(&low));
    }

    #[test]
    fn linear_counting_single_element() {
        // One register at some value, rest zero: linear counting says
        // m·ln(m/(m-1)) ≈ 1.
        let mut regs = vec![0u8; 128];
        regs[5] = 3;
        let e = estimate(&regs);
        assert!((e - 1.0).abs() < 0.1, "{e}");
    }

    #[test]
    fn raw_estimate_saturated_registers_is_large() {
        let regs = vec![32u8; 128];
        assert!(raw_estimate(&regs) > 1e10);
    }
}
