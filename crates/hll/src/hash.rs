//! Deterministic 64-bit element hashing.
//!
//! The paper models an HLL update as drawing `{m_i, v_i}` with
//! `m_i ~ Uniform([m])` and `v_i ~ Geometric(1/2)`. Both draws are
//! derived from a single well-mixed 64-bit hash of the element: the top
//! `b` bits index a register and the remaining bits' leading-zero count
//! is the geometric value. SplitMix64 is the mixer — it passes the usual
//! avalanche tests, is 3 multiplications per element, and is entirely
//! deterministic given the seed, so all experiments reproduce exactly.

/// The 64-bit golden-ratio constant used to derive per-seed streams.
pub const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// SplitMix64 finalizer: a bijective avalanche mix of one `u64`.
#[inline]
pub fn splitmix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Hashes element `id` under stream `seed`.
///
/// Different seeds give (statistically) independent hash functions;
/// identical seeds give identical functions, which is what makes two
/// sketches built in different buckets mergeable.
#[inline]
pub fn hash_id(seed: u64, id: u64) -> u64 {
    splitmix64(id.wrapping_add(seed.wrapping_mul(GOLDEN_GAMMA)).wrapping_add(GOLDEN_GAMMA))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_nontrivial() {
        assert_eq!(splitmix64(0), splitmix64(0));
        // 0 is the fixed point of the finalizer; real inputs are offset
        // by GOLDEN_GAMMA in hash_id so this never matters in practice.
        assert_eq!(splitmix64(0), 0);
        assert_ne!(splitmix64(1), splitmix64(2));
        assert_ne!(splitmix64(1), 1);
    }

    #[test]
    fn splitmix_is_bijective_on_sample() {
        // A bijection cannot collide; sample a few thousand inputs.
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            assert!(seen.insert(splitmix64(i)), "collision at {i}");
        }
    }

    #[test]
    fn hash_id_depends_on_seed_and_id() {
        assert_eq!(hash_id(7, 42), hash_id(7, 42));
        assert_ne!(hash_id(7, 42), hash_id(8, 42));
        assert_ne!(hash_id(7, 42), hash_id(7, 43));
    }

    #[test]
    fn hash_id_bits_look_uniform() {
        // Count set bits over many hashes; expect ~32 per word on average.
        let mut total = 0u64;
        let n = 4_096u64;
        for i in 0..n {
            total += hash_id(123, i).count_ones() as u64;
        }
        let mean = total as f64 / n as f64;
        assert!((mean - 32.0).abs() < 0.5, "mean popcount {mean}");
    }

    #[test]
    fn top_bits_spread_over_registers() {
        // The register index derives from the top bits; check rough
        // uniformity over 128 registers.
        let m = 128usize;
        let mut counts = vec![0u32; m];
        let n = 128_000u64;
        for i in 0..n {
            let h = hash_id(99, i);
            counts[(h >> (64 - 7)) as usize] += 1;
        }
        let expect = (n as usize / m) as f64;
        for (j, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64 - expect).abs() < expect * 0.25,
                "register {j} count {c} far from {expect}"
            );
        }
    }
}
