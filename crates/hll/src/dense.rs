//! The dense register-array HyperLogLog sketch.

use crate::estimator;
use crate::hash;

/// Shared configuration for every sketch of one index: register count
/// (as a power of two) and the element-hash seed.
///
/// Sketches are only mergeable when their configs are identical — the
/// register-wise `max` of two sketches equals the sketch of the union
/// *only* if both hashed elements with the same function.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct HllConfig {
    precision: u8,
    seed: u64,
}

impl HllConfig {
    /// Creates a config with `m = 2^precision` registers.
    ///
    /// The paper uses `precision = 7` (`m = 128`, ≤ 10% error) for the
    /// main experiments and notes `m = 32` suffices for MNIST.
    ///
    /// # Panics
    /// Panics unless `4 ≤ precision ≤ 16`.
    pub fn new(precision: u8, seed: u64) -> Self {
        assert!((4..=16).contains(&precision), "precision must be in 4..=16, got {precision}");
        Self { precision, seed }
    }

    /// Number of registers `m = 2^precision`.
    #[inline]
    pub fn registers(&self) -> usize {
        1 << self.precision
    }

    /// Precision (log2 of register count).
    #[inline]
    pub fn precision(&self) -> u8 {
        self.precision
    }

    /// The element-hash seed shared by all sketches of an index.
    #[inline]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Theoretical relative standard error `1.04/√m`.
    pub fn relative_error(&self) -> f64 {
        estimator::relative_error(self.registers())
    }

    /// Hashes an element id into the 64-bit space used by sketches of
    /// this config.
    #[inline]
    pub fn hash_element(&self, id: u64) -> u64 {
        hash::hash_id(self.seed, id)
    }
}

/// A HyperLogLog sketch: `m` one-byte registers.
///
/// Registers store `max` of geometric draws; with 64-bit hashes the
/// value is at most `64 − precision + 1 ≤ 61`, so `u8` never saturates.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HyperLogLog {
    config: HllConfig,
    registers: Vec<u8>,
}

impl HyperLogLog {
    /// Creates an empty sketch.
    pub fn new(config: HllConfig) -> Self {
        Self { config, registers: vec![0; config.registers()] }
    }

    /// Rebuilds a sketch from a raw register array (e.g. a row of a
    /// frozen store's register slab being thawed back to owned form).
    ///
    /// # Panics
    /// Panics if `registers.len() != config.registers()`.
    pub fn from_registers(config: HllConfig, registers: Vec<u8>) -> Self {
        assert_eq!(registers.len(), config.registers(), "register array length mismatch");
        Self { config, registers }
    }

    /// A borrowed, zero-allocation view of this sketch.
    #[inline]
    pub fn view(&self) -> SketchRef<'_> {
        SketchRef { config: self.config, registers: &self.registers }
    }

    /// The sketch's configuration.
    #[inline]
    pub fn config(&self) -> HllConfig {
        self.config
    }

    /// Read-only view of the register array.
    #[inline]
    pub fn registers(&self) -> &[u8] {
        &self.registers
    }

    /// Register-wise `max` with a raw register array of the same length
    /// (the slab-merge primitive: callers guarantee the registers were
    /// produced under an identical [`HllConfig`]).
    ///
    /// # Panics
    /// Panics if the lengths differ.
    pub fn merge_registers(&mut self, registers: &[u8]) {
        assert_eq!(
            self.registers.len(),
            registers.len(),
            "cannot merge register arrays of different sizes"
        );
        for (a, &b) in self.registers.iter_mut().zip(registers) {
            if b > *a {
                *a = b;
            }
        }
    }

    /// Inserts an element by id (hashed internally with the config seed).
    #[inline]
    pub fn insert(&mut self, id: u64) {
        self.insert_hash(self.config.hash_element(id));
    }

    /// Inserts a pre-hashed element. The hash must come from
    /// [`HllConfig::hash_element`] of an identical config.
    #[inline]
    pub fn insert_hash(&mut self, h: u64) {
        let b = self.config.precision;
        let idx = (h >> (64 - b)) as usize;
        // Remaining 64−b bits; rho = leading zeros + 1, and an all-zero
        // remainder maps to the maximum value 64−b+1.
        let rest = h << b;
        let rho = if rest == 0 { 64 - b as u32 + 1 } else { rest.leading_zeros() + 1 };
        let rho = rho as u8;
        if rho > self.registers[idx] {
            self.registers[idx] = rho;
        }
    }

    /// Merges another sketch into this one (register-wise `max`), so that
    /// `self` becomes the sketch of the union of both element streams.
    ///
    /// # Panics
    /// Panics if the configs differ.
    pub fn merge_from(&mut self, other: &HyperLogLog) {
        assert_eq!(
            self.config, other.config,
            "cannot merge HyperLogLog sketches with different configs"
        );
        self.merge_registers(&other.registers);
    }

    /// Estimated cardinality (with small-range correction).
    pub fn estimate(&self) -> f64 {
        estimator::estimate(&self.registers)
    }

    /// Whether no element was ever inserted.
    ///
    /// (An inserted element always raises some register to ≥ 1.)
    pub fn is_empty(&self) -> bool {
        self.registers.iter().all(|&r| r == 0)
    }

    /// Resets the sketch to empty.
    pub fn clear(&mut self) {
        self.registers.iter_mut().for_each(|r| *r = 0);
    }

    /// Heap memory used by the register array, in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.registers.len()
    }
}

/// A borrowed HyperLogLog: a config tag plus a register slice.
///
/// This is the currency of zero-pointer sketch storage — a frozen
/// store keeps all registers in one contiguous slab and hands out
/// `SketchRef`s pointing into it, while owned [`HyperLogLog`]s lend
/// views via [`HyperLogLog::view`]. Estimation and merging behave
/// exactly like the owned sketch over the same registers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SketchRef<'a> {
    config: HllConfig,
    registers: &'a [u8],
}

impl<'a> SketchRef<'a> {
    /// Wraps a raw register slice (storage backends only).
    ///
    /// # Panics
    /// Panics if `registers.len() != config.registers()`.
    #[inline]
    pub fn new(config: HllConfig, registers: &'a [u8]) -> Self {
        assert_eq!(registers.len(), config.registers(), "register slice length mismatch");
        Self { config, registers }
    }

    /// The configuration the registers were produced under.
    #[inline]
    pub fn config(&self) -> HllConfig {
        self.config
    }

    /// The borrowed register array.
    #[inline]
    pub fn registers(&self) -> &'a [u8] {
        self.registers
    }

    /// Estimated cardinality (with small-range correction) — identical
    /// to [`HyperLogLog::estimate`] over the same registers.
    pub fn estimate(&self) -> f64 {
        estimator::estimate(self.registers)
    }

    /// Copies into an owned sketch.
    pub fn to_owned(&self) -> HyperLogLog {
        HyperLogLog { config: self.config, registers: self.registers.to_vec() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> HllConfig {
        HllConfig::new(7, 0xDEAD_BEEF)
    }

    #[test]
    fn config_accessors() {
        let c = HllConfig::new(7, 9);
        assert_eq!(c.registers(), 128);
        assert_eq!(c.precision(), 7);
        assert_eq!(c.seed(), 9);
        assert!(c.relative_error() < 0.1);
    }

    #[test]
    #[should_panic(expected = "precision must be in 4..=16")]
    fn config_rejects_bad_precision() {
        let _ = HllConfig::new(3, 0);
    }

    #[test]
    fn empty_sketch_estimates_zero() {
        let h = HyperLogLog::new(cfg());
        assert!(h.is_empty());
        assert_eq!(h.estimate(), 0.0);
        assert_eq!(h.memory_bytes(), 128);
    }

    #[test]
    fn insert_is_idempotent() {
        let mut h = HyperLogLog::new(cfg());
        h.insert(42);
        let snapshot = h.registers().to_vec();
        for _ in 0..100 {
            h.insert(42);
        }
        assert_eq!(h.registers(), &snapshot[..]);
    }

    #[test]
    fn small_cardinalities_are_near_exact() {
        // Linear counting makes tiny counts very accurate.
        for n in [1u64, 5, 20, 60] {
            let mut h = HyperLogLog::new(cfg());
            for i in 0..n {
                h.insert(i);
            }
            let e = h.estimate();
            assert!((e - n as f64).abs() <= (n as f64 * 0.15).max(1.5), "n={n} estimate={e}");
        }
    }

    #[test]
    fn large_cardinality_within_theory_error() {
        let n = 100_000u64;
        let mut h = HyperLogLog::new(cfg());
        for i in 0..n {
            h.insert(i);
        }
        let e = h.estimate();
        let rel = (e - n as f64).abs() / n as f64;
        // 1.04/sqrt(128) ≈ 9.2%; allow 3 sigma.
        assert!(rel < 3.0 * 0.092, "relative error {rel}");
    }

    #[test]
    fn merge_equals_union() {
        let mut a = HyperLogLog::new(cfg());
        let mut b = HyperLogLog::new(cfg());
        let mut u = HyperLogLog::new(cfg());
        for i in 0..1000u64 {
            a.insert(i);
            u.insert(i);
        }
        for i in 500..1500u64 {
            b.insert(i);
            u.insert(i);
        }
        a.merge_from(&b);
        assert_eq!(a.registers(), u.registers());
    }

    #[test]
    fn merge_is_commutative_and_idempotent() {
        let mut a = HyperLogLog::new(cfg());
        let mut b = HyperLogLog::new(cfg());
        for i in 0..300u64 {
            a.insert(i * 3);
            b.insert(i * 7);
        }
        let mut ab = a.clone();
        ab.merge_from(&b);
        let mut ba = b.clone();
        ba.merge_from(&a);
        assert_eq!(ab.registers(), ba.registers());
        let snapshot = ab.registers().to_vec();
        ab.merge_from(&b);
        assert_eq!(ab.registers(), &snapshot[..]);
    }

    #[test]
    #[should_panic(expected = "different configs")]
    fn merge_rejects_mismatched_configs() {
        let mut a = HyperLogLog::new(HllConfig::new(7, 1));
        let b = HyperLogLog::new(HllConfig::new(7, 2));
        a.merge_from(&b);
    }

    #[test]
    fn clear_resets() {
        let mut h = HyperLogLog::new(cfg());
        h.insert(1);
        assert!(!h.is_empty());
        h.clear();
        assert!(h.is_empty());
    }

    #[test]
    fn insert_hash_all_zero_rest_uses_max_rho() {
        let mut h = HyperLogLog::new(HllConfig::new(4, 0));
        // Hash with top 4 bits = 3 and the rest zero.
        h.insert_hash(3u64 << 60);
        assert_eq!(h.registers()[3], 61); // 64 - 4 + 1
    }
}
