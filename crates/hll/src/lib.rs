//! HyperLogLog cardinality sketches (Flajolet, Fusy, Gandouet, Meunier,
//! AofA 2007), as used per-bucket by the hybrid-LSH index.
//!
//! The paper (§2, §3) attaches one HLL to every bucket of every LSH hash
//! table. At query time the `L` sketches of the query's buckets are
//! merged (register-wise `max`) and the merged sketch estimates
//! `candSize` — the number of *distinct* points colliding with the query
//! — which feeds the cost model
//! `LSHCost = α·#collisions + β·candSize` (Eq. 1).
//!
//! Three requirements shape the implementation:
//!
//! 1. **Mergeability.** Every sketch in one index must hash elements with
//!    the same seeded function so that the register-wise `max` of two
//!    sketches is exactly the sketch of the union ([`HllConfig`] carries
//!    the shared seed).
//! 2. **Small-bucket laziness** (paper §3.2): buckets with fewer members
//!    than `m` registers would waste space on a sketch, so the index
//!    stores raw member lists for them and feeds the members into the
//!    merge accumulator on demand ([`MergeAccumulator::add_raw`]).
//! 3. **Accuracy.** The standard error is `1.04/√m`; the paper uses
//!    `m = 128` (≈ 9% relative error, in practice < 7%).
//!
//! # Example
//! ```
//! use hlsh_hll::{HllConfig, HyperLogLog, MergeAccumulator};
//!
//! let cfg = HllConfig::new(7, 42); // m = 128 registers, element seed 42
//! let mut a = HyperLogLog::new(cfg);
//! let mut b = HyperLogLog::new(cfg);
//! for i in 0..5_000u64 {
//!     a.insert(i);
//! }
//! for i in 2_500..7_500u64 {
//!     b.insert(i);
//! }
//! let mut acc = MergeAccumulator::new(cfg);
//! acc.add_sketch(&a);
//! acc.add_sketch(&b);
//! let est = acc.estimate();
//! assert!((est - 7_500.0).abs() / 7_500.0 < 0.25);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod dense;
pub mod estimator;
pub mod hash;
pub mod lazy;

pub use dense::{HllConfig, HyperLogLog, SketchRef};
pub use estimator::relative_error;
pub use lazy::MergeAccumulator;
