//! String strategies from simplified regex patterns.
//!
//! A `&str` used as a strategy is parsed as a sequence of elements,
//! each a literal character or a character class `[...]` (ranges,
//! escapes `\n` `\t` `\r` `\\` `\-` `\]`), optionally followed by a
//! `{n}` / `{lo,hi}` repetition. This covers the patterns the
//! workspace's tests use (e.g. `"[ -~\n]{0,300}"`); anything fancier
//! (alternation, groups, `*`/`+`) is rejected with a panic so a test
//! author notices immediately.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

#[derive(Clone, Debug)]
struct Element {
    chars: Vec<char>, // alphabet to draw from
    lo: usize,
    hi: usize, // inclusive
}

fn unescape(c: char) -> char {
    match c {
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        other => other,
    }
}

fn parse(pattern: &str) -> Vec<Element> {
    let mut chars = pattern.chars().peekable();
    let mut elements = Vec::new();
    while let Some(c) = chars.next() {
        let alphabet: Vec<char> = match c {
            '[' => {
                let mut set = Vec::new();
                let mut pending: Option<char> = None;
                loop {
                    let c = chars.next().unwrap_or_else(|| {
                        panic!("unterminated character class in pattern {pattern:?}")
                    });
                    match c {
                        ']' => {
                            if let Some(p) = pending {
                                set.push(p);
                            }
                            break;
                        }
                        '\\' => {
                            if let Some(p) =
                                pending.replace(unescape(chars.next().expect("dangling escape")))
                            {
                                set.push(p);
                            }
                        }
                        '-' if pending.is_some() && chars.peek() != Some(&']') => {
                            let start = pending.take().unwrap();
                            let mut end = chars.next().unwrap();
                            if end == '\\' {
                                end = unescape(chars.next().expect("dangling escape"));
                            }
                            assert!(start <= end, "inverted range in pattern {pattern:?}");
                            set.extend(start..=end);
                        }
                        other => {
                            if let Some(p) = pending.replace(other) {
                                set.push(p);
                            }
                        }
                    }
                }
                assert!(!set.is_empty(), "empty character class in pattern {pattern:?}");
                set
            }
            '\\' => vec![unescape(chars.next().expect("dangling escape"))],
            '*' | '+' | '?' | '(' | ')' | '|' => {
                panic!("unsupported regex feature {c:?} in pattern {pattern:?} (shim supports classes and {{m,n}} only)")
            }
            literal => vec![literal],
        };
        // Optional repetition.
        let (lo, hi) = if chars.peek() == Some(&'{') {
            chars.next();
            let spec: String = chars.by_ref().take_while(|&c| c != '}').collect();
            match spec.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().expect("bad repetition lower bound"),
                    hi.trim().parse().expect("bad repetition upper bound"),
                ),
                None => {
                    let n = spec.trim().parse().expect("bad repetition count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        assert!(lo <= hi, "inverted repetition in pattern {pattern:?}");
        elements.push(Element { chars: alphabet, lo, hi });
    }
    elements
}

impl Strategy for str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for el in parse(self) {
            let span = (el.hi - el.lo) as u64 + 1;
            let n = el.lo + if span <= 1 { 0 } else { rng.below(span) as usize };
            for _ in 0..n {
                out.push(el.chars[rng.below(el.chars.len() as u64) as usize]);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[test]
    fn printable_class_with_newline() {
        let mut rng = TestRng::deterministic("printable");
        let pattern = "[ -~\n]{0,300}";
        for _ in 0..50 {
            let s = Strategy::generate(pattern, &mut rng);
            assert!(s.chars().count() <= 300);
            assert!(s.chars().all(|c| c == '\n' || (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn literals_and_fixed_counts() {
        let mut rng = TestRng::deterministic("lit");
        let s = Strategy::generate("ab[01]{3}z", &mut rng);
        assert_eq!(s.len(), 6);
        assert!(s.starts_with("ab") && s.ends_with('z'));
        assert!(s[2..5].chars().all(|c| c == '0' || c == '1'));
    }

    #[test]
    fn escaped_dash_and_bracket() {
        let mut rng = TestRng::deterministic("esc");
        let s = Strategy::generate("[a\\-b]{10}", &mut rng);
        assert!(s.chars().all(|c| c == 'a' || c == '-' || c == 'b'));
    }

    #[test]
    #[should_panic(expected = "unsupported regex feature")]
    fn star_rejected() {
        let mut rng = TestRng::deterministic("star");
        let _ = Strategy::generate("a*", &mut rng);
    }
}
