//! Offline stand-in for the `proptest` crate.
//!
//! The build container cannot reach crates.io, so this crate implements
//! the subset of proptest the workspace's property tests use:
//!
//! * the [`proptest!`] macro (with `#![proptest_config(..)]` support),
//! * range strategies (`0u64..1000`, `-10.0f32..10.0`, ...),
//! * [`collection::vec`] with fixed or ranged sizes,
//! * [`arbitrary::any`] for primitives,
//! * simple regex-class string strategies (`"[ -~\n]{0,300}"`),
//! * `prop_assert!` / `prop_assert_eq!`.
//!
//! Cases are drawn from a deterministic per-test RNG (seeded from the
//! test's name), so failures reproduce exactly on re-run. Shrinking is
//! intentionally not implemented — a failing case prints its number and
//! the assertion message.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod string;
pub mod test_runner;

pub use arbitrary::any;
pub use strategy::Strategy;
pub use test_runner::TestRng;

/// Per-test configuration (`#![proptest_config(..)]`).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Everything a property test needs, in one glob import.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::collection::SizeRange;
    pub use crate::strategy::Strategy;
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Declares property tests: each `#[test] fn name(x in strategy, ..)`
/// item becomes a `#[test]` that runs the body over `config.cases`
/// random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@munch ($cfg) $($rest)*);
    };
    (@munch ($cfg:expr)) => {};
    (@munch ($cfg:expr)
        $(#[$attr:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng =
                $crate::test_runner::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                let mut __run = || {
                    $(let $pat = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    $body
                };
                // A plain call keeps panic locations intact; the case
                // index is recoverable by re-running (deterministic RNG).
                let _ = __case;
                __run();
            }
        }
        $crate::proptest!(@munch ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@munch ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 0u64..100, y in -1.0f32..1.0) {
            prop_assert!(x < 100);
            prop_assert!((-1.0..1.0).contains(&y));
        }

        #[test]
        fn vec_sizes_respected(v in crate::collection::vec(0u64..10, 3..7)) {
            prop_assert!((3..7).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn nested_vec_and_any(m in crate::collection::vec(crate::collection::vec(any::<bool>(), 4), 2), flag in any::<bool>()) {
            prop_assert_eq!(m.len(), 2);
            prop_assert!(m.iter().all(|row| row.len() == 4));
            let _ = flag;
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]

        /// Doc comments and config are both accepted.
        #[test]
        fn config_applies(s in "[a-c]{2,4}") {
            prop_assert!((2..=4).contains(&s.len()));
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }

        #[test]
        fn mut_patterns_allowed(mut v in crate::collection::vec(0u32..5, 1..4)) {
            v.sort_unstable();
            prop_assert!(v.windows(2).all(|w| w[0] <= w[1]));
        }
    }
}
