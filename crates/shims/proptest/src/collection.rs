//! Collection strategies (`vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A size specification for [`vec()`]: a fixed length or a half-open
/// range of lengths.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi: n + 1 }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self { lo: r.start, hi: r.end }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        Self { lo: *r.start(), hi: *r.end() + 1 }
    }
}

/// Strategy producing `Vec`s of values drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

/// See [`vec()`].
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let span = (self.size.hi - self.size.lo) as u64;
        let len = self.size.lo + if span <= 1 { 0 } else { rng.below(span) as usize };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::vec;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[test]
    fn fixed_size_is_exact() {
        let mut rng = TestRng::deterministic("fixed");
        let v = vec(0u64..10, 6).generate(&mut rng);
        assert_eq!(v.len(), 6);
    }

    #[test]
    fn ranged_size_varies_within_bounds() {
        let mut rng = TestRng::deterministic("ranged");
        let strat = vec(0u64..10, 2..9);
        let lens: Vec<usize> = (0..200).map(|_| strat.generate(&mut rng).len()).collect();
        assert!(lens.iter().all(|&l| (2..9).contains(&l)));
        assert!(lens.iter().collect::<std::collections::HashSet<_>>().len() > 3);
    }
}
