//! The [`Strategy`] trait and range-strategy implementations.

use crate::test_runner::TestRng;

/// A recipe for generating random values of one type.
///
/// Unlike upstream proptest there is no shrinking — `generate` draws
/// one value directly.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(rng.below(span as u64) as $t)
            }
        }
    )*};
}

int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                start + (rng.unit_f64() as $t) * (end - start)
            }
        }
    )*};
}

float_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);

#[cfg(test)]
mod tests {
    use super::Strategy;
    use crate::test_runner::TestRng;

    #[test]
    fn int_ranges_cover_without_escaping() {
        let mut rng = TestRng::deterministic("ints");
        let mut seen = [false; 5];
        for _ in 0..500 {
            let x = (10usize..15).generate(&mut rng);
            assert!((10..15).contains(&x));
            seen[x - 10] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn negative_int_ranges() {
        let mut rng = TestRng::deterministic("neg");
        for _ in 0..500 {
            let x = (-5i32..5).generate(&mut rng);
            assert!((-5..5).contains(&x));
        }
    }

    #[test]
    fn float_ranges_stay_inside() {
        let mut rng = TestRng::deterministic("floats");
        for _ in 0..500 {
            let x = (-2.0f32..3.0).generate(&mut rng);
            assert!((-2.0..3.0).contains(&x));
        }
    }

    #[test]
    fn reference_strategies_delegate() {
        let mut rng = TestRng::deterministic("refs");
        let s = 0u64..4;
        let by_ref = &s;
        // UFCS so the blanket `impl Strategy for &S` is the one used.
        assert!(Strategy::generate(&by_ref, &mut rng) < 4);
    }
}
