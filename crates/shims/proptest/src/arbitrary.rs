//! `any::<T>()` strategies for primitives.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite uniform floats cover the use cases here; NaN/inf edge
        // cases are the job of dedicated tests, not this shim.
        (rng.unit_f64() as f32 - 0.5) * 2.0e6
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.unit_f64() - 0.5) * 2.0e12
    }
}

/// The strategy returned by [`any`].
#[derive(Clone, Copy, Debug, Default)]
pub struct Any<T>(core::marker::PhantomData<T>);

/// Full-domain strategy for a primitive type.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::any;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[test]
    fn bool_any_hits_both_values() {
        let mut rng = TestRng::deterministic("bools");
        let strat = any::<bool>();
        let (mut t, mut f) = (false, false);
        for _ in 0..100 {
            if strat.generate(&mut rng) {
                t = true;
            } else {
                f = true;
            }
        }
        assert!(t && f);
    }

    #[test]
    fn u64_any_varies() {
        let mut rng = TestRng::deterministic("u64s");
        let strat = any::<u64>();
        let a = strat.generate(&mut rng);
        let b = strat.generate(&mut rng);
        assert_ne!(a, b);
    }
}
