//! Deterministic RNG driving the test cases.

/// A deterministic xoshiro256++ generator seeded from the test's name,
/// so every `cargo test` run draws the same cases.
#[derive(Clone, Debug)]
pub struct TestRng {
    s: [u64; 4],
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TestRng {
    /// Builds the generator for a named test.
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the name, then SplitMix64 expansion.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        let s = [
            splitmix64(h),
            splitmix64(h ^ 0x55AA),
            splitmix64(h ^ 0xDEAD_BEEF),
            splitmix64(h ^ 0x1234_5678_9ABC),
        ];
        Self { s }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty range");
        loop {
            let m = (self.next_u64() as u128) * (bound as u128);
            let low = m as u64;
            if low >= bound || low >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::TestRng;

    #[test]
    fn same_name_same_stream() {
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        let mut c = TestRng::deterministic("y");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = TestRng::deterministic("below");
        for _ in 0..1_000 {
            assert!(rng.below(7) < 7);
        }
    }
}
