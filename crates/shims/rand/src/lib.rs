//! Offline stand-in for the `rand` crate.
//!
//! The build container has no network access to crates.io, so this
//! workspace vendors the *small* subset of the `rand` 0.8 API it
//! actually uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen`] and [`Rng::gen_range`]. The generator is xoshiro256++
//! (Blackman & Vigna) seeded through SplitMix64 — statistically strong
//! for simulation work and fully deterministic, which is all the LSH
//! sampling pipeline needs. Streams produced here are **not** bit-equal
//! to upstream `rand`'s ChaCha-based `StdRng`; nothing in the
//! workspace depends on the exact stream, only on determinism.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// An RNG constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a single `u64` seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of a [`Standard`]-distributed type: uniform in
    /// `[0, 1)` for floats, uniform over all values for integers.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from a range (`a..b` or `a..=b`).
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<T: RngCore> Rng for T {}

/// Types samplable from the "standard" distribution.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        // 24 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange {
    /// The element type of the range.
    type Output;

    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> Self::Output;
}

/// Uniform integer in `[0, bound)` by multiply-shift with rejection of
/// the biased tail (Lemire's method).
fn uniform_below<R: RngCore>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (bound as u128);
        let low = m as u64;
        if low >= bound {
            return (m >> 64) as u64;
        }
        // Tail rejection: accept unless x falls in the biased zone.
        let threshold = bound.wrapping_neg() % bound;
        if low >= threshold {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(uniform_below(rng, span as u64) as $t)
            }
        }
    )*};
}

int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let unit: $t = Standard::sample(rng);
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}

float_range!(f32, f64);

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: xoshiro256++ seeded via SplitMix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, the reference seeding procedure.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ step.
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let (xa, xb, xc): (u64, u64, u64) = (a.gen(), b.gen(), c.gen());
        assert_eq!(xa, xb);
        assert_ne!(xa, xc);
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = rng.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let a = rng.gen_range(3u32..17);
            assert!((3..17).contains(&a));
            let b = rng.gen_range(0usize..=5);
            assert!(b <= 5);
            let c = rng.gen_range(-2.5f32..2.5);
            assert!((-2.5..2.5).contains(&c));
        }
    }

    #[test]
    fn uniform_mean_is_centered() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
    }

    #[test]
    fn small_range_hits_every_value() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut seen = [false; 4];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
