//! Offline stand-in for the `criterion` crate.
//!
//! The build container cannot reach crates.io, so this crate implements
//! the measurement surface the workspace's benches use —
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! `bench_with_input`, [`BenchmarkId`], the [`criterion_group!`] /
//! [`criterion_main!`] macros — over a simple wall-clock harness:
//! warm-up, then `sample_size` timed batches, reporting min/median/mean
//! nanoseconds per iteration on stdout. There is no statistical
//! regression analysis, HTML report, or saved baseline; for those, run
//! the same benches with real criterion outside the container.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 20,
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(1),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Warm-up duration before sampling.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Total measurement budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(self, &id.into(), &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into() }
    }
}

/// A named benchmark group.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into().0);
        run_one(self.criterion, &full, &mut f);
        self
    }

    /// Runs one benchmark parameterised by an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.0);
        run_one(self.criterion, &full, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Ends the group (report flushing is a no-op here).
    pub fn finish(self) {}
}

/// Identifier of one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        Self(format!("{function}/{parameter}"))
    }

    /// Identifier carrying only a parameter value.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self(parameter.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self(s)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self(s.to_string())
    }
}

/// Timing context handed to each benchmark closure.
pub struct Bencher {
    iters_per_sample: u64,
    samples: Vec<f64>, // ns per iteration
    budget: Duration,
    sample_size: usize,
    warm_up: Duration,
}

impl Bencher {
    /// Measures a closure: warm-up, auto-calibrated batch size, then
    /// timed batches.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warm-up and calibration: find an iteration count that makes a
        // single sample last roughly budget / sample_size.
        let warm_deadline = Instant::now() + self.warm_up;
        let mut calib_iters = 1u64;
        let mut per_iter = f64::INFINITY;
        while Instant::now() < warm_deadline {
            let t0 = Instant::now();
            for _ in 0..calib_iters {
                black_box(f());
            }
            let elapsed = t0.elapsed().as_nanos() as f64;
            per_iter = per_iter.min(elapsed / calib_iters as f64);
            if elapsed < 1_000_000.0 {
                calib_iters = calib_iters.saturating_mul(2);
            }
        }
        let target_sample_ns =
            (self.budget.as_nanos() as f64 / self.sample_size as f64).max(1_000.0);
        self.iters_per_sample =
            ((target_sample_ns / per_iter.max(0.1)) as u64).clamp(1, 1_000_000_000);

        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(f());
            }
            self.samples.push(t0.elapsed().as_nanos() as f64 / self.iters_per_sample as f64);
        }
    }
}

fn run_one(config: &Criterion, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        iters_per_sample: 1,
        samples: Vec::with_capacity(config.sample_size),
        budget: config.measurement,
        sample_size: config.sample_size,
        warm_up: config.warm_up,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{id:<48} (no samples: closure never called iter)");
        return;
    }
    let mut sorted = bencher.samples.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = sorted[sorted.len() / 2];
    let min = sorted[0];
    let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
    println!(
        "{id:<48} min {min:>12.1} ns/iter   median {median:>12.1} ns/iter   mean {mean:>12.1} ns/iter   ({} iters x {} samples)",
        bencher.iters_per_sample,
        sorted.len(),
    );
}

/// Declares a benchmark group function, in either the positional or the
/// `name = ..; config = ..; targets = ..` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_produces_samples() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(20));
        let mut calls = 0u64;
        c.bench_function("noop", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        assert!(calls > 0);
    }

    #[test]
    fn group_with_input_runs() {
        let mut c = Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(10));
        let mut group = c.benchmark_group("g");
        group
            .bench_with_input(BenchmarkId::from_parameter(42u32), &42u32, |b, &x| b.iter(|| x * 2));
        group.bench_function("plain", |b| b.iter(|| 1 + 1));
        group.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 8).0, "f/8");
        assert_eq!(BenchmarkId::from_parameter(128).0, "128");
    }
}
