//! Network serving layer for the hybrid-LSH index.
//!
//! Everything the previous layers built — batch-parallel query
//! execution, vectorized kernels, the top-k ladder, sharded indexes —
//! becomes reachable over a socket here. The crate has four parts:
//!
//! * [`protocol`] — the versioned, length-prefixed binary wire format
//!   (`docs/PROTOCOL.md` specifies it byte by byte), including the
//!   shard-extension frames a distributed deployment speaks;
//! * [`reactor`] — hand-rolled readiness notification (`epoll` on
//!   Linux, `poll(2)` elsewhere) behind the
//!   [`Reactor`](reactor::Reactor) trait, no external dependencies;
//! * [`conn`] — per-connection framing state machines tolerating
//!   partial reads and writes at any byte boundary, plus request-order
//!   response slots;
//! * [`timer`] — the timer wheel driving idle (slow-loris) eviction;
//! * [`server`] — the event-loop TCP server: one thread multiplexes
//!   every connection through the reactor, governs admission
//!   (connection limits with typed [`ErrorCode::Busy`] rejection,
//!   idle timeouts, per-request deadlines), and its **admission
//!   batcher** — with an arrival-rate-adaptive window by default —
//!   coalesces concurrent in-flight requests into one
//!   [`query_batch`](hlsh_core::ShardedIndex::query_batch) /
//!   [`query_topk_batch`](hlsh_core::ShardedTopKIndex::query_topk_batch)
//!   call per tick, so the existing scoped-thread sharding does the
//!   heavy lifting (no async runtime, no external dependencies);
//! * [`service`] — the [`QueryService`] trait plus
//!   [`ShardedLshService`] (standalone serving) and
//!   [`ShardNodeService`] (one node of a distributed deployment);
//! * [`coordinator`] — the [`Coordinator`], a `QueryService` that fans
//!   each batch out to remote shard nodes, merges their S1/S2
//!   summaries, resolves the hybrid decision globally and scatters the
//!   chosen arm back out (`docs/DISTRIBUTED.md` is the ops guide);
//! * [`client`] — a synchronous, connection-reusing [`Client`].
//!
//! Two binaries ship with the crate: `serve` (build the standard
//! mixture corpus and serve it) and `loadgen` (open/closed-loop load
//! generator reporting latency percentiles; `--json` writes a
//! `BENCH_serve.json` record).
//!
//! **Determinism contract:** responses are byte-identical to calling
//! the in-process batch APIs on the same index — the admission batcher
//! may merge and split requests, but never reorders results within a
//! request, and the wire encoding round-trips `f32`/`f64` bit
//! patterns exactly. `tests/server_loopback.rs` gates this in CI over
//! a loopback socket.
//!
//! # Example
//!
//! Serve a small index on an ephemeral port and query it:
//!
//! ```
//! use std::sync::Arc;
//! use std::time::Duration;
//!
//! use hlsh_core::{CostModel, IndexBuilder, ShardAssignment, ShardedIndex};
//! use hlsh_families::PStableL2;
//! use hlsh_server::{Client, ServerConfig, ShardedLshService};
//! use hlsh_vec::{DenseDataset, L2};
//!
//! // A toy 2-D grid, sharded in two, frozen for serving.
//! let data = DenseDataset::from_rows(2, (0..400).map(|i| [(i % 20) as f32, (i / 20) as f32]));
//! let index = ShardedIndex::build_frozen(
//!     data.clone(),
//!     ShardAssignment::new(7, 2),
//!     IndexBuilder::new(PStableL2::new(2, 2.0), L2)
//!         .tables(8)
//!         .hash_len(4)
//!         .seed(42)
//!         .cost_model(CostModel::from_ratio(4.0)),
//! );
//!
//! // In-process reference answer…
//! let queries = vec![vec![3.0f32, 3.0], vec![19.0, 19.0]];
//! let expect: Vec<Vec<u32>> =
//!     index.query_batch(&queries, 1.5).into_iter().map(|o| o.ids).collect();
//!
//! // …must be byte-identical over the socket.
//! let service = Arc::new(ShardedLshService::new(index, None, 2));
//! let mut server = hlsh_server::spawn(service, "127.0.0.1:0", ServerConfig::default()).unwrap();
//! let mut client = Client::connect_retry(server.local_addr(), Duration::from_secs(5)).unwrap();
//! assert_eq!(client.query_batch(&queries, 1.5).unwrap(), expect);
//! server.shutdown();
//! ```

#![warn(missing_docs)]
// `deny`, not `forbid`: the `sockopt` module (raw SO_REUSEADDR bind)
// and the two syscall shims in `reactor` (epoll / poll) are the
// crate's documented `unsafe` enclaves — see their module docs for
// the confined obligations. Everything else stays unsafe-free.
#![deny(unsafe_code)]

pub mod client;
pub mod conn;
pub mod coordinator;
pub mod protocol;
pub mod reactor;
pub mod server;
pub mod service;
pub mod sockopt;
pub mod timer;

pub use client::{Client, ClientError};
pub use coordinator::{Coordinator, CoordinatorConfig};
pub use protocol::{
    Arm, ErrorCode, QueryBlock, Request, Response, ServerInfo, ShardInfo, ShardLevelInfo,
    ShardParams, ShardRequest, ShardResponse, ShardSummaryEntry, ShardTarget, PROTOCOL_VERSION,
};
pub use server::{
    spawn, AdmissionWindow, QueryService, ServerConfig, ServerHandle, ServerStats, ServiceError,
};
pub use service::{LiveLshService, ShardNodeService, ShardedLshService};
