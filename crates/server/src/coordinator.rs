//! The distributed coordinator: one [`QueryService`] whose shards live
//! on other machines.
//!
//! # Data flow
//!
//! ```text
//!  client ──(client protocol, unchanged)──► coordinator
//!                                              │ 1. SHARD_SUMMARIZE to every shard
//!                                              ▼
//!                          shard 0 … shard N-1: probe own tables,
//!                          sum bucket sizes, merge own sketches,
//!                          return (collisions, HLL registers)
//!                                              │ 2. merge globally:
//!                                              │    Σ collisions,
//!                                              │    register-wise max,
//!                                              │    estimate once,
//!                                              │    Algorithm 2 once
//!                                              │ 3. SHARD_EXECUTE the
//!                                              │    chosen arm
//!                                              ▼
//!                          shards verify candidates / scan slabs,
//!                          return global ids (+ distances)
//!                                              │ 4. concatenate, sort,
//!                                              ▼    encode
//!  client ◄───────────────────────────────── response
//! ```
//!
//! The merge in step 2 is what keeps the hybrid decision *global*: HLL
//! register-wise `max` is associative and commutative, so max-merging
//! per-shard partial merges yields bit-identical registers — hence
//! bit-identical `f64` estimates, hence identical per-query arm
//! choices — to a single process probing every table itself. Combined
//! with the deterministic build (same seed ⇒ same assignment, hashes
//! and global ids on every node), distributed answers are
//! **byte-identical** to a single-process run over the same snapshot;
//! `tests/distributed.rs` and the multi-process CI gate pin this
//! across shard counts.
//!
//! # Failure semantics
//!
//! Each shard call runs under a per-request deadline (socket
//! read/write timeouts). A shard that is down, unreachable or late
//! fails the *affected client requests* with a typed
//! [`ErrorCode::Unavailable`] error frame — never a hang, never a
//! silently partial answer — and drops the broken connection. The next
//! request redials lazily, so a restarted shard rejoins without
//! coordinator intervention; the rejoin handshake re-validates the
//! shard's identity and parameters before trusting it.

use std::io::{self, BufReader, BufWriter};
use std::net::TcpStream;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use hlsh_core::{BoundedHeap, CostModel, Neighbor};
use hlsh_hll::{HllConfig, HyperLogLog};
use hlsh_vec::PointId;

use crate::client::ClientError;
use crate::protocol::{
    self, read_frame, write_frame, Arm, ErrorCode, QueryBlock, Response, ServerInfo, ShardInfo,
    ShardRequest, ShardResponse, ShardSummaryEntry, ShardTarget,
};
use crate::server::{QueryService, ServiceError};

/// Coordinator tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct CoordinatorConfig {
    /// Per-shard-call deadline: a shard that has not answered within
    /// this window fails the call with [`ErrorCode::Unavailable`].
    pub shard_deadline: Duration,
    /// How long [`Coordinator::connect`] keeps retrying unreachable
    /// shards at startup before giving up (covers shard nodes still
    /// loading their snapshot).
    pub connect_timeout: Duration,
    /// Largest shard response frame accepted.
    pub max_frame_bytes: usize,
}

impl Default for CoordinatorConfig {
    fn default() -> Self {
        Self {
            shard_deadline: Duration::from_secs(5),
            connect_timeout: Duration::from_secs(30),
            max_frame_bytes: protocol::DEFAULT_MAX_FRAME_BYTES,
        }
    }
}

/// One shard backend's connection state. Lives behind a [`Mutex`] so
/// fan-out threads own their shard's connection exclusively for the
/// duration of a call.
struct ShardConn {
    addr: String,
    config: CoordinatorConfig,
    /// The identity the shard presented at startup; a reconnect (shard
    /// restart) must present the same one or the call fails.
    expect: ShardInfo,
    /// `None` between a failure and the next successful redial.
    client: Option<ShardClient>,
}

impl ShardConn {
    /// One request/response against this shard, redialing first if the
    /// previous call broke the connection. Transport and protocol
    /// failures drop the connection and surface as
    /// [`ErrorCode::Unavailable`]; error *frames* (the shard answered,
    /// just negatively) keep the connection and propagate the shard's
    /// own code — except [`ErrorCode::Busy`],
    /// which the shard sends while closing, so it is treated as a
    /// transport failure.
    fn call(&mut self, si: usize, req: &ShardRequest) -> Result<ShardResponse, ServiceError> {
        let unavailable = |addr: &str, e: &dyn std::fmt::Display| -> ServiceError {
            ServiceError::unavailable(format!("shard {si} at {addr}: {e}"))
        };
        if self.client.is_none() {
            let mut fresh = ShardClient::connect(&self.addr, self.config)
                .map_err(|e| unavailable(&self.addr, &e))?;
            let info =
                fresh.info(self.config.max_frame_bytes).map_err(|e| unavailable(&self.addr, &e))?;
            if info != self.expect {
                return Err(ServiceError::unavailable(format!(
                    "shard {si} at {} rejoined with different parameters (got {info:?}, \
                     expected {:?}) — is it serving the right snapshot?",
                    self.addr, self.expect
                )));
            }
            self.client = Some(fresh);
        }
        let client = self.client.as_mut().expect("connected above");
        match client.roundtrip(req, self.config.max_frame_bytes) {
            Ok(resp) => Ok(resp),
            Err(ClientError::Server { code: ErrorCode::Busy, message }) => {
                // Busy is sent at accept time and the shard closes the
                // connection right after — the stream is dead, not just
                // the request. Treat it like a transport failure so the
                // next call redials instead of writing into a closed
                // socket.
                self.client = None;
                Err(ServiceError::unavailable(format!(
                    "shard {si} at {} is at its connection limit: {message}",
                    self.addr
                )))
            }
            Err(ClientError::Server { code, message }) => Err(ServiceError {
                code,
                message: format!("shard {si} at {}: {message}", self.addr),
            }),
            Err(e) => {
                // Transport/protocol failure: the stream position is no
                // longer trustworthy. Drop the connection; the next
                // call redials.
                self.client = None;
                Err(unavailable(&self.addr, &e))
            }
        }
    }
}

/// A minimal shard-protocol client: one connection, strict
/// request/response, deadline enforced through socket timeouts.
struct ShardClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl ShardClient {
    fn connect(addr: &str, config: CoordinatorConfig) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(config.shard_deadline))?;
        stream.set_write_timeout(Some(config.shard_deadline))?;
        Ok(Self { reader: BufReader::new(stream.try_clone()?), writer: BufWriter::new(stream) })
    }

    fn roundtrip(
        &mut self,
        req: &ShardRequest,
        max_frame_bytes: usize,
    ) -> Result<ShardResponse, ClientError> {
        write_frame(&mut self.writer, &req.encode())?;
        let (kind, body) = read_frame(&mut self.reader, max_frame_bytes)?;
        if kind == protocol::kind::ERROR {
            match protocol::decode_response(kind, &body)? {
                Response::Error { code, message } => {
                    return Err(ClientError::Server { code, message })
                }
                other => {
                    return Err(ClientError::Protocol(format!("error kind decoded to {other:?}")))
                }
            }
        }
        Ok(protocol::decode_shard_response(kind, &body)?)
    }

    fn info(&mut self, max_frame_bytes: usize) -> Result<ShardInfo, ClientError> {
        match self.roundtrip(&ShardRequest::Info, max_frame_bytes)? {
            ShardResponse::Info(info) => Ok(info),
            other => Err(ClientError::Protocol(format!("expected shard info, got {other:?}"))),
        }
    }
}

/// Decision-replay state for one index: the sketch configuration that
/// turns merged registers back into an estimate, and the cost model
/// that resolves Algorithm 2 on the merged statistics.
struct TargetMeta {
    radius: f64,
    hll: HllConfig,
    cost: CostModel,
}

/// Per-query walk state for the distributed top-k schedule — the
/// coordinator-side mirror of
/// [`ShardedTopKEngine`](hlsh_core::ShardedTopKEngine)'s locals.
struct TopKState {
    heap: BoundedHeap,
    reported: std::collections::HashSet<PointId>,
    covered_r: f64,
    levels_executed: usize,
    /// Levels deferred by the HLL prediction, with the merged
    /// statistics cached: probing is deterministic, so revisiting with
    /// the cached `(collisions, estimate)` replays exactly the decision
    /// a re-probe would make — without a second summary round.
    deferred: Vec<(usize, usize, f64)>,
    done: bool,
}

/// A [`QueryService`] that answers the *client* protocol by fanning
/// every batch out to remote shard nodes and replaying the global
/// hybrid decisions on merged statistics.
///
/// Clients cannot tell a coordinator from a standalone server: same
/// frames, same responses, byte for byte.
///
/// # Example
///
/// Two in-process "shard nodes" behind a coordinator, answering
/// identically to the single-process engine:
///
/// ```
/// use std::sync::Arc;
/// use std::time::Duration;
///
/// use hlsh_core::{CostModel, IndexBuilder, ShardAssignment, ShardedIndex};
/// use hlsh_families::PStableL2;
/// use hlsh_server::{
///     spawn, Client, Coordinator, CoordinatorConfig, ServerConfig, ShardNodeService,
///     ShardedLshService,
/// };
/// use hlsh_vec::{DenseDataset, L2};
///
/// let data = DenseDataset::from_rows(2, (0..300).map(|i| [(i % 20) as f32, (i / 20) as f32]));
/// let build = || {
///     ShardedIndex::build_frozen(
///         data.clone(),
///         ShardAssignment::new(7, 2),
///         IndexBuilder::new(PStableL2::new(2, 2.0), L2)
///             .tables(8)
///             .hash_len(4)
///             .seed(42)
///             .cost_model(CostModel::from_ratio(4.0)),
///     )
/// };
///
/// // Every node builds (in production: loads) the same index; each
/// // serves one shard of it.
/// let mut nodes: Vec<_> = (0..2)
///     .map(|sid: u32| {
///         let svc = ShardNodeService::new(ShardedLshService::new(build(), None, 2), sid);
///         spawn(Arc::new(svc), "127.0.0.1:0", ServerConfig::default()).unwrap()
///     })
///     .collect();
/// let addrs: Vec<String> = nodes.iter().map(|n| n.local_addr().to_string()).collect();
///
/// // The coordinator serves the ordinary client protocol.
/// let coord = Coordinator::connect(&addrs, CoordinatorConfig::default()).unwrap();
/// let mut front = spawn(Arc::new(coord), "127.0.0.1:0", ServerConfig::default()).unwrap();
///
/// let queries = vec![vec![3.0f32, 3.0], vec![19.0, 14.0]];
/// let expect: Vec<Vec<u32>> =
///     build().query_batch(&queries, 1.5).into_iter().map(|o| o.ids).collect();
/// let mut client = Client::connect_retry(front.local_addr(), Duration::from_secs(5)).unwrap();
/// assert_eq!(client.query_batch(&queries, 1.5).unwrap(), expect);
///
/// front.shutdown();
/// for n in &mut nodes {
///     n.shutdown();
/// }
/// ```
pub struct Coordinator {
    shards: Vec<Mutex<ShardConn>>,
    info: ServerInfo,
    n: usize,
    rnnr: TargetMeta,
    levels: Vec<TargetMeta>,
}

impl Coordinator {
    /// Dials every shard backend (index in `addrs` = shard id),
    /// retrying with backoff until
    /// [`connect_timeout`](CoordinatorConfig::connect_timeout), then
    /// validates the fleet: each node must identify as its slot's
    /// shard, and all nodes must agree bit-for-bit on the index
    /// parameters (same snapshot everywhere, or the determinism
    /// contract is void).
    pub fn connect(addrs: &[String], config: CoordinatorConfig) -> Result<Self, ClientError> {
        if addrs.is_empty() {
            return Err(ClientError::Protocol("coordinator needs at least one shard".into()));
        }
        let deadline = Instant::now() + config.connect_timeout;
        let mut conns = Vec::with_capacity(addrs.len());
        let mut infos: Vec<ShardInfo> = Vec::with_capacity(addrs.len());
        for (si, addr) in addrs.iter().enumerate() {
            let mut backoff = Duration::from_millis(50);
            let (client, info) = loop {
                let attempt = ShardClient::connect(addr, config)
                    .map_err(ClientError::Io)
                    .and_then(|mut c| c.info(config.max_frame_bytes).map(|i| (c, i)));
                match attempt {
                    Ok(pair) => break pair,
                    Err(e) if Instant::now() >= deadline => {
                        return Err(ClientError::Protocol(format!(
                            "shard {si} at {addr} unreachable within connect timeout: {e}"
                        )))
                    }
                    Err(_) => {
                        std::thread::sleep(backoff);
                        backoff = (backoff * 2).min(Duration::from_secs(2));
                    }
                }
            };
            if info.shard_id as usize != si || info.shards as usize != addrs.len() {
                return Err(ClientError::Protocol(format!(
                    "shard node at {addr} identifies as shard {}/{} but occupies slot \
                     {si}/{} — check the --shards order and each node's --shard-id",
                    info.shard_id,
                    info.shards,
                    addrs.len()
                )));
            }
            if let Some(first) = infos.first() {
                let mut normalized = info.clone();
                normalized.shard_id = first.shard_id;
                if normalized != *first {
                    return Err(ClientError::Protocol(format!(
                        "shard {si} at {addr} disagrees with shard 0 on index parameters — \
                         the nodes are not serving the same snapshot"
                    )));
                }
            }
            infos.push(info.clone());
            conns.push(Mutex::new(ShardConn {
                addr: addr.clone(),
                config,
                expect: info,
                client: Some(client),
            }));
        }
        let first = &infos[0];
        // Decode validated precision (4..=16) and cost positivity, so
        // these constructors cannot panic on wire data.
        let meta =
            |precision: u8, seed: u64, alpha: f64, bs: f64, bc: f64, radius: f64| TargetMeta {
                radius,
                hll: HllConfig::new(precision, seed),
                cost: CostModel::new_split(alpha, bs, bc),
            };
        let p = first.rnnr;
        Ok(Self {
            info: ServerInfo {
                points: first.points,
                dim: first.dim,
                shards: first.shards,
                topk_levels: first.levels.len() as u32,
            },
            n: first.points as usize,
            rnnr: meta(p.hll_precision, p.hll_seed, p.alpha, p.beta_scan, p.beta_cand, 0.0),
            levels: first
                .levels
                .iter()
                .map(|l| {
                    let p = l.params;
                    meta(p.hll_precision, p.hll_seed, p.alpha, p.beta_scan, p.beta_cand, l.radius)
                })
                .collect(),
            shards: conns,
        })
    }

    /// Number of shard backends.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Runs `f(shard index)` for every shard on its own scoped thread
    /// and collects the results in shard order; the first shard failure
    /// fails the whole fan-out (affected client requests get its typed
    /// error frame).
    fn fanout<T, Fm>(&self, f: Fm) -> Result<Vec<T>, ServiceError>
    where
        T: Send,
        Fm: Fn(usize) -> Result<T, ServiceError> + Sync,
    {
        let mut slots: Vec<Option<Result<T, ServiceError>>> =
            (0..self.shards.len()).map(|_| None).collect();
        std::thread::scope(|s| {
            for (si, slot) in slots.iter_mut().enumerate() {
                let f = &f;
                s.spawn(move || *slot = Some(f(si)));
            }
        });
        slots.into_iter().map(|r| r.expect("every fan-out thread fills its slot")).collect()
    }

    /// One summarize round against `target` for the packed `block`:
    /// per query, the globally merged `(Σ collisions, candSize
    /// estimate)` — bit-identical to a single process probing every
    /// shard itself.
    fn merged_summaries(
        &self,
        target: ShardTarget,
        block: &QueryBlock,
        meta: &TargetMeta,
    ) -> Result<Vec<(usize, f64)>, ServiceError> {
        let count = block.count();
        let per_shard: Vec<Vec<ShardSummaryEntry>> = self.fanout(|si| {
            let req = ShardRequest::Summarize { target, queries: block.clone() };
            match self.shards[si].lock().unwrap().call(si, &req)? {
                ShardResponse::Summaries(s) if s.len() == count => Ok(s),
                ShardResponse::Summaries(s) => Err(ServiceError::internal(format!(
                    "shard {si} returned {} summaries for {count} queries",
                    s.len()
                ))),
                other => Err(unexpected(si, &other)),
            }
        })?;
        let m = meta.hll.registers();
        let mut out = Vec::with_capacity(count);
        for qi in 0..count {
            let mut collisions = 0usize;
            let mut registers = vec![0u8; m];
            for (si, entries) in per_shard.iter().enumerate() {
                let e = &entries[qi];
                if e.registers.len() != m {
                    return Err(ServiceError::internal(format!(
                        "shard {si} returned {}-byte registers, expected {m}",
                        e.registers.len()
                    )));
                }
                collisions += e.collisions as usize;
                for (r, &v) in registers.iter_mut().zip(&e.registers) {
                    *r = (*r).max(v);
                }
            }
            let estimate = HyperLogLog::from_registers(meta.hll, registers).estimate();
            out.push((collisions, estimate));
        }
        Ok(out)
    }

    /// One execute round: runs `arm` at `radius` against `target` for
    /// the packed subset, returning per-shard responses in shard order.
    fn execute_round(
        &self,
        target: ShardTarget,
        arm: Arm,
        radius: f64,
        block: &QueryBlock,
    ) -> Result<Vec<ShardResponse>, ServiceError> {
        self.fanout(|si| {
            let req = ShardRequest::Execute { target, arm, radius, queries: block.clone() };
            self.shards[si].lock().unwrap().call(si, &req)
        })
    }

    /// Packs a subset of `queries` (by index) into a wire block.
    fn pack_subset(&self, queries: &[Vec<f32>], idx: &[usize]) -> QueryBlock {
        let rows: Vec<Vec<f32>> = idx.iter().map(|&qi| queries[qi].clone()).collect();
        QueryBlock::pack(&rows, self.info.dim as usize)
    }
}

fn unexpected(si: usize, resp: &ShardResponse) -> ServiceError {
    let kind = match resp {
        ShardResponse::Info(_) => "info",
        ShardResponse::Summaries(_) => "summaries",
        ShardResponse::Ids(_) => "ids",
        ShardResponse::Pairs(_) => "pairs",
    };
    ServiceError::internal(format!("shard {si} answered with an unexpected {kind} response"))
}

impl QueryService for Coordinator {
    fn info(&self) -> ServerInfo {
        self.info
    }

    fn rnnr_batch(
        &self,
        queries: &[Vec<f32>],
        radius: f64,
        threads: Option<usize>,
    ) -> Result<Vec<Vec<PointId>>, ServiceError> {
        let _ = threads; // parallelism lives on the shard nodes
        if queries.is_empty() {
            return Ok(Vec::new());
        }
        let block = QueryBlock::pack(queries, self.info.dim as usize);

        // Round 1: merged statistics, one Algorithm-2 decision each.
        let stats = self.merged_summaries(ShardTarget::Rnnr, &block, &self.rnnr)?;
        let (mut lsh_idx, mut lin_idx) = (Vec::new(), Vec::new());
        for (qi, &(collisions, estimate)) in stats.iter().enumerate() {
            if self.rnnr.cost.prefer_lsh(collisions, estimate, self.n) {
                lsh_idx.push(qi);
            } else {
                lin_idx.push(qi);
            }
        }

        // Round 2: one execute fan-out per chosen arm.
        let mut out: Vec<Vec<PointId>> = vec![Vec::new(); queries.len()];
        for (arm, idx) in [(Arm::Lsh, &lsh_idx), (Arm::Linear, &lin_idx)] {
            if idx.is_empty() {
                continue;
            }
            let sub = self.pack_subset(queries, idx);
            for (si, resp) in
                self.execute_round(ShardTarget::Rnnr, arm, radius, &sub)?.into_iter().enumerate()
            {
                match resp {
                    ShardResponse::Ids(per_query) if per_query.len() == idx.len() => {
                        for (j, ids) in per_query.into_iter().enumerate() {
                            out[idx[j]].extend(ids);
                        }
                    }
                    other => return Err(unexpected(si, &other)),
                }
            }
        }
        // Per-shard lists are each sorted; the global answer is the
        // sorted union (ids are globally unique across shards).
        for ids in &mut out {
            ids.sort_unstable();
        }
        Ok(out)
    }

    fn topk_batch(
        &self,
        queries: &[Vec<f32>],
        k: usize,
        threads: Option<usize>,
    ) -> Result<Vec<Vec<(PointId, f64)>>, ServiceError> {
        let _ = threads;
        if self.levels.is_empty() {
            return Err(ServiceError::unsupported("this deployment has no top-k ladder"));
        }
        if queries.is_empty() {
            return Ok(Vec::new());
        }
        let k_eff = k.min(self.n);
        if k_eff == 0 {
            return Ok(vec![Vec::new(); queries.len()]);
        }

        let mut states: Vec<TopKState> = (0..queries.len())
            .map(|_| TopKState {
                heap: BoundedHeap::new(k_eff),
                reported: std::collections::HashSet::new(),
                covered_r: 0.0,
                levels_executed: 0,
                deferred: Vec::new(),
                done: false,
            })
            .collect();

        // Level-synchronized schedule walk: every still-active query
        // advances through level `li` together, so each level costs at
        // most one summary fan-out plus one execute fan-out per arm —
        // the coordinator-side mirror of ShardedTopKEngine's walk.
        for li in 0..self.levels.len() {
            let meta = &self.levels[li];
            let m = meta.hll.registers() as f64;
            let mut active: Vec<usize> = Vec::new();
            for (qi, st) in states.iter_mut().enumerate() {
                if st.done {
                    continue;
                }
                if st.levels_executed > 0
                    && st.heap.is_full()
                    && st.heap.worst_dist().is_some_and(|w| w <= st.covered_r)
                {
                    st.done = true; // early exit
                    continue;
                }
                active.push(qi);
            }
            if active.is_empty() {
                break;
            }
            let block = self.pack_subset(queries, &active);
            let stats = self.merged_summaries(ShardTarget::TopKLevel(li as u32), &block, meta)?;

            let (mut lsh_idx, mut lin_idx) = (Vec::new(), Vec::new());
            for (j, &qi) in active.iter().enumerate() {
                let (collisions, estimate) = stats[j];
                let st = &mut states[qi];
                let skip_at_most = if st.levels_executed > 0 {
                    st.reported.len() as f64 * (1.0 + 1.04 / m.sqrt())
                } else {
                    f64::NEG_INFINITY // level 0 always runs
                };
                if estimate <= skip_at_most {
                    st.deferred.push((li, collisions, estimate));
                } else if meta.cost.prefer_lsh(collisions, estimate, self.n) {
                    lsh_idx.push(qi);
                } else {
                    lin_idx.push(qi);
                }
            }
            for (arm, idx) in [(Arm::Lsh, &lsh_idx), (Arm::Linear, &lin_idx)] {
                if idx.is_empty() {
                    continue;
                }
                self.run_level_arm(queries, &mut states, li, arm, idx)?;
            }
        }

        // Post-walk: exact fallback for under-filled heaps, forced
        // replay of deferred levels for the rest — in lockstep with the
        // in-process engine (note the *else*: an early-exited query
        // still replays its deferred levels, a fallback query never
        // does). The `done` flag is repurposed here to mean "handled by
        // the fallback".
        for st in &mut states {
            st.done = false;
        }
        let starved: Vec<usize> =
            (0..queries.len()).filter(|&qi| states[qi].heap.len() < k_eff).collect();
        if !starved.is_empty() {
            let block = self.pack_subset(queries, &starved);
            let per_shard = self.fanout(|si| {
                self.shards[si]
                    .lock()
                    .unwrap()
                    .call(si, &ShardRequest::Scan { queries: block.clone() })
            })?;
            for (si, resp) in per_shard.into_iter().enumerate() {
                match resp {
                    ShardResponse::Pairs(per_query) if per_query.len() == starved.len() => {
                        for (j, pairs) in per_query.into_iter().enumerate() {
                            let st = &mut states[starved[j]];
                            for (id, dist) in pairs {
                                // The shard slabs partition the data,
                                // so each id arrives exactly once: a
                                // contains-check (no insert) matches
                                // the in-process fallback.
                                if !st.reported.contains(&id) {
                                    st.heap.push(Neighbor { id, dist });
                                }
                            }
                        }
                    }
                    other => return Err(unexpected(si, &other)),
                }
            }
            for &qi in &starved {
                states[qi].done = true;
            }
        }
        // Deferred levels replay in schedule order with the cached
        // merged statistics (deterministic probing makes them identical
        // to a re-summarize), skip threshold disabled.
        for li in 0..self.levels.len() {
            let meta = &self.levels[li];
            let (mut lsh_idx, mut lin_idx) = (Vec::new(), Vec::new());
            for (qi, st) in states.iter_mut().enumerate() {
                if st.done {
                    continue;
                }
                if let Some(&(_, collisions, estimate)) =
                    st.deferred.iter().find(|&&(dl, _, _)| dl == li)
                {
                    if meta.cost.prefer_lsh(collisions, estimate, self.n) {
                        lsh_idx.push(qi);
                    } else {
                        lin_idx.push(qi);
                    }
                }
            }
            for (arm, idx) in [(Arm::Lsh, &lsh_idx), (Arm::Linear, &lin_idx)] {
                if idx.is_empty() {
                    continue;
                }
                self.run_level_arm(queries, &mut states, li, arm, idx)?;
            }
        }

        Ok(states
            .into_iter()
            .map(|st| st.heap.into_sorted_vec().into_iter().map(|n| (n.id, n.dist)).collect())
            .collect())
    }
}

impl Coordinator {
    /// Executes one arm of ladder level `li` for the query subset
    /// `idx`, offering results into each query's heap in shard order —
    /// the offer order the in-process walk uses, which the bounded
    /// heap's tie-breaking depends on.
    fn run_level_arm(
        &self,
        queries: &[Vec<f32>],
        states: &mut [TopKState],
        li: usize,
        arm: Arm,
        idx: &[usize],
    ) -> Result<(), ServiceError> {
        let meta = &self.levels[li];
        let sub = self.pack_subset(queries, idx);
        let per_shard =
            self.execute_round(ShardTarget::TopKLevel(li as u32), arm, meta.radius, &sub)?;
        for (si, resp) in per_shard.into_iter().enumerate() {
            match resp {
                ShardResponse::Pairs(per_query) if per_query.len() == idx.len() => {
                    for (j, pairs) in per_query.into_iter().enumerate() {
                        let st = &mut states[idx[j]];
                        for (id, dist) in pairs {
                            if st.reported.insert(id) {
                                st.heap.push(Neighbor { id, dist });
                            }
                        }
                    }
                }
                other => return Err(unexpected(si, &other)),
            }
        }
        for &qi in idx {
            let st = &mut states[qi];
            st.levels_executed += 1;
            st.covered_r = meta.radius;
        }
        Ok(())
    }
}
