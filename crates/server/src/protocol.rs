//! The `hlsh` wire protocol: length-prefixed binary frames.
//!
//! Every message — request or response — travels as one *frame*:
//!
//! ```text
//! offset  size  field
//! 0       4     len      u32 LE: byte length of everything after this
//!                        field (header remainder + body); 8 ≤ len ≤
//!                        the receiver's max-frame limit
//! 4       4     magic    b"HLSH"
//! 8       1     version  PROTOCOL_VERSION (currently 1)
//! 9       1     kind     frame kind (see below)
//! 10      2     reserved must be zero
//! 12      len-8 body     kind-specific payload
//! ```
//!
//! All integers are little-endian; `f32`/`f64` are IEEE-754 bit
//! patterns in little-endian byte order, so vectors and distances
//! survive the round trip *bit-exactly* — the property the loopback CI
//! gate pins (socket responses byte-identical to in-process
//! [`query_batch`](hlsh_core::ShardedIndex::query_batch) results).
//!
//! Frame kinds and their bodies are documented on [`Request`] and
//! [`Response`]; `docs/PROTOCOL.md` in the repository root specifies
//! the format (including batching semantics and error handling)
//! precisely enough to write a third-party client. Decoding is total:
//! every malformed input maps to a [`WireError`], never a panic.

use std::io::{self, Read, Write};

/// Protocol magic, the first four post-length bytes of every frame.
pub const MAGIC: [u8; 4] = *b"HLSH";

/// Current protocol version; bumped on any incompatible frame change.
pub const PROTOCOL_VERSION: u8 = 1;

/// Default cap on `len` (bytes after the length prefix) a peer accepts.
/// At d = 1024 this still admits ~8k queries per request frame.
pub const DEFAULT_MAX_FRAME_BYTES: usize = 32 * 1024 * 1024;

/// Frame kind bytes. Requests have the high bit clear, responses set
/// (error frames use `0x7F`, distinct from both ranges). Client kinds
/// live in `0x01..=0x0F`; the **shard extension** — spoken between a
/// coordinator and its shard backends, see [`ShardRequest`] /
/// [`ShardResponse`] — occupies `0x10..=0x1F` and mirrors into
/// `0x90..=0x9F`.
pub mod kind {
    /// r-near-neighbor-reporting batch request.
    pub const RNNR: u8 = 0x01;
    /// Top-k batch request.
    pub const TOPK: u8 = 0x02;
    /// Server/index metadata request (empty body).
    pub const INFO: u8 = 0x03;
    /// Batch point-insertion request (living-index mutation).
    pub const INSERT: u8 = 0x04;
    /// Batch point-deletion request (living-index mutation).
    pub const DELETE: u8 = 0x05;
    /// rNNR batch response.
    pub const RNNR_RESP: u8 = 0x81;
    /// Top-k batch response.
    pub const TOPK_RESP: u8 = 0x82;
    /// Metadata response.
    pub const INFO_RESP: u8 = 0x83;
    /// Insertion acknowledgement.
    pub const INSERT_RESP: u8 = 0x84;
    /// Deletion acknowledgement.
    pub const DELETE_RESP: u8 = 0x85;
    /// Error response.
    pub const ERROR: u8 = 0x7F;

    /// Shard metadata/parameters request (empty body).
    pub const SHARD_INFO: u8 = 0x10;
    /// Per-query S1/S2 summary request against one shard.
    pub const SHARD_SUMMARIZE: u8 = 0x11;
    /// Chosen-arm execution request against one shard.
    pub const SHARD_EXECUTE: u8 = 0x12;
    /// Exact-fallback full-scan request against one shard.
    pub const SHARD_SCAN: u8 = 0x13;
    /// Shard metadata response.
    pub const SHARD_INFO_RESP: u8 = 0x90;
    /// Per-query summary response.
    pub const SHARD_SUMMARY_RESP: u8 = 0x91;
    /// Per-query global-id response (rNNR arm execution).
    pub const SHARD_IDS_RESP: u8 = 0x92;
    /// Per-query `(id, distance)` response (top-k arm execution and
    /// fallback scans).
    pub const SHARD_PAIRS_RESP: u8 = 0x93;

    /// Whether `k` is a shard-extension request kind (`0x10..=0x1F`).
    pub fn is_shard_request(k: u8) -> bool {
        (0x10..=0x1F).contains(&k)
    }
}

/// Error codes carried by [`kind::ERROR`] frames.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u16)]
pub enum ErrorCode {
    /// The magic bytes were not `b"HLSH"`.
    BadMagic = 1,
    /// The version byte is not supported by the receiver.
    BadVersion = 2,
    /// The kind byte names no known frame.
    UnknownKind = 3,
    /// The body does not parse as its kind's layout.
    Malformed = 4,
    /// The declared frame length exceeds the receiver's limit.
    TooLarge = 5,
    /// A query vector's dimensionality does not match the index.
    DimMismatch = 6,
    /// The request is valid but this server cannot serve it (e.g. a
    /// top-k request against an rNNR-only deployment).
    Unsupported = 7,
    /// The server failed internally while executing the request.
    Internal = 8,
    /// A backend this server depends on is unreachable — a coordinator
    /// answers with this when a shard node is down or misses its
    /// deadline. The request may succeed once the backend rejoins.
    Unavailable = 9,
    /// The server is at its connection limit. Sent immediately after
    /// accept, after which the server closes the connection — retry
    /// against another replica or after a backoff.
    Busy = 10,
    /// The request's per-request deadline expired before the batcher
    /// executed it. Unlike [`ErrorCode::Busy`], this is a per-request
    /// verdict: the connection stays open and later requests on it are
    /// served normally.
    Deadline = 11,
    /// A [`Request::Delete`] named an id that is not live in the index
    /// (never inserted, or already deleted). Nothing was applied.
    UnknownId = 12,
    /// A [`Request::Insert`] named an id that is already live in the
    /// index (or repeated an id within the batch). Nothing was applied.
    DuplicateId = 13,
}

impl ErrorCode {
    /// The code for a raw wire value, if it names one.
    pub fn from_u16(v: u16) -> Option<Self> {
        Some(match v {
            1 => Self::BadMagic,
            2 => Self::BadVersion,
            3 => Self::UnknownKind,
            4 => Self::Malformed,
            5 => Self::TooLarge,
            6 => Self::DimMismatch,
            7 => Self::Unsupported,
            8 => Self::Internal,
            9 => Self::Unavailable,
            10 => Self::Busy,
            11 => Self::Deadline,
            12 => Self::UnknownId,
            13 => Self::DuplicateId,
            _ => return None,
        })
    }
}

/// Everything that can go wrong while decoding bytes off the wire.
///
/// [`WireError::to_code`] maps each variant to the [`ErrorCode`] a
/// server reports back; [`WireError::recoverable`] tells the server
/// whether the connection may live on afterwards or must be dropped
/// because the stream position is unknowable.
#[derive(Debug)]
pub enum WireError {
    /// Underlying socket/file error (includes clean EOF between frames).
    Io(io::Error),
    /// Bad magic bytes — the peer is not speaking this protocol.
    BadMagic,
    /// Unsupported protocol version.
    BadVersion(u8),
    /// Unknown frame kind byte.
    UnknownKind(u8),
    /// Body bytes do not parse as the declared kind.
    Malformed(&'static str),
    /// Declared length is too small to contain the frame header. Kept
    /// apart from [`WireError::Malformed`] because the declared bytes
    /// were *not* consumed, so the connection cannot survive.
    TooShort {
        /// The length the peer declared (< 8).
        declared: usize,
    },
    /// Declared length exceeds the local frame limit.
    TooLarge {
        /// The length the peer declared.
        declared: usize,
        /// The local limit it exceeded.
        limit: usize,
    },
}

impl WireError {
    /// The [`ErrorCode`] a server should answer with.
    pub fn to_code(&self) -> ErrorCode {
        match self {
            WireError::Io(_) => ErrorCode::Internal,
            WireError::BadMagic => ErrorCode::BadMagic,
            WireError::BadVersion(_) => ErrorCode::BadVersion,
            WireError::UnknownKind(_) => ErrorCode::UnknownKind,
            WireError::Malformed(_) => ErrorCode::Malformed,
            WireError::TooShort { .. } => ErrorCode::Malformed,
            WireError::TooLarge { .. } => ErrorCode::TooLarge,
        }
    }

    /// Whether the connection's stream position is still trustworthy
    /// after this error (`false` ⇒ the server must close it: the
    /// oversized/foreign bytes were never consumed).
    pub fn recoverable(&self) -> bool {
        matches!(self, WireError::UnknownKind(_) | WireError::Malformed(_))
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "i/o: {e}"),
            WireError::BadMagic => write!(f, "bad magic (not an HLSH frame)"),
            WireError::BadVersion(v) => {
                write!(f, "unsupported protocol version {v} (this side speaks {PROTOCOL_VERSION})")
            }
            WireError::UnknownKind(k) => write!(f, "unknown frame kind {k:#04x}"),
            WireError::Malformed(what) => write!(f, "malformed body: {what}"),
            WireError::TooShort { declared } => {
                write!(f, "declared frame length {declared} cannot contain the 8-byte header")
            }
            WireError::TooLarge { declared, limit } => {
                write!(f, "frame of {declared} bytes exceeds the {limit}-byte limit")
            }
        }
    }
}

impl std::error::Error for WireError {}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> Self {
        WireError::Io(e)
    }
}

/// A batch of query vectors in wire layout: row-major `f32`s.
#[derive(Clone, Debug, PartialEq)]
pub struct QueryBlock {
    /// Dimensionality of every query.
    pub dim: u32,
    /// Row-major `count × dim` matrix; `data.len() = count · dim`.
    pub data: Vec<f32>,
}

impl QueryBlock {
    /// Packs per-query slices into wire layout.
    ///
    /// # Panics
    /// Panics if any query's length differs from `dim`.
    pub fn pack(queries: &[Vec<f32>], dim: usize) -> Self {
        let mut data = Vec::with_capacity(queries.len() * dim);
        for q in queries {
            assert_eq!(q.len(), dim, "query length must equal dim");
            data.extend_from_slice(q);
        }
        Self { dim: dim as u32, data }
    }

    /// Number of queries in the block.
    pub fn count(&self) -> usize {
        if self.dim == 0 {
            0
        } else {
            self.data.len() / self.dim as usize
        }
    }

    /// Unpacks the block into one owned vector per query.
    pub fn rows(&self) -> Vec<Vec<f32>> {
        self.data.chunks_exact(self.dim.max(1) as usize).map(<[f32]>::to_vec).collect()
    }
}

/// A decoded request frame.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// [`kind::RNNR`] — report every indexed point within `radius` of
    /// each query. Body: `radius f64, dim u32, count u32,
    /// count·dim × f32`.
    Rnnr {
        /// The reporting radius.
        radius: f64,
        /// The query vectors.
        queries: QueryBlock,
    },
    /// [`kind::TOPK`] — the `k` nearest neighbors of each query.
    /// Body: `k u32, dim u32, count u32, count·dim × f32`.
    TopK {
        /// Neighbors requested per query.
        k: u32,
        /// The query vectors.
        queries: QueryBlock,
    },
    /// [`kind::INFO`] — index metadata. Empty body.
    Info,
    /// [`kind::INSERT`] — add points under caller-chosen global ids.
    /// Body: `dim u32, count u32, count × u32 ids, count·dim × f32`
    /// (row `i` of the block carries `ids[i]`'s vector). The batch is
    /// all-or-nothing: the server validates every row first and
    /// answers [`ErrorCode::DimMismatch`] / [`ErrorCode::DuplicateId`]
    /// without applying anything on failure.
    Insert {
        /// One global id per inserted row.
        ids: Vec<u32>,
        /// The point vectors, `ids.len() × dim` row-major.
        points: QueryBlock,
    },
    /// [`kind::DELETE`] — remove the points with these global ids.
    /// Body: `count u32, count × u32 ids`. All-or-nothing like
    /// [`Request::Insert`]: any id not live (or repeated in the batch)
    /// answers [`ErrorCode::UnknownId`] with nothing applied.
    Delete {
        /// The global ids to delete.
        ids: Vec<u32>,
    },
}

/// Index metadata answered to [`Request::Info`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServerInfo {
    /// Indexed points.
    pub points: u64,
    /// Vector dimensionality the index expects.
    pub dim: u32,
    /// Shard count of the serving index.
    pub shards: u32,
    /// Radius-schedule levels of the top-k ladder (0 ⇒ top-k requests
    /// are answered with [`ErrorCode::Unsupported`]).
    pub topk_levels: u32,
}

/// A decoded response frame.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// [`kind::RNNR_RESP`] — per query, the ids within the radius in
    /// ascending order. Body: `count u32`, then per query
    /// `m u32, m × u32`.
    Rnnr(Vec<Vec<u32>>),
    /// [`kind::TOPK_RESP`] — per query, `(id, distance)` pairs in
    /// ascending `(distance, id)` order. Body: `count u32`, then per
    /// query `m u32, m × (u32, f64)`.
    TopK(Vec<Vec<(u32, f64)>>),
    /// [`kind::INFO_RESP`] — body: `points u64, dim u32, shards u32,
    /// topk_levels u32`.
    Info(ServerInfo),
    /// [`kind::INSERT_RESP`] — body: `count u32`, the number of points
    /// just inserted (always the full batch; partial application never
    /// happens).
    Inserted(u32),
    /// [`kind::DELETE_RESP`] — body: `count u32`, the number of points
    /// just deleted (always the full batch).
    Deleted(u32),
    /// [`kind::ERROR`] — body: `code u16, msg_len u16, msg_len × u8`
    /// (UTF-8 diagnostic, never required for correct operation).
    Error {
        /// What went wrong.
        code: ErrorCode,
        /// Human-readable diagnostic.
        message: String,
    },
}

// ---------------------------------------------------------------------------
// Shard extension
// ---------------------------------------------------------------------------

/// Which index a shard-extension request targets.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShardTarget {
    /// The rNNR index. Wire: `target = 0`, `level` must be 0.
    Rnnr,
    /// Level `level` of the top-k ladder. Wire: `target = 1`.
    TopKLevel(u32),
}

impl ShardTarget {
    fn encode(&self, e: &mut Enc) {
        match self {
            ShardTarget::Rnnr => {
                e.u8(0);
                e.u32(0);
            }
            ShardTarget::TopKLevel(li) => {
                e.u8(1);
                e.u32(*li);
            }
        }
    }

    fn decode(d: &mut Dec<'_>) -> Result<Self, WireError> {
        let tag = d.u8("shard target")?;
        let level = d.u32("shard target level")?;
        match (tag, level) {
            (0, 0) => Ok(ShardTarget::Rnnr),
            (0, _) => Err(WireError::Malformed("rnnr target carries nonzero level")),
            (1, li) => Ok(ShardTarget::TopKLevel(li)),
            _ => Err(WireError::Malformed("shard target tag")),
        }
    }
}

/// Which Algorithm-2 arm a [`ShardRequest::Execute`] runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Arm {
    /// Brute-force scan of the shard's slab. Wire: 0.
    Linear,
    /// LSH arm: probe, dedup, batched verification. Wire: 1.
    Lsh,
}

/// The per-index parameters a coordinator needs to replay the global
/// decisions: the HLL sketch configuration (to reconstruct estimates
/// from merged registers) and the cost model (to resolve Algorithm 2).
/// All `f64`s travel as exact IEEE-754 bits — the decision replay is
/// bit-exact or it is wrong.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ShardParams {
    /// HLL precision (`m = 2^precision` registers); valid range 4..=16.
    pub hll_precision: u8,
    /// HLL element-hash seed.
    pub hll_seed: u64,
    /// Cost model `α` (duplicate-removal unit cost).
    pub alpha: f64,
    /// Cost model `β_scan` (sequential-scan distance cost).
    pub beta_scan: f64,
    /// Cost model `β_cand` (random-access distance cost).
    pub beta_cand: f64,
}

impl ShardParams {
    fn encode(&self, e: &mut Enc) {
        e.u8(self.hll_precision);
        e.u64(self.hll_seed);
        e.f64(self.alpha);
        e.f64(self.beta_scan);
        e.f64(self.beta_cand);
    }

    fn decode(d: &mut Dec<'_>) -> Result<Self, WireError> {
        let p = Self {
            hll_precision: d.u8("hll precision")?,
            hll_seed: d.u64("hll seed")?,
            alpha: d.f64("cost alpha")?,
            beta_scan: d.f64("cost beta_scan")?,
            beta_cand: d.f64("cost beta_cand")?,
        };
        if !(4..=16).contains(&p.hll_precision) {
            return Err(WireError::Malformed("hll precision out of 4..=16"));
        }
        for v in [p.alpha, p.beta_scan, p.beta_cand] {
            if !(v.is_finite() && v > 0.0) {
                return Err(WireError::Malformed("cost coefficient not positive finite"));
            }
        }
        Ok(p)
    }
}

/// One top-k schedule level's parameters in a [`ShardInfo`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ShardLevelInfo {
    /// The level's verification radius (exact bits of the schedule's
    /// radius; a coordinator echoes these bits back in
    /// [`ShardRequest::Execute`]).
    pub radius: f64,
    /// The level's sketch + cost parameters.
    pub params: ShardParams,
}

/// Everything a coordinator learns from a shard at connect time —
/// answered to [`ShardRequest::Info`].
#[derive(Clone, Debug, PartialEq)]
pub struct ShardInfo {
    /// Which shard of the assignment this node answers for.
    pub shard_id: u32,
    /// Total shard count of the assignment.
    pub shards: u32,
    /// Global point count `n` (the linear-cost term of Algorithm 2 —
    /// global, not this shard's share).
    pub points: u64,
    /// Vector dimensionality.
    pub dim: u32,
    /// rNNR index parameters.
    pub rnnr: ShardParams,
    /// Per-level parameters of the top-k ladder; empty ⇒ no ladder.
    pub levels: Vec<ShardLevelInfo>,
}

/// One query's S1/S2 summary from one shard: summed probed-bucket
/// sizes plus the shard-local merged HyperLogLog registers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardSummaryEntry {
    /// Sum of probed bucket sizes on the shard.
    pub collisions: u64,
    /// Merged sketch registers (`m` bytes, `m` from the target's
    /// [`ShardParams::hll_precision`]).
    pub registers: Vec<u8>,
}

/// A decoded shard-extension request (coordinator → shard node).
#[derive(Clone, Debug, PartialEq)]
pub enum ShardRequest {
    /// [`kind::SHARD_INFO`] — shard parameters. Empty body.
    Info,
    /// [`kind::SHARD_SUMMARIZE`] — per query, the shard's S1/S2
    /// summary against `target`. Body: `target (u8, u32)`, query block.
    Summarize {
        /// Index to probe.
        target: ShardTarget,
        /// The query vectors.
        queries: QueryBlock,
    },
    /// [`kind::SHARD_EXECUTE`] — per query, run `arm` at radius
    /// `radius` against `target`. Body: `target (u8, u32), arm u8,
    /// radius f64`, query block.
    Execute {
        /// Index to execute against.
        target: ShardTarget,
        /// Which arm the global decision chose.
        arm: Arm,
        /// Verification radius (for a ladder level, the exact radius
        /// bits the shard reported in its [`ShardInfo`]).
        radius: f64,
        /// The query vectors.
        queries: QueryBlock,
    },
    /// [`kind::SHARD_SCAN`] — per query, every row the shard owns as
    /// `(global id, distance)` pairs (the top-k exact fallback's
    /// per-shard slice). Body: query block.
    Scan {
        /// The query vectors.
        queries: QueryBlock,
    },
}

/// A decoded shard-extension response (shard node → coordinator).
#[derive(Clone, Debug, PartialEq)]
pub enum ShardResponse {
    /// [`kind::SHARD_INFO_RESP`] — body: `shard_id u32, shards u32,
    /// points u64, dim u32, rnnr ShardParams, levels u32,
    /// levels × (radius f64, ShardParams)` where `ShardParams` is
    /// `precision u8, seed u64, alpha f64, beta_scan f64,
    /// beta_cand f64`.
    Info(ShardInfo),
    /// [`kind::SHARD_SUMMARY_RESP`] — body: `count u32, m u32`, then
    /// per query `collisions u64, m × u8` (every entry shares `m`).
    Summaries(Vec<ShardSummaryEntry>),
    /// [`kind::SHARD_IDS_RESP`] — body: `count u32`, then per query
    /// `len u32, len × u32` (the shard's global ids, ascending).
    Ids(Vec<Vec<u32>>),
    /// [`kind::SHARD_PAIRS_RESP`] — body: `count u32`, then per query
    /// `len u32, len × (u32, f64)`.
    Pairs(Vec<Vec<(u32, f64)>>),
}

impl ShardRequest {
    /// Encodes the request as one complete frame.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc(Vec::new());
        let kind = match self {
            ShardRequest::Info => kind::SHARD_INFO,
            ShardRequest::Summarize { target, queries } => {
                target.encode(&mut e);
                encode_block(&mut e, queries);
                kind::SHARD_SUMMARIZE
            }
            ShardRequest::Execute { target, arm, radius, queries } => {
                target.encode(&mut e);
                e.u8(match arm {
                    Arm::Linear => 0,
                    Arm::Lsh => 1,
                });
                e.f64(*radius);
                encode_block(&mut e, queries);
                kind::SHARD_EXECUTE
            }
            ShardRequest::Scan { queries } => {
                encode_block(&mut e, queries);
                kind::SHARD_SCAN
            }
        };
        frame(kind, &e.0)
    }
}

impl ShardResponse {
    /// Encodes the response as one complete frame; deterministic, like
    /// every encoder here.
    ///
    /// # Panics
    /// Panics if summary entries carry different register lengths (the
    /// encoding shares one `m`; mixed lengths are a programming error,
    /// not a wire condition).
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc(Vec::new());
        let kind = match self {
            ShardResponse::Info(info) => {
                e.u32(info.shard_id);
                e.u32(info.shards);
                e.u64(info.points);
                e.u32(info.dim);
                info.rnnr.encode(&mut e);
                e.u32(info.levels.len() as u32);
                for level in &info.levels {
                    e.f64(level.radius);
                    level.params.encode(&mut e);
                }
                kind::SHARD_INFO_RESP
            }
            ShardResponse::Summaries(entries) => {
                let m = entries.first().map_or(0, |s| s.registers.len());
                e.u32(entries.len() as u32);
                e.u32(m as u32);
                for s in entries {
                    assert_eq!(s.registers.len(), m, "summary entries must share one m");
                    e.u64(s.collisions);
                    e.0.extend_from_slice(&s.registers);
                }
                kind::SHARD_SUMMARY_RESP
            }
            ShardResponse::Ids(per_query) => {
                e.u32(per_query.len() as u32);
                for ids in per_query {
                    e.u32(ids.len() as u32);
                    for &id in ids {
                        e.u32(id);
                    }
                }
                kind::SHARD_IDS_RESP
            }
            ShardResponse::Pairs(per_query) => {
                e.u32(per_query.len() as u32);
                for pairs in per_query {
                    e.u32(pairs.len() as u32);
                    for &(id, dist) in pairs {
                        e.u32(id);
                        e.f64(dist);
                    }
                }
                kind::SHARD_PAIRS_RESP
            }
        };
        frame(kind, &e.0)
    }
}

/// Decodes a shard-extension request body; `kind` is the header's kind
/// byte.
pub fn decode_shard_request(kind_byte: u8, body: &[u8]) -> Result<ShardRequest, WireError> {
    let mut d = Dec { buf: body, at: 0 };
    let req = match kind_byte {
        kind::SHARD_INFO => ShardRequest::Info,
        kind::SHARD_SUMMARIZE => {
            let target = ShardTarget::decode(&mut d)?;
            ShardRequest::Summarize { target, queries: decode_block(&mut d)? }
        }
        kind::SHARD_EXECUTE => {
            let target = ShardTarget::decode(&mut d)?;
            let arm = match d.u8("shard arm")? {
                0 => Arm::Linear,
                1 => Arm::Lsh,
                _ => return Err(WireError::Malformed("shard arm tag")),
            };
            let radius = d.f64("shard radius")?;
            ShardRequest::Execute { target, arm, radius, queries: decode_block(&mut d)? }
        }
        kind::SHARD_SCAN => ShardRequest::Scan { queries: decode_block(&mut d)? },
        other => return Err(WireError::UnknownKind(other)),
    };
    d.finish("trailing bytes after shard request body")?;
    Ok(req)
}

/// Decodes a shard-extension response body; `kind` is the header's
/// kind byte.
pub fn decode_shard_response(kind_byte: u8, body: &[u8]) -> Result<ShardResponse, WireError> {
    let mut d = Dec { buf: body, at: 0 };
    let resp = match kind_byte {
        kind::SHARD_INFO_RESP => {
            let shard_id = d.u32("shard id")?;
            let shards = d.u32("shard count")?;
            if shard_id >= shards {
                return Err(WireError::Malformed("shard id out of range"));
            }
            let points = d.u64("shard points")?;
            let dim = d.u32("shard dim")?;
            let rnnr = ShardParams::decode(&mut d)?;
            let levels_len = d.u32("shard levels")? as usize;
            let mut levels = Vec::with_capacity(levels_len.min(body.len() / 41 + 1));
            for _ in 0..levels_len {
                let radius = d.f64("level radius")?;
                levels.push(ShardLevelInfo { radius, params: ShardParams::decode(&mut d)? });
            }
            ShardResponse::Info(ShardInfo { shard_id, shards, points, dim, rnnr, levels })
        }
        kind::SHARD_SUMMARY_RESP => {
            let count = d.u32("summary count")? as usize;
            let m = d.u32("summary m")? as usize;
            if m > 1 << 16 {
                // precision ≤ 16 ⇒ m ≤ 65536; anything larger is not a
                // sketch this protocol can have produced.
                return Err(WireError::Malformed("summary register count too large"));
            }
            let mut entries = Vec::with_capacity(count.min(body.len() / (8 + m.max(1)) + 1));
            for _ in 0..count {
                let collisions = d.u64("summary collisions")?;
                let registers = d.take(m, "summary registers")?.to_vec();
                entries.push(ShardSummaryEntry { collisions, registers });
            }
            ShardResponse::Summaries(entries)
        }
        kind::SHARD_IDS_RESP => {
            let count = d.u32("ids count")? as usize;
            let mut per_query = Vec::with_capacity(count.min(body.len() / 4 + 1));
            for _ in 0..count {
                let m = d.u32("ids len")? as usize;
                let raw =
                    d.take(m.checked_mul(4).ok_or(WireError::Malformed("ids len"))?, "ids")?;
                per_query.push(
                    raw.chunks_exact(4)
                        .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
                        .collect(),
                );
            }
            ShardResponse::Ids(per_query)
        }
        kind::SHARD_PAIRS_RESP => {
            let count = d.u32("pairs count")? as usize;
            let mut per_query = Vec::with_capacity(count.min(body.len() / 4 + 1));
            for _ in 0..count {
                let m = d.u32("pairs len")? as usize;
                let mut pairs = Vec::with_capacity(m.min(body.len() / 12 + 1));
                for _ in 0..m {
                    let id = d.u32("pair id")?;
                    let dist = d.f64("pair dist")?;
                    pairs.push((id, dist));
                }
                per_query.push(pairs);
            }
            ShardResponse::Pairs(per_query)
        }
        other => return Err(WireError::UnknownKind(other)),
    };
    d.finish("trailing bytes after shard response body")?;
    Ok(resp)
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

/// Byte-buffer helpers shared by the encoders; all little-endian.
struct Enc(Vec<u8>);

impl Enc {
    fn u8(&mut self, v: u8) {
        self.0.push(v);
    }
    fn u16(&mut self, v: u16) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn f32s(&mut self, vs: &[f32]) {
        self.0.reserve(vs.len() * 4);
        for v in vs {
            self.0.extend_from_slice(&v.to_le_bytes());
        }
    }
}

/// Frames `(kind, body)` into one contiguous byte vector ready for a
/// single `write_all`.
fn frame(kind: u8, body: &[u8]) -> Vec<u8> {
    let len = (8 + body.len()) as u32;
    let mut out = Vec::with_capacity(4 + len as usize);
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(&MAGIC);
    out.push(PROTOCOL_VERSION);
    out.push(kind);
    out.extend_from_slice(&[0, 0]); // reserved
    out.extend_from_slice(body);
    out
}

fn encode_block(e: &mut Enc, b: &QueryBlock) {
    e.u32(b.dim);
    e.u32(b.count() as u32);
    e.f32s(&b.data);
}

impl Request {
    /// Encodes the request as one complete frame.
    ///
    /// # Panics
    /// Panics if a [`Request::Insert`]'s id count differs from its
    /// block's row count (a programming error, not a wire condition).
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc(Vec::new());
        let kind = match self {
            Request::Rnnr { radius, queries } => {
                e.f64(*radius);
                encode_block(&mut e, queries);
                kind::RNNR
            }
            Request::TopK { k, queries } => {
                e.u32(*k);
                encode_block(&mut e, queries);
                kind::TOPK
            }
            Request::Info => kind::INFO,
            Request::Insert { ids, points } => {
                assert_eq!(ids.len(), points.count(), "one id per inserted row");
                e.u32(points.dim);
                e.u32(ids.len() as u32);
                for &id in ids {
                    e.u32(id);
                }
                e.f32s(&points.data);
                kind::INSERT
            }
            Request::Delete { ids } => {
                e.u32(ids.len() as u32);
                for &id in ids {
                    e.u32(id);
                }
                kind::DELETE
            }
        };
        frame(kind, &e.0)
    }
}

impl Response {
    /// Encodes the response as one complete frame.
    ///
    /// The encoding is deterministic: identical results produce
    /// identical bytes, which is what lets the loopback gate compare
    /// socket answers against in-process batch calls.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc(Vec::new());
        let kind = match self {
            Response::Rnnr(per_query) => {
                e.u32(per_query.len() as u32);
                for ids in per_query {
                    e.u32(ids.len() as u32);
                    for &id in ids {
                        e.u32(id);
                    }
                }
                kind::RNNR_RESP
            }
            Response::TopK(per_query) => {
                e.u32(per_query.len() as u32);
                for pairs in per_query {
                    e.u32(pairs.len() as u32);
                    for &(id, dist) in pairs {
                        e.u32(id);
                        e.f64(dist);
                    }
                }
                kind::TOPK_RESP
            }
            Response::Info(info) => {
                e.u64(info.points);
                e.u32(info.dim);
                e.u32(info.shards);
                e.u32(info.topk_levels);
                kind::INFO_RESP
            }
            Response::Inserted(count) => {
                e.u32(*count);
                kind::INSERT_RESP
            }
            Response::Deleted(count) => {
                e.u32(*count);
                kind::DELETE_RESP
            }
            Response::Error { code, message } => {
                let msg = message.as_bytes();
                let take = msg.len().min(u16::MAX as usize);
                e.u16(*code as u16);
                e.u16(take as u16);
                e.0.extend_from_slice(&msg[..take]);
                kind::ERROR
            }
        };
        frame(kind, &e.0)
    }
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

/// Little-endian cursor over a frame body.
struct Dec<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Dec<'a> {
    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], WireError> {
        let end = self.at.checked_add(n).ok_or(WireError::Malformed(what))?;
        if end > self.buf.len() {
            return Err(WireError::Malformed(what));
        }
        let s = &self.buf[self.at..end];
        self.at = end;
        Ok(s)
    }
    fn u8(&mut self, what: &'static str) -> Result<u8, WireError> {
        Ok(self.take(1, what)?[0])
    }
    fn u16(&mut self, what: &'static str) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2, what)?.try_into().unwrap()))
    }
    fn u32(&mut self, what: &'static str) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().unwrap()))
    }
    fn u64(&mut self, what: &'static str) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }
    fn f64(&mut self, what: &'static str) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64(what)?))
    }
    fn finish(&self, what: &'static str) -> Result<(), WireError> {
        if self.at == self.buf.len() {
            Ok(())
        } else {
            Err(WireError::Malformed(what))
        }
    }
}

fn decode_block(d: &mut Dec<'_>) -> Result<QueryBlock, WireError> {
    let dim = d.u32("query block dim")?;
    let count = d.u32("query block count")?;
    if dim == 0 && count > 0 {
        // Zero-dimensional queries would decode to a block whose count
        // silently collapses to 0, breaking the response-count-equals-
        // request-count guarantee.
        return Err(WireError::Malformed("zero-dim query block with nonzero count"));
    }
    let bytes = (dim as usize)
        .checked_mul(count as usize)
        .and_then(|floats| floats.checked_mul(4))
        .ok_or(WireError::Malformed("block size"))?;
    let raw = d.take(bytes, "query block data")?;
    let data = raw.chunks_exact(4).map(|c| f32::from_le_bytes(c.try_into().unwrap())).collect();
    Ok(QueryBlock { dim, data })
}

/// Decodes a request frame body; `kind` is the header's kind byte.
pub fn decode_request(kind: u8, body: &[u8]) -> Result<Request, WireError> {
    let mut d = Dec { buf: body, at: 0 };
    let req = match kind {
        kind::RNNR => {
            let radius = d.f64("rnnr radius")?;
            Request::Rnnr { radius, queries: decode_block(&mut d)? }
        }
        kind::TOPK => {
            let k = d.u32("topk k")?;
            Request::TopK { k, queries: decode_block(&mut d)? }
        }
        kind::INFO => Request::Info,
        kind::INSERT => {
            let dim = d.u32("insert dim")?;
            let count = d.u32("insert count")?;
            if dim == 0 && count > 0 {
                return Err(WireError::Malformed("zero-dim insert with nonzero count"));
            }
            let ids = decode_ids(&mut d, count, "insert ids")?;
            let bytes = (dim as usize)
                .checked_mul(count as usize)
                .and_then(|floats| floats.checked_mul(4))
                .ok_or(WireError::Malformed("insert block size"))?;
            let raw = d.take(bytes, "insert points")?;
            let data =
                raw.chunks_exact(4).map(|c| f32::from_le_bytes(c.try_into().unwrap())).collect();
            Request::Insert { ids, points: QueryBlock { dim, data } }
        }
        kind::DELETE => {
            let count = d.u32("delete count")?;
            Request::Delete { ids: decode_ids(&mut d, count, "delete ids")? }
        }
        other => return Err(WireError::UnknownKind(other)),
    };
    d.finish("trailing bytes after request body")?;
    Ok(req)
}

/// Reads `count` little-endian u32 ids with overflow-checked sizing.
fn decode_ids(d: &mut Dec<'_>, count: u32, what: &'static str) -> Result<Vec<u32>, WireError> {
    let bytes = (count as usize).checked_mul(4).ok_or(WireError::Malformed(what))?;
    let raw = d.take(bytes, what)?;
    Ok(raw.chunks_exact(4).map(|c| u32::from_le_bytes(c.try_into().unwrap())).collect())
}

/// Decodes a response frame body; `kind` is the header's kind byte.
pub fn decode_response(kind: u8, body: &[u8]) -> Result<Response, WireError> {
    let mut d = Dec { buf: body, at: 0 };
    let resp = match kind {
        kind::RNNR_RESP => {
            let count = d.u32("rnnr count")? as usize;
            let mut per_query = Vec::with_capacity(count.min(body.len() / 4 + 1));
            for _ in 0..count {
                let m = d.u32("rnnr result len")? as usize;
                let raw = d.take(m * 4, "rnnr ids")?;
                per_query.push(
                    raw.chunks_exact(4)
                        .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
                        .collect(),
                );
            }
            Response::Rnnr(per_query)
        }
        kind::TOPK_RESP => {
            let count = d.u32("topk count")? as usize;
            let mut per_query = Vec::with_capacity(count.min(body.len() / 4 + 1));
            for _ in 0..count {
                let m = d.u32("topk result len")? as usize;
                let mut pairs = Vec::with_capacity(m.min(body.len() / 12 + 1));
                for _ in 0..m {
                    let id = d.u32("topk id")?;
                    let dist = d.f64("topk dist")?;
                    pairs.push((id, dist));
                }
                per_query.push(pairs);
            }
            Response::TopK(per_query)
        }
        kind::INFO_RESP => Response::Info(ServerInfo {
            points: d.u64("info points")?,
            dim: d.u32("info dim")?,
            shards: d.u32("info shards")?,
            topk_levels: d.u32("info levels")?,
        }),
        kind::INSERT_RESP => Response::Inserted(d.u32("insert ack count")?),
        kind::DELETE_RESP => Response::Deleted(d.u32("delete ack count")?),
        kind::ERROR => {
            let raw = d.u16("error code")?;
            let code = ErrorCode::from_u16(raw).ok_or(WireError::Malformed("error code"))?;
            let m = d.u16("error msg len")? as usize;
            let msg = d.take(m, "error msg")?;
            let message = String::from_utf8_lossy(msg).into_owned();
            Response::Error { code, message }
        }
        other => return Err(WireError::UnknownKind(other)),
    };
    d.finish("trailing bytes after response body")?;
    Ok(resp)
}

// ---------------------------------------------------------------------------
// Framed I/O
// ---------------------------------------------------------------------------

/// Reads one frame: returns `(kind, body)` after validating the length
/// prefix, magic, version and reserved bytes.
///
/// A clean EOF *before the first length byte* surfaces as
/// `WireError::Io` with [`io::ErrorKind::UnexpectedEof`] — callers that
/// treat end-of-stream as a normal goodbye should match on that. On
/// [`WireError::TooLarge`] nothing past the length prefix has been
/// consumed, so the connection must be closed.
pub fn read_frame<R: Read>(r: &mut R, max_frame_bytes: usize) -> Result<(u8, Vec<u8>), WireError> {
    let mut len4 = [0u8; 4];
    r.read_exact(&mut len4)?;
    let len = u32::from_le_bytes(len4) as usize;
    if len > max_frame_bytes {
        return Err(WireError::TooLarge { declared: len, limit: max_frame_bytes });
    }
    if len < 8 {
        // Not Malformed: the `len` declared bytes were never read, so
        // the stream position is unknowable and the connection must
        // close (recoverable() = false).
        return Err(WireError::TooShort { declared: len });
    }
    let mut rest = vec![0u8; len];
    r.read_exact(&mut rest)?;
    if rest[0..4] != MAGIC {
        return Err(WireError::BadMagic);
    }
    if rest[4] != PROTOCOL_VERSION {
        return Err(WireError::BadVersion(rest[4]));
    }
    if rest[6..8] != [0, 0] {
        return Err(WireError::Malformed("nonzero reserved bytes"));
    }
    let kind = rest[5];
    rest.drain(..8);
    Ok((kind, rest))
}

/// Writes one already-encoded frame and flushes.
pub fn write_frame<W: Write>(w: &mut W, frame: &[u8]) -> io::Result<()> {
    w.write_all(frame)?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strip(frame: &[u8]) -> (u8, &[u8]) {
        // [len][magic][ver][kind][res;2][body]
        (frame[9], &frame[12..])
    }

    #[test]
    fn request_roundtrip() {
        let qs = vec![vec![1.0f32, -2.5], vec![0.0, 3.25]];
        for req in [
            Request::Rnnr { radius: 1.5, queries: QueryBlock::pack(&qs, 2) },
            Request::TopK { k: 10, queries: QueryBlock::pack(&qs, 2) },
            Request::Info,
            Request::Insert { ids: vec![40, 7], points: QueryBlock::pack(&qs, 2) },
            Request::Insert { ids: vec![], points: QueryBlock::pack(&[], 2) },
            Request::Delete { ids: vec![3, 1, 4] },
            Request::Delete { ids: vec![] },
        ] {
            let bytes = req.encode();
            let (kind, body) = strip(&bytes);
            assert_eq!(decode_request(kind, body).unwrap(), req);
        }
    }

    #[test]
    fn response_roundtrip() {
        for resp in [
            Response::Rnnr(vec![vec![3, 1, 4], vec![], vec![9]]),
            Response::TopK(vec![vec![(7, 0.125), (2, f64::INFINITY)], vec![]]),
            Response::Info(ServerInfo { points: 20_000, dim: 24, shards: 4, topk_levels: 4 }),
            Response::Inserted(12),
            Response::Deleted(0),
            Response::Error { code: ErrorCode::DimMismatch, message: "want 24, got 7".into() },
            Response::Error { code: ErrorCode::UnknownId, message: "id 99 not live".into() },
            Response::Error { code: ErrorCode::DuplicateId, message: "id 7 already live".into() },
        ] {
            let bytes = resp.encode();
            let (kind, body) = strip(&bytes);
            assert_eq!(decode_response(kind, body).unwrap(), resp);
        }
    }

    #[test]
    fn float_bits_survive() {
        // Distances cross the wire as raw IEEE-754 bits, including the
        // weird ones.
        let pairs = vec![(0u32, f64::from_bits(0x7ff8_0000_0000_0001)), (1, -0.0)];
        let resp = Response::TopK(vec![pairs.clone()]);
        let bytes = resp.encode();
        let (kind, body) = strip(&bytes);
        match decode_response(kind, body).unwrap() {
            Response::TopK(got) => {
                for (a, b) in got[0].iter().zip(&pairs) {
                    assert_eq!(a.0, b.0);
                    assert_eq!(a.1.to_bits(), b.1.to_bits());
                }
            }
            other => panic!("wrong kind {other:?}"),
        }
    }

    #[test]
    fn framed_io_roundtrip() {
        let req = Request::Rnnr { radius: 2.0, queries: QueryBlock::pack(&[vec![1.0f32; 4]], 4) };
        let bytes = req.encode();
        let mut cur = io::Cursor::new(&bytes);
        let (kind, body) = read_frame(&mut cur, DEFAULT_MAX_FRAME_BYTES).unwrap();
        assert_eq!(kind, kind::RNNR);
        assert_eq!(decode_request(kind, &body).unwrap(), req);
        // Stream exhausted: the next read reports a clean EOF.
        match read_frame(&mut cur, DEFAULT_MAX_FRAME_BYTES) {
            Err(WireError::Io(e)) => assert_eq!(e.kind(), io::ErrorKind::UnexpectedEof),
            other => panic!("expected eof, got {other:?}"),
        }
    }

    #[test]
    fn frame_validation() {
        let good = Request::Info.encode();

        // Oversized: the length prefix alone triggers rejection.
        let mut cur = io::Cursor::new(&good);
        match read_frame(&mut cur, 4) {
            Err(e @ WireError::TooLarge { declared: 8, limit: 4 }) => assert!(!e.recoverable()),
            other => panic!("{other:?}"),
        }

        // Bad magic.
        let mut bad = good.clone();
        bad[4] = b'X';
        match read_frame(&mut io::Cursor::new(&bad), 1024) {
            Err(e @ WireError::BadMagic) => assert!(!e.recoverable()),
            other => panic!("{other:?}"),
        }

        // Future version.
        let mut bad = good.clone();
        bad[8] = 99;
        assert!(matches!(
            read_frame(&mut io::Cursor::new(&bad), 1024),
            Err(WireError::BadVersion(99))
        ));

        // Nonzero reserved bytes: full frame consumed ⇒ recoverable.
        let mut bad = good.clone();
        bad[10] = 1;
        match read_frame(&mut io::Cursor::new(&bad), 1024) {
            Err(e @ WireError::Malformed(_)) => assert!(e.recoverable()),
            other => panic!("{other:?}"),
        }

        // A length that cannot contain the header: the declared bytes
        // were never consumed, so this must NOT be recoverable (a
        // recoverable classification would desync the stream).
        let mut short = Vec::new();
        short.extend_from_slice(&4u32.to_le_bytes());
        short.extend_from_slice(&[0xAA; 4]); // phantom payload, unread
        match read_frame(&mut io::Cursor::new(&short), 1024) {
            Err(e @ WireError::TooShort { declared: 4 }) => {
                assert!(!e.recoverable());
                assert_eq!(e.to_code(), ErrorCode::Malformed);
            }
            other => panic!("{other:?}"),
        }

        // Unknown kind decodes the frame but not the request; the error
        // is recoverable (the body was fully consumed).
        let mut odd = good.clone();
        odd[9] = 0x42;
        let (kind, body) = read_frame(&mut io::Cursor::new(&odd), 1024).unwrap();
        match decode_request(kind, &body) {
            Err(e @ WireError::UnknownKind(0x42)) => assert!(e.recoverable()),
            other => panic!("{other:?}"),
        }
    }

    fn params() -> ShardParams {
        ShardParams {
            hll_precision: 10,
            hll_seed: 0xDEAD_BEEF,
            alpha: 1.0,
            beta_scan: 0.1,
            beta_cand: 0.2,
        }
    }

    #[test]
    fn shard_request_roundtrip() {
        let qs = vec![vec![1.0f32, -2.5], vec![0.0, 3.25]];
        for req in [
            ShardRequest::Info,
            ShardRequest::Summarize {
                target: ShardTarget::Rnnr,
                queries: QueryBlock::pack(&qs, 2),
            },
            ShardRequest::Summarize {
                target: ShardTarget::TopKLevel(3),
                queries: QueryBlock::pack(&qs, 2),
            },
            ShardRequest::Execute {
                target: ShardTarget::TopKLevel(0),
                arm: Arm::Lsh,
                radius: 2.5,
                queries: QueryBlock::pack(&qs, 2),
            },
            ShardRequest::Execute {
                target: ShardTarget::Rnnr,
                arm: Arm::Linear,
                radius: 0.25,
                queries: QueryBlock::pack(&qs, 2),
            },
            ShardRequest::Scan { queries: QueryBlock::pack(&qs, 2) },
        ] {
            let bytes = req.encode();
            let (kind, body) = strip(&bytes);
            assert!(kind::is_shard_request(kind));
            assert_eq!(decode_shard_request(kind, body).unwrap(), req);
        }
    }

    #[test]
    fn shard_response_roundtrip() {
        for resp in [
            ShardResponse::Info(ShardInfo {
                shard_id: 1,
                shards: 4,
                points: 60_000,
                dim: 24,
                rnnr: params(),
                levels: vec![
                    ShardLevelInfo { radius: 0.5, params: params() },
                    ShardLevelInfo { radius: 1.0, params: params() },
                ],
            }),
            ShardResponse::Summaries(vec![
                ShardSummaryEntry { collisions: 42, registers: vec![0, 3, 1, 7] },
                ShardSummaryEntry { collisions: 0, registers: vec![9, 0, 0, 2] },
            ]),
            ShardResponse::Summaries(vec![]),
            ShardResponse::Ids(vec![vec![3, 1, 4], vec![], vec![9]]),
            ShardResponse::Pairs(vec![vec![(7, 0.125), (2, f64::INFINITY)], vec![]]),
        ] {
            let bytes = resp.encode();
            let (kind, body) = strip(&bytes);
            assert!(!kind::is_shard_request(kind));
            assert_eq!(decode_shard_response(kind, body).unwrap(), resp);
        }
    }

    #[test]
    fn shard_bodies_reject_garbage() {
        // Truncations of a summarize request all surface as Malformed.
        let full = ShardRequest::Summarize {
            target: ShardTarget::Rnnr,
            queries: QueryBlock::pack(&[vec![1.0f32, 2.0]], 2),
        }
        .encode();
        let body = &full[12..];
        for cut in 0..body.len() {
            match decode_shard_request(kind::SHARD_SUMMARIZE, &body[..cut]) {
                Err(WireError::Malformed(_)) => {}
                other => panic!("cut={cut}: {other:?}"),
            }
        }

        // An rnnr target must not smuggle a ladder level.
        let mut tampered = body.to_vec();
        tampered[1] = 7; // level byte of the (tag, level) pair
        assert!(matches!(
            decode_shard_request(kind::SHARD_SUMMARIZE, &tampered),
            Err(WireError::Malformed(_))
        ));

        // Bad arm tag.
        let exec = ShardRequest::Execute {
            target: ShardTarget::Rnnr,
            arm: Arm::Lsh,
            radius: 1.0,
            queries: QueryBlock::pack(&[vec![1.0f32, 2.0]], 2),
        }
        .encode();
        let mut bad_arm = exec[12..].to_vec();
        bad_arm[5] = 9; // arm byte follows the 5-byte target
        assert!(matches!(
            decode_shard_request(kind::SHARD_EXECUTE, &bad_arm),
            Err(WireError::Malformed(_))
        ));

        // Info responses validate the decision-replay parameters so a
        // coordinator can feed them to CostModel/HllConfig unchecked.
        let mut info = ShardResponse::Info(ShardInfo {
            shard_id: 0,
            shards: 1,
            points: 10,
            dim: 2,
            rnnr: params(),
            levels: vec![],
        })
        .encode()[12..]
            .to_vec();
        info[20] = 3; // precision byte: below the 4..=16 floor
        assert!(matches!(
            decode_shard_response(kind::SHARD_INFO_RESP, &info),
            Err(WireError::Malformed(_))
        ));
        let mut neg = ShardResponse::Info(ShardInfo {
            shard_id: 0,
            shards: 1,
            points: 10,
            dim: 2,
            rnnr: ShardParams { alpha: -1.0, ..params() },
            levels: vec![],
        });
        if let ShardResponse::Info(i) = &mut neg {
            assert!(i.rnnr.alpha < 0.0);
        }
        let neg = neg.encode();
        assert!(matches!(
            decode_shard_response(kind::SHARD_INFO_RESP, &neg[12..]),
            Err(WireError::Malformed(_))
        ));

        // shard_id must index into shards.
        let mut oob = ShardResponse::Info(ShardInfo {
            shard_id: 0,
            shards: 1,
            points: 10,
            dim: 2,
            rnnr: params(),
            levels: vec![],
        })
        .encode()[12..]
            .to_vec();
        oob[0] = 5; // shard_id low byte, shards stays 1
        assert!(matches!(
            decode_shard_response(kind::SHARD_INFO_RESP, &oob),
            Err(WireError::Malformed(_))
        ));

        // A summary header with an absurd register count is rejected
        // before any allocation.
        let mut huge = Vec::new();
        huge.extend_from_slice(&1u32.to_le_bytes());
        huge.extend_from_slice(&(1u32 << 20).to_le_bytes());
        assert!(matches!(
            decode_shard_response(kind::SHARD_SUMMARY_RESP, &huge),
            Err(WireError::Malformed(_))
        ));

        // Ids length that overflows usize math must not allocate.
        let mut evil = Vec::new();
        evil.extend_from_slice(&1u32.to_le_bytes());
        evil.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            decode_shard_response(kind::SHARD_IDS_RESP, &evil),
            Err(WireError::Malformed(_))
        ));

        // Trailing bytes are rejected, not ignored.
        let mut padded = ShardRequest::Info.encode()[12..].to_vec();
        padded.push(0);
        assert!(matches!(
            decode_shard_request(kind::SHARD_INFO, &padded),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn truncated_bodies_are_malformed_not_panics() {
        let qs = vec![vec![1.0f32, 2.0]];
        let full = Request::Rnnr { radius: 1.0, queries: QueryBlock::pack(&qs, 2) }.encode();
        let body = &full[12..];
        for cut in 0..body.len() {
            match decode_request(kind::RNNR, &body[..cut]) {
                Err(WireError::Malformed(_)) => {}
                other => panic!("cut={cut}: {other:?}"),
            }
        }
        // A block whose dim·count overflows usize must not allocate.
        let mut evil = Vec::new();
        evil.extend_from_slice(&1.0f64.to_le_bytes());
        evil.extend_from_slice(&u32::MAX.to_le_bytes());
        evil.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(decode_request(kind::RNNR, &evil), Err(WireError::Malformed(_))));
        // dim = 0 with nonzero count would collapse to a 0-query block
        // and break response-count = request-count; reject at decode.
        let mut zero_dim = Vec::new();
        zero_dim.extend_from_slice(&1.0f64.to_le_bytes());
        zero_dim.extend_from_slice(&0u32.to_le_bytes());
        zero_dim.extend_from_slice(&5u32.to_le_bytes());
        assert!(matches!(decode_request(kind::RNNR, &zero_dim), Err(WireError::Malformed(_))));
    }

    #[test]
    fn mutation_bodies_reject_garbage() {
        // Truncation at every byte offset of an insert body is
        // Malformed, never a panic or a partial decode.
        let full = Request::Insert {
            ids: vec![40, 7],
            points: QueryBlock::pack(&[vec![1.0f32, 2.0], vec![3.0, 4.0]], 2),
        }
        .encode();
        let body = &full[12..];
        for cut in 0..body.len() {
            match decode_request(kind::INSERT, &body[..cut]) {
                Err(WireError::Malformed(_)) => {}
                other => panic!("cut={cut}: {other:?}"),
            }
        }
        // ... and trailing bytes are rejected, not ignored.
        let mut padded = body.to_vec();
        padded.push(0);
        assert!(matches!(decode_request(kind::INSERT, &padded), Err(WireError::Malformed(_))));

        let full = Request::Delete { ids: vec![3, 1, 4] }.encode();
        let body = &full[12..];
        for cut in 0..body.len() {
            match decode_request(kind::DELETE, &body[..cut]) {
                Err(WireError::Malformed(_)) => {}
                other => panic!("cut={cut}: {other:?}"),
            }
        }
        let mut padded = body.to_vec();
        padded.push(0);
        assert!(matches!(decode_request(kind::DELETE, &padded), Err(WireError::Malformed(_))));

        // Overflowing id / point block sizes must not allocate.
        let mut evil = Vec::new();
        evil.extend_from_slice(&u32::MAX.to_le_bytes()); // delete count
        assert!(matches!(decode_request(kind::DELETE, &evil), Err(WireError::Malformed(_))));
        let mut evil = Vec::new();
        evil.extend_from_slice(&u32::MAX.to_le_bytes()); // insert dim
        evil.extend_from_slice(&u32::MAX.to_le_bytes()); // insert count
        assert!(matches!(decode_request(kind::INSERT, &evil), Err(WireError::Malformed(_))));

        // Zero-dim inserts with rows would break the one-id-per-row
        // pairing downstream; reject at decode like query blocks do.
        let mut zero_dim = Vec::new();
        zero_dim.extend_from_slice(&0u32.to_le_bytes());
        zero_dim.extend_from_slice(&2u32.to_le_bytes());
        zero_dim.extend_from_slice(&[0u8; 8]); // the two ids
        assert!(matches!(decode_request(kind::INSERT, &zero_dim), Err(WireError::Malformed(_))));

        // The mutation error codes survive the wire.
        for code in [ErrorCode::UnknownId, ErrorCode::DuplicateId] {
            assert_eq!(ErrorCode::from_u16(code as u16), Some(code));
        }
    }
}
