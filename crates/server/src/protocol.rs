//! The `hlsh` wire protocol: length-prefixed binary frames.
//!
//! Every message — request or response — travels as one *frame*:
//!
//! ```text
//! offset  size  field
//! 0       4     len      u32 LE: byte length of everything after this
//!                        field (header remainder + body); 8 ≤ len ≤
//!                        the receiver's max-frame limit
//! 4       4     magic    b"HLSH"
//! 8       1     version  PROTOCOL_VERSION (currently 1)
//! 9       1     kind     frame kind (see below)
//! 10      2     reserved must be zero
//! 12      len-8 body     kind-specific payload
//! ```
//!
//! All integers are little-endian; `f32`/`f64` are IEEE-754 bit
//! patterns in little-endian byte order, so vectors and distances
//! survive the round trip *bit-exactly* — the property the loopback CI
//! gate pins (socket responses byte-identical to in-process
//! [`query_batch`](hlsh_core::ShardedIndex::query_batch) results).
//!
//! Frame kinds and their bodies are documented on [`Request`] and
//! [`Response`]; `docs/PROTOCOL.md` in the repository root specifies
//! the format (including batching semantics and error handling)
//! precisely enough to write a third-party client. Decoding is total:
//! every malformed input maps to a [`WireError`], never a panic.

use std::io::{self, Read, Write};

/// Protocol magic, the first four post-length bytes of every frame.
pub const MAGIC: [u8; 4] = *b"HLSH";

/// Current protocol version; bumped on any incompatible frame change.
pub const PROTOCOL_VERSION: u8 = 1;

/// Default cap on `len` (bytes after the length prefix) a peer accepts.
/// At d = 1024 this still admits ~8k queries per request frame.
pub const DEFAULT_MAX_FRAME_BYTES: usize = 32 * 1024 * 1024;

/// Frame kind bytes. Requests have the high bit clear, responses set
/// (error frames use `0x7F`, distinct from both ranges).
pub mod kind {
    /// r-near-neighbor-reporting batch request.
    pub const RNNR: u8 = 0x01;
    /// Top-k batch request.
    pub const TOPK: u8 = 0x02;
    /// Server/index metadata request (empty body).
    pub const INFO: u8 = 0x03;
    /// rNNR batch response.
    pub const RNNR_RESP: u8 = 0x81;
    /// Top-k batch response.
    pub const TOPK_RESP: u8 = 0x82;
    /// Metadata response.
    pub const INFO_RESP: u8 = 0x83;
    /// Error response.
    pub const ERROR: u8 = 0x7F;
}

/// Error codes carried by [`kind::ERROR`] frames.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u16)]
pub enum ErrorCode {
    /// The magic bytes were not `b"HLSH"`.
    BadMagic = 1,
    /// The version byte is not supported by the receiver.
    BadVersion = 2,
    /// The kind byte names no known frame.
    UnknownKind = 3,
    /// The body does not parse as its kind's layout.
    Malformed = 4,
    /// The declared frame length exceeds the receiver's limit.
    TooLarge = 5,
    /// A query vector's dimensionality does not match the index.
    DimMismatch = 6,
    /// The request is valid but this server cannot serve it (e.g. a
    /// top-k request against an rNNR-only deployment).
    Unsupported = 7,
    /// The server failed internally while executing the request.
    Internal = 8,
}

impl ErrorCode {
    /// The code for a raw wire value, if it names one.
    pub fn from_u16(v: u16) -> Option<Self> {
        Some(match v {
            1 => Self::BadMagic,
            2 => Self::BadVersion,
            3 => Self::UnknownKind,
            4 => Self::Malformed,
            5 => Self::TooLarge,
            6 => Self::DimMismatch,
            7 => Self::Unsupported,
            8 => Self::Internal,
            _ => return None,
        })
    }
}

/// Everything that can go wrong while decoding bytes off the wire.
///
/// [`WireError::to_code`] maps each variant to the [`ErrorCode`] a
/// server reports back; [`WireError::recoverable`] tells the server
/// whether the connection may live on afterwards or must be dropped
/// because the stream position is unknowable.
#[derive(Debug)]
pub enum WireError {
    /// Underlying socket/file error (includes clean EOF between frames).
    Io(io::Error),
    /// Bad magic bytes — the peer is not speaking this protocol.
    BadMagic,
    /// Unsupported protocol version.
    BadVersion(u8),
    /// Unknown frame kind byte.
    UnknownKind(u8),
    /// Body bytes do not parse as the declared kind.
    Malformed(&'static str),
    /// Declared length is too small to contain the frame header. Kept
    /// apart from [`WireError::Malformed`] because the declared bytes
    /// were *not* consumed, so the connection cannot survive.
    TooShort {
        /// The length the peer declared (< 8).
        declared: usize,
    },
    /// Declared length exceeds the local frame limit.
    TooLarge {
        /// The length the peer declared.
        declared: usize,
        /// The local limit it exceeded.
        limit: usize,
    },
}

impl WireError {
    /// The [`ErrorCode`] a server should answer with.
    pub fn to_code(&self) -> ErrorCode {
        match self {
            WireError::Io(_) => ErrorCode::Internal,
            WireError::BadMagic => ErrorCode::BadMagic,
            WireError::BadVersion(_) => ErrorCode::BadVersion,
            WireError::UnknownKind(_) => ErrorCode::UnknownKind,
            WireError::Malformed(_) => ErrorCode::Malformed,
            WireError::TooShort { .. } => ErrorCode::Malformed,
            WireError::TooLarge { .. } => ErrorCode::TooLarge,
        }
    }

    /// Whether the connection's stream position is still trustworthy
    /// after this error (`false` ⇒ the server must close it: the
    /// oversized/foreign bytes were never consumed).
    pub fn recoverable(&self) -> bool {
        matches!(self, WireError::UnknownKind(_) | WireError::Malformed(_))
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "i/o: {e}"),
            WireError::BadMagic => write!(f, "bad magic (not an HLSH frame)"),
            WireError::BadVersion(v) => {
                write!(f, "unsupported protocol version {v} (this side speaks {PROTOCOL_VERSION})")
            }
            WireError::UnknownKind(k) => write!(f, "unknown frame kind {k:#04x}"),
            WireError::Malformed(what) => write!(f, "malformed body: {what}"),
            WireError::TooShort { declared } => {
                write!(f, "declared frame length {declared} cannot contain the 8-byte header")
            }
            WireError::TooLarge { declared, limit } => {
                write!(f, "frame of {declared} bytes exceeds the {limit}-byte limit")
            }
        }
    }
}

impl std::error::Error for WireError {}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> Self {
        WireError::Io(e)
    }
}

/// A batch of query vectors in wire layout: row-major `f32`s.
#[derive(Clone, Debug, PartialEq)]
pub struct QueryBlock {
    /// Dimensionality of every query.
    pub dim: u32,
    /// Row-major `count × dim` matrix; `data.len() = count · dim`.
    pub data: Vec<f32>,
}

impl QueryBlock {
    /// Packs per-query slices into wire layout.
    ///
    /// # Panics
    /// Panics if any query's length differs from `dim`.
    pub fn pack(queries: &[Vec<f32>], dim: usize) -> Self {
        let mut data = Vec::with_capacity(queries.len() * dim);
        for q in queries {
            assert_eq!(q.len(), dim, "query length must equal dim");
            data.extend_from_slice(q);
        }
        Self { dim: dim as u32, data }
    }

    /// Number of queries in the block.
    pub fn count(&self) -> usize {
        if self.dim == 0 {
            0
        } else {
            self.data.len() / self.dim as usize
        }
    }

    /// Unpacks the block into one owned vector per query.
    pub fn rows(&self) -> Vec<Vec<f32>> {
        self.data.chunks_exact(self.dim.max(1) as usize).map(<[f32]>::to_vec).collect()
    }
}

/// A decoded request frame.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// [`kind::RNNR`] — report every indexed point within `radius` of
    /// each query. Body: `radius f64, dim u32, count u32,
    /// count·dim × f32`.
    Rnnr {
        /// The reporting radius.
        radius: f64,
        /// The query vectors.
        queries: QueryBlock,
    },
    /// [`kind::TOPK`] — the `k` nearest neighbors of each query.
    /// Body: `k u32, dim u32, count u32, count·dim × f32`.
    TopK {
        /// Neighbors requested per query.
        k: u32,
        /// The query vectors.
        queries: QueryBlock,
    },
    /// [`kind::INFO`] — index metadata. Empty body.
    Info,
}

/// Index metadata answered to [`Request::Info`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServerInfo {
    /// Indexed points.
    pub points: u64,
    /// Vector dimensionality the index expects.
    pub dim: u32,
    /// Shard count of the serving index.
    pub shards: u32,
    /// Radius-schedule levels of the top-k ladder (0 ⇒ top-k requests
    /// are answered with [`ErrorCode::Unsupported`]).
    pub topk_levels: u32,
}

/// A decoded response frame.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// [`kind::RNNR_RESP`] — per query, the ids within the radius in
    /// ascending order. Body: `count u32`, then per query
    /// `m u32, m × u32`.
    Rnnr(Vec<Vec<u32>>),
    /// [`kind::TOPK_RESP`] — per query, `(id, distance)` pairs in
    /// ascending `(distance, id)` order. Body: `count u32`, then per
    /// query `m u32, m × (u32, f64)`.
    TopK(Vec<Vec<(u32, f64)>>),
    /// [`kind::INFO_RESP`] — body: `points u64, dim u32, shards u32,
    /// topk_levels u32`.
    Info(ServerInfo),
    /// [`kind::ERROR`] — body: `code u16, msg_len u16, msg_len × u8`
    /// (UTF-8 diagnostic, never required for correct operation).
    Error {
        /// What went wrong.
        code: ErrorCode,
        /// Human-readable diagnostic.
        message: String,
    },
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

/// Byte-buffer helpers shared by the encoders; all little-endian.
struct Enc(Vec<u8>);

impl Enc {
    fn u16(&mut self, v: u16) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn f32s(&mut self, vs: &[f32]) {
        self.0.reserve(vs.len() * 4);
        for v in vs {
            self.0.extend_from_slice(&v.to_le_bytes());
        }
    }
}

/// Frames `(kind, body)` into one contiguous byte vector ready for a
/// single `write_all`.
fn frame(kind: u8, body: &[u8]) -> Vec<u8> {
    let len = (8 + body.len()) as u32;
    let mut out = Vec::with_capacity(4 + len as usize);
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(&MAGIC);
    out.push(PROTOCOL_VERSION);
    out.push(kind);
    out.extend_from_slice(&[0, 0]); // reserved
    out.extend_from_slice(body);
    out
}

fn encode_block(e: &mut Enc, b: &QueryBlock) {
    e.u32(b.dim);
    e.u32(b.count() as u32);
    e.f32s(&b.data);
}

impl Request {
    /// Encodes the request as one complete frame.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc(Vec::new());
        let kind = match self {
            Request::Rnnr { radius, queries } => {
                e.f64(*radius);
                encode_block(&mut e, queries);
                kind::RNNR
            }
            Request::TopK { k, queries } => {
                e.u32(*k);
                encode_block(&mut e, queries);
                kind::TOPK
            }
            Request::Info => kind::INFO,
        };
        frame(kind, &e.0)
    }
}

impl Response {
    /// Encodes the response as one complete frame.
    ///
    /// The encoding is deterministic: identical results produce
    /// identical bytes, which is what lets the loopback gate compare
    /// socket answers against in-process batch calls.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc(Vec::new());
        let kind = match self {
            Response::Rnnr(per_query) => {
                e.u32(per_query.len() as u32);
                for ids in per_query {
                    e.u32(ids.len() as u32);
                    for &id in ids {
                        e.u32(id);
                    }
                }
                kind::RNNR_RESP
            }
            Response::TopK(per_query) => {
                e.u32(per_query.len() as u32);
                for pairs in per_query {
                    e.u32(pairs.len() as u32);
                    for &(id, dist) in pairs {
                        e.u32(id);
                        e.f64(dist);
                    }
                }
                kind::TOPK_RESP
            }
            Response::Info(info) => {
                e.u64(info.points);
                e.u32(info.dim);
                e.u32(info.shards);
                e.u32(info.topk_levels);
                kind::INFO_RESP
            }
            Response::Error { code, message } => {
                let msg = message.as_bytes();
                let take = msg.len().min(u16::MAX as usize);
                e.u16(*code as u16);
                e.u16(take as u16);
                e.0.extend_from_slice(&msg[..take]);
                kind::ERROR
            }
        };
        frame(kind, &e.0)
    }
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

/// Little-endian cursor over a frame body.
struct Dec<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Dec<'a> {
    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], WireError> {
        let end = self.at.checked_add(n).ok_or(WireError::Malformed(what))?;
        if end > self.buf.len() {
            return Err(WireError::Malformed(what));
        }
        let s = &self.buf[self.at..end];
        self.at = end;
        Ok(s)
    }
    fn u16(&mut self, what: &'static str) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2, what)?.try_into().unwrap()))
    }
    fn u32(&mut self, what: &'static str) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().unwrap()))
    }
    fn u64(&mut self, what: &'static str) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }
    fn f64(&mut self, what: &'static str) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64(what)?))
    }
    fn finish(&self, what: &'static str) -> Result<(), WireError> {
        if self.at == self.buf.len() {
            Ok(())
        } else {
            Err(WireError::Malformed(what))
        }
    }
}

fn decode_block(d: &mut Dec<'_>) -> Result<QueryBlock, WireError> {
    let dim = d.u32("query block dim")?;
    let count = d.u32("query block count")?;
    if dim == 0 && count > 0 {
        // Zero-dimensional queries would decode to a block whose count
        // silently collapses to 0, breaking the response-count-equals-
        // request-count guarantee.
        return Err(WireError::Malformed("zero-dim query block with nonzero count"));
    }
    let bytes = (dim as usize)
        .checked_mul(count as usize)
        .and_then(|floats| floats.checked_mul(4))
        .ok_or(WireError::Malformed("block size"))?;
    let raw = d.take(bytes, "query block data")?;
    let data = raw.chunks_exact(4).map(|c| f32::from_le_bytes(c.try_into().unwrap())).collect();
    Ok(QueryBlock { dim, data })
}

/// Decodes a request frame body; `kind` is the header's kind byte.
pub fn decode_request(kind: u8, body: &[u8]) -> Result<Request, WireError> {
    let mut d = Dec { buf: body, at: 0 };
    let req = match kind {
        kind::RNNR => {
            let radius = d.f64("rnnr radius")?;
            Request::Rnnr { radius, queries: decode_block(&mut d)? }
        }
        kind::TOPK => {
            let k = d.u32("topk k")?;
            Request::TopK { k, queries: decode_block(&mut d)? }
        }
        kind::INFO => Request::Info,
        other => return Err(WireError::UnknownKind(other)),
    };
    d.finish("trailing bytes after request body")?;
    Ok(req)
}

/// Decodes a response frame body; `kind` is the header's kind byte.
pub fn decode_response(kind: u8, body: &[u8]) -> Result<Response, WireError> {
    let mut d = Dec { buf: body, at: 0 };
    let resp = match kind {
        kind::RNNR_RESP => {
            let count = d.u32("rnnr count")? as usize;
            let mut per_query = Vec::with_capacity(count.min(body.len() / 4 + 1));
            for _ in 0..count {
                let m = d.u32("rnnr result len")? as usize;
                let raw = d.take(m * 4, "rnnr ids")?;
                per_query.push(
                    raw.chunks_exact(4)
                        .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
                        .collect(),
                );
            }
            Response::Rnnr(per_query)
        }
        kind::TOPK_RESP => {
            let count = d.u32("topk count")? as usize;
            let mut per_query = Vec::with_capacity(count.min(body.len() / 4 + 1));
            for _ in 0..count {
                let m = d.u32("topk result len")? as usize;
                let mut pairs = Vec::with_capacity(m.min(body.len() / 12 + 1));
                for _ in 0..m {
                    let id = d.u32("topk id")?;
                    let dist = d.f64("topk dist")?;
                    pairs.push((id, dist));
                }
                per_query.push(pairs);
            }
            Response::TopK(per_query)
        }
        kind::INFO_RESP => Response::Info(ServerInfo {
            points: d.u64("info points")?,
            dim: d.u32("info dim")?,
            shards: d.u32("info shards")?,
            topk_levels: d.u32("info levels")?,
        }),
        kind::ERROR => {
            let raw = d.u16("error code")?;
            let code = ErrorCode::from_u16(raw).ok_or(WireError::Malformed("error code"))?;
            let m = d.u16("error msg len")? as usize;
            let msg = d.take(m, "error msg")?;
            let message = String::from_utf8_lossy(msg).into_owned();
            Response::Error { code, message }
        }
        other => return Err(WireError::UnknownKind(other)),
    };
    d.finish("trailing bytes after response body")?;
    Ok(resp)
}

// ---------------------------------------------------------------------------
// Framed I/O
// ---------------------------------------------------------------------------

/// Reads one frame: returns `(kind, body)` after validating the length
/// prefix, magic, version and reserved bytes.
///
/// A clean EOF *before the first length byte* surfaces as
/// `WireError::Io` with [`io::ErrorKind::UnexpectedEof`] — callers that
/// treat end-of-stream as a normal goodbye should match on that. On
/// [`WireError::TooLarge`] nothing past the length prefix has been
/// consumed, so the connection must be closed.
pub fn read_frame<R: Read>(r: &mut R, max_frame_bytes: usize) -> Result<(u8, Vec<u8>), WireError> {
    let mut len4 = [0u8; 4];
    r.read_exact(&mut len4)?;
    let len = u32::from_le_bytes(len4) as usize;
    if len > max_frame_bytes {
        return Err(WireError::TooLarge { declared: len, limit: max_frame_bytes });
    }
    if len < 8 {
        // Not Malformed: the `len` declared bytes were never read, so
        // the stream position is unknowable and the connection must
        // close (recoverable() = false).
        return Err(WireError::TooShort { declared: len });
    }
    let mut rest = vec![0u8; len];
    r.read_exact(&mut rest)?;
    if rest[0..4] != MAGIC {
        return Err(WireError::BadMagic);
    }
    if rest[4] != PROTOCOL_VERSION {
        return Err(WireError::BadVersion(rest[4]));
    }
    if rest[6..8] != [0, 0] {
        return Err(WireError::Malformed("nonzero reserved bytes"));
    }
    let kind = rest[5];
    rest.drain(..8);
    Ok((kind, rest))
}

/// Writes one already-encoded frame and flushes.
pub fn write_frame<W: Write>(w: &mut W, frame: &[u8]) -> io::Result<()> {
    w.write_all(frame)?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strip(frame: &[u8]) -> (u8, &[u8]) {
        // [len][magic][ver][kind][res;2][body]
        (frame[9], &frame[12..])
    }

    #[test]
    fn request_roundtrip() {
        let qs = vec![vec![1.0f32, -2.5], vec![0.0, 3.25]];
        for req in [
            Request::Rnnr { radius: 1.5, queries: QueryBlock::pack(&qs, 2) },
            Request::TopK { k: 10, queries: QueryBlock::pack(&qs, 2) },
            Request::Info,
        ] {
            let bytes = req.encode();
            let (kind, body) = strip(&bytes);
            assert_eq!(decode_request(kind, body).unwrap(), req);
        }
    }

    #[test]
    fn response_roundtrip() {
        for resp in [
            Response::Rnnr(vec![vec![3, 1, 4], vec![], vec![9]]),
            Response::TopK(vec![vec![(7, 0.125), (2, f64::INFINITY)], vec![]]),
            Response::Info(ServerInfo { points: 20_000, dim: 24, shards: 4, topk_levels: 4 }),
            Response::Error { code: ErrorCode::DimMismatch, message: "want 24, got 7".into() },
        ] {
            let bytes = resp.encode();
            let (kind, body) = strip(&bytes);
            assert_eq!(decode_response(kind, body).unwrap(), resp);
        }
    }

    #[test]
    fn float_bits_survive() {
        // Distances cross the wire as raw IEEE-754 bits, including the
        // weird ones.
        let pairs = vec![(0u32, f64::from_bits(0x7ff8_0000_0000_0001)), (1, -0.0)];
        let resp = Response::TopK(vec![pairs.clone()]);
        let bytes = resp.encode();
        let (kind, body) = strip(&bytes);
        match decode_response(kind, body).unwrap() {
            Response::TopK(got) => {
                for (a, b) in got[0].iter().zip(&pairs) {
                    assert_eq!(a.0, b.0);
                    assert_eq!(a.1.to_bits(), b.1.to_bits());
                }
            }
            other => panic!("wrong kind {other:?}"),
        }
    }

    #[test]
    fn framed_io_roundtrip() {
        let req = Request::Rnnr { radius: 2.0, queries: QueryBlock::pack(&[vec![1.0f32; 4]], 4) };
        let bytes = req.encode();
        let mut cur = io::Cursor::new(&bytes);
        let (kind, body) = read_frame(&mut cur, DEFAULT_MAX_FRAME_BYTES).unwrap();
        assert_eq!(kind, kind::RNNR);
        assert_eq!(decode_request(kind, &body).unwrap(), req);
        // Stream exhausted: the next read reports a clean EOF.
        match read_frame(&mut cur, DEFAULT_MAX_FRAME_BYTES) {
            Err(WireError::Io(e)) => assert_eq!(e.kind(), io::ErrorKind::UnexpectedEof),
            other => panic!("expected eof, got {other:?}"),
        }
    }

    #[test]
    fn frame_validation() {
        let good = Request::Info.encode();

        // Oversized: the length prefix alone triggers rejection.
        let mut cur = io::Cursor::new(&good);
        match read_frame(&mut cur, 4) {
            Err(e @ WireError::TooLarge { declared: 8, limit: 4 }) => assert!(!e.recoverable()),
            other => panic!("{other:?}"),
        }

        // Bad magic.
        let mut bad = good.clone();
        bad[4] = b'X';
        match read_frame(&mut io::Cursor::new(&bad), 1024) {
            Err(e @ WireError::BadMagic) => assert!(!e.recoverable()),
            other => panic!("{other:?}"),
        }

        // Future version.
        let mut bad = good.clone();
        bad[8] = 99;
        assert!(matches!(
            read_frame(&mut io::Cursor::new(&bad), 1024),
            Err(WireError::BadVersion(99))
        ));

        // Nonzero reserved bytes: full frame consumed ⇒ recoverable.
        let mut bad = good.clone();
        bad[10] = 1;
        match read_frame(&mut io::Cursor::new(&bad), 1024) {
            Err(e @ WireError::Malformed(_)) => assert!(e.recoverable()),
            other => panic!("{other:?}"),
        }

        // A length that cannot contain the header: the declared bytes
        // were never consumed, so this must NOT be recoverable (a
        // recoverable classification would desync the stream).
        let mut short = Vec::new();
        short.extend_from_slice(&4u32.to_le_bytes());
        short.extend_from_slice(&[0xAA; 4]); // phantom payload, unread
        match read_frame(&mut io::Cursor::new(&short), 1024) {
            Err(e @ WireError::TooShort { declared: 4 }) => {
                assert!(!e.recoverable());
                assert_eq!(e.to_code(), ErrorCode::Malformed);
            }
            other => panic!("{other:?}"),
        }

        // Unknown kind decodes the frame but not the request; the error
        // is recoverable (the body was fully consumed).
        let mut odd = good.clone();
        odd[9] = 0x42;
        let (kind, body) = read_frame(&mut io::Cursor::new(&odd), 1024).unwrap();
        match decode_request(kind, &body) {
            Err(e @ WireError::UnknownKind(0x42)) => assert!(e.recoverable()),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn truncated_bodies_are_malformed_not_panics() {
        let qs = vec![vec![1.0f32, 2.0]];
        let full = Request::Rnnr { radius: 1.0, queries: QueryBlock::pack(&qs, 2) }.encode();
        let body = &full[12..];
        for cut in 0..body.len() {
            match decode_request(kind::RNNR, &body[..cut]) {
                Err(WireError::Malformed(_)) => {}
                other => panic!("cut={cut}: {other:?}"),
            }
        }
        // A block whose dim·count overflows usize must not allocate.
        let mut evil = Vec::new();
        evil.extend_from_slice(&1.0f64.to_le_bytes());
        evil.extend_from_slice(&u32::MAX.to_le_bytes());
        evil.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(decode_request(kind::RNNR, &evil), Err(WireError::Malformed(_))));
        // dim = 0 with nonzero count would collapse to a 0-query block
        // and break response-count = request-count; reject at decode.
        let mut zero_dim = Vec::new();
        zero_dim.extend_from_slice(&1.0f64.to_le_bytes());
        zero_dim.extend_from_slice(&0u32.to_le_bytes());
        zero_dim.extend_from_slice(&5u32.to_le_bytes());
        assert!(matches!(decode_request(kind::RNNR, &zero_dim), Err(WireError::Malformed(_))));
    }
}
