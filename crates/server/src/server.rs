//! The threaded TCP server and its admission batcher.
//!
//! # Architecture
//!
//! ```text
//!  acceptor thread ──► one reader thread per connection
//!                          │  decode frame → Job{kind, queries, reply}
//!                          ▼
//!                    admission queue (Mutex<VecDeque> + Condvar)
//!                          │
//!                    batcher thread: wait for work, sleep one
//!                    admission window, drain EVERYTHING queued,
//!                    group by (kind, radius | k), and run ONE
//!                    query_batch / query_topk_batch call per group
//!                          │  split outputs back per job
//!                          ▼
//!                    reply channels → reader threads encode + write
//! ```
//!
//! The batcher is what turns many small concurrent requests into the
//! big batches the in-process engines are built for: one
//! [`query_batch`](hlsh_core::ShardedIndex::query_batch) call shards
//! its combined queries over scoped threads (and, on a sharded
//! service, fans each query across index shards), so socket clients
//! inherit the whole PR 1–4 execution stack without any async runtime.
//!
//! Batching never changes an answer: queries are independent, outputs
//! are split back in submission order, and the response encoding is
//! deterministic — `tests/server_loopback.rs` pins socket responses
//! byte-identical to in-process batch calls.

use std::collections::{HashMap, VecDeque};
use std::io::{self, BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use hlsh_vec::PointId;

use crate::protocol::{
    self, decode_request, read_frame, write_frame, ErrorCode, Request, Response, ServerInfo,
    ShardRequest, ShardResponse, WireError,
};

/// A service-level failure: what the server encodes into a
/// [`kind::ERROR`](protocol::kind::ERROR) frame when a batch cannot be
/// answered. Distinct from [`WireError`], which covers byte-level
/// decode problems — a `ServiceError` means the request parsed fine
/// but could not be executed (no top-k ladder, a shard backend down,
/// an internal failure).
#[derive(Clone, Debug)]
pub struct ServiceError {
    /// The wire code clients see.
    pub code: ErrorCode,
    /// Human-readable diagnostic.
    pub message: String,
}

impl ServiceError {
    /// A valid request this deployment cannot serve.
    pub fn unsupported(message: impl Into<String>) -> Self {
        Self { code: ErrorCode::Unsupported, message: message.into() }
    }

    /// A backend dependency is down or timed out.
    pub fn unavailable(message: impl Into<String>) -> Self {
        Self { code: ErrorCode::Unavailable, message: message.into() }
    }

    /// The service failed internally.
    pub fn internal(message: impl Into<String>) -> Self {
        Self { code: ErrorCode::Internal, message: message.into() }
    }

    /// The request's parameters don't fit this index (e.g. a ladder
    /// level out of range).
    pub fn malformed(message: impl Into<String>) -> Self {
        Self { code: ErrorCode::Malformed, message: message.into() }
    }
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?}: {}", self.code, self.message)
    }
}

impl std::error::Error for ServiceError {}

/// What a server serves: batch entry points over some index.
///
/// The two required methods mirror the in-process batch APIs —
/// [`ShardedIndex::query_batch`](hlsh_core::ShardedIndex::query_batch)
/// and [`ShardedTopKIndex::query_topk_batch`](hlsh_core::ShardedTopKIndex::query_topk_batch)
/// — and the byte-identity contract is inherited from them: whatever a
/// service returns here is exactly what clients decode. Errors become
/// [`kind::ERROR`](protocol::kind::ERROR) frames carrying the
/// [`ServiceError`]'s code, one per affected request.
pub trait QueryService: Send + Sync + 'static {
    /// Index metadata for [`Request::Info`] and dimension validation.
    fn info(&self) -> ServerInfo;

    /// Ids within `radius` of each query, ascending per query.
    /// `threads` is the scoped-thread budget (`None` = all cores).
    fn rnnr_batch(
        &self,
        queries: &[Vec<f32>],
        radius: f64,
        threads: Option<usize>,
    ) -> Result<Vec<Vec<PointId>>, ServiceError>;

    /// The `min(k, n)` nearest `(id, distance)` pairs per query in
    /// ascending `(distance, id)` order;
    /// [`ServiceError::unsupported`] if this deployment has no top-k
    /// ladder.
    fn topk_batch(
        &self,
        queries: &[Vec<f32>],
        k: usize,
        threads: Option<usize>,
    ) -> Result<Vec<Vec<(PointId, f64)>>, ServiceError>;

    /// Answers one shard-extension request (coordinator → shard
    /// traffic, kinds `0x10..=0x1F`). The default refuses: only shard
    /// nodes implement this, and a coordinator that accidentally dials
    /// a plain standalone server gets a typed error instead of silence.
    ///
    /// Shard frames bypass the admission batcher — the caller *is* a
    /// coordinator that already batched an entire client request, so
    /// lingering for more concurrency would only add latency.
    fn shard_batch(
        &self,
        request: &ShardRequest,
        threads: Option<usize>,
    ) -> Result<ShardResponse, ServiceError> {
        let _ = (request, threads);
        Err(ServiceError::unsupported("this server is not a shard node"))
    }
}

/// Server tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// Largest accepted frame (`len` field) in bytes; larger requests
    /// are answered with [`ErrorCode::TooLarge`] and the connection is
    /// closed (the payload is never read).
    pub max_frame_bytes: usize,
    /// How long the batcher lingers after the first pending request
    /// before draining the queue, letting concurrent requests join the
    /// same tick. Zero drains immediately.
    pub batch_window: Duration,
    /// Thread budget handed to the underlying batch calls
    /// (`None` = all available cores).
    pub batch_threads: Option<usize>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            max_frame_bytes: protocol::DEFAULT_MAX_FRAME_BYTES,
            batch_window: Duration::from_micros(100),
            batch_threads: None,
        }
    }
}

/// One admitted request waiting for the next batcher tick.
struct Job {
    queries: Vec<Vec<f32>>,
    kind: JobKind,
    reply: mpsc::Sender<Response>,
}

#[derive(Clone, Copy, PartialEq)]
enum JobKind {
    /// Radius keyed by bit pattern so NaN can't split/merge groups
    /// unpredictably (decode guarantees a finite f64 either way).
    Rnnr {
        radius_bits: u64,
    },
    TopK {
        k: u32,
    },
}

/// State shared by the acceptor, readers and batcher.
struct Shared {
    service: Arc<dyn QueryService>,
    config: ServerConfig,
    queue: Mutex<VecDeque<Job>>,
    queue_cv: Condvar,
    shutdown: AtomicBool,
    /// Clones of the live connections (keyed by an id so readers can
    /// deregister on exit), shut down to unblock readers.
    conns: Mutex<HashMap<u64, TcpStream>>,
    /// Connection-id source for `conns`.
    conn_seq: AtomicU64,
    /// Batch executions since startup (one per drained group).
    ticks: AtomicU64,
    /// Requests admitted since startup.
    admitted: AtomicU64,
}

/// A running server; dropping the handle shuts it down.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// `(batch ticks, admitted requests)` since startup. A tick count
    /// well below the request count means the admission batcher is
    /// coalescing concurrent requests as intended.
    pub fn batch_stats(&self) -> (u64, u64) {
        (self.shared.ticks.load(Ordering::Relaxed), self.shared.admitted.load(Ordering::Relaxed))
    }

    /// Stops accepting, closes every connection and joins all threads.
    /// Idempotent.
    pub fn shutdown(&mut self) {
        if self.shared.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Wake the acceptor with a throwaway connection; it re-checks
        // the flag before handling anything.
        let _ = TcpStream::connect(self.addr);
        // Unblock every reader parked in read_exact.
        for c in self.shared.conns.lock().unwrap().values() {
            let _ = c.shutdown(std::net::Shutdown::Both);
        }
        // Wake the batcher.
        self.shared.queue_cv.notify_all();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Binds `addr` and spawns the acceptor + batcher threads.
///
/// Use port 0 for an ephemeral port and read it back from
/// [`ServerHandle::local_addr`].
pub fn spawn<A: ToSocketAddrs>(
    service: Arc<dyn QueryService>,
    addr: A,
    config: ServerConfig,
) -> io::Result<ServerHandle> {
    // SO_REUSEADDR so a restarted node can rebind its advertised port
    // while the previous process's accepted sockets sit in TIME_WAIT —
    // without it, a shard crash would take the port hostage for ~60s
    // and "restart the shard" would not be a recovery story.
    let listener = crate::sockopt::bind_reuseaddr(addr)?;
    let addr = listener.local_addr()?;
    let shared = Arc::new(Shared {
        service,
        config,
        queue: Mutex::new(VecDeque::new()),
        queue_cv: Condvar::new(),
        shutdown: AtomicBool::new(false),
        conns: Mutex::new(HashMap::new()),
        conn_seq: AtomicU64::new(0),
        ticks: AtomicU64::new(0),
        admitted: AtomicU64::new(0),
    });

    let acceptor = {
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || accept_loop(listener, shared))
    };
    let batcher = {
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || batch_loop(shared))
    };
    Ok(ServerHandle { addr, shared, threads: vec![acceptor, batcher] })
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    // Reader threads are detached: shutdown() closes their sockets,
    // which ends their read loops; the final reader drops its Arc.
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let _ = stream.set_nodelay(true);
        // Register a clone so shutdown() can unblock the reader; the
        // reader deregisters itself on exit, so a long-lived server
        // does not accumulate dead fds.
        let conn_id = shared.conn_seq.fetch_add(1, Ordering::Relaxed);
        if let Ok(clone) = stream.try_clone() {
            shared.conns.lock().unwrap().insert(conn_id, clone);
        }
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || {
            let _ = connection_loop(stream, &shared);
            shared.conns.lock().unwrap().remove(&conn_id);
        });
    }
}

/// Reads frames off one connection until EOF, error or shutdown.
fn connection_loop(stream: TcpStream, shared: &Shared) -> io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return Ok(());
        }
        let (kind, body) = match read_frame(&mut reader, shared.config.max_frame_bytes) {
            Ok(f) => f,
            Err(WireError::Io(_)) => return Ok(()), // EOF / reset: goodbye
            Err(e) => {
                let resp = Response::Error { code: e.to_code(), message: e.to_string() };
                let _ = write_frame(&mut writer, &resp.encode());
                if e.recoverable() {
                    continue;
                }
                return Ok(()); // stream position unknowable
            }
        };
        // Shard-extension frames are answered inline on the reader
        // thread, bypassing the admission batcher: the peer is a
        // coordinator that already coalesced a whole client batch, so
        // an admission window would only add a round of latency.
        let resp = if protocol::kind::is_shard_request(kind) {
            match protocol::decode_shard_request(kind, &body) {
                Ok(req) => match shared.service.shard_batch(&req, shared.config.batch_threads) {
                    Ok(resp) => resp.encode(),
                    Err(e) => Response::Error { code: e.code, message: e.message }.encode(),
                },
                Err(e) => Response::Error { code: e.to_code(), message: e.to_string() }.encode(),
            }
        } else {
            match decode_request(kind, &body) {
                Ok(req) => handle_request(req, shared).encode(),
                // Request-level decode errors consumed the whole body,
                // so the connection stays usable.
                Err(e) => Response::Error { code: e.to_code(), message: e.to_string() }.encode(),
            }
        };
        write_frame(&mut writer, &resp)?;
    }
}

/// Validates one request and either answers it inline (info, errors)
/// or admits it to the batch queue and waits for the tick's result.
fn handle_request(req: Request, shared: &Shared) -> Response {
    let info = shared.service.info();
    let (kind, queries) = match req {
        Request::Info => return Response::Info(info),
        Request::Rnnr { radius, queries } => {
            if !radius.is_finite() || radius < 0.0 {
                return Response::Error {
                    code: ErrorCode::Malformed,
                    message: format!("radius must be finite and non-negative, got {radius}"),
                };
            }
            (JobKind::Rnnr { radius_bits: radius.to_bits() }, queries)
        }
        Request::TopK { k, queries } => {
            if info.topk_levels == 0 {
                return Response::Error {
                    code: ErrorCode::Unsupported,
                    message: "this server has no top-k ladder".into(),
                };
            }
            (JobKind::TopK { k }, queries)
        }
    };
    if queries.count() == 0 {
        // Nothing to batch (and no dimension to check); answer the
        // degenerate request inline.
        return match kind {
            JobKind::Rnnr { .. } => Response::Rnnr(Vec::new()),
            JobKind::TopK { .. } => Response::TopK(Vec::new()),
        };
    }
    if queries.dim != info.dim {
        return Response::Error {
            code: ErrorCode::DimMismatch,
            message: format!("index dimension is {}, request carries {}", info.dim, queries.dim),
        };
    }
    let queries = queries.rows();

    let (tx, rx) = mpsc::channel();
    {
        // The shutdown check shares the queue lock with the batcher's
        // final clear: either this job lands before the clear (its
        // sender is dropped there, recv errors below) or the flag is
        // already visible here — a job can never be enqueued after the
        // batcher exited, which would strand this thread in recv().
        let mut q = shared.queue.lock().unwrap();
        if shared.shutdown.load(Ordering::SeqCst) {
            return Response::Error {
                code: ErrorCode::Internal,
                message: "server is shutting down".into(),
            };
        }
        q.push_back(Job { queries, kind, reply: tx });
    }
    shared.admitted.fetch_add(1, Ordering::Relaxed);
    shared.queue_cv.notify_one();
    match rx.recv() {
        Ok(resp) => resp,
        Err(_) => Response::Error {
            code: ErrorCode::Internal,
            message: "server shut down before the batch ran".into(),
        },
    }
}

/// The admission batcher: one iteration = wait for work, linger one
/// window, drain the whole queue, execute one batch call per
/// `(kind, radius | k)` group, scatter the results.
fn batch_loop(shared: Arc<Shared>) {
    loop {
        let mut q = shared.queue.lock().unwrap();
        while q.is_empty() && !shared.shutdown.load(Ordering::SeqCst) {
            let (guard, _) = shared.queue_cv.wait_timeout(q, Duration::from_millis(50)).unwrap();
            q = guard;
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            // Fail any stragglers cleanly: dropping their senders makes
            // handle_request report Internal.
            q.clear();
            return;
        }
        drop(q);
        // Admission window: let concurrent requests join this tick.
        if !shared.config.batch_window.is_zero() {
            std::thread::sleep(shared.config.batch_window);
        }
        let jobs: Vec<Job> = shared.queue.lock().unwrap().drain(..).collect();
        run_tick(jobs, &shared);
    }
}

/// Groups drained jobs by kind key (preserving admission order within
/// a group), runs one batch call per group and splits results back.
fn run_tick(mut jobs: Vec<Job>, shared: &Shared) {
    while !jobs.is_empty() {
        let key = jobs[0].kind;
        let (group, rest): (Vec<Job>, Vec<Job>) = jobs.into_iter().partition(|j| j.kind == key);
        jobs = rest;
        shared.ticks.fetch_add(1, Ordering::Relaxed);

        // Move the queries out of the owned jobs — no per-tick copy of
        // the (potentially many-MiB) query data on the hot path.
        let mut group = group;
        let mut counts = Vec::with_capacity(group.len());
        let mut combined: Vec<Vec<f32>> = Vec::new();
        for j in &mut group {
            counts.push(j.queries.len());
            combined.append(&mut j.queries);
        }
        let threads = shared.config.batch_threads;
        match key {
            JobKind::Rnnr { radius_bits } => {
                match shared.service.rnnr_batch(&combined, f64::from_bits(radius_bits), threads) {
                    Ok(all) => scatter(group, counts, all, Response::Rnnr),
                    Err(e) => fail_group(group, &e),
                }
            }
            JobKind::TopK { k } => {
                match shared.service.topk_batch(&combined, k as usize, threads) {
                    Ok(all) => scatter(group, counts, all, Response::TopK),
                    Err(e) => fail_group(group, &e),
                }
            }
        }
    }
}

/// Answers every job in a failed group with the same typed error frame
/// (e.g. a coordinator whose shard backend went down mid-batch).
fn fail_group(group: Vec<Job>, e: &ServiceError) {
    for job in group {
        let _ = job.reply.send(Response::Error { code: e.code, message: e.message.clone() });
    }
}

/// Splits one combined batch result back into per-job responses.
fn scatter<T>(
    group: Vec<Job>,
    counts: Vec<usize>,
    mut all: Vec<T>,
    wrap: impl Fn(Vec<T>) -> Response,
) {
    debug_assert_eq!(all.len(), counts.iter().sum::<usize>());
    for (job, count) in group.into_iter().zip(counts).rev() {
        let part = all.split_off(all.len().saturating_sub(count));
        // Ignore a closed reply channel: the client hung up mid-batch.
        let _ = job.reply.send(wrap(part));
    }
}
