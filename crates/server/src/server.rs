//! The readiness-driven TCP server and its admission batcher.
//!
//! # Architecture
//!
//! ```text
//!  event-loop thread (one, owns every socket)
//!    epoll/poll wait ──► accept (nonblocking, over-limit ⇒ Busy frame)
//!         │              read ──► FrameDecoder ──► dispatch:
//!         │                         info/errors answered inline,
//!         │                         rNNR/top-k admitted as Jobs,
//!         │                         shard frames to worker threads
//!         │              write ──► WriteBuf flush (backpressure via
//!         │                         write-interest re-registration)
//!         │              timer wheel ──► idle (slow-loris) eviction
//!         ▼
//!    admission queue (Mutex<VecDeque> + Condvar)
//!         │
//!    batcher thread: wait for work, linger one admission window
//!    (adaptive by default: proportional to the observed arrival
//!    rate), drain EVERYTHING queued, expire overdue deadlines,
//!    group by (kind, radius | k) and run ONE query_batch /
//!    query_topk_batch call per group
//!         │  completions (token, seq, encoded frame)
//!         ▼
//!    wake pipe ──► event loop fills response slots, flushes in
//!    request order
//! ```
//!
//! One thread multiplexes every connection through a [`Reactor`]
//! (hand-rolled `epoll`, `poll(2)` fallback — see [`crate::reactor`]),
//! so thousands of idle or bursty sockets cost one registration each
//! instead of one parked thread each. The batcher is unchanged in
//! spirit from the thread-per-connection design it replaced: it turns
//! many small concurrent requests into the big batches the in-process
//! engines are built for, one
//! [`query_batch`](hlsh_core::ShardedIndex::query_batch) call per
//! tick-group, fanned over scoped threads.
//!
//! What the event loop adds is **governance**: a connection limit
//! answered with a typed [`ErrorCode::Busy`] frame, idle timeouts
//! driven by a timer wheel (a half-written frame from a stalled client
//! no longer pins a thread — it pins one decoder buffer until the
//! wheel reaps it), and per-request deadlines that expire queued work
//! without killing the connection that sent it.
//!
//! Batching never changes an answer: queries are independent, outputs
//! are split back in submission order, responses leave each connection
//! in request order (see [`crate::conn::SlotQueue`]), and the wire
//! encoding is deterministic — `tests/server_loopback.rs` pins socket
//! responses byte-identical to in-process batch calls.

use std::collections::{HashMap, HashSet, VecDeque};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, ToSocketAddrs};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::conn::{Conn, FrameEvent};
use crate::protocol::{self, decode_request, ErrorCode, Request, Response};
use crate::reactor::{default_reactor, Event, Interest, Reactor};
use crate::timer::TimerWheel;

// The trait and error type predate the reactor and used to live here;
// they are service-layer concepts and moved to `service`, but the old
// paths keep working.
pub use crate::service::{QueryService, ServiceError};

/// How long the admission batcher lingers after the first pending
/// request before draining the queue, letting concurrent requests join
/// the same tick.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdmissionWindow {
    /// Linger proportionally to the observed arrival rate (an EWMA of
    /// inter-arrival times, clamped to `max`): bursty traffic gets a
    /// window wide enough to coalesce, sparse traffic drains
    /// immediately instead of taxing every request the worst-case
    /// linger. This is the default.
    Adaptive {
        /// Hard cap on the linger; also the sparseness cutoff — when
        /// requests arrive further apart than this, the window is
        /// zero because there is nothing to coalesce with.
        max: Duration,
    },
    /// Always linger exactly this long (zero drains immediately) —
    /// the pre-adaptive behavior, kept for benchmarks that need a
    /// fixed coalescing horizon.
    Fixed(Duration),
}

/// Server tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// Largest accepted frame (`len` field) in bytes; larger requests
    /// are answered with [`ErrorCode::TooLarge`] and the connection is
    /// closed (the payload is never read).
    pub max_frame_bytes: usize,
    /// The admission-batcher linger policy (see [`AdmissionWindow`]).
    pub admission: AdmissionWindow,
    /// Thread budget handed to the underlying batch calls
    /// (`None` = all available cores).
    pub batch_threads: Option<usize>,
    /// Connections beyond this are answered with one
    /// [`ErrorCode::Busy`] frame and closed at accept time.
    pub max_connections: usize,
    /// Evict a connection after this long without progress (bytes
    /// read, bytes written, or a response completing). `None` never
    /// evicts. Eviction precision is roughly an eighth of the value
    /// (the timer wheel's granularity).
    pub idle_timeout: Option<Duration>,
    /// Expire admitted requests still queued after this long with an
    /// [`ErrorCode::Deadline`] frame; the connection survives. `None`
    /// never expires. Checked when the batcher drains, so expiry
    /// resolution is one admission window.
    pub request_deadline: Option<Duration>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            max_frame_bytes: protocol::DEFAULT_MAX_FRAME_BYTES,
            admission: AdmissionWindow::Adaptive { max: Duration::from_millis(1) },
            batch_threads: None,
            max_connections: 1024,
            idle_timeout: Some(Duration::from_secs(60)),
            request_deadline: None,
        }
    }
}

/// Counters exposed by [`ServerHandle::stats`]; all cumulative since
/// startup except `open_connections` (a gauge).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Currently accepted, not-yet-closed connections.
    pub open_connections: u64,
    /// Connections refused with a [`ErrorCode::Busy`] frame because
    /// the limit was reached.
    pub rejected_busy: u64,
    /// Connections evicted by the idle timeout.
    pub evicted_idle: u64,
    /// Requests expired with an [`ErrorCode::Deadline`] frame before
    /// execution.
    pub expired_deadlines: u64,
    /// Batch executions (one per drained kind-group).
    pub ticks: u64,
    /// Requests admitted to the batcher.
    pub admitted: u64,
}

/// One admitted request waiting for the next batcher tick.
struct Job {
    queries: Vec<Vec<f32>>,
    kind: JobKind,
    /// The connection token and response slot the answer fills.
    conn: u64,
    seq: u64,
    deadline: Option<Instant>,
}

#[derive(Clone, Copy, PartialEq)]
enum JobKind {
    /// Radius keyed by bit pattern so NaN can't split/merge groups
    /// unpredictably (decode guarantees a finite f64 either way).
    Rnnr {
        radius_bits: u64,
    },
    TopK {
        k: u32,
    },
}

/// A finished response on its way back to the event loop.
struct Completion {
    conn: u64,
    seq: u64,
    frame: Vec<u8>,
}

/// Inter-arrival EWMA the adaptive admission window is derived from.
#[derive(Default)]
struct Arrivals {
    last: Option<Instant>,
    ewma_us: f64,
}

/// State shared by the event loop, the batcher and shard workers.
struct Shared {
    service: Arc<dyn QueryService>,
    config: ServerConfig,
    queue: Mutex<VecDeque<Job>>,
    queue_cv: Condvar,
    shutdown: AtomicBool,
    /// Responses finished off-loop, awaiting slot fill.
    completions: Mutex<Vec<Completion>>,
    /// Write end of the wake pipe; one byte tells the event loop to
    /// drain `completions` (or notice `shutdown`).
    waker: std::io::PipeWriter,
    /// Collapses redundant wake bytes so a slow loop iteration cannot
    /// fill the pipe: set by the first poster, cleared by the loop
    /// before it drains.
    wake_pending: AtomicBool,
    arrivals: Mutex<Arrivals>,
    ticks: AtomicU64,
    admitted: AtomicU64,
    open_conns: AtomicU64,
    rejected_busy: AtomicU64,
    evicted_idle: AtomicU64,
    expired_deadlines: AtomicU64,
}

impl Shared {
    /// Posts finished responses and wakes the event loop once.
    fn complete(&self, batch: Vec<Completion>) {
        if batch.is_empty() {
            return;
        }
        self.completions.lock().unwrap().extend(batch);
        self.wake();
    }

    fn wake(&self) {
        if !self.wake_pending.swap(true, Ordering::SeqCst) {
            let _ = (&self.waker).write(&[1]);
        }
    }

    /// Records an admission for the arrival-rate EWMA.
    fn note_arrival(&self, now: Instant) {
        let mut a = self.arrivals.lock().unwrap();
        if let Some(last) = a.last {
            // Cap the sample: a quiet hour must read as "sparse", not
            // poison the average into the stratosphere.
            let dt = now.duration_since(last).min(Duration::from_secs(1));
            let dt_us = dt.as_secs_f64() * 1e6;
            a.ewma_us = if a.ewma_us == 0.0 { dt_us } else { 0.8 * a.ewma_us + 0.2 * dt_us };
        }
        a.last = Some(now);
    }

    /// The linger the batcher should apply right now.
    fn current_window(&self) -> Duration {
        match self.config.admission {
            AdmissionWindow::Fixed(d) => d,
            AdmissionWindow::Adaptive { max } => {
                let ewma_us = self.arrivals.lock().unwrap().ewma_us;
                let max_us = max.as_secs_f64() * 1e6;
                if ewma_us <= 0.0 || ewma_us >= max_us {
                    // No rate signal yet, or arrivals are further apart
                    // than the cap: lingering cannot coalesce anything.
                    return Duration::ZERO;
                }
                // Proportional: wide enough to catch a handful of
                // arrivals at the observed rate, clamped to the cap.
                Duration::from_micros((4.0 * ewma_us).min(max_us) as u64)
            }
        }
    }
}

/// A running server; dropping the handle shuts it down.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// `(batch ticks, admitted requests)` since startup. A tick count
    /// well below the request count means the admission batcher is
    /// coalescing concurrent requests as intended.
    pub fn batch_stats(&self) -> (u64, u64) {
        (self.shared.ticks.load(Ordering::Relaxed), self.shared.admitted.load(Ordering::Relaxed))
    }

    /// Governance and batching counters since startup.
    pub fn stats(&self) -> ServerStats {
        ServerStats {
            open_connections: self.shared.open_conns.load(Ordering::Relaxed),
            rejected_busy: self.shared.rejected_busy.load(Ordering::Relaxed),
            evicted_idle: self.shared.evicted_idle.load(Ordering::Relaxed),
            expired_deadlines: self.shared.expired_deadlines.load(Ordering::Relaxed),
            ticks: self.shared.ticks.load(Ordering::Relaxed),
            admitted: self.shared.admitted.load(Ordering::Relaxed),
        }
    }

    /// Stops accepting, closes every connection and joins the event
    /// loop and batcher. Idempotent.
    pub fn shutdown(&mut self) {
        if self.shared.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // One unconditional wake byte (bypassing the dedup flag) so
        // the event loop observes the flag even mid-drain.
        let _ = (&self.shared.waker).write(&[1]);
        self.shared.queue_cv.notify_all();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Binds `addr` and spawns the event-loop + batcher threads.
///
/// Use port 0 for an ephemeral port and read it back from
/// [`ServerHandle::local_addr`].
pub fn spawn<A: ToSocketAddrs>(
    service: Arc<dyn QueryService>,
    addr: A,
    config: ServerConfig,
) -> io::Result<ServerHandle> {
    // SO_REUSEADDR so a restarted node can rebind its advertised port
    // while the previous process's accepted sockets sit in TIME_WAIT —
    // without it, a shard crash would take the port hostage for ~60s
    // and "restart the shard" would not be a recovery story.
    let listener = crate::sockopt::bind_reuseaddr(addr)?;
    let addr = listener.local_addr()?;
    let (wake_rx, wake_tx) = io::pipe()?;
    let reactor = default_reactor()?;
    let shared = Arc::new(Shared {
        service,
        config,
        queue: Mutex::new(VecDeque::new()),
        queue_cv: Condvar::new(),
        shutdown: AtomicBool::new(false),
        completions: Mutex::new(Vec::new()),
        waker: wake_tx,
        wake_pending: AtomicBool::new(false),
        arrivals: Mutex::new(Arrivals::default()),
        ticks: AtomicU64::new(0),
        admitted: AtomicU64::new(0),
        open_conns: AtomicU64::new(0),
        rejected_busy: AtomicU64::new(0),
        evicted_idle: AtomicU64::new(0),
        expired_deadlines: AtomicU64::new(0),
    });

    let ev = {
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || EventLoop::new(listener, wake_rx, reactor, shared).run())
    };
    let batcher = {
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || batch_loop(shared))
    };
    Ok(ServerHandle { addr, shared, threads: vec![ev, batcher] })
}

/// Reactor token of the listening socket.
const TOKEN_LISTENER: u64 = 0;
/// Reactor token of the wake pipe's read end.
const TOKEN_WAKE: u64 = 1;
/// First token handed to an accepted connection; tokens are never
/// reused, so a late completion can never reach a successor connection.
const TOKEN_FIRST_CONN: u64 = 2;

/// Timer-wheel slot count; with granularity at an eighth of the idle
/// timeout, one revolution spans eight timeouts.
const WHEEL_SLOTS: usize = 64;

fn wheel_granularity(idle: Duration) -> Duration {
    (idle / 8).clamp(Duration::from_millis(1), Duration::from_secs(1))
}

/// The single I/O thread: owns the listener, the reactor and every
/// live connection.
struct EventLoop {
    listener: TcpListener,
    wake_rx: std::io::PipeReader,
    reactor: Box<dyn Reactor>,
    shared: Arc<Shared>,
    conns: HashMap<u64, ConnState>,
    next_token: u64,
    wheel: Option<TimerWheel>,
    /// Pre-encoded Busy frame written to over-limit accepts.
    busy_frame: Vec<u8>,
}

struct ConnState {
    conn: Conn,
    /// The interest set currently registered with the reactor, so
    /// maintenance only issues a syscall when it actually changes.
    registered: Interest,
}

impl EventLoop {
    fn new(
        listener: TcpListener,
        wake_rx: std::io::PipeReader,
        reactor: Box<dyn Reactor>,
        shared: Arc<Shared>,
    ) -> Self {
        let busy_frame = Response::Error {
            code: ErrorCode::Busy,
            message: "server is at its connection limit".into(),
        }
        .encode();
        let wheel = shared
            .config
            .idle_timeout
            .map(|t| TimerWheel::new(wheel_granularity(t), WHEEL_SLOTS, Instant::now()));
        Self {
            listener,
            wake_rx,
            reactor,
            shared,
            conns: HashMap::new(),
            next_token: TOKEN_FIRST_CONN,
            wheel,
            busy_frame,
        }
    }

    fn run(mut self) {
        if self.listener.set_nonblocking(true).is_err() {
            return;
        }
        if self
            .reactor
            .register(self.listener.as_raw_fd(), TOKEN_LISTENER, Interest::READABLE)
            .is_err()
        {
            return;
        }
        if self.reactor.register(self.wake_rx.as_raw_fd(), TOKEN_WAKE, Interest::READABLE).is_err()
        {
            return;
        }
        let mut events: Vec<Event> = Vec::new();
        let mut touched: HashSet<u64> = HashSet::new();
        let mut expired: Vec<(u64, u64)> = Vec::new();
        loop {
            let timeout = self
                .wheel
                .as_ref()
                .and_then(|w| w.next_wake(Instant::now()))
                .map(|at| at.saturating_duration_since(Instant::now()));
            if self.reactor.wait(&mut events, timeout).is_err() {
                // A failing reactor (fd exhaustion at registration
                // time aside, this is EBADF-grade) cannot serve;
                // behave as a shutdown.
                return;
            }
            if self.shared.shutdown.load(Ordering::SeqCst) {
                // Dropping the loop drops every connection (clients
                // see EOF) and the reactor.
                return;
            }
            touched.clear();
            for &e in &events {
                match e.token {
                    TOKEN_LISTENER => self.accept_ready(&mut touched),
                    TOKEN_WAKE => {
                        let mut sink = [0u8; 1024];
                        self.shared.wake_pending.store(false, Ordering::SeqCst);
                        let _ = (&self.wake_rx).read(&mut sink);
                    }
                    token => self.conn_event(token, e, &mut touched),
                }
            }
            self.drain_completions(&mut touched);
            for token in touched.drain() {
                self.maintain(token);
            }
            if let Some(wheel) = &mut self.wheel {
                expired.clear();
                wheel.advance(Instant::now(), &mut expired);
                for &(token, gen_fired) in &expired {
                    self.idle_expired(token, gen_fired);
                }
            }
        }
    }

    /// Accepts until the listener would block; over-limit connections
    /// get one best-effort Busy frame and an immediate close.
    fn accept_ready(&mut self, touched: &mut HashSet<u64>) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if self.conns.len() >= self.shared.config.max_connections {
                        // The frame is ~50 bytes into an empty send
                        // buffer: one nonblocking write delivers it or
                        // nothing will.
                        let _ = stream.set_nonblocking(true);
                        let _ = (&stream).write(&self.busy_frame);
                        self.shared.rejected_busy.fetch_add(1, Ordering::Relaxed);
                        continue;
                    }
                    let Ok(conn) = Conn::new(stream, self.shared.config.max_frame_bytes) else {
                        continue;
                    };
                    let token = self.next_token;
                    self.next_token += 1;
                    if self
                        .reactor
                        .register(conn.stream().as_raw_fd(), token, Interest::READABLE)
                        .is_err()
                    {
                        continue;
                    }
                    self.conns.insert(token, ConnState { conn, registered: Interest::READABLE });
                    self.shared.open_conns.fetch_add(1, Ordering::Relaxed);
                    self.schedule_idle(token);
                    touched.insert(token);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                // Transient per-connection accept failures (ECONNABORTED
                // and friends): skip this one, keep accepting.
                Err(_) => break,
            }
        }
    }

    /// Handles readiness on one connection: pull bytes, decode frames,
    /// dispatch each.
    fn conn_event(&mut self, token: u64, event: Event, touched: &mut HashSet<u64>) {
        let Some(state) = self.conns.get_mut(&token) else { return };
        if event.readable || event.error {
            if state.conn.read_ready().is_err() {
                self.drop_conn(token);
                return;
            }
            loop {
                let decoded = match self.conns.get_mut(&token) {
                    Some(s) => s.conn.decoder.next_frame(),
                    None => return,
                };
                match decoded {
                    Ok(Some(FrameEvent::Frame { kind, body })) => {
                        self.dispatch(token, kind, body);
                    }
                    Ok(Some(FrameEvent::Invalid(e))) => {
                        self.answer_inline(
                            token,
                            Response::Error { code: e.to_code(), message: e.to_string() },
                        );
                    }
                    Ok(None) => break,
                    Err(e) => {
                        // Fatal framing error: answer, then close once
                        // the answer (and everything before it) is
                        // flushed. The poisoned decoder discards any
                        // trailing bytes.
                        self.answer_inline(
                            token,
                            Response::Error { code: e.to_code(), message: e.to_string() },
                        );
                        if let Some(s) = self.conns.get_mut(&token) {
                            s.conn.read_closed = true;
                        }
                        break;
                    }
                }
            }
        }
        touched.insert(token);
    }

    /// Routes one decoded frame. Metadata and validation errors are
    /// answered inline; query traffic is admitted to the batcher;
    /// shard-extension traffic and index mutations run on detached
    /// worker threads so a coordinator's multi-second fan-out (or a
    /// write-locked flush/merge) never stalls the loop.
    fn dispatch(&mut self, token: u64, kind: u8, body: Vec<u8>) {
        if protocol::kind::is_shard_request(kind) {
            let Some(state) = self.conns.get_mut(&token) else { return };
            let seq = state.conn.slots.alloc();
            let shared = Arc::clone(&self.shared);
            std::thread::spawn(move || {
                let frame = match protocol::decode_shard_request(kind, &body) {
                    Ok(req) => {
                        match shared.service.shard_batch(&req, shared.config.batch_threads) {
                            Ok(resp) => resp.encode(),
                            Err(e) => Response::Error { code: e.code, message: e.message }.encode(),
                        }
                    }
                    Err(e) => {
                        Response::Error { code: e.to_code(), message: e.to_string() }.encode()
                    }
                };
                shared.complete(vec![Completion { conn: token, seq, frame }]);
            });
            return;
        }
        let info = self.shared.service.info();
        let (job_kind, queries) = match decode_request(kind, &body) {
            Err(e) => {
                // Request-level decode errors consumed the whole body,
                // so the connection stays usable.
                return self.answer_inline(
                    token,
                    Response::Error { code: e.to_code(), message: e.to_string() },
                );
            }
            Ok(Request::Info) => return self.answer_inline(token, Response::Info(info)),
            Ok(Request::Rnnr { radius, queries }) => {
                if !radius.is_finite() || radius < 0.0 {
                    return self.answer_inline(
                        token,
                        Response::Error {
                            code: ErrorCode::Malformed,
                            message: format!(
                                "radius must be finite and non-negative, got {radius}"
                            ),
                        },
                    );
                }
                (JobKind::Rnnr { radius_bits: radius.to_bits() }, queries)
            }
            Ok(Request::TopK { k, queries }) => {
                if info.topk_levels == 0 {
                    return self.answer_inline(
                        token,
                        Response::Error {
                            code: ErrorCode::Unsupported,
                            message: "this server has no top-k ladder".into(),
                        },
                    );
                }
                (JobKind::TopK { k }, queries)
            }
            // Mutations bypass the admission batcher: they take the
            // index's write lock, so holding them on the loop thread
            // would stall connection I/O for the whole flush/merge.
            // Like shard fan-outs, they run detached and complete
            // through the response slot reserved here — so pipelined
            // responses still come back in request order.
            Ok(Request::Insert { ids, points }) => {
                let Some(state) = self.conns.get_mut(&token) else { return };
                let seq = state.conn.slots.alloc();
                let shared = Arc::clone(&self.shared);
                std::thread::spawn(move || {
                    let frame = match shared.service.insert_batch(&ids, &points) {
                        Ok(count) => Response::Inserted(count).encode(),
                        Err(e) => Response::Error { code: e.code, message: e.message }.encode(),
                    };
                    shared.complete(vec![Completion { conn: token, seq, frame }]);
                });
                return;
            }
            Ok(Request::Delete { ids }) => {
                let Some(state) = self.conns.get_mut(&token) else { return };
                let seq = state.conn.slots.alloc();
                let shared = Arc::clone(&self.shared);
                std::thread::spawn(move || {
                    let frame = match shared.service.delete_batch(&ids) {
                        Ok(count) => Response::Deleted(count).encode(),
                        Err(e) => Response::Error { code: e.code, message: e.message }.encode(),
                    };
                    shared.complete(vec![Completion { conn: token, seq, frame }]);
                });
                return;
            }
        };
        if queries.count() == 0 {
            // Nothing to batch (and no dimension to check); answer the
            // degenerate request inline.
            let resp = match job_kind {
                JobKind::Rnnr { .. } => Response::Rnnr(Vec::new()),
                JobKind::TopK { .. } => Response::TopK(Vec::new()),
            };
            return self.answer_inline(token, resp);
        }
        if queries.dim != info.dim {
            return self.answer_inline(
                token,
                Response::Error {
                    code: ErrorCode::DimMismatch,
                    message: format!(
                        "index dimension is {}, request carries {}",
                        info.dim, queries.dim
                    ),
                },
            );
        }
        self.admit(token, job_kind, queries.rows());
    }

    /// Admits one validated request to the batcher queue.
    fn admit(&mut self, token: u64, kind: JobKind, queries: Vec<Vec<f32>>) {
        let Some(state) = self.conns.get_mut(&token) else { return };
        let seq = state.conn.slots.alloc();
        let now = Instant::now();
        self.shared.note_arrival(now);
        let deadline = self.shared.config.request_deadline.map(|d| now + d);
        self.shared.queue.lock().unwrap().push_back(Job {
            queries,
            kind,
            conn: token,
            seq,
            deadline,
        });
        self.shared.admitted.fetch_add(1, Ordering::Relaxed);
        self.shared.queue_cv.notify_one();
    }

    /// Reserves a slot and fills it immediately with `resp`.
    fn answer_inline(&mut self, token: u64, resp: Response) {
        let Some(state) = self.conns.get_mut(&token) else { return };
        let seq = state.conn.slots.alloc();
        state.conn.slots.fill(seq, resp.encode());
    }

    /// Moves finished off-loop responses into their response slots.
    fn drain_completions(&mut self, touched: &mut HashSet<u64>) {
        let batch = std::mem::take(&mut *self.shared.completions.lock().unwrap());
        for c in batch {
            // A completion may outlive its connection (evicted or
            // errored mid-batch); tokens are never reused, so it just
            // falls on the floor.
            if let Some(state) = self.conns.get_mut(&c.conn) {
                state.conn.slots.fill(c.seq, c.frame);
                touched.insert(c.conn);
            }
        }
    }

    /// Post-activity upkeep for one connection: release responses,
    /// flush, fix reactor interest, refresh the idle timer, close when
    /// finished.
    fn maintain(&mut self, token: u64) {
        let Some(state) = self.conns.get_mut(&token) else { return };
        if state.conn.pump_and_flush().is_err() {
            self.drop_conn(token);
            return;
        }
        if state.conn.finished() {
            self.drop_conn(token);
            return;
        }
        let desired = state.conn.desired_interest();
        if desired != state.registered {
            if self.reactor.reregister(state.conn.stream().as_raw_fd(), token, desired).is_err() {
                self.drop_conn(token);
                return;
            }
            if let Some(s) = self.conns.get_mut(&token) {
                s.registered = desired;
            }
        }
        // maintain() only runs after activity on this connection, so
        // refreshing the idle clock here is exactly "progress resets
        // the timer".
        self.schedule_idle(token);
    }

    /// Bumps the connection's timer generation and schedules a fresh
    /// idle deadline (the stale entry cancels lazily).
    fn schedule_idle(&mut self, token: u64) {
        let Some(idle) = self.shared.config.idle_timeout else { return };
        let Some(wheel) = &mut self.wheel else { return };
        let Some(state) = self.conns.get_mut(&token) else { return };
        state.conn.timer_gen += 1;
        wheel.schedule(token, state.conn.timer_gen, Instant::now() + idle);
    }

    /// An idle timer fired: evict if the connection is genuinely
    /// stalled, reschedule if work is still executing on its behalf.
    fn idle_expired(&mut self, token: u64, gen_fired: u64) {
        let Some(state) = self.conns.get(&token) else { return };
        if state.conn.timer_gen != gen_fired {
            return; // stale entry, lazily cancelled
        }
        if state.conn.evictable_when_idle() {
            self.shared.evicted_idle.fetch_add(1, Ordering::Relaxed);
            self.drop_conn(token);
        } else {
            // The batcher or a shard worker is still computing this
            // connection's answer: that is not idleness. Give it a
            // fresh window.
            self.schedule_idle(token);
        }
    }

    /// Deregisters and closes one connection.
    fn drop_conn(&mut self, token: u64) {
        if let Some(state) = self.conns.remove(&token) {
            let _ = self.reactor.deregister(state.conn.stream().as_raw_fd());
            self.shared.open_conns.fetch_sub(1, Ordering::Relaxed);
            // Dropping the state drops the stream, sending FIN (or RST
            // if the peer keeps writing).
        }
    }
}

/// The admission batcher: one iteration = wait for work, linger one
/// admission window, drain the whole queue, expire overdue deadlines,
/// execute one batch call per `(kind, radius | k)` group, post the
/// completions and wake the loop.
fn batch_loop(shared: Arc<Shared>) {
    loop {
        let mut q = shared.queue.lock().unwrap();
        while q.is_empty() && !shared.shutdown.load(Ordering::SeqCst) {
            let (guard, _) = shared.queue_cv.wait_timeout(q, Duration::from_millis(50)).unwrap();
            q = guard;
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            // Unanswered jobs die with their connections: the event
            // loop is tearing every socket down right now.
            q.clear();
            return;
        }
        drop(q);
        // Admission window: let concurrent requests join this tick.
        let window = shared.current_window();
        if !window.is_zero() {
            std::thread::sleep(window);
        }
        let jobs: Vec<Job> = shared.queue.lock().unwrap().drain(..).collect();
        let mut completions = Vec::with_capacity(jobs.len());

        // Deadline pass: anything already overdue gets a typed error
        // instead of a seat in the batch (its connection lives on).
        let now = Instant::now();
        let (live, dead): (Vec<Job>, Vec<Job>) =
            jobs.into_iter().partition(|j| j.deadline.is_none_or(|d| now < d));
        for job in dead {
            shared.expired_deadlines.fetch_add(1, Ordering::Relaxed);
            completions.push(Completion {
                conn: job.conn,
                seq: job.seq,
                frame: Response::Error {
                    code: ErrorCode::Deadline,
                    message: "request deadline expired before execution".into(),
                }
                .encode(),
            });
        }
        run_tick(live, &shared, &mut completions);
        shared.complete(completions);
    }
}

/// Groups drained jobs by kind key (preserving admission order within
/// a group), runs one batch call per group and splits results back.
fn run_tick(mut jobs: Vec<Job>, shared: &Shared, completions: &mut Vec<Completion>) {
    while !jobs.is_empty() {
        let key = jobs[0].kind;
        let (group, rest): (Vec<Job>, Vec<Job>) = jobs.into_iter().partition(|j| j.kind == key);
        jobs = rest;
        shared.ticks.fetch_add(1, Ordering::Relaxed);

        // Move the queries out of the owned jobs — no per-tick copy of
        // the (potentially many-MiB) query data on the hot path.
        let mut group = group;
        let mut counts = Vec::with_capacity(group.len());
        let mut combined: Vec<Vec<f32>> = Vec::new();
        for j in &mut group {
            counts.push(j.queries.len());
            combined.append(&mut j.queries);
        }
        let threads = shared.config.batch_threads;
        match key {
            JobKind::Rnnr { radius_bits } => {
                match shared.service.rnnr_batch(&combined, f64::from_bits(radius_bits), threads) {
                    Ok(all) => scatter(group, counts, all, Response::Rnnr, completions),
                    Err(e) => fail_group(group, &e, completions),
                }
            }
            JobKind::TopK { k } => {
                match shared.service.topk_batch(&combined, k as usize, threads) {
                    Ok(all) => scatter(group, counts, all, Response::TopK, completions),
                    Err(e) => fail_group(group, &e, completions),
                }
            }
        }
    }
}

/// Answers every job in a failed group with the same typed error frame
/// (e.g. a coordinator whose shard backend went down mid-batch).
fn fail_group(group: Vec<Job>, e: &ServiceError, completions: &mut Vec<Completion>) {
    for job in group {
        completions.push(Completion {
            conn: job.conn,
            seq: job.seq,
            frame: Response::Error { code: e.code, message: e.message.clone() }.encode(),
        });
    }
}

/// Splits one combined batch result back into per-job completions.
fn scatter<T>(
    group: Vec<Job>,
    counts: Vec<usize>,
    mut all: Vec<T>,
    wrap: impl Fn(Vec<T>) -> Response,
    completions: &mut Vec<Completion>,
) {
    debug_assert_eq!(all.len(), counts.iter().sum::<usize>());
    for (job, count) in group.into_iter().zip(counts).rev() {
        let part = all.split_off(all.len().saturating_sub(count));
        completions.push(Completion { conn: job.conn, seq: job.seq, frame: wrap(part).encode() });
    }
}
