//! Listener binding with `SO_REUSEADDR`.
//!
//! When a shard node dies, every connection it had accepted lingers in
//! `TIME_WAIT` for ~60s, and a plain [`TcpListener::bind`] on the same
//! `(addr, port)` fails with `EADDRINUSE` until the kernel ages them
//! out. That would turn "restart the crashed shard on its advertised
//! port" — the recovery story `docs/DISTRIBUTED.md` documents and the
//! multi-process test exercises — into a minute-long outage. Setting
//! `SO_REUSEADDR` *before* the bind allows rebinding over `TIME_WAIT`
//! remnants (it does **not** allow stealing a port another live
//! listener holds — that still fails with `EADDRINUSE`).
//!
//! The std library exposes no way to set socket options between
//! `socket()` and `bind()`, so on Linux this module performs the three
//! raw libc calls itself and hands the finished descriptor to
//! `TcpListener::from_raw_fd`. This is the server crate's one
//! `unsafe` enclave (mirroring `hlsh_core::snapshot::mmap`'s pattern:
//! `deny(unsafe_code)` crate-wide, one documented opt-in). The
//! obligations are confined to the private `bind_one`:
//!
//! - the `extern "C"` signatures match the Linux syscall wrappers'
//!   ABI (verified against the x86-64/aarch64 kernel ABI constants
//!   spelled out below);
//! - the descriptor passed to `from_raw_fd` is freshly created, owned
//!   and non-negative, so ownership transfer is sound;
//! - every error path closes the descriptor before returning.
//!
//! Non-Linux builds fall back to `TcpListener::bind` — tests that rely
//! on fast rebinds are Linux-CI-only, and correctness is unaffected.

use std::io;
use std::net::{SocketAddr, TcpListener, ToSocketAddrs};

/// Binds a listener with `SO_REUSEADDR` set, resolving `addr` like
/// [`TcpListener::bind`] does: each resolved address is tried in order
/// and the last error is reported if none binds.
pub fn bind_reuseaddr<A: ToSocketAddrs>(addr: A) -> io::Result<TcpListener> {
    let mut last_err = None;
    for sa in addr.to_socket_addrs()? {
        match imp::bind_one(sa) {
            Ok(l) => return Ok(l),
            Err(e) => last_err = Some(e),
        }
    }
    Err(last_err.unwrap_or_else(|| {
        io::Error::new(io::ErrorKind::InvalidInput, "could not resolve to any address")
    }))
}

#[cfg(target_os = "linux")]
#[allow(unsafe_code)]
mod imp {
    use super::*;
    use std::os::fd::FromRawFd;

    // Linux ABI constants (identical on x86-64 and aarch64 for this
    // set; SOL_SOCKET/SO_REUSEADDR would differ on mips/sparc, which
    // this crate does not target).
    const AF_INET: i32 = 2;
    const AF_INET6: i32 = 10;
    const SOCK_STREAM: i32 = 1;
    const SOCK_CLOEXEC: i32 = 0x80000;
    const SOL_SOCKET: i32 = 1;
    const SO_REUSEADDR: i32 = 2;
    const BACKLOG: i32 = 128;

    extern "C" {
        fn socket(domain: i32, ty: i32, protocol: i32) -> i32;
        fn setsockopt(
            fd: i32,
            level: i32,
            name: i32,
            value: *const core::ffi::c_void,
            len: u32,
        ) -> i32;
        fn bind(fd: i32, addr: *const core::ffi::c_void, len: u32) -> i32;
        fn listen(fd: i32, backlog: i32) -> i32;
        fn close(fd: i32) -> i32;
    }

    /// `struct sockaddr_in`: family, port and address in network byte
    /// order, padded to 16 bytes.
    #[repr(C)]
    struct SockaddrIn {
        family: u16,
        port_be: u16,
        addr_be: u32,
        zero: [u8; 8],
    }

    /// `struct sockaddr_in6`: family, port (BE), flowinfo, the 16
    /// address bytes, scope id.
    #[repr(C)]
    struct SockaddrIn6 {
        family: u16,
        port_be: u16,
        flowinfo: u32,
        addr: [u8; 16],
        scope_id: u32,
    }

    pub(super) fn bind_one(sa: SocketAddr) -> io::Result<TcpListener> {
        let domain = match sa {
            SocketAddr::V4(_) => AF_INET,
            SocketAddr::V6(_) => AF_INET6,
        };
        // SAFETY: plain syscall wrappers with the ABI spelled out in the
        // module docs; `fd` is owned by this function until transferred
        // to the TcpListener or closed on an error path.
        unsafe {
            let fd = socket(domain, SOCK_STREAM | SOCK_CLOEXEC, 0);
            if fd < 0 {
                return Err(io::Error::last_os_error());
            }
            let fail = |fd: i32| -> io::Error {
                let e = io::Error::last_os_error();
                close(fd);
                e
            };
            let one: i32 = 1;
            if setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, (&one as *const i32).cast(), 4) != 0 {
                return Err(fail(fd));
            }
            let rc = match sa {
                SocketAddr::V4(v4) => {
                    let raw = SockaddrIn {
                        family: AF_INET as u16,
                        port_be: v4.port().to_be(),
                        addr_be: u32::from(*v4.ip()).to_be(),
                        zero: [0; 8],
                    };
                    bind(
                        fd,
                        (&raw as *const SockaddrIn).cast(),
                        core::mem::size_of::<SockaddrIn>() as u32,
                    )
                }
                SocketAddr::V6(v6) => {
                    let raw = SockaddrIn6 {
                        family: AF_INET6 as u16,
                        port_be: v6.port().to_be(),
                        flowinfo: v6.flowinfo(),
                        addr: v6.ip().octets(),
                        scope_id: v6.scope_id(),
                    };
                    bind(
                        fd,
                        (&raw as *const SockaddrIn6).cast(),
                        core::mem::size_of::<SockaddrIn6>() as u32,
                    )
                }
            };
            if rc != 0 {
                return Err(fail(fd));
            }
            if listen(fd, BACKLOG) != 0 {
                return Err(fail(fd));
            }
            Ok(TcpListener::from_raw_fd(fd))
        }
    }
}

#[cfg(not(target_os = "linux"))]
mod imp {
    use super::*;

    pub(super) fn bind_one(sa: SocketAddr) -> io::Result<TcpListener> {
        TcpListener::bind(sa)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::TcpStream;

    #[test]
    fn binds_and_accepts() {
        let listener = bind_reuseaddr("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let t = std::thread::spawn(move || {
            let (mut conn, _) = listener.accept().unwrap();
            let mut buf = [0u8; 5];
            conn.read_exact(&mut buf).unwrap();
            buf
        });
        let mut c = TcpStream::connect(addr).unwrap();
        c.write_all(b"hello").unwrap();
        assert_eq!(&t.join().unwrap(), b"hello");
    }

    #[test]
    fn rebind_after_drop_is_immediate() {
        // With an accepted connection closed server-side first, the
        // socket enters TIME_WAIT; REUSEADDR lets the same port rebind
        // at once (a plain bind would EADDRINUSE for ~60s).
        let listener = bind_reuseaddr("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (conn, _) = listener.accept().unwrap();
        drop(conn); // server closes first → server holds TIME_WAIT
        drop(client);
        drop(listener);
        let again = bind_reuseaddr(addr).unwrap();
        assert_eq!(again.local_addr().unwrap().port(), addr.port());
    }

    #[test]
    fn live_listener_still_conflicts() {
        // REUSEADDR must not allow stealing a port that is actively
        // bound by a live listener.
        let listener = bind_reuseaddr("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        assert!(bind_reuseaddr(addr).is_err());
    }
}
