//! [`QueryService`] implementations bridging the wire to the
//! in-process batch engines.

use hlsh_core::{FrozenStore, ShardedIndex, ShardedTopKIndex, Strategy};
use hlsh_families::LshFamily;
use hlsh_vec::{Distance, PointId, PointSet};

use crate::protocol::ServerInfo;
use crate::server::QueryService;

/// The standard deployment: a frozen [`ShardedIndex`] for rNNR traffic
/// plus (optionally) a frozen [`ShardedTopKIndex`] ladder for top-k
/// traffic, both over the same data and dimensionality.
///
/// Requests route through the sharded batch entry points, so one
/// admission-batcher tick fans its combined queries over scoped
/// threads *and* every query over the index shards — exactly the
/// in-process execution stack, which is why socket responses are
/// byte-identical to calling
/// [`query_batch`](ShardedIndex::query_batch) /
/// [`query_topk_batch`](ShardedTopKIndex::query_topk_batch) directly.
pub struct ShardedLshService<S, F, D>
where
    S: PointSet<Point = [f32]>,
    F: LshFamily<[f32]>,
    D: Distance<[f32]>,
{
    rnnr: ShardedIndex<S, F, D, FrozenStore>,
    topk: Option<ShardedTopKIndex<S, F, D, FrozenStore>>,
    dim: u32,
}

impl<S, F, D> ShardedLshService<S, F, D>
where
    S: PointSet<Point = [f32]>,
    F: LshFamily<[f32]>,
    D: Distance<[f32]>,
{
    /// Wraps frozen sharded indexes for serving. `dim` is the vector
    /// dimensionality requests are validated against.
    pub fn new(
        rnnr: ShardedIndex<S, F, D, FrozenStore>,
        topk: Option<ShardedTopKIndex<S, F, D, FrozenStore>>,
        dim: usize,
    ) -> Self {
        if let Some(t) = &topk {
            assert_eq!(t.len(), rnnr.len(), "rNNR and top-k indexes must cover the same data");
        }
        Self { rnnr, topk, dim: dim as u32 }
    }

    /// The rNNR index being served.
    pub fn rnnr_index(&self) -> &ShardedIndex<S, F, D, FrozenStore> {
        &self.rnnr
    }

    /// The top-k ladder being served, if any.
    pub fn topk_index(&self) -> Option<&ShardedTopKIndex<S, F, D, FrozenStore>> {
        self.topk.as_ref()
    }
}

impl<S, F, D> QueryService for ShardedLshService<S, F, D>
where
    S: PointSet<Point = [f32]> + Send + Sync + 'static,
    F: LshFamily<[f32]> + Sync + 'static,
    F::GFn: Send + Sync,
    D: Distance<[f32]> + Send + Sync + 'static,
{
    fn info(&self) -> ServerInfo {
        ServerInfo {
            points: self.rnnr.len() as u64,
            dim: self.dim,
            shards: self.rnnr.assignment().shards() as u32,
            topk_levels: self.topk.as_ref().map_or(0, |t| t.schedule().levels() as u32),
        }
    }

    fn rnnr_batch(
        &self,
        queries: &[Vec<f32>],
        radius: f64,
        threads: Option<usize>,
    ) -> Vec<Vec<PointId>> {
        self.rnnr
            .query_batch_with_strategy(queries, radius, Strategy::Hybrid, threads)
            .into_iter()
            .map(|o| o.ids)
            .collect()
    }

    fn topk_batch(
        &self,
        queries: &[Vec<f32>],
        k: usize,
        threads: Option<usize>,
    ) -> Option<Vec<Vec<(PointId, f64)>>> {
        let topk = self.topk.as_ref()?;
        Some(
            topk.query_topk_batch_with(queries, k, Strategy::Hybrid, threads)
                .into_iter()
                .map(|o| o.neighbors.iter().map(|n| (n.id, n.dist)).collect())
                .collect(),
        )
    }
}
