//! The [`QueryService`] trait and its implementations bridging the
//! wire to the in-process batch engines.
//!
//! The trait (and [`ServiceError`], its failure type) is what the
//! event-loop server in [`crate::server`] executes against; three
//! deployments implement it here:
//!
//! * [`ShardedLshService`] — the standalone server: answers client
//!   frames by running the full sharded engines in-process.
//! * [`ShardNodeService`] — one node of a distributed deployment: the
//!   same indexes, but *additionally* answering the shard-extension
//!   frames (`0x10..=0x1F`) a
//!   [`Coordinator`](crate::coordinator::Coordinator) uses to fan one
//!   logical query across machines.
//! * [`LiveLshService`] — the living index: LSM-segmented indexes
//!   behind a reader-writer lock, accepting `Insert`/`Delete` frames
//!   while queries stay byte-identical to a rebuild on the surviving
//!   points.

use std::sync::RwLock;

use hlsh_core::{
    FrozenStore, SegmentedIndex, SegmentedQueryEngine, SegmentedTopKEngine, SegmentedTopKIndex,
    ShardedIndex, ShardedTopKIndex, Strategy,
};
use hlsh_families::LshFamily;
use hlsh_vec::{Distance, PointId, PointSet};

use crate::protocol::{
    ErrorCode, QueryBlock, ServerInfo, ShardInfo, ShardLevelInfo, ShardParams, ShardRequest,
    ShardResponse, ShardSummaryEntry, ShardTarget,
};

/// A service-level failure: what the server encodes into a
/// [`kind::ERROR`](crate::protocol::kind::ERROR) frame when a batch
/// cannot be answered. Distinct from
/// [`WireError`](crate::protocol::WireError), which covers byte-level
/// decode problems — a `ServiceError` means the
/// request parsed fine but could not be executed (no top-k ladder, a
/// shard backend down, an internal failure).
#[derive(Clone, Debug)]
pub struct ServiceError {
    /// The wire code clients see.
    pub code: ErrorCode,
    /// Human-readable diagnostic.
    pub message: String,
}

impl ServiceError {
    /// A valid request this deployment cannot serve.
    pub fn unsupported(message: impl Into<String>) -> Self {
        Self { code: ErrorCode::Unsupported, message: message.into() }
    }

    /// A backend dependency is down or timed out.
    pub fn unavailable(message: impl Into<String>) -> Self {
        Self { code: ErrorCode::Unavailable, message: message.into() }
    }

    /// The service failed internally.
    pub fn internal(message: impl Into<String>) -> Self {
        Self { code: ErrorCode::Internal, message: message.into() }
    }

    /// The request's parameters don't fit this index (e.g. a ladder
    /// level out of range).
    pub fn malformed(message: impl Into<String>) -> Self {
        Self { code: ErrorCode::Malformed, message: message.into() }
    }

    /// A vector's dimensionality doesn't match the index's.
    pub fn dim_mismatch(expected: u32, got: u32) -> Self {
        Self {
            code: ErrorCode::DimMismatch,
            message: format!("index dimension is {expected}, request carries {got}"),
        }
    }

    /// A delete named an id that is not live.
    pub fn unknown_id(id: PointId) -> Self {
        Self { code: ErrorCode::UnknownId, message: format!("id {id} is not live in the index") }
    }

    /// An insert named an id that is already live (or repeated one
    /// within the batch).
    pub fn duplicate_id(id: PointId) -> Self {
        Self {
            code: ErrorCode::DuplicateId,
            message: format!("id {id} is already live in the index"),
        }
    }
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?}: {}", self.code, self.message)
    }
}

impl std::error::Error for ServiceError {}

/// What a server serves: batch entry points over some index.
///
/// The two required methods mirror the in-process batch APIs —
/// [`ShardedIndex::query_batch`](hlsh_core::ShardedIndex::query_batch)
/// and [`ShardedTopKIndex::query_topk_batch`](hlsh_core::ShardedTopKIndex::query_topk_batch)
/// — and the byte-identity contract is inherited from them: whatever a
/// service returns here is exactly what clients decode. Errors become
/// [`kind::ERROR`](crate::protocol::kind::ERROR) frames carrying the
/// [`ServiceError`]'s code, one per affected request.
pub trait QueryService: Send + Sync + 'static {
    /// Index metadata for [`Request::Info`](crate::protocol::Request::Info)
    /// and dimension validation.
    fn info(&self) -> ServerInfo;

    /// Ids within `radius` of each query, ascending per query.
    /// `threads` is the scoped-thread budget (`None` = all cores).
    fn rnnr_batch(
        &self,
        queries: &[Vec<f32>],
        radius: f64,
        threads: Option<usize>,
    ) -> Result<Vec<Vec<PointId>>, ServiceError>;

    /// The `min(k, n)` nearest `(id, distance)` pairs per query in
    /// ascending `(distance, id)` order;
    /// [`ServiceError::unsupported`] if this deployment has no top-k
    /// ladder.
    fn topk_batch(
        &self,
        queries: &[Vec<f32>],
        k: usize,
        threads: Option<usize>,
    ) -> Result<Vec<Vec<(PointId, f64)>>, ServiceError>;

    /// Answers one shard-extension request (coordinator → shard
    /// traffic, kinds `0x10..=0x1F`). The default refuses: only shard
    /// nodes implement this, and a coordinator that accidentally dials
    /// a plain standalone server gets a typed error instead of silence.
    ///
    /// Shard frames bypass the admission batcher — the caller *is* a
    /// coordinator that already batched an entire client request, so
    /// lingering for more concurrency would only add latency. The
    /// event loop runs them on detached worker threads so a
    /// multi-second fan-out never stalls connection I/O.
    fn shard_batch(
        &self,
        request: &ShardRequest,
        threads: Option<usize>,
    ) -> Result<ShardResponse, ServiceError> {
        let _ = (request, threads);
        Err(ServiceError::unsupported("this server is not a shard node"))
    }

    /// Inserts `ids[i]` ↦ row `i` of `points`, all-or-nothing: on any
    /// [`ErrorCode::DimMismatch`] / [`ErrorCode::DuplicateId`] nothing
    /// is applied. Returns the number inserted (the full batch). The
    /// default refuses: deployments serving a frozen corpus are not
    /// mutable — only a living index ([`LiveLshService`]) accepts
    /// mutations.
    fn insert_batch(&self, ids: &[PointId], points: &QueryBlock) -> Result<u32, ServiceError> {
        let _ = (ids, points);
        Err(ServiceError::unsupported("this server's index is frozen; mutation needs --live"))
    }

    /// Deletes the points with these ids, all-or-nothing: on any
    /// [`ErrorCode::UnknownId`] (not live, or repeated in the batch)
    /// nothing is applied. Returns the number deleted. Default refuses
    /// like [`insert_batch`](QueryService::insert_batch).
    fn delete_batch(&self, ids: &[PointId]) -> Result<u32, ServiceError> {
        let _ = ids;
        Err(ServiceError::unsupported("this server's index is frozen; mutation needs --live"))
    }
}

/// The standard deployment: a frozen [`ShardedIndex`] for rNNR traffic
/// plus (optionally) a frozen [`ShardedTopKIndex`] ladder for top-k
/// traffic, both over the same data and dimensionality.
///
/// Requests route through the sharded batch entry points, so one
/// admission-batcher tick fans its combined queries over scoped
/// threads *and* every query over the index shards — exactly the
/// in-process execution stack, which is why socket responses are
/// byte-identical to calling
/// [`query_batch`](ShardedIndex::query_batch) /
/// [`query_topk_batch`](ShardedTopKIndex::query_topk_batch) directly.
pub struct ShardedLshService<S, F, D>
where
    S: PointSet<Point = [f32]>,
    F: LshFamily<[f32]>,
    D: Distance<[f32]>,
{
    rnnr: ShardedIndex<S, F, D, FrozenStore>,
    topk: Option<ShardedTopKIndex<S, F, D, FrozenStore>>,
    dim: u32,
}

impl<S, F, D> ShardedLshService<S, F, D>
where
    S: PointSet<Point = [f32]>,
    F: LshFamily<[f32]>,
    D: Distance<[f32]>,
{
    /// Wraps frozen sharded indexes for serving. `dim` is the vector
    /// dimensionality requests are validated against.
    pub fn new(
        rnnr: ShardedIndex<S, F, D, FrozenStore>,
        topk: Option<ShardedTopKIndex<S, F, D, FrozenStore>>,
        dim: usize,
    ) -> Self {
        if let Some(t) = &topk {
            assert_eq!(t.len(), rnnr.len(), "rNNR and top-k indexes must cover the same data");
        }
        Self { rnnr, topk, dim: dim as u32 }
    }

    /// The rNNR index being served.
    pub fn rnnr_index(&self) -> &ShardedIndex<S, F, D, FrozenStore> {
        &self.rnnr
    }

    /// The top-k ladder being served, if any.
    pub fn topk_index(&self) -> Option<&ShardedTopKIndex<S, F, D, FrozenStore>> {
        self.topk.as_ref()
    }

    /// The vector dimensionality requests are validated against.
    pub fn dim(&self) -> u32 {
        self.dim
    }
}

impl<S, F, D> QueryService for ShardedLshService<S, F, D>
where
    S: PointSet<Point = [f32]> + Send + Sync + 'static,
    F: LshFamily<[f32]> + Sync + 'static,
    F::GFn: Send + Sync,
    D: Distance<[f32]> + Send + Sync + 'static,
{
    fn info(&self) -> ServerInfo {
        ServerInfo {
            points: self.rnnr.len() as u64,
            dim: self.dim,
            shards: self.rnnr.assignment().shards() as u32,
            topk_levels: self.topk.as_ref().map_or(0, |t| t.schedule().levels() as u32),
        }
    }

    fn rnnr_batch(
        &self,
        queries: &[Vec<f32>],
        radius: f64,
        threads: Option<usize>,
    ) -> Result<Vec<Vec<PointId>>, ServiceError> {
        Ok(self
            .rnnr
            .query_batch_with_strategy(queries, radius, Strategy::Hybrid, threads)
            .into_iter()
            .map(|o| o.ids)
            .collect())
    }

    fn topk_batch(
        &self,
        queries: &[Vec<f32>],
        k: usize,
        threads: Option<usize>,
    ) -> Result<Vec<Vec<(PointId, f64)>>, ServiceError> {
        let topk = self
            .topk
            .as_ref()
            .ok_or_else(|| ServiceError::unsupported("this server has no top-k ladder"))?;
        Ok(topk
            .query_topk_batch_with(queries, k, Strategy::Hybrid, threads)
            .into_iter()
            .map(|o| o.neighbors.iter().map(|n| (n.id, n.dist)).collect())
            .collect())
    }
}

/// One node of a distributed deployment: shard `shard_id` of the
/// assignment, answering the shard-extension frames a
/// [`Coordinator`](crate::coordinator::Coordinator) speaks.
///
/// Every node loads the **same** snapshot (the full sharded index —
/// shard tables are small next to the vector slabs, and mmap loading
/// pages in only what a node touches), but answers summaries and arm
/// executions *for its assigned shard only*. Because the build is
/// deterministic from the shared seed, every node agrees on the
/// assignment, the hash functions and the global ids — which is what
/// makes the coordinator's merged answers byte-identical to a
/// single-process run.
///
/// Plain client frames still work (delegated to the wrapped
/// [`ShardedLshService`]), so a shard node can be queried directly for
/// debugging — handy when bisecting a distributed-vs-local mismatch.
pub struct ShardNodeService<S, F, D>
where
    S: PointSet<Point = [f32]>,
    F: LshFamily<[f32]>,
    D: Distance<[f32]>,
{
    inner: ShardedLshService<S, F, D>,
    shard_id: u32,
}

impl<S, F, D> ShardNodeService<S, F, D>
where
    S: PointSet<Point = [f32]>,
    F: LshFamily<[f32]>,
    D: Distance<[f32]>,
{
    /// Wraps a service as shard `shard_id` of its index's assignment.
    ///
    /// # Panics
    /// Panics if `shard_id` is out of range for the assignment.
    pub fn new(inner: ShardedLshService<S, F, D>, shard_id: u32) -> Self {
        let shards = inner.rnnr_index().assignment().shards();
        assert!(
            (shard_id as usize) < shards,
            "shard id {shard_id} out of range for a {shards}-shard assignment"
        );
        Self { inner, shard_id }
    }

    /// The shard this node answers for.
    pub fn shard_id(&self) -> u32 {
        self.shard_id
    }

    /// The wrapped standalone service.
    pub fn inner(&self) -> &ShardedLshService<S, F, D> {
        &self.inner
    }

    /// Validates a query block's dimensionality and unpacks its rows.
    fn check_rows(&self, queries: &QueryBlock) -> Result<Vec<Vec<f32>>, ServiceError> {
        let dim = self.inner.dim();
        if queries.count() > 0 && queries.dim != dim {
            return Err(ServiceError {
                code: ErrorCode::DimMismatch,
                message: format!("index dimension is {dim}, request carries {}", queries.dim),
            });
        }
        Ok(queries.rows())
    }

    /// Resolves a wire target to a validated ladder level — `None` for
    /// the rNNR index.
    fn check_target(&self, target: ShardTarget) -> Result<Option<usize>, ServiceError> {
        match target {
            ShardTarget::Rnnr => Ok(None),
            ShardTarget::TopKLevel(li) => {
                let levels = self.inner.topk_index().map_or(0, |t| t.schedule().levels() as u32);
                if levels == 0 {
                    return Err(ServiceError::unsupported("this shard node has no top-k ladder"));
                }
                if li >= levels {
                    return Err(ServiceError::malformed(format!(
                        "ladder level {li} out of range ({levels} levels)"
                    )));
                }
                Ok(Some(li as usize))
            }
        }
    }
}

fn params_of(hll: hlsh_hll::HllConfig, cost: hlsh_core::CostModel) -> ShardParams {
    ShardParams {
        hll_precision: hll.precision(),
        hll_seed: hll.seed(),
        alpha: cost.alpha(),
        beta_scan: cost.beta(),
        beta_cand: cost.beta_cand(),
    }
}

impl<S, F, D> QueryService for ShardNodeService<S, F, D>
where
    S: PointSet<Point = [f32]> + Send + Sync + 'static,
    F: LshFamily<[f32]> + Sync + 'static,
    F::GFn: Send + Sync,
    D: Distance<[f32]> + Send + Sync + 'static,
{
    fn info(&self) -> ServerInfo {
        self.inner.info()
    }

    fn rnnr_batch(
        &self,
        queries: &[Vec<f32>],
        radius: f64,
        threads: Option<usize>,
    ) -> Result<Vec<Vec<PointId>>, ServiceError> {
        self.inner.rnnr_batch(queries, radius, threads)
    }

    fn topk_batch(
        &self,
        queries: &[Vec<f32>],
        k: usize,
        threads: Option<usize>,
    ) -> Result<Vec<Vec<(PointId, f64)>>, ServiceError> {
        self.inner.topk_batch(queries, k, threads)
    }

    fn shard_batch(
        &self,
        request: &ShardRequest,
        threads: Option<usize>,
    ) -> Result<ShardResponse, ServiceError> {
        let rnnr = self.inner.rnnr_index();
        let shard = self.shard_id as usize;
        match request {
            ShardRequest::Info => {
                let levels = match self.inner.topk_index() {
                    Some(t) => (0..t.schedule().levels())
                        .map(|li| ShardLevelInfo {
                            radius: t.schedule().radius(li),
                            params: params_of(t.level_hll_config(li), t.level_cost_model(li)),
                        })
                        .collect(),
                    None => Vec::new(),
                };
                Ok(ShardResponse::Info(ShardInfo {
                    shard_id: self.shard_id,
                    shards: rnnr.assignment().shards() as u32,
                    points: rnnr.len() as u64,
                    dim: self.inner.dim(),
                    rnnr: params_of(rnnr.hll_config(), rnnr.cost_model()),
                    levels,
                }))
            }
            ShardRequest::Summarize { target, queries } => {
                let rows = self.check_rows(queries)?;
                let summaries = match self.check_target(*target)? {
                    None => rnnr.shard_summaries(shard, &rows, threads),
                    Some(li) => self
                        .inner
                        .topk_index()
                        .expect("check_target verified the ladder exists")
                        .shard_level_summaries(shard, li, &rows, threads),
                };
                Ok(ShardResponse::Summaries(
                    summaries
                        .into_iter()
                        .map(|s| ShardSummaryEntry {
                            collisions: s.collisions,
                            registers: s.registers,
                        })
                        .collect(),
                ))
            }
            ShardRequest::Execute { target, arm, radius, queries } => {
                if !radius.is_finite() || *radius < 0.0 {
                    return Err(ServiceError::malformed(format!(
                        "radius must be finite and non-negative, got {radius}"
                    )));
                }
                let rows = self.check_rows(queries)?;
                let lsh = matches!(arm, crate::protocol::Arm::Lsh);
                match self.check_target(*target)? {
                    None => Ok(ShardResponse::Ids(
                        rnnr.shard_arm_batch(shard, &rows, *radius, lsh, threads),
                    )),
                    Some(li) => {
                        let t = self
                            .inner
                            .topk_index()
                            .expect("check_target verified the ladder exists");
                        Ok(ShardResponse::Pairs(
                            t.shard_level_arm_batch(shard, li, &rows, *radius, lsh, threads),
                        ))
                    }
                }
            }
            ShardRequest::Scan { queries } => {
                let rows = self.check_rows(queries)?;
                let t = self.inner.topk_index().ok_or_else(|| {
                    ServiceError::unsupported("this shard node has no top-k ladder")
                })?;
                Ok(ShardResponse::Pairs(t.shard_fallback_scan_batch(shard, &rows, threads)))
            }
        }
    }

    // A shard node must never mutate its slice of the corpus out from
    // under the coordinator — every node would need the same mutation
    // in the same order to keep the global merge byte-identical, and
    // this protocol has no such replication. Reject with a typed error
    // naming the right place to mutate.
    fn insert_batch(&self, ids: &[PointId], points: &QueryBlock) -> Result<u32, ServiceError> {
        let _ = (ids, points);
        Err(ServiceError::unsupported(
            "shard nodes refuse mutation (it would desync the coordinator); \
             mutate a standalone --live server instead",
        ))
    }

    fn delete_batch(&self, ids: &[PointId]) -> Result<u32, ServiceError> {
        let _ = ids;
        Err(ServiceError::unsupported(
            "shard nodes refuse mutation (it would desync the coordinator); \
             mutate a standalone --live server instead",
        ))
    }
}

/// The living-index deployment: LSM-segmented indexes behind a
/// reader-writer lock, so the server keeps answering queries while the
/// corpus churns under [`Request::Insert`](crate::protocol::Request::Insert)
/// and [`Request::Delete`](crate::protocol::Request::Delete) frames.
///
/// Mutations take the write lock and apply to the rNNR index and the
/// top-k ladder (when present) in lockstep, so both always cover the
/// same live id set. Queries take the read lock and run the segmented
/// engines, whose answers are byte-identical to an index rebuilt from
/// scratch on the surviving points — the contract
/// `tests/mutable_props.rs` pins and the CI churn smoke checks over
/// this very service.
pub struct LiveLshService<F, D>
where
    F: LshFamily<[f32]>,
    D: Distance<[f32]>,
{
    rnnr: RwLock<SegmentedIndex<F, D>>,
    topk: Option<RwLock<SegmentedTopKIndex<F, D>>>,
    dim: u32,
}

impl<F, D> LiveLshService<F, D>
where
    F: LshFamily<[f32]>,
    D: Distance<[f32]>,
{
    /// Wraps segmented indexes for serving. Both must be built over
    /// the same corpus (same live ids) and the same dimensionality.
    pub fn new(rnnr: SegmentedIndex<F, D>, topk: Option<SegmentedTopKIndex<F, D>>) -> Self {
        let dim = rnnr.dim() as u32;
        if let Some(t) = &topk {
            assert_eq!(t.dim(), rnnr.dim(), "rNNR and top-k ladders must share dimensionality");
            assert_eq!(t.len(), rnnr.len(), "rNNR and top-k indexes must cover the same data");
        }
        Self { rnnr: RwLock::new(rnnr), topk: topk.map(RwLock::new), dim }
    }

    /// The vector dimensionality requests are validated against.
    pub fn dim(&self) -> u32 {
        self.dim
    }

    /// Runs `f` over the live rNNR index under the read lock — how the
    /// churn smoke compares served state against a rebuild oracle.
    pub fn with_rnnr<R>(&self, f: impl FnOnce(&SegmentedIndex<F, D>) -> R) -> R {
        f(&self.rnnr.read().expect("rnnr lock poisoned"))
    }
}

/// Maps a core [`hlsh_core::MutationError`] onto the wire's error
/// vocabulary.
fn mutation_error(e: hlsh_core::MutationError) -> ServiceError {
    match e {
        hlsh_core::MutationError::DuplicateId { id } => ServiceError::duplicate_id(id),
        hlsh_core::MutationError::UnknownId { id } => ServiceError::unknown_id(id),
        hlsh_core::MutationError::DimMismatch { expected, got } => {
            ServiceError::dim_mismatch(expected as u32, got as u32)
        }
    }
}

impl<F, D> QueryService for LiveLshService<F, D>
where
    F: LshFamily<[f32]> + Clone + Send + Sync + 'static,
    F::GFn: Send + Sync,
    D: Distance<[f32]> + Clone + Send + Sync + 'static,
{
    fn info(&self) -> ServerInfo {
        let rnnr = self.rnnr.read().expect("rnnr lock poisoned");
        ServerInfo {
            points: rnnr.len() as u64,
            dim: self.dim,
            shards: rnnr.assignment().shards() as u32,
            topk_levels: self
                .topk
                .as_ref()
                .map_or(0, |t| t.read().expect("topk lock poisoned").schedule().levels() as u32),
        }
    }

    fn rnnr_batch(
        &self,
        queries: &[Vec<f32>],
        radius: f64,
        threads: Option<usize>,
    ) -> Result<Vec<Vec<PointId>>, ServiceError> {
        // Sequential on purpose: one engine's scratch is reused across
        // the batch, and the reference box is single-core anyway. The
        // per-query answers are byte-identical either way.
        let _ = threads;
        let rnnr = self.rnnr.read().map_err(|_| ServiceError::internal("rnnr lock poisoned"))?;
        let mut engine = SegmentedQueryEngine::new();
        Ok(queries
            .iter()
            .map(|q| engine.query_with_strategy(&rnnr, q, radius, Strategy::Hybrid).ids)
            .collect())
    }

    fn topk_batch(
        &self,
        queries: &[Vec<f32>],
        k: usize,
        threads: Option<usize>,
    ) -> Result<Vec<Vec<(PointId, f64)>>, ServiceError> {
        let _ = threads;
        let topk = self
            .topk
            .as_ref()
            .ok_or_else(|| ServiceError::unsupported("this server has no top-k ladder"))?;
        let topk = topk.read().map_err(|_| ServiceError::internal("topk lock poisoned"))?;
        let mut engine = SegmentedTopKEngine::new();
        Ok(queries
            .iter()
            .map(|q| {
                engine.query_topk(&topk, q, k).neighbors.iter().map(|n| (n.id, n.dist)).collect()
            })
            .collect())
    }

    fn insert_batch(&self, ids: &[PointId], points: &QueryBlock) -> Result<u32, ServiceError> {
        if points.dim != self.dim && !ids.is_empty() {
            return Err(ServiceError::dim_mismatch(self.dim, points.dim));
        }
        // Lock order is always rNNR then ladder (mirrored by
        // delete_batch), and validation completes against the rNNR
        // index before either structure is touched — the batch either
        // fully applies to both or to neither.
        let mut rnnr =
            self.rnnr.write().map_err(|_| ServiceError::internal("rnnr lock poisoned"))?;
        let mut batch = std::collections::HashSet::with_capacity(ids.len());
        for &id in ids {
            if !batch.insert(id) || rnnr.contains(id) {
                return Err(ServiceError::duplicate_id(id));
            }
        }
        let rows = points.rows();
        for (&id, row) in ids.iter().zip(&rows) {
            rnnr.insert(id, row).map_err(mutation_error)?;
        }
        if let Some(topk) = &self.topk {
            let mut topk =
                topk.write().map_err(|_| ServiceError::internal("topk lock poisoned"))?;
            for (&id, row) in ids.iter().zip(&rows) {
                topk.insert(id, row).map_err(mutation_error)?;
            }
        }
        Ok(ids.len() as u32)
    }

    fn delete_batch(&self, ids: &[PointId]) -> Result<u32, ServiceError> {
        let mut rnnr =
            self.rnnr.write().map_err(|_| ServiceError::internal("rnnr lock poisoned"))?;
        let mut batch = std::collections::HashSet::with_capacity(ids.len());
        for &id in ids {
            if !batch.insert(id) || !rnnr.contains(id) {
                return Err(ServiceError::unknown_id(id));
            }
        }
        for &id in ids {
            rnnr.delete(id).map_err(mutation_error)?;
        }
        if let Some(topk) = &self.topk {
            let mut topk =
                topk.write().map_err(|_| ServiceError::internal("topk lock poisoned"))?;
            for &id in ids {
                topk.delete(id).map_err(mutation_error)?;
            }
        }
        Ok(ids.len() as u32)
    }
}
