//! Per-connection framing state machines for the event-loop server.
//!
//! A readiness-driven server never gets to say "read exactly 4 bytes,
//! then exactly `len` more" the way the old thread-per-connection
//! reader did — the kernel hands over whatever bytes have arrived,
//! split anywhere, and the loop must make progress and come back
//! later. Three small machines absorb that reality; each is pure state
//! over byte slices so it can be tested at every split point without a
//! socket:
//!
//! * [`FrameDecoder`] — incremental frame parsing, mirroring
//!   [`read_frame`](crate::protocol::read_frame)'s validation order
//!   and error semantics exactly (the loopback byte-identity gate
//!   covers both paths);
//! * [`SlotQueue`] — per-connection response ordering: responses
//!   complete out of order (inline answers vs. batcher ticks vs. shard
//!   workers), but must leave the socket in request order;
//! * [`WriteBuf`] — pending output with a cursor, tolerating partial
//!   writes at any byte boundary and reporting whether backpressure
//!   (a `WouldBlock`) calls for write-interest registration.
//!
//! `Conn` (crate-internal) composes the three over a nonblocking `TcpStream` for the
//! server's use.

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::TcpStream;

use crate::protocol::{WireError, MAGIC, PROTOCOL_VERSION};

/// One outcome of [`FrameDecoder::next_frame`]: either a complete well-framed
/// message, or a consumed-but-invalid frame the connection survives.
#[derive(Debug)]
pub enum FrameEvent {
    /// A complete frame: its kind byte and body bytes.
    Frame {
        /// The frame kind byte.
        kind: u8,
        /// The kind-specific body (header already stripped).
        body: Vec<u8>,
    },
    /// The frame was fully consumed but invalid in a recoverable way
    /// (nonzero reserved bytes). Answer with the error's code; the
    /// stream position is still trustworthy.
    Invalid(WireError),
}

/// Incremental frame parser: push bytes in as they arrive, pull frames
/// out as they complete.
///
/// Validation mirrors [`read_frame`](crate::protocol::read_frame):
/// `TooLarge` and `TooShort` are detected from the length prefix alone
/// (before any body bytes arrive — an oversized frame is rejected
/// without buffering its payload), and a fatal error **poisons** the
/// decoder: every later byte is discarded, because the stream position
/// is unknowable. That poisoning is what keeps a valid frame sitting
/// behind a garbage one from being answered, exactly like the blocking
/// reader that closed the connection at the same point.
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Consumed prefix of `buf`; compacted opportunistically.
    pos: usize,
    max_frame_bytes: usize,
    poisoned: bool,
}

impl FrameDecoder {
    /// A decoder enforcing the given frame-length limit.
    pub fn new(max_frame_bytes: usize) -> Self {
        Self { buf: Vec::new(), pos: 0, max_frame_bytes, poisoned: false }
    }

    /// Appends newly received bytes. After a fatal error the bytes are
    /// dropped instead — a poisoned connection is awaiting close, and
    /// must not buffer an attacker's backlog meanwhile.
    pub fn push(&mut self, bytes: &[u8]) {
        if self.poisoned {
            return;
        }
        if self.pos == self.buf.len() {
            self.buf.clear();
            self.pos = 0;
        } else if self.pos >= 64 * 1024 {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed (a nonzero value after EOF
    /// means the peer hung up mid-frame).
    pub fn pending_bytes(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether a fatal wire error has poisoned this decoder.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// Pulls the next complete frame, if the buffer holds one.
    ///
    /// `Ok(None)` means "need more bytes". `Err` is fatal — answer
    /// with the error's code, then close once the answer is flushed;
    /// the decoder is poisoned and will yield nothing further.
    pub fn next_frame(&mut self) -> Result<Option<FrameEvent>, WireError> {
        if self.poisoned {
            return Ok(None);
        }
        let avail = &self.buf[self.pos..];
        if avail.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes([avail[0], avail[1], avail[2], avail[3]]) as usize;
        if len > self.max_frame_bytes {
            self.poisoned = true;
            return Err(WireError::TooLarge { declared: len, limit: self.max_frame_bytes });
        }
        if len < 8 {
            self.poisoned = true;
            return Err(WireError::TooShort { declared: len });
        }
        if avail.len() < 4 + len {
            return Ok(None);
        }
        let rest = &avail[4..4 + len];
        let verdict = if rest[0..4] != MAGIC {
            Err(WireError::BadMagic)
        } else if rest[4] != PROTOCOL_VERSION {
            Err(WireError::BadVersion(rest[4]))
        } else if rest[6..8] != [0, 0] {
            // The whole frame is in the buffer and gets consumed, so
            // this stays recoverable — same as the blocking reader.
            Ok(FrameEvent::Invalid(WireError::Malformed("nonzero reserved bytes")))
        } else {
            Ok(FrameEvent::Frame { kind: rest[5], body: rest[8..].to_vec() })
        };
        match verdict {
            Ok(event) => {
                self.pos += 4 + len;
                Ok(Some(event))
            }
            Err(e) => {
                self.poisoned = true;
                Err(e)
            }
        }
    }
}

/// Request-ordered response slots for one connection.
///
/// Every request reserves a slot *in arrival order* the moment it is
/// decoded; the response fills its slot whenever it completes — inline
/// for metadata and errors, a batcher tick later for query traffic, a
/// worker thread later for shard traffic. [`SlotQueue::pump`] releases
/// only the filled prefix, so pipelined clients always read responses
/// in the order they sent requests, exactly like the serialized
/// blocking reader guaranteed.
#[derive(Default)]
pub struct SlotQueue {
    slots: VecDeque<Option<Vec<u8>>>,
    /// Sequence number of `slots[0]`.
    head_seq: u64,
    /// Sequence number the next [`SlotQueue::alloc`] hands out.
    next_seq: u64,
}

impl SlotQueue {
    /// Reserves the next slot, returning its sequence number.
    pub fn alloc(&mut self) -> u64 {
        self.slots.push_back(None);
        self.next_seq += 1;
        self.next_seq - 1
    }

    /// Fills slot `seq` with an encoded response frame. Ignores
    /// sequence numbers no longer (or not yet) reserved — a completion
    /// can race a connection's eviction, and a stale fill must not
    /// corrupt a reused token's queue.
    pub fn fill(&mut self, seq: u64, frame: Vec<u8>) {
        if seq < self.head_seq {
            return;
        }
        let Ok(index) = usize::try_from(seq - self.head_seq) else { return };
        if let Some(slot) = self.slots.get_mut(index) {
            *slot = Some(frame);
        }
    }

    /// Moves the filled prefix, in order, into `out`.
    pub fn pump(&mut self, out: &mut Vec<u8>) {
        while let Some(Some(_)) = self.slots.front() {
            let frame = self.slots.pop_front().flatten().expect("front checked Some");
            out.extend_from_slice(&frame);
            self.head_seq += 1;
        }
    }

    /// Whether any reserved slot is still waiting (filled or not).
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Reserved-but-unreleased slots (in-flight requests).
    pub fn len(&self) -> usize {
        self.slots.len()
    }
}

/// Pending output bytes with a write cursor.
///
/// A nonblocking write may stop at any byte; the cursor remembers how
/// far the socket got so the next writable wake resumes exactly there.
#[derive(Default)]
pub struct WriteBuf {
    buf: Vec<u8>,
    pos: usize,
}

impl WriteBuf {
    /// Bytes still owed to the socket.
    pub fn backlog(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether everything queued has been written.
    pub fn is_empty(&self) -> bool {
        self.backlog() == 0
    }

    /// Queue-side access: responses are appended here by
    /// [`SlotQueue::pump`].
    pub fn queue(&mut self) -> &mut Vec<u8> {
        &mut self.buf
    }

    /// Writes as much of the backlog as `w` accepts right now.
    ///
    /// Returns `true` if the backlog is fully drained, `false` if a
    /// `WouldBlock` left bytes behind (register write interest and
    /// resume on the next writable wake). Interrupted writes retry
    /// immediately; real errors propagate.
    pub fn flush_to<W: Write>(&mut self, w: &mut W) -> io::Result<bool> {
        while self.pos < self.buf.len() {
            match w.write(&self.buf[self.pos..]) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "socket accepted zero bytes",
                    ))
                }
                Ok(n) => self.pos += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        self.buf.clear();
        self.pos = 0;
        Ok(true)
    }
}

/// Output backlog above which the server stops reading more requests
/// off a connection. Level-triggered readiness makes this free flow
/// control: once the client drains its responses the backlog shrinks,
/// read interest returns, and the kernel re-reports the buffered
/// request bytes. Until then, a client that writes faster than it
/// reads is throttled by its own TCP window instead of growing the
/// server's heap.
pub const MAX_READ_GATE_BACKLOG: usize = 4 * 1024 * 1024;

/// How much one readable wake reads off a single connection before
/// yielding. Level triggering re-reports the remainder, so this bounds
/// per-wake latency impact of one firehose client without losing data.
const READ_QUANTUM: usize = 64 * 1024;

/// One live client connection in the event loop: the nonblocking
/// stream plus its three framing machines and its timer bookkeeping.
pub(crate) struct Conn {
    stream: TcpStream,
    /// The decoder for inbound bytes.
    pub decoder: FrameDecoder,
    /// Request-ordered response slots.
    pub slots: SlotQueue,
    /// Outbound bytes awaiting the socket.
    pub out: WriteBuf,
    /// Peer sent EOF (or a fatal wire error forced close-after-flush):
    /// no more requests will be admitted from this connection.
    pub read_closed: bool,
    /// Timer-wheel generation; bumped on every byte of progress so
    /// stale idle timers cancel lazily.
    pub timer_gen: u64,
}

impl Conn {
    /// Wraps an accepted stream (made nonblocking) for the loop.
    pub fn new(stream: TcpStream, max_frame_bytes: usize) -> io::Result<Self> {
        stream.set_nonblocking(true)?;
        let _ = stream.set_nodelay(true);
        Ok(Self {
            stream,
            decoder: FrameDecoder::new(max_frame_bytes),
            slots: SlotQueue::default(),
            out: WriteBuf::default(),
            read_closed: false,
            timer_gen: 0,
        })
    }

    /// The underlying stream (for reactor registration).
    pub fn stream(&self) -> &TcpStream {
        &self.stream
    }

    /// Reads up to one quantum into the decoder. Returns the byte
    /// count (0 can mean "nothing available" or EOF — check
    /// [`Conn::read_closed`]); a fatal socket error propagates and the
    /// caller drops the connection.
    pub fn read_ready(&mut self) -> io::Result<usize> {
        let mut total = 0;
        let mut chunk = [0u8; 16 * 1024];
        while total < READ_QUANTUM {
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    self.read_closed = true;
                    break;
                }
                Ok(n) => {
                    self.decoder.push(&chunk[..n]);
                    total += n;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        Ok(total)
    }

    /// Releases completed responses and writes what the socket takes.
    /// Returns `false` on backpressure (write interest needed).
    pub fn pump_and_flush(&mut self) -> io::Result<bool> {
        self.slots.pump(self.out.queue());
        self.out.flush_to(&mut self.stream)
    }

    /// The reactor interest this connection currently needs: readable
    /// unless closed or throttled by output backlog, writable while a
    /// backlog exists.
    pub fn desired_interest(&self) -> crate::reactor::Interest {
        crate::reactor::Interest {
            readable: !self.read_closed && self.out.backlog() < MAX_READ_GATE_BACKLOG,
            writable: !self.out.is_empty(),
        }
    }

    /// Whether the connection is complete: no more input will come,
    /// every admitted request has been answered and flushed. The loop
    /// closes it at this point — which is what lets a half-closing
    /// client (`shutdown(Write)` then `read_to_end`) collect all its
    /// responses before seeing EOF.
    pub fn finished(&self) -> bool {
        self.read_closed && self.slots.is_empty() && self.out.is_empty()
    }

    /// Whether an idle-timer expiry should evict right now. In-flight
    /// execution (reserved slots, empty output) is *not* idleness —
    /// the batcher or a shard worker is still producing the answer —
    /// but a stalled peer (undrained output, or silence with no work
    /// in flight) is.
    pub fn evictable_when_idle(&self) -> bool {
        let executing = !self.slots.is_empty() && self.out.is_empty();
        !executing
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{ErrorCode, QueryBlock, Request, Response};

    fn sample_frame() -> Vec<u8> {
        Request::Rnnr {
            radius: 1.25,
            queries: QueryBlock::pack(&[vec![1.0f32, 2.0], vec![3.0, 4.0]], 2),
        }
        .encode()
    }

    #[test]
    fn decodes_across_every_split_point() {
        let frame = sample_frame();
        for split in 0..=frame.len() {
            let mut d = FrameDecoder::new(1 << 20);
            d.push(&frame[..split]);
            if split < frame.len() {
                assert!(
                    d.next_frame().unwrap().is_none(),
                    "no frame may appear from {split}/{} bytes",
                    frame.len()
                );
            }
            d.push(&frame[split..]);
            match d.next_frame().unwrap() {
                Some(FrameEvent::Frame { kind, body }) => {
                    assert_eq!(kind, crate::protocol::kind::RNNR);
                    assert_eq!(&frame[12..], &body[..], "body survives split at {split}");
                }
                other => panic!("split {split}: expected a frame, got {other:?}"),
            }
            assert!(d.next_frame().unwrap().is_none());
            assert_eq!(d.pending_bytes(), 0);
        }
    }

    #[test]
    fn decodes_one_byte_at_a_time() {
        let frame = sample_frame();
        let mut d = FrameDecoder::new(1 << 20);
        let mut seen = 0;
        for (i, b) in frame.iter().enumerate() {
            d.push(std::slice::from_ref(b));
            while let Some(ev) = d.next_frame().unwrap() {
                assert!(matches!(ev, FrameEvent::Frame { .. }));
                assert_eq!(i, frame.len() - 1, "frame completed early");
                seen += 1;
            }
        }
        assert_eq!(seen, 1);
    }

    #[test]
    fn two_frames_in_one_push_decode_in_order() {
        let mut bytes = sample_frame();
        bytes.extend_from_slice(&Request::Info.encode());
        let mut d = FrameDecoder::new(1 << 20);
        d.push(&bytes);
        assert!(matches!(
            d.next_frame().unwrap(),
            Some(FrameEvent::Frame { kind: crate::protocol::kind::RNNR, .. })
        ));
        assert!(matches!(
            d.next_frame().unwrap(),
            Some(FrameEvent::Frame { kind: crate::protocol::kind::INFO, .. })
        ));
        assert!(d.next_frame().unwrap().is_none());
    }

    #[test]
    fn too_short_poisons_and_hides_trailing_valid_frame() {
        // [len=4][4 junk bytes][valid Info frame]: the declared length
        // cannot hold a header, and the trailing valid frame must NOT
        // be decoded — stream position is untrustworthy.
        let mut bytes = 4u32.to_le_bytes().to_vec();
        bytes.extend_from_slice(b"oops");
        bytes.extend_from_slice(&Request::Info.encode());
        let mut d = FrameDecoder::new(1 << 20);
        d.push(&bytes);
        match d.next_frame() {
            Err(WireError::TooShort { declared: 4 }) => {}
            other => panic!("expected TooShort, got {other:?}"),
        }
        assert!(d.is_poisoned());
        assert!(d.next_frame().unwrap().is_none(), "poisoned decoder yields nothing");
        d.push(&Request::Info.encode());
        assert!(d.next_frame().unwrap().is_none(), "post-poison bytes are discarded");
    }

    #[test]
    fn too_large_rejected_from_length_prefix_alone() {
        let mut d = FrameDecoder::new(4096);
        d.push(&(50 * 1024 * 1024u32).to_le_bytes());
        match d.next_frame() {
            Err(WireError::TooLarge { declared, limit: 4096 }) => {
                assert_eq!(declared, 50 * 1024 * 1024)
            }
            other => panic!("expected TooLarge, got {other:?}"),
        }
        assert!(d.is_poisoned());
    }

    #[test]
    fn bad_magic_and_version_are_fatal_reserved_bytes_recoverable() {
        let mut garbage = sample_frame();
        garbage[4..8].copy_from_slice(b"XXXX");
        let mut d = FrameDecoder::new(1 << 20);
        d.push(&garbage);
        assert!(matches!(d.next_frame(), Err(WireError::BadMagic)));

        let mut wrong_version = sample_frame();
        wrong_version[8] = 99;
        let mut d = FrameDecoder::new(1 << 20);
        d.push(&wrong_version);
        assert!(matches!(d.next_frame(), Err(WireError::BadVersion(99))));

        let mut reserved = sample_frame();
        reserved[10] = 1;
        let mut d = FrameDecoder::new(1 << 20);
        d.push(&reserved);
        d.push(&Request::Info.encode());
        assert!(matches!(
            d.next_frame().unwrap(),
            Some(FrameEvent::Invalid(WireError::Malformed(_)))
        ));
        // Recoverable: the following frame still decodes.
        assert!(matches!(d.next_frame().unwrap(), Some(FrameEvent::Frame { .. })));
    }

    #[test]
    fn slot_queue_releases_only_in_request_order() {
        let mut q = SlotQueue::default();
        let a = q.alloc();
        let b = q.alloc();
        let c = q.alloc();
        let mut out = Vec::new();
        q.fill(c, vec![3]);
        q.pump(&mut out);
        assert!(out.is_empty(), "slot c may not jump the queue");
        q.fill(a, vec![1]);
        q.pump(&mut out);
        assert_eq!(out, vec![1], "a releases; b still blocks c");
        q.fill(b, vec![2]);
        q.pump(&mut out);
        assert_eq!(out, vec![1, 2, 3]);
        assert!(q.is_empty());
    }

    #[test]
    fn slot_queue_ignores_stale_fills() {
        let mut q = SlotQueue::default();
        let a = q.alloc();
        q.fill(a, vec![1]);
        let mut out = Vec::new();
        q.pump(&mut out);
        q.fill(a, vec![9]); // late duplicate completion: dropped
        q.fill(a + 100, vec![9]); // never-allocated seq: dropped
        q.pump(&mut out);
        assert_eq!(out, vec![1]);
    }

    /// A writer that accepts at most one byte per call, interleaving a
    /// `WouldBlock` before every acceptance — the worst legal socket.
    struct TricklingWriter {
        written: Vec<u8>,
        block_next: bool,
    }

    impl Write for TricklingWriter {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            if self.block_next {
                self.block_next = false;
                return Err(io::Error::from(io::ErrorKind::WouldBlock));
            }
            self.block_next = true;
            self.written.push(buf[0]);
            Ok(1)
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn write_buf_survives_would_block_at_every_byte() {
        let payload: Vec<u8> = (0..=255u8).collect();
        let mut wb = WriteBuf::default();
        wb.queue().extend_from_slice(&payload);
        let mut w = TricklingWriter { written: Vec::new(), block_next: true };
        let mut rounds = 0;
        while !wb.flush_to(&mut w).unwrap() {
            rounds += 1;
            assert!(rounds < 10_000, "flush must terminate");
        }
        assert_eq!(w.written, payload, "every byte arrives exactly once, in order");
        assert!(wb.is_empty());
    }

    #[test]
    fn error_frames_fit_slot_flow() {
        // An error response is just another frame through the same
        // slot machinery — spot-check the encoding hooks line up.
        let frame =
            Response::Error { code: ErrorCode::Busy, message: "at capacity".into() }.encode();
        let mut q = SlotQueue::default();
        let s = q.alloc();
        q.fill(s, frame.clone());
        let mut out = Vec::new();
        q.pump(&mut out);
        assert_eq!(out, frame);
    }
}
