//! A hashed timer wheel driving idle-connection eviction.
//!
//! The event loop needs thousands of identical coarse timeouts ("evict
//! this connection if it stays silent for `idle_timeout`") that are
//! rescheduled on every byte of progress. A sorted structure would pay
//! O(log n) per reschedule on the hottest path in the server; the
//! wheel pays O(1) amortized for schedule *and* cancellation:
//!
//! * **schedule** drops the entry into the slot its deadline hashes to
//!   (`ticks ahead mod slot count`, with an overflow round counter for
//!   deadlines beyond one revolution);
//! * **cancellation is lazy** — rescheduling a connection just bumps
//!   its generation counter; the stale entry stays in the wheel and is
//!   discarded when its slot comes around and the generations no
//!   longer match. Nothing is ever searched for.
//!
//! Precision is one tick (the wheel's granularity): a timer fires in
//! the first [`TimerWheel::advance`] at or after its deadline's tick
//! boundary, never before its deadline. That is exactly right for
//! slow-loris eviction, where "60s ± 250ms" is indistinguishable from
//! "60s".

use std::time::{Duration, Instant};

/// One scheduled timeout: fires for `(token, gen)` once `rounds`
/// revolutions of the wheel have passed.
struct Entry {
    token: u64,
    gen: u64,
    rounds: u32,
}

/// A fixed-size hashed timer wheel. See the module docs for the
/// design; the server holds one and feeds its tick boundary into the
/// reactor's wait timeout.
pub struct TimerWheel {
    slots: Vec<Vec<Entry>>,
    granularity: Duration,
    /// The slot index the next `advance` tick will drain.
    cursor: usize,
    /// The instant up to which ticks have been processed.
    horizon: Instant,
    /// Live entries (stale generations included — they still occupy
    /// wheel memory until their slot is drained).
    pending: usize,
}

impl TimerWheel {
    /// A wheel of `slots` buckets that each span `granularity`,
    /// starting its clock at `now`.
    ///
    /// # Panics
    /// Panics if `slots` is zero or `granularity` is zero — a wheel
    /// that cannot make progress is a configuration bug, not a
    /// runtime condition.
    pub fn new(granularity: Duration, slots: usize, now: Instant) -> Self {
        assert!(slots > 0, "a timer wheel needs at least one slot");
        assert!(!granularity.is_zero(), "timer wheel granularity must be non-zero");
        Self {
            slots: (0..slots).map(|_| Vec::new()).collect(),
            granularity,
            cursor: 0,
            horizon: now,
            pending: 0,
        }
    }

    /// Schedules `(token, gen)` to fire at `deadline`. A deadline at
    /// or before the processed horizon fires on the very next
    /// `advance`.
    pub fn schedule(&mut self, token: u64, gen: u64, deadline: Instant) {
        let ahead = deadline.saturating_duration_since(self.horizon);
        // Round up: a timer must never fire before its deadline, so it
        // belongs to the tick boundary at or after it.
        let ticks = ahead.as_nanos().div_ceil(self.granularity.as_nanos()).max(1);
        // Tick t (1-based) drains slot (cursor + t - 1) mod n, so an
        // entry due in `ticks` ticks lands t-1 slots ahead of the
        // cursor with one round per full revolution already skipped.
        let n = self.slots.len() as u128;
        let slot = (self.cursor as u128 + (ticks - 1) % n) % n;
        let rounds = ((ticks - 1) / n).min(u32::MAX as u128) as u32;
        self.slots[slot as usize].push(Entry { token, gen, rounds });
        self.pending += 1;
    }

    /// Processes every tick boundary between the horizon and `now`,
    /// appending each expired `(token, gen)` to `expired`. Stale
    /// generations are the *caller's* to detect (compare against the
    /// connection's current generation) — the wheel reports everything
    /// whose slot and round came up.
    pub fn advance(&mut self, now: Instant, expired: &mut Vec<(u64, u64)>) {
        while now.saturating_duration_since(self.horizon) >= self.granularity {
            self.horizon += self.granularity;
            let slot = &mut self.slots[self.cursor];
            let mut i = 0;
            while i < slot.len() {
                if slot[i].rounds == 0 {
                    let e = slot.swap_remove(i);
                    expired.push((e.token, e.gen));
                    self.pending -= 1;
                } else {
                    slot[i].rounds -= 1;
                    i += 1;
                }
            }
            self.cursor = (self.cursor + 1) % self.slots.len();
        }
    }

    /// The next instant `advance` could expire something, or `None` if
    /// the wheel is empty. Conservative by up to one revolution for
    /// multi-round entries — the event loop sleeps until the next tick
    /// boundary, which is the wheel's precision anyway.
    pub fn next_wake(&self, now: Instant) -> Option<Instant> {
        if self.pending == 0 {
            return None;
        }
        let boundary = self.horizon + self.granularity;
        Some(boundary.max(now))
    }

    /// Entries still in the wheel, stale generations included.
    pub fn len(&self) -> usize {
        self.pending
    }

    /// Whether the wheel holds no entries at all.
    pub fn is_empty(&self) -> bool {
        self.pending == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(w: &mut TimerWheel, now: Instant) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        w.advance(now, &mut out);
        out
    }

    #[test]
    fn fires_at_or_after_deadline_never_before() {
        let t0 = Instant::now();
        let gran = Duration::from_millis(10);
        let mut w = TimerWheel::new(gran, 8, t0);
        w.schedule(1, 0, t0 + Duration::from_millis(25));
        // 24ms: before the deadline — nothing may fire.
        assert!(drain(&mut w, t0 + Duration::from_millis(24)).is_empty());
        // 30ms: first tick boundary ≥ 25ms.
        assert_eq!(drain(&mut w, t0 + Duration::from_millis(30)), vec![(1, 0)]);
        assert!(w.is_empty());
    }

    #[test]
    fn deadlines_beyond_one_revolution_use_rounds() {
        let t0 = Instant::now();
        let mut w = TimerWheel::new(Duration::from_millis(10), 4, t0);
        // 95ms ≈ 10 ticks = 2 revolutions + 2 ticks on a 4-slot wheel.
        w.schedule(7, 3, t0 + Duration::from_millis(95));
        assert!(drain(&mut w, t0 + Duration::from_millis(90)).is_empty());
        assert_eq!(drain(&mut w, t0 + Duration::from_millis(110)), vec![(7, 3)]);
    }

    #[test]
    fn lazy_cancellation_reports_stale_generation() {
        let t0 = Instant::now();
        let mut w = TimerWheel::new(Duration::from_millis(10), 8, t0);
        // The reschedule pattern: old generation stays in the wheel,
        // the caller schedules a new one and ignores the stale firing.
        w.schedule(1, 0, t0 + Duration::from_millis(20));
        w.schedule(1, 1, t0 + Duration::from_millis(40));
        let first = drain(&mut w, t0 + Duration::from_millis(30));
        assert_eq!(first, vec![(1, 0)], "stale generation fires and is the caller's to skip");
        let second = drain(&mut w, t0 + Duration::from_millis(50));
        assert_eq!(second, vec![(1, 1)]);
        assert!(w.is_empty());
    }

    #[test]
    fn past_deadlines_fire_on_next_tick() {
        let t0 = Instant::now();
        let mut w = TimerWheel::new(Duration::from_millis(10), 8, t0);
        w.schedule(5, 0, t0); // already due
        assert_eq!(drain(&mut w, t0 + Duration::from_millis(10)), vec![(5, 0)]);
    }

    #[test]
    fn next_wake_tracks_pending_state() {
        let t0 = Instant::now();
        let mut w = TimerWheel::new(Duration::from_millis(10), 8, t0);
        assert_eq!(w.next_wake(t0), None);
        w.schedule(1, 0, t0 + Duration::from_millis(15));
        let wake = w.next_wake(t0).expect("pending entry implies a wake");
        assert!(wake <= t0 + Duration::from_millis(10));
        let mut out = Vec::new();
        w.advance(t0 + Duration::from_millis(20), &mut out);
        assert_eq!(w.next_wake(t0 + Duration::from_millis(20)), None);
    }

    #[test]
    fn many_interleaved_timers_all_fire_exactly_once() {
        let t0 = Instant::now();
        let mut w = TimerWheel::new(Duration::from_millis(5), 16, t0);
        for i in 0..500u64 {
            w.schedule(i, 0, t0 + Duration::from_millis(1 + (i % 200)));
        }
        let mut fired = drain(&mut w, t0 + Duration::from_millis(250));
        fired.sort_unstable();
        fired.dedup();
        assert_eq!(fired.len(), 500, "every timer fires exactly once");
        assert!(w.is_empty());
    }
}
