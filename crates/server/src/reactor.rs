//! Readiness notification for the serving core: a hand-rolled
//! `epoll(7)` wrapper behind the [`Reactor`] trait, with a portable
//! `poll(2)` fallback.
//!
//! The event-loop server ([`crate::server`]) multiplexes every
//! connection on one thread, so it needs the OS to say *which* sockets
//! are ready instead of parking a thread per socket. The std library
//! exposes no readiness API, and this workspace takes no external
//! dependencies, so — exactly like [`crate::sockopt`] — the two
//! implementations here wrap the raw syscalls themselves:
//!
//! * [`EpollReactor`] (Linux): `epoll_create1` / `epoll_ctl` /
//!   `epoll_wait`, level-triggered, O(ready) per wake;
//! * [`PollReactor`] (all POSIX platforms): rebuilds a `pollfd` array
//!   per wait — O(registered) per wake, which is fine for the
//!   non-Linux development targets it serves.
//!
//! Both are `unsafe` enclaves in an otherwise `deny(unsafe_code)`
//! crate. The confined obligations:
//!
//! - the `extern "C"` signatures match the kernel/libc ABI, including
//!   the one genuinely platform-dependent detail each: `epoll_event`
//!   is **packed** on x86/x86-64 but naturally aligned on aarch64, and
//!   `nfds_t` is `c_ulong` on Linux but `c_uint` on macOS/BSD;
//! - every pointer handed to a syscall points into a live, correctly
//!   sized buffer owned by the caller for the duration of the call;
//! - the `epoll` descriptor is owned by the reactor and closed exactly
//!   once, in `Drop`.
//!
//! Errors are typed `io::Error`s and decoding is total: no call here
//! panics on syscall failure, and `EINTR` during a wait is absorbed
//! into an empty (retryable) wake rather than surfaced as an error.

use std::io;
use std::os::fd::RawFd;
use std::time::Duration;

/// Which readiness classes a registration subscribes to.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the fd is readable (data pending, EOF, or a peer
    /// hangup — anything that makes a `read` not block).
    pub readable: bool,
    /// Wake when the fd accepts writes without blocking.
    pub writable: bool,
}

impl Interest {
    /// Readable only — the steady state of an idle connection.
    pub const READABLE: Interest = Interest { readable: true, writable: false };
    /// Writable only.
    pub const WRITABLE: Interest = Interest { readable: false, writable: true };
    /// Readable and writable — a connection with backpressured output.
    pub const BOTH: Interest = Interest { readable: true, writable: true };
}

/// One readiness event delivered by [`Reactor::wait`].
#[derive(Clone, Copy, Debug)]
pub struct Event {
    /// The token the fd was registered under.
    pub token: u64,
    /// A read will not block (data, EOF or hangup pending).
    pub readable: bool,
    /// A write will not block.
    pub writable: bool,
    /// An error condition is pending on the fd; the next read or write
    /// will surface it as an `io::Error`.
    pub error: bool,
}

/// A readiness multiplexer: register fds under tokens, then block
/// until some of them are ready.
///
/// Registrations are **level-triggered**: a ready fd keeps reporting
/// until the condition is consumed (read drained to `WouldBlock`,
/// write buffer emptied), which lets the event loop process a bounded
/// amount per wake without losing edges.
pub trait Reactor: Send {
    /// Starts watching `fd` under `token`. Fails with `AlreadyExists`
    /// if the fd is already registered.
    fn register(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()>;

    /// Replaces the interest set (and token) of a registered fd.
    fn reregister(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()>;

    /// Stops watching `fd`. The fd must currently be registered.
    fn deregister(&mut self, fd: RawFd) -> io::Result<()>;

    /// Clears `events`, then blocks until at least one registered fd
    /// is ready or `timeout` elapses (`None` waits indefinitely).
    /// Returns with `events` empty on timeout or signal interruption
    /// (`EINTR`) — both are ordinary retryable wakes, not errors.
    fn wait(&mut self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()>;
}

/// The best reactor for this platform: epoll on Linux, poll elsewhere.
pub fn default_reactor() -> io::Result<Box<dyn Reactor>> {
    #[cfg(target_os = "linux")]
    {
        Ok(Box::new(EpollReactor::new()?))
    }
    #[cfg(not(target_os = "linux"))]
    {
        Ok(Box::new(PollReactor::new()))
    }
}

/// Converts a wait timeout to the millisecond convention `epoll_wait`
/// and `poll` share: `-1` blocks forever, otherwise round *up* so a
/// sub-millisecond deadline cannot spin at zero.
fn timeout_ms(timeout: Option<Duration>) -> i32 {
    match timeout {
        None => -1,
        Some(d) => {
            let ms = d.as_millis() + u128::from(d.subsec_nanos() % 1_000_000 != 0);
            ms.min(i32::MAX as u128) as i32
        }
    }
}

#[cfg(target_os = "linux")]
pub use epoll::EpollReactor;
pub use pollimpl::PollReactor;

#[cfg(target_os = "linux")]
#[allow(unsafe_code)]
mod epoll {
    use super::*;

    const EPOLL_CLOEXEC: i32 = 0x80000;
    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;
    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        fn close(fd: i32) -> i32;
    }

    /// `struct epoll_event`. The kernel ABI packs it on x86/x86-64
    /// (the u64 `data` sits at offset 4, total size 12); aarch64 uses
    /// natural alignment (offset 8, total size 16). Getting this wrong
    /// corrupts every second event in the wait buffer, so the layout
    /// is arch-gated rather than guessed.
    #[repr(C)]
    #[cfg_attr(any(target_arch = "x86", target_arch = "x86_64"), repr(packed))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    /// Linux readiness via `epoll(7)`: registration cost is paid once
    /// per fd, and each wake costs O(ready fds) regardless of how many
    /// thousands are registered — the property that makes the serving
    /// core scale past the thread-per-connection design it replaced.
    pub struct EpollReactor {
        epfd: i32,
        buf: Vec<EpollEvent>,
    }

    /// How many kernel events one `epoll_wait` call retrieves. Level
    /// triggering means anything beyond this simply arrives on the
    /// next wake — it bounds per-wake work, it does not drop events.
    const WAIT_BATCH: usize = 64;

    impl EpollReactor {
        /// Creates the epoll instance (`CLOEXEC` so serving fds never
        /// leak into spawned processes).
        pub fn new() -> io::Result<Self> {
            // SAFETY: plain syscall; the returned fd is owned by the
            // reactor until closed in Drop.
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Self { epfd, buf: vec![EpollEvent { events: 0, data: 0 }; WAIT_BATCH] })
        }

        fn ctl(&self, op: i32, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            let mut ev = EpollEvent { events: bits_of(interest), data: token };
            // SAFETY: `ev` outlives the call; epoll_ctl only reads it.
            if unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) } != 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }
    }

    /// Always subscribe to peer hangups: a half-closed client must
    /// wake the loop so buffered frames get answered and the
    /// connection reaped (the `raw_exchange` pattern in the loopback
    /// tests depends on it).
    fn bits_of(interest: Interest) -> u32 {
        let mut bits = EPOLLRDHUP;
        if interest.readable {
            bits |= EPOLLIN;
        }
        if interest.writable {
            bits |= EPOLLOUT;
        }
        bits
    }

    impl Reactor for EpollReactor {
        fn register(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, token, interest)
        }

        fn reregister(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, token, interest)
        }

        fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
            // The event argument is ignored for DEL but must be
            // non-null on pre-2.6.9 kernels; pass a dummy either way.
            self.ctl(EPOLL_CTL_DEL, fd, 0, Interest::default())
        }

        fn wait(&mut self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
            events.clear();
            // SAFETY: `buf` is a live, WAIT_BATCH-sized allocation the
            // kernel fills with at most `maxevents` entries.
            let n = unsafe {
                epoll_wait(self.epfd, self.buf.as_mut_ptr(), WAIT_BATCH as i32, timeout_ms(timeout))
            };
            if n < 0 {
                let e = io::Error::last_os_error();
                if e.kind() == io::ErrorKind::Interrupted {
                    return Ok(()); // EINTR: an empty, retryable wake
                }
                return Err(e);
            }
            for i in 0..n as usize {
                // Copy out of the (possibly packed) buffer before
                // touching fields.
                let raw = self.buf[i];
                let bits = raw.events;
                events.push(Event {
                    token: raw.data,
                    readable: bits & (EPOLLIN | EPOLLRDHUP | EPOLLHUP) != 0,
                    writable: bits & EPOLLOUT != 0,
                    error: bits & EPOLLERR != 0,
                });
            }
            Ok(())
        }
    }

    impl Drop for EpollReactor {
        fn drop(&mut self) {
            // SAFETY: epfd was created by new() and never closed before.
            unsafe {
                close(self.epfd);
            }
        }
    }
}

#[allow(unsafe_code)]
mod pollimpl {
    use super::*;

    const POLLIN: i16 = 0x001;
    const POLLOUT: i16 = 0x004;
    const POLLERR: i16 = 0x008;
    const POLLHUP: i16 = 0x010;
    const POLLNVAL: i16 = 0x020;

    /// `nfds_t`: `unsigned long` on Linux, `unsigned int` on
    /// macOS/BSD. Passing the wrong width would shift the timeout
    /// argument on LP64 BSDs.
    #[cfg(target_os = "linux")]
    type Nfds = core::ffi::c_ulong;
    #[cfg(not(target_os = "linux"))]
    type Nfds = core::ffi::c_uint;

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: Nfds, timeout: i32) -> i32;
    }

    /// `struct pollfd` — identical layout on every POSIX platform.
    #[repr(C)]
    #[derive(Clone, Copy)]
    struct PollFd {
        fd: i32,
        events: i16,
        revents: i16,
    }

    /// Portable readiness via `poll(2)`: the registration table is
    /// rebuilt into a `pollfd` array on every wait, so each wake costs
    /// O(registered fds). That is the right trade for the non-Linux
    /// fallback — correctness everywhere, with the O(ready) fast path
    /// reserved for the epoll build.
    pub struct PollReactor {
        regs: Vec<(RawFd, u64, Interest)>,
        buf: Vec<PollFd>,
    }

    impl PollReactor {
        /// Creates an empty registration table (no kernel resource to
        /// acquire, so this cannot fail).
        pub fn new() -> Self {
            Self { regs: Vec::new(), buf: Vec::new() }
        }

        fn position(&self, fd: RawFd) -> Option<usize> {
            self.regs.iter().position(|(f, _, _)| *f == fd)
        }
    }

    impl Default for PollReactor {
        fn default() -> Self {
            Self::new()
        }
    }

    impl Reactor for PollReactor {
        fn register(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            if self.position(fd).is_some() {
                return Err(io::Error::new(
                    io::ErrorKind::AlreadyExists,
                    "fd is already registered",
                ));
            }
            self.regs.push((fd, token, interest));
            Ok(())
        }

        fn reregister(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            let Some(i) = self.position(fd) else {
                return Err(io::Error::new(io::ErrorKind::NotFound, "fd is not registered"));
            };
            self.regs[i] = (fd, token, interest);
            Ok(())
        }

        fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
            let Some(i) = self.position(fd) else {
                return Err(io::Error::new(io::ErrorKind::NotFound, "fd is not registered"));
            };
            self.regs.remove(i);
            Ok(())
        }

        fn wait(&mut self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
            events.clear();
            self.buf.clear();
            for &(fd, _, interest) in &self.regs {
                let mut bits = 0i16;
                if interest.readable {
                    bits |= POLLIN;
                }
                if interest.writable {
                    bits |= POLLOUT;
                }
                self.buf.push(PollFd { fd, events: bits, revents: 0 });
            }
            // SAFETY: `buf` holds exactly `regs.len()` live pollfd
            // entries for the duration of the call.
            let n =
                unsafe { poll(self.buf.as_mut_ptr(), self.buf.len() as Nfds, timeout_ms(timeout)) };
            if n < 0 {
                let e = io::Error::last_os_error();
                if e.kind() == io::ErrorKind::Interrupted {
                    return Ok(());
                }
                return Err(e);
            }
            for (slot, &(_, token, _)) in self.buf.iter().zip(&self.regs) {
                let r = slot.revents;
                if r == 0 {
                    continue;
                }
                events.push(Event {
                    token,
                    readable: r & (POLLIN | POLLHUP) != 0,
                    writable: r & POLLOUT != 0,
                    error: r & (POLLERR | POLLNVAL) != 0,
                });
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;
    use std::time::Instant;

    /// A connected nonblocking socket pair over loopback.
    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let a = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (b, _) = listener.accept().unwrap();
        a.set_nonblocking(true).unwrap();
        b.set_nonblocking(true).unwrap();
        (a, b)
    }

    fn wait_for(r: &mut dyn Reactor, token: u64) -> Event {
        let mut events = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(5);
        while Instant::now() < deadline {
            r.wait(&mut events, Some(Duration::from_millis(100))).unwrap();
            if let Some(e) = events.iter().find(|e| e.token == token) {
                return *e;
            }
        }
        panic!("no event for token {token} within 5s");
    }

    /// The behavioral contract both implementations must share.
    fn exercise(r: &mut dyn Reactor) {
        let (a, mut b) = pair();

        // Readable-only registration on an empty socket: silent.
        r.register(a.as_raw_fd(), 7, Interest::READABLE).unwrap();
        let mut events = Vec::new();
        r.wait(&mut events, Some(Duration::from_millis(50))).unwrap();
        assert!(events.iter().all(|e| e.token != 7), "spurious readable on empty socket");

        // Peer writes → readable under the registered token.
        b.write_all(b"ping").unwrap();
        let e = wait_for(r, 7);
        assert!(e.readable && !e.writable);

        // Level-triggered: still readable until drained.
        let e = wait_for(r, 7);
        assert!(e.readable);
        let mut sink = [0u8; 16];
        let mut a_read = &a;
        assert_eq!(a_read.read(&mut sink).unwrap(), 4);

        // Writable interest on an idle socket: immediately ready.
        r.reregister(a.as_raw_fd(), 9, Interest::WRITABLE).unwrap();
        let e = wait_for(r, 9);
        assert!(e.writable && !e.readable, "drained socket must not report readable");

        // Peer hangup surfaces as readable (read will see EOF).
        drop(b);
        r.reregister(a.as_raw_fd(), 11, Interest::READABLE).unwrap();
        let e = wait_for(r, 11);
        assert!(e.readable);

        // Deregistered fds go quiet.
        r.deregister(a.as_raw_fd()).unwrap();
        r.wait(&mut events, Some(Duration::from_millis(50))).unwrap();
        assert!(events.iter().all(|e| e.token != 11));
    }

    #[test]
    fn poll_reactor_contract() {
        exercise(&mut PollReactor::new());
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn epoll_reactor_contract() {
        exercise(&mut EpollReactor::new().unwrap());
    }

    #[test]
    fn default_reactor_times_out_promptly() {
        let mut r = default_reactor().unwrap();
        let mut events = Vec::new();
        let t0 = Instant::now();
        r.wait(&mut events, Some(Duration::from_millis(20))).unwrap();
        assert!(events.is_empty());
        assert!(t0.elapsed() >= Duration::from_millis(19), "timeout returned early");
    }

    #[test]
    fn timeout_rounds_up() {
        assert_eq!(timeout_ms(None), -1);
        assert_eq!(timeout_ms(Some(Duration::ZERO)), 0);
        assert_eq!(timeout_ms(Some(Duration::from_micros(1))), 1);
        assert_eq!(timeout_ms(Some(Duration::from_millis(7))), 7);
        assert_eq!(timeout_ms(Some(Duration::from_secs(1 << 40))), i32::MAX);
    }
}
