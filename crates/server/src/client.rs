//! A synchronous, connection-reusing client for the `hlsh` protocol.
//!
//! One [`Client`] owns one TCP connection and issues one request at a
//! time (the protocol is strictly request/response per connection —
//! concurrency comes from opening more clients, which the server's
//! admission batcher coalesces back into large batch calls). Results
//! decode to exactly the types the in-process batch APIs return.

use std::io::{self, BufReader, BufWriter};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use hlsh_vec::PointId;

use crate::protocol::{
    self, decode_response, read_frame, write_frame, ErrorCode, QueryBlock, Request, Response,
    ServerInfo, WireError,
};

/// Everything a client call can fail with.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (connect, read, write, EOF mid-frame).
    Io(io::Error),
    /// The server answered with an error frame.
    Server {
        /// The server's error code.
        code: ErrorCode,
        /// The server's diagnostic message.
        message: String,
    },
    /// The server's bytes do not parse, or a response of the wrong
    /// kind arrived.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o: {e}"),
            ClientError::Server { code, message } => write!(f, "server error {code:?}: {message}"),
            ClientError::Protocol(what) => write!(f, "protocol violation: {what}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        match e {
            WireError::Io(io) => ClientError::Io(io),
            other => ClientError::Protocol(other.to_string()),
        }
    }
}

/// A synchronous `hlsh` protocol client over one reused connection.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    max_frame_bytes: usize,
}

impl Client {
    /// Connects to a server (TCP, `TCP_NODELAY` on).
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Self> {
        Self::from_stream(TcpStream::connect(addr)?)
    }

    /// Retries [`Client::connect`] until `deadline_in` elapses — the
    /// standard way to wait for a `serve` process that is still
    /// building its index.
    pub fn connect_retry<A: ToSocketAddrs + Clone>(
        addr: A,
        deadline_in: Duration,
    ) -> io::Result<Self> {
        let deadline = Instant::now() + deadline_in;
        loop {
            match Self::connect(addr.clone()) {
                Ok(c) => return Ok(c),
                Err(e) if Instant::now() >= deadline => return Err(e),
                Err(_) => std::thread::sleep(Duration::from_millis(50)),
            }
        }
    }

    /// Wraps an already-connected stream.
    pub fn from_stream(stream: TcpStream) -> io::Result<Self> {
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        let writer = BufWriter::new(stream);
        Ok(Self { reader, writer, max_frame_bytes: protocol::DEFAULT_MAX_FRAME_BYTES })
    }

    /// Caps the response size this client will accept.
    pub fn with_max_frame_bytes(mut self, max: usize) -> Self {
        self.max_frame_bytes = max;
        self
    }

    fn roundtrip(&mut self, req: &Request) -> Result<Response, ClientError> {
        write_frame(&mut self.writer, &req.encode())?;
        let (kind, body) = read_frame(&mut self.reader, self.max_frame_bytes)?;
        let resp = decode_response(kind, &body)?;
        if let Response::Error { code, message } = resp {
            return Err(ClientError::Server { code, message });
        }
        Ok(resp)
    }

    /// Asks the server what it is serving.
    pub fn info(&mut self) -> Result<ServerInfo, ClientError> {
        match self.roundtrip(&Request::Info)? {
            Response::Info(info) => Ok(info),
            other => Err(ClientError::Protocol(format!("expected info response, got {other:?}"))),
        }
    }

    /// rNNR batch: for each query, the ids within `radius`, ascending —
    /// byte-identical to the server-side in-process
    /// [`query_batch`](hlsh_core::ShardedIndex::query_batch) call.
    ///
    /// Every query must have the same length; the server validates it
    /// against the index dimensionality.
    pub fn query_batch(
        &mut self,
        queries: &[Vec<f32>],
        radius: f64,
    ) -> Result<Vec<Vec<PointId>>, ClientError> {
        let dim = queries.first().map_or(0, Vec::len);
        let req = Request::Rnnr { radius, queries: QueryBlock::pack(queries, dim) };
        match self.roundtrip(&req)? {
            Response::Rnnr(out) => {
                if out.len() != queries.len() {
                    return Err(ClientError::Protocol(format!(
                        "sent {} queries, got {} results",
                        queries.len(),
                        out.len()
                    )));
                }
                Ok(out)
            }
            other => Err(ClientError::Protocol(format!("expected rnnr response, got {other:?}"))),
        }
    }

    /// Top-k batch: for each query, the `min(k, n)` nearest
    /// `(id, distance)` pairs in ascending `(distance, id)` order —
    /// byte-identical (distances included, bit for bit) to the
    /// server-side
    /// [`query_topk_batch`](hlsh_core::ShardedTopKIndex::query_topk_batch)
    /// call.
    pub fn query_topk_batch(
        &mut self,
        queries: &[Vec<f32>],
        k: usize,
    ) -> Result<Vec<Vec<(PointId, f64)>>, ClientError> {
        let dim = queries.first().map_or(0, Vec::len);
        let req = Request::TopK { k: k as u32, queries: QueryBlock::pack(queries, dim) };
        match self.roundtrip(&req)? {
            Response::TopK(out) => {
                if out.len() != queries.len() {
                    return Err(ClientError::Protocol(format!(
                        "sent {} queries, got {} results",
                        queries.len(),
                        out.len()
                    )));
                }
                Ok(out)
            }
            other => Err(ClientError::Protocol(format!("expected topk response, got {other:?}"))),
        }
    }

    /// Inserts `ids[i]` ↦ `points[i]` into a living index,
    /// all-or-nothing: on [`ErrorCode::DimMismatch`] /
    /// [`ErrorCode::DuplicateId`] (surfaced as
    /// [`ClientError::Server`]) nothing was applied and the connection
    /// stays usable. Returns the number inserted.
    ///
    /// # Panics
    /// Panics if `ids` and `points` differ in length.
    pub fn insert_batch(
        &mut self,
        ids: &[PointId],
        points: &[Vec<f32>],
    ) -> Result<u32, ClientError> {
        assert_eq!(ids.len(), points.len(), "one id per inserted point");
        let dim = points.first().map_or(0, Vec::len);
        let req = Request::Insert { ids: ids.to_vec(), points: QueryBlock::pack(points, dim) };
        match self.roundtrip(&req)? {
            Response::Inserted(count) => Ok(count),
            other => Err(ClientError::Protocol(format!("expected insert ack, got {other:?}"))),
        }
    }

    /// Deletes these ids from a living index, all-or-nothing: on
    /// [`ErrorCode::UnknownId`] nothing was applied and the connection
    /// stays usable. Returns the number deleted.
    pub fn delete_batch(&mut self, ids: &[PointId]) -> Result<u32, ClientError> {
        let req = Request::Delete { ids: ids.to_vec() };
        match self.roundtrip(&req)? {
            Response::Deleted(count) => Ok(count),
            other => Err(ClientError::Protocol(format!("expected delete ack, got {other:?}"))),
        }
    }
}
