//! Build (or cold-start from a snapshot) the standard mixture corpus
//! index and serve it over TCP — standalone, as one shard node of a
//! distributed deployment, or as the coordinator in front of one.
//!
//! ```text
//! cargo run --release -p hlsh-server --bin serve -- \
//!     [--role standalone|shard|coordinator] \
//!     [--addr HOST] [--port N] [--n N] [--dim N] [--seed N] \
//!     [--shards N | ADDR,ADDR,...] [--shard-id N] [--levels N] \
//!     [--no-topk] [--radius F] [--batch-window-us N] \
//!     [--max-window-us N] [--max-conns N] [--idle-timeout-ms N] \
//!     [--deadline-ms N] [--threads N] \
//!     [--max-frame-mb N] [--shard-deadline-ms N] \
//!     [--connect-timeout-secs N] \
//!     [--snapshot-save PATH] [--snapshot-load PATH [--load-mode MODE]] \
//!     [--live]
//! ```
//!
//! # Admission window
//!
//! By default the admission batcher's linger **adapts** to the
//! observed arrival rate (proportional to the inter-arrival EWMA,
//! capped by `--max-window-us`, default 1000): bursty traffic
//! coalesces, sparse traffic drains immediately. `--batch-window-us N`
//! overrides it with a fixed window — `0` drains immediately, and
//! older invocations that passed `--batch-window-us 100` keep exactly
//! the pre-adaptive behavior they always had. Nothing is deprecated:
//! omit the flag to opt into adaptation, pass it to pin the window.
//!
//! # Connection governance
//!
//! `--max-conns` (default 1024) caps concurrent connections — the
//! excess get a typed `Busy` error frame and an immediate close.
//! `--idle-timeout-ms` (default 60000, `0` disables) evicts
//! connections that stall without progress, including half-written
//! frames from slow-loris peers. `--deadline-ms` (default `0` = off)
//! expires requests still queued after that long with a `Deadline`
//! error frame while keeping their connection alive. `docs/SERVING.md`
//! is the ops guide for all three.
//!
//! Builds a frozen `ShardedIndex` (rNNR) and, unless `--no-topk`, a
//! frozen `ShardedTopKIndex` ladder over the same
//! `benchmark_mixture` corpus the `throughput`/`topk` bench bins use
//! (all of them share [`MixturePreset`]), then serves both until
//! killed. Port 0 binds an ephemeral port; the bound address is
//! printed either way.
//!
//! `--snapshot-save PATH` writes the built indexes to a snapshot
//! before serving. `--snapshot-load PATH` skips the build entirely and
//! cold-starts from the file — milliseconds instead of a full rebuild.
//! `--load-mode read|mmap|mmap-verify|auto` picks how sections are
//! materialised (default `read`); `auto` lets the storage-aware load
//! planner choose from the file's layout and the medium's cached or
//! probed profile, and the resolved plan is logged. The manifest is
//! checked against the CLI parameters *before* any section is read, so
//! a stale or mismatched file fails fast with a parameter-by-parameter
//! message instead of silently serving the wrong index.
//!
//! # Living index
//!
//! `--live` (standalone only) builds the same corpus into LSM-style
//! [`SegmentedIndex`](hlsh_core::SegmentedIndex) /
//! [`SegmentedTopKIndex`](hlsh_core::SegmentedTopKIndex) structures
//! and serves them through
//! [`LiveLshService`]: the server then
//! accepts `Insert`/`Delete` frames, and every query remains
//! byte-identical to an index rebuilt from scratch on the surviving
//! points. Segmented indexes have no snapshot format, so `--live`
//! rejects the snapshot flags; shard and coordinator roles refuse
//! mutation with a typed error regardless.
//!
//! # Distributed roles
//!
//! `--role shard --shard-id I` serves shard `I`: the node builds or
//! (the intended path) loads the full snapshot and answers the shard
//! protocol for its slice, plus plain client queries for debugging.
//! `--role coordinator --shards HOST:PORT,HOST:PORT,...` dials one
//! shard node per listed address (list position = shard id), then
//! serves the ordinary client protocol — responses byte-identical to
//! a standalone server over the same snapshot. `docs/DISTRIBUTED.md`
//! walks through the full topology.

use std::sync::Arc;
use std::time::{Duration, Instant};

use hlsh_core::{load_snapshot, read_manifest, save_snapshot, LoadMode, MixturePreset};
use hlsh_datagen::benchmark_mixture;
use hlsh_families::PStableL2;
use hlsh_server::{
    AdmissionWindow, Coordinator, CoordinatorConfig, LiveLshService, QueryService, ServerConfig,
    ShardNodeService, ShardedLshService,
};
use hlsh_vec::L2;

#[derive(Clone, Copy, PartialEq)]
enum Role {
    Standalone,
    Shard,
    Coordinator,
}

struct Args {
    role: Role,
    addr: String,
    port: u16,
    preset: MixturePreset,
    /// Raw `--shards` value: an integer (standalone/shard roles) or a
    /// comma-separated shard address list (coordinator role).
    shards_raw: Option<String>,
    shard_id: Option<u32>,
    topk: bool,
    /// `Some(n)` pins a fixed admission window of `n` µs (0 = drain
    /// immediately); `None` (the default) adapts to the arrival rate.
    batch_window_us: Option<u64>,
    max_window_us: u64,
    max_conns: usize,
    idle_timeout_ms: u64,
    deadline_ms: u64,
    threads: Option<usize>,
    max_frame_mb: usize,
    shard_deadline_ms: u64,
    connect_timeout_secs: u64,
    snapshot_save: Option<String>,
    snapshot_load: Option<String>,
    load_mode: Option<LoadMode>,
    live: bool,
}

const USAGE: &str = "usage: serve [--role standalone|shard|coordinator] [--addr HOST] [--port N] [--n N] [--dim N] [--seed N] [--shards N|ADDR,ADDR,...] [--shard-id N] [--levels N] [--no-topk] [--radius F] [--batch-window-us N] [--max-window-us N] [--max-conns N] [--idle-timeout-ms N] [--deadline-ms N] [--threads N] [--max-frame-mb N] [--shard-deadline-ms N] [--connect-timeout-secs N] [--snapshot-save PATH] [--snapshot-load PATH [--load-mode read|mmap|mmap-verify|auto]] [--live]
  --live (standalone only) serves an LSM-segmented living index that accepts Insert/Delete frames; queries stay byte-identical to a rebuild on the surviving points. Incompatible with the snapshot flags.
  admission window: adaptive by default (linger tracks the arrival rate, capped by --max-window-us, default 1000).
  --batch-window-us N pins a fixed window instead (0 = drain immediately) — existing scripts passing it behave exactly as before; drop the flag to opt into adaptation. Nothing is deprecated.
  governance: --max-conns (default 1024) rejects excess connections with a Busy frame; --idle-timeout-ms (default 60000, 0 = off) evicts stalled connections; --deadline-ms (default 0 = off) expires queued requests with a Deadline frame without closing their connection.";

fn parse_args() -> Args {
    let mut out = Args {
        role: Role::Standalone,
        addr: "127.0.0.1".into(),
        port: 7411,
        preset: MixturePreset::default(),
        shards_raw: None,
        shard_id: None,
        topk: true,
        batch_window_us: None,
        max_window_us: 1_000,
        max_conns: 1024,
        idle_timeout_ms: 60_000,
        deadline_ms: 0,
        threads: None,
        max_frame_mb: 32,
        shard_deadline_ms: 5_000,
        connect_timeout_secs: 30,
        snapshot_save: None,
        snapshot_load: None,
        load_mode: None,
        live: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut grab_str =
            |name: &str| -> String { it.next().unwrap_or_else(|| panic!("{name} needs a value")) };
        let mut grab = |name: &str| -> usize {
            grab_str(name).parse().unwrap_or_else(|_| panic!("{name} needs a positive integer"))
        };
        match arg.as_str() {
            "--role" => {
                out.role = match grab_str("--role").as_str() {
                    "standalone" => Role::Standalone,
                    "shard" => Role::Shard,
                    "coordinator" => Role::Coordinator,
                    other => {
                        eprintln!("--role {other:?} is not standalone|shard|coordinator");
                        std::process::exit(2);
                    }
                }
            }
            "--addr" => out.addr = grab_str("--addr"),
            "--port" => out.port = grab("--port") as u16,
            "--n" => out.preset.n = grab("--n"),
            "--dim" => out.preset.dim = grab("--dim").max(1),
            "--seed" => out.preset.seed = grab("--seed") as u64,
            "--shards" => out.shards_raw = Some(grab_str("--shards")),
            "--shard-id" => out.shard_id = Some(grab("--shard-id") as u32),
            "--levels" => out.preset.levels = grab("--levels").max(1),
            "--no-topk" => out.topk = false,
            "--radius" => {
                out.preset.radius = grab_str("--radius")
                    .parse()
                    .unwrap_or_else(|_| panic!("--radius needs a float"))
            }
            "--batch-window-us" => out.batch_window_us = Some(grab("--batch-window-us") as u64),
            "--max-window-us" => out.max_window_us = grab("--max-window-us") as u64,
            "--max-conns" => out.max_conns = grab("--max-conns").max(1),
            "--idle-timeout-ms" => out.idle_timeout_ms = grab("--idle-timeout-ms") as u64,
            "--deadline-ms" => out.deadline_ms = grab("--deadline-ms") as u64,
            "--threads" => out.threads = Some(grab("--threads").max(1)),
            "--max-frame-mb" => out.max_frame_mb = grab("--max-frame-mb").max(1),
            "--shard-deadline-ms" => out.shard_deadline_ms = grab("--shard-deadline-ms") as u64,
            "--connect-timeout-secs" => {
                out.connect_timeout_secs = grab("--connect-timeout-secs") as u64
            }
            "--snapshot-save" => out.snapshot_save = Some(grab_str("--snapshot-save")),
            "--snapshot-load" => out.snapshot_load = Some(grab_str("--snapshot-load")),
            "--load-mode" => {
                let value = grab_str("--load-mode");
                out.load_mode =
                    Some(value.parse().unwrap_or_else(|e| panic!("--load-mode {value:?}: {e}")))
            }
            "--live" => out.live = true,
            other => {
                eprintln!("unknown flag {other:?}\n{USAGE}");
                std::process::exit(2);
            }
        }
    }
    if out.snapshot_save.is_some() && out.snapshot_load.is_some() {
        eprintln!("--snapshot-save and --snapshot-load are mutually exclusive");
        std::process::exit(2);
    }
    if out.load_mode.is_some() && out.snapshot_load.is_none() {
        eprintln!("--load-mode only makes sense with --snapshot-load");
        std::process::exit(2);
    }
    if out.live {
        if out.role != Role::Standalone {
            eprintln!("--live only applies to --role standalone (shard nodes and coordinators refuse mutation)");
            std::process::exit(2);
        }
        if out.snapshot_save.is_some() || out.snapshot_load.is_some() {
            eprintln!(
                "--live is incompatible with snapshots (segmented indexes have no snapshot format)"
            );
            std::process::exit(2);
        }
    }
    match out.role {
        Role::Standalone | Role::Shard => {
            if let Some(raw) = &out.shards_raw {
                out.preset.shards = raw
                    .parse::<usize>()
                    .unwrap_or_else(|_| {
                        eprintln!(
                            "--shards must be an integer shard count for this role \
                             (address lists are for --role coordinator)"
                        );
                        std::process::exit(2);
                    })
                    .max(1);
            }
            if out.role == Role::Shard && out.shard_id.is_none() {
                eprintln!("--role shard requires --shard-id");
                std::process::exit(2);
            }
            if out.role == Role::Standalone && out.shard_id.is_some() {
                eprintln!("--shard-id only makes sense with --role shard");
                std::process::exit(2);
            }
        }
        Role::Coordinator => {
            let ok = out
                .shards_raw
                .as_deref()
                .is_some_and(|raw| raw.parse::<usize>().is_err() && !raw.is_empty());
            if !ok {
                eprintln!(
                    "--role coordinator requires --shards as a comma-separated address \
                     list (e.g. --shards 10.0.0.1:7411,10.0.0.2:7411)"
                );
                std::process::exit(2);
            }
            if out.shard_id.is_some() || out.snapshot_save.is_some() || out.snapshot_load.is_some()
            {
                eprintln!(
                    "--shard-id/--snapshot-save/--snapshot-load do not apply to the \
                     coordinator role (shard nodes own the snapshots)"
                );
                std::process::exit(2);
            }
        }
    }
    out
}

fn main() {
    let args = parse_args();
    if args.role == Role::Coordinator {
        run_coordinator(&args);
    }
    if args.live {
        run_live(&args);
    }
    let preset = args.preset;

    let (rnnr, topk) = if let Some(path) = &args.snapshot_load {
        // Fail fast on parameter disagreement before reading sections.
        let manifest = read_manifest(path.as_ref())
            .unwrap_or_else(|e| fatal(&format!("cannot read snapshot manifest {path}: {e}")));
        if let Err(mismatches) = preset.check_manifest(&manifest, args.topk) {
            fatal(&format!("snapshot {path} disagrees with CLI parameters: {mismatches}"));
        }
        let mode = args.load_mode.unwrap_or(LoadMode::Read);
        let t0 = Instant::now();
        let loaded = load_snapshot::<PStableL2, L2>(path.as_ref(), mode)
            .unwrap_or_else(|e| fatal(&format!("cannot load snapshot {path}: {e}")));
        eprintln!(
            "cold-started from {path} in {:.1} ms ({mode:?}, n={}, shards={})",
            t0.elapsed().as_secs_f64() * 1e3,
            loaded.manifest.n,
            loaded.manifest.shards,
        );
        if let Some(plan) = &loaded.plan {
            eprintln!(
                "load plan: {:?} backend, prefetch={} — {}",
                plan.backend, plan.prefetch, plan.reason
            );
        }
        // A carried ladder is dropped under --no-topk.
        (loaded.rnnr, loaded.topk.filter(|_| args.topk))
    } else {
        eprintln!(
            "building mixture corpus n={} dim={} seed={} (shards={}, topk={})…",
            preset.n, preset.dim, preset.seed, preset.shards, args.topk
        );
        let (data, _) = benchmark_mixture(preset.dim, preset.n, preset.radius, preset.seed);
        let rnnr = preset.build_rnnr(data);
        let topk = args.topk.then(|| {
            let (data, _) = benchmark_mixture(preset.dim, preset.n, preset.radius, preset.seed);
            preset.build_topk(data)
        });
        if let Some(path) = &args.snapshot_save {
            let t0 = Instant::now();
            let stats = save_snapshot(path.as_ref(), &rnnr, topk.as_ref())
                .unwrap_or_else(|e| fatal(&format!("cannot save snapshot {path}: {e}")));
            eprintln!(
                "saved snapshot {path}: {} bytes, {} sections, {:.1} ms",
                stats.bytes,
                stats.sections,
                t0.elapsed().as_secs_f64() * 1e3,
            );
        }
        (rnnr, topk)
    };

    let topk_levels = topk.as_ref().map(|t| t.schedule().levels()).unwrap_or(0);
    let shards = rnnr.assignment().shards();
    let inner = ShardedLshService::new(rnnr, topk, preset.dim);
    let (service, role_tag): (Arc<dyn QueryService>, String) = match args.role {
        Role::Standalone => (Arc::new(inner), String::new()),
        Role::Shard => {
            let sid = args.shard_id.expect("parse_args requires --shard-id for shard role");
            if sid as usize >= shards {
                fatal(&format!("--shard-id {sid} out of range: the index has {shards} shard(s)"));
            }
            (Arc::new(ShardNodeService::new(inner, sid)), format!(", role=shard/{sid}"))
        }
        Role::Coordinator => unreachable!("coordinator role handled before the build"),
    };
    let config = server_config(&args);
    let server = hlsh_server::spawn(service, (args.addr.as_str(), args.port), config)
        .unwrap_or_else(|e| panic!("cannot bind {}:{}: {e}", args.addr, args.port));

    // One parseable line for scripts, flushed past any pipe buffering.
    use std::io::Write as _;
    println!(
        "hlsh-server listening on {} (n={}, dim={}, shards={}, topk_levels={}, batch_window={}{})",
        server.local_addr(),
        preset.n,
        preset.dim,
        preset.shards,
        topk_levels,
        window_tag(&args),
        role_tag,
    );
    std::io::stdout().flush().ok();

    // Serve until killed.
    loop {
        std::thread::park();
    }
}

/// Builds the mixture corpus into LSM-segmented (living) indexes and
/// serves them — the only deployment that accepts `Insert`/`Delete`
/// frames.
fn run_live(args: &Args) -> ! {
    let preset = args.preset;
    eprintln!(
        "building living mixture corpus n={} dim={} seed={} (shards={}, topk={})…",
        preset.n, preset.dim, preset.seed, preset.shards, args.topk
    );
    let (data, _) = benchmark_mixture(preset.dim, preset.n, preset.radius, preset.seed);
    let rnnr = preset.build_live_rnnr(data);
    let topk = args.topk.then(|| {
        let (data, _) = benchmark_mixture(preset.dim, preset.n, preset.radius, preset.seed);
        preset.build_live_topk(data)
    });
    let topk_levels = if topk.is_some() { preset.levels } else { 0 };
    let service = Arc::new(LiveLshService::new(rnnr, topk));
    let server = hlsh_server::spawn(service, (args.addr.as_str(), args.port), server_config(args))
        .unwrap_or_else(|e| panic!("cannot bind {}:{}: {e}", args.addr, args.port));

    use std::io::Write as _;
    println!(
        "hlsh-server listening on {} (n={}, dim={}, shards={}, topk_levels={}, batch_window={}, role=live)",
        server.local_addr(),
        preset.n,
        preset.dim,
        preset.shards,
        topk_levels,
        window_tag(args),
    );
    std::io::stdout().flush().ok();

    loop {
        std::thread::park();
    }
}

/// Dials the shard fleet and serves the client protocol in front of it.
fn run_coordinator(args: &Args) -> ! {
    let addrs: Vec<String> = args
        .shards_raw
        .as_deref()
        .expect("parse_args requires --shards for the coordinator role")
        .split(',')
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect();
    if addrs.is_empty() {
        fatal("--shards address list is empty");
    }
    let config = CoordinatorConfig {
        shard_deadline: Duration::from_millis(args.shard_deadline_ms),
        connect_timeout: Duration::from_secs(args.connect_timeout_secs),
        max_frame_bytes: args.max_frame_mb * 1024 * 1024,
    };
    eprintln!("dialing {} shard node(s): {}…", addrs.len(), addrs.join(", "));
    let t0 = Instant::now();
    let coordinator = Coordinator::connect(&addrs, config)
        .unwrap_or_else(|e| fatal(&format!("cannot assemble the shard fleet: {e}")));
    let info = coordinator.info();
    eprintln!(
        "fleet up in {:.1} ms: n={}, dim={}, topk_levels={}",
        t0.elapsed().as_secs_f64() * 1e3,
        info.points,
        info.dim,
        info.topk_levels,
    );
    let server = hlsh_server::spawn(
        Arc::new(coordinator),
        (args.addr.as_str(), args.port),
        server_config(args),
    )
    .unwrap_or_else(|e| panic!("cannot bind {}:{}: {e}", args.addr, args.port));

    use std::io::Write as _;
    println!(
        "hlsh-server listening on {} (n={}, dim={}, shards={}, topk_levels={}, batch_window={}, role=coordinator)",
        server.local_addr(),
        info.points,
        info.dim,
        info.shards,
        info.topk_levels,
        window_tag(args),
    );
    std::io::stdout().flush().ok();

    loop {
        std::thread::park();
    }
}

/// Maps parsed flags to the server's config: fixed window if
/// `--batch-window-us` was given, adaptive (capped by
/// `--max-window-us`) otherwise, plus the governance knobs.
fn server_config(args: &Args) -> ServerConfig {
    ServerConfig {
        max_frame_bytes: args.max_frame_mb * 1024 * 1024,
        admission: match args.batch_window_us {
            Some(us) => AdmissionWindow::Fixed(Duration::from_micros(us)),
            None => AdmissionWindow::Adaptive { max: Duration::from_micros(args.max_window_us) },
        },
        batch_threads: args.threads,
        max_connections: args.max_conns,
        idle_timeout: (args.idle_timeout_ms > 0)
            .then(|| Duration::from_millis(args.idle_timeout_ms)),
        request_deadline: (args.deadline_ms > 0).then(|| Duration::from_millis(args.deadline_ms)),
    }
}

/// The admission window as printed in the listening line.
fn window_tag(args: &Args) -> String {
    match args.batch_window_us {
        Some(us) => format!("{us}us"),
        None => format!("adaptive(max={}us)", args.max_window_us),
    }
}

fn fatal(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(2);
}
