//! Build (or cold-start from a snapshot) the standard mixture corpus
//! index and serve it over TCP.
//!
//! ```text
//! cargo run --release -p hlsh-server --bin serve -- \
//!     [--addr HOST] [--port N] [--n N] [--dim N] [--seed N] \
//!     [--shards N] [--levels N] [--no-topk] [--radius F] \
//!     [--batch-window-us N] [--threads N] [--max-frame-mb N] \
//!     [--snapshot-save PATH] [--snapshot-load PATH [--load-mode MODE]]
//! ```
//!
//! Builds a frozen `ShardedIndex` (rNNR) and, unless `--no-topk`, a
//! frozen `ShardedTopKIndex` ladder over the same
//! `benchmark_mixture` corpus the `throughput`/`topk` bench bins use
//! (all of them share [`MixturePreset`]), then serves both until
//! killed. Port 0 binds an ephemeral port; the bound address is
//! printed either way.
//!
//! `--snapshot-save PATH` writes the built indexes to a snapshot
//! before serving. `--snapshot-load PATH` skips the build entirely and
//! cold-starts from the file — milliseconds instead of a full rebuild.
//! `--load-mode read|mmap|mmap-verify|auto` picks how sections are
//! materialised (default `read`); `auto` lets the storage-aware load
//! planner choose from the file's layout and the medium's cached or
//! probed profile, and the resolved plan is logged. The older `--mmap`
//! flag is kept as a deprecated alias for `--load-mode mmap`. The
//! manifest is checked against the CLI parameters *before* any section
//! is read, so a stale or mismatched file fails fast with a
//! parameter-by-parameter message instead of silently serving the
//! wrong index.

use std::sync::Arc;
use std::time::{Duration, Instant};

use hlsh_core::{load_snapshot, read_manifest, save_snapshot, LoadMode, MixturePreset};
use hlsh_datagen::benchmark_mixture;
use hlsh_families::PStableL2;
use hlsh_server::{ServerConfig, ShardedLshService};
use hlsh_vec::L2;

struct Args {
    addr: String,
    port: u16,
    preset: MixturePreset,
    topk: bool,
    batch_window_us: u64,
    threads: Option<usize>,
    max_frame_mb: usize,
    snapshot_save: Option<String>,
    snapshot_load: Option<String>,
    load_mode: Option<LoadMode>,
    mmap: bool,
}

fn parse_args() -> Args {
    let mut out = Args {
        addr: "127.0.0.1".into(),
        port: 7411,
        preset: MixturePreset::default(),
        topk: true,
        batch_window_us: 100,
        threads: None,
        max_frame_mb: 32,
        snapshot_save: None,
        snapshot_load: None,
        load_mode: None,
        mmap: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut grab_str =
            |name: &str| -> String { it.next().unwrap_or_else(|| panic!("{name} needs a value")) };
        let mut grab = |name: &str| -> usize {
            grab_str(name).parse().unwrap_or_else(|_| panic!("{name} needs a positive integer"))
        };
        match arg.as_str() {
            "--addr" => out.addr = grab_str("--addr"),
            "--port" => out.port = grab("--port") as u16,
            "--n" => out.preset.n = grab("--n"),
            "--dim" => out.preset.dim = grab("--dim").max(1),
            "--seed" => out.preset.seed = grab("--seed") as u64,
            "--shards" => out.preset.shards = grab("--shards").max(1),
            "--levels" => out.preset.levels = grab("--levels").max(1),
            "--no-topk" => out.topk = false,
            "--radius" => {
                out.preset.radius = grab_str("--radius")
                    .parse()
                    .unwrap_or_else(|_| panic!("--radius needs a float"))
            }
            "--batch-window-us" => out.batch_window_us = grab("--batch-window-us") as u64,
            "--threads" => out.threads = Some(grab("--threads").max(1)),
            "--max-frame-mb" => out.max_frame_mb = grab("--max-frame-mb").max(1),
            "--snapshot-save" => out.snapshot_save = Some(grab_str("--snapshot-save")),
            "--snapshot-load" => out.snapshot_load = Some(grab_str("--snapshot-load")),
            "--load-mode" => {
                let value = grab_str("--load-mode");
                out.load_mode =
                    Some(value.parse().unwrap_or_else(|e| panic!("--load-mode {value:?}: {e}")))
            }
            "--mmap" => out.mmap = true,
            other => {
                eprintln!(
                    "unknown flag {other:?}\nusage: serve [--addr HOST] [--port N] [--n N] [--dim N] [--seed N] [--shards N] [--levels N] [--no-topk] [--radius F] [--batch-window-us N] [--threads N] [--max-frame-mb N] [--snapshot-save PATH] [--snapshot-load PATH [--load-mode read|mmap|mmap-verify|auto]]"
                );
                std::process::exit(2);
            }
        }
    }
    if out.snapshot_save.is_some() && out.snapshot_load.is_some() {
        eprintln!("--snapshot-save and --snapshot-load are mutually exclusive");
        std::process::exit(2);
    }
    if (out.mmap || out.load_mode.is_some()) && out.snapshot_load.is_none() {
        eprintln!("--mmap/--load-mode only make sense with --snapshot-load");
        std::process::exit(2);
    }
    if out.mmap && out.load_mode.is_some() {
        eprintln!("--mmap is a deprecated alias for --load-mode mmap; pass only one of them");
        std::process::exit(2);
    }
    out
}

fn main() {
    let args = parse_args();
    let preset = args.preset;

    let (rnnr, topk) = if let Some(path) = &args.snapshot_load {
        // Fail fast on parameter disagreement before reading sections.
        let manifest = read_manifest(path.as_ref())
            .unwrap_or_else(|e| fatal(&format!("cannot read snapshot manifest {path}: {e}")));
        if let Err(mismatches) = preset.check_manifest(&manifest, args.topk) {
            fatal(&format!("snapshot {path} disagrees with CLI parameters: {mismatches}"));
        }
        let mode = args.load_mode.unwrap_or(if args.mmap {
            eprintln!("note: --mmap is deprecated; use --load-mode mmap");
            LoadMode::Mmap
        } else {
            LoadMode::Read
        });
        let t0 = Instant::now();
        let loaded = load_snapshot::<PStableL2, L2>(path.as_ref(), mode)
            .unwrap_or_else(|e| fatal(&format!("cannot load snapshot {path}: {e}")));
        eprintln!(
            "cold-started from {path} in {:.1} ms ({mode:?}, n={}, shards={})",
            t0.elapsed().as_secs_f64() * 1e3,
            loaded.manifest.n,
            loaded.manifest.shards,
        );
        if let Some(plan) = &loaded.plan {
            eprintln!(
                "load plan: {:?} backend, prefetch={} — {}",
                plan.backend, plan.prefetch, plan.reason
            );
        }
        // A carried ladder is dropped under --no-topk.
        (loaded.rnnr, loaded.topk.filter(|_| args.topk))
    } else {
        eprintln!(
            "building mixture corpus n={} dim={} seed={} (shards={}, topk={})…",
            preset.n, preset.dim, preset.seed, preset.shards, args.topk
        );
        let (data, _) = benchmark_mixture(preset.dim, preset.n, preset.radius, preset.seed);
        let rnnr = preset.build_rnnr(data);
        let topk = args.topk.then(|| {
            let (data, _) = benchmark_mixture(preset.dim, preset.n, preset.radius, preset.seed);
            preset.build_topk(data)
        });
        if let Some(path) = &args.snapshot_save {
            let t0 = Instant::now();
            let stats = save_snapshot(path.as_ref(), &rnnr, topk.as_ref())
                .unwrap_or_else(|e| fatal(&format!("cannot save snapshot {path}: {e}")));
            eprintln!(
                "saved snapshot {path}: {} bytes, {} sections, {:.1} ms",
                stats.bytes,
                stats.sections,
                t0.elapsed().as_secs_f64() * 1e3,
            );
        }
        (rnnr, topk)
    };

    let topk_levels = topk.as_ref().map(|t| t.schedule().levels()).unwrap_or(0);
    let service = Arc::new(ShardedLshService::new(rnnr, topk, preset.dim));
    let config = ServerConfig {
        max_frame_bytes: args.max_frame_mb * 1024 * 1024,
        batch_window: Duration::from_micros(args.batch_window_us),
        batch_threads: args.threads,
    };
    let server = hlsh_server::spawn(service, (args.addr.as_str(), args.port), config)
        .unwrap_or_else(|e| panic!("cannot bind {}:{}: {e}", args.addr, args.port));

    // One parseable line for scripts, flushed past any pipe buffering.
    use std::io::Write as _;
    println!(
        "hlsh-server listening on {} (n={}, dim={}, shards={}, topk_levels={}, batch_window={}us)",
        server.local_addr(),
        preset.n,
        preset.dim,
        preset.shards,
        topk_levels,
        args.batch_window_us,
    );
    std::io::stdout().flush().ok();

    // Serve until killed.
    loop {
        std::thread::park();
    }
}

fn fatal(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(2);
}
