//! Build the standard mixture corpus and serve it over TCP.
//!
//! ```text
//! cargo run --release -p hlsh-server --bin serve -- \
//!     [--addr HOST] [--port N] [--n N] [--dim N] [--seed N] \
//!     [--shards N] [--levels N] [--no-topk] [--radius F] \
//!     [--batch-window-us N] [--threads N] [--max-frame-mb N]
//! ```
//!
//! Builds a frozen [`ShardedIndex`] (rNNR) and, unless `--no-topk`, a
//! frozen [`ShardedTopKIndex`] ladder over the same
//! `benchmark_mixture` corpus the `throughput`/`topk` bench bins use,
//! then serves both until killed. Index parameters mirror those bins,
//! so socket-path numbers from `loadgen` are directly comparable to
//! the in-process `BENCH_*.json` baselines. Port 0 binds an ephemeral
//! port; the bound address is printed either way.

use std::sync::Arc;
use std::time::Duration;

use hlsh_core::{
    CostModel, IndexBuilder, RadiusSchedule, ShardAssignment, ShardedIndex, ShardedTopKIndex,
};
use hlsh_datagen::benchmark_mixture;
use hlsh_families::PStableL2;
use hlsh_server::{ServerConfig, ShardedLshService};
use hlsh_vec::L2;

struct Args {
    addr: String,
    port: u16,
    n: usize,
    dim: usize,
    seed: u64,
    shards: usize,
    levels: usize,
    topk: bool,
    radius: f64,
    batch_window_us: u64,
    threads: Option<usize>,
    max_frame_mb: usize,
}

fn parse_args() -> Args {
    let mut out = Args {
        addr: "127.0.0.1".into(),
        port: 7411,
        n: 20_000,
        dim: 24,
        seed: 23,
        shards: 2,
        levels: 4,
        topk: true,
        radius: 1.5,
        batch_window_us: 100,
        threads: None,
        max_frame_mb: 32,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut grab_str =
            |name: &str| -> String { it.next().unwrap_or_else(|| panic!("{name} needs a value")) };
        let mut grab = |name: &str| -> usize {
            grab_str(name).parse().unwrap_or_else(|_| panic!("{name} needs a positive integer"))
        };
        match arg.as_str() {
            "--addr" => out.addr = grab_str("--addr"),
            "--port" => out.port = grab("--port") as u16,
            "--n" => out.n = grab("--n"),
            "--dim" => out.dim = grab("--dim").max(1),
            "--seed" => out.seed = grab("--seed") as u64,
            "--shards" => out.shards = grab("--shards").max(1),
            "--levels" => out.levels = grab("--levels").max(1),
            "--no-topk" => out.topk = false,
            "--radius" => {
                out.radius = grab_str("--radius")
                    .parse()
                    .unwrap_or_else(|_| panic!("--radius needs a float"))
            }
            "--batch-window-us" => out.batch_window_us = grab("--batch-window-us") as u64,
            "--threads" => out.threads = Some(grab("--threads").max(1)),
            "--max-frame-mb" => out.max_frame_mb = grab("--max-frame-mb").max(1),
            other => {
                eprintln!(
                    "unknown flag {other:?}\nusage: serve [--addr HOST] [--port N] [--n N] [--dim N] [--seed N] [--shards N] [--levels N] [--no-topk] [--radius F] [--batch-window-us N] [--threads N] [--max-frame-mb N]"
                );
                std::process::exit(2);
            }
        }
    }
    out
}

fn main() {
    let args = parse_args();
    let assignment = ShardAssignment::new(args.seed, args.shards);
    let builder = || {
        IndexBuilder::new(PStableL2::new(args.dim, 2.0 * args.radius), L2)
            .tables(20)
            .hash_len(7)
            .seed(args.seed)
            .cost_model(CostModel::from_ratio(6.0))
    };

    eprintln!(
        "building mixture corpus n={} dim={} seed={} (shards={}, topk={})…",
        args.n, args.dim, args.seed, args.shards, args.topk
    );
    let (data, _) = benchmark_mixture(args.dim, args.n, args.radius, args.seed);
    let rnnr = ShardedIndex::build_frozen(data, assignment, builder());

    let topk = args.topk.then(|| {
        let (data, _) = benchmark_mixture(args.dim, args.n, args.radius, args.seed);
        let schedule = RadiusSchedule::doubling(args.radius, args.levels);
        ShardedTopKIndex::build(data, assignment, schedule, |_, r| {
            IndexBuilder::new(PStableL2::new(args.dim, 2.0 * r), L2)
                .tables(20)
                .hash_len(6)
                .seed(args.seed)
                .cost_model(CostModel::from_ratio(6.0))
        })
        .freeze()
    });

    let service = Arc::new(ShardedLshService::new(rnnr, topk, args.dim));
    let config = ServerConfig {
        max_frame_bytes: args.max_frame_mb * 1024 * 1024,
        batch_window: Duration::from_micros(args.batch_window_us),
        batch_threads: args.threads,
    };
    let server = hlsh_server::spawn(service, (args.addr.as_str(), args.port), config)
        .unwrap_or_else(|e| panic!("cannot bind {}:{}: {e}", args.addr, args.port));

    // One parseable line for scripts, flushed past any pipe buffering.
    use std::io::Write as _;
    println!(
        "hlsh-server listening on {} (n={}, dim={}, shards={}, topk_levels={}, batch_window={}us)",
        server.local_addr(),
        args.n,
        args.dim,
        args.shards,
        if args.topk { args.levels } else { 0 },
        args.batch_window_us,
    );
    std::io::stdout().flush().ok();

    // Serve until killed.
    loop {
        std::thread::park();
    }
}
