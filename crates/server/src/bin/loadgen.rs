//! Load generator for a running `serve` process: open/closed-loop
//! request streams, latency percentiles, throughput, `--json` records.
//!
//! ```text
//! cargo run --release -p hlsh-server --bin loadgen -- \
//!     [--addr HOST:PORT] [--mode closed|open] [--clients N] [--batch N] \
//!     [--requests N] [--rate F] [--radius F] [--k N] \
//!     [--sweep-clients A,B,C] [--sweep-requests N] [--sweep-batch N] \
//!     [--n N] [--dim N] [--seed N] [--queries N] \
//!     [--warmup N] [--connect-timeout-secs N] [--json PATH] \
//!     [--churn N [--churn-batch N]]
//! ```
//!
//! Query vectors are drawn from the same `benchmark_mixture` corpus
//! the server indexes (same `--n/--dim/--seed` ⇒ same points), so the
//! workload matches the in-process `throughput`/`topk` bench bins and
//! socket-path numbers are directly comparable to `BENCH_*.json`.
//!
//! * **closed loop** (default): each client keeps exactly one request
//!   in flight — latency is service time, throughput is what the
//!   admission batcher can coalesce.
//! * **open loop**: requests fire on a fixed schedule (`--rate`
//!   requests/s across all clients) and latency is measured from the
//!   *scheduled* send time, so queueing delay from a falling-behind
//!   server is charged to the server, not silently absorbed
//!   (no coordinated omission).
//!
//! `--json PATH` writes a `BENCH_serve.json`-style record; `--k N`
//! adds a top-k phase after the rNNR phase.
//!
//! `--sweep-clients A,B,C` appends a **connection-scaling sweep**: one
//! open-loop rNNR phase per listed client count (hundreds of
//! simultaneous connections are fine — one thread and one socket per
//! client). Each sweep point issues `--sweep-requests` requests in
//! total (split across its clients, so every point has the same sample
//! count for percentile stability) of `--sweep-batch` queries each, at
//! the shared `--rate` schedule. This is how the reactor's
//! high-connection behaviour is measured into `BENCH_serve.json`.
//!
//! # Churn mode
//!
//! `--churn N` (against a `serve --live` process with matching
//! `--n/--dim/--seed/--radius`) replaces the latency phases with a
//! mutation workload: `N` insert/delete frames of `--churn-batch` ops
//! each, chosen by a seeded deterministic stream, while a second
//! connection issues queries concurrently. The generator mirrors every
//! mutation locally, and when the churn drains it rebuilds the
//! surviving corpus from scratch in process and asserts the server's
//! rNNR and top-k answers over the whole query pool are
//! **byte-identical** to the rebuild (distances compared bit for bit).
//! On success it prints a `churn verify: OK` line (what CI greps for);
//! any divergence panics with the offending query. `--json PATH`
//! writes a churn record instead of the latency record.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use hlsh_core::{
    MixturePreset, SegmentedIndex, SegmentedQueryEngine, SegmentedTopKEngine, SegmentedTopKIndex,
    Strategy,
};
use hlsh_datagen::benchmark_mixture;
use hlsh_server::{Client, ServerInfo};
use hlsh_vec::{DenseDataset, PointId};

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Closed,
    Open,
}

#[derive(Clone)]
struct Args {
    addr: String,
    mode: Mode,
    clients: usize,
    batch: usize,
    requests: usize,
    rate: f64,
    radius: f64,
    k: usize,
    n: usize,
    dim: usize,
    seed: u64,
    queries: usize,
    warmup: usize,
    connect_timeout_secs: u64,
    json: Option<String>,
    sweep_clients: Vec<usize>,
    sweep_requests: usize,
    sweep_batch: usize,
    churn: usize,
    churn_batch: usize,
}

fn parse_args() -> Args {
    let mut out = Args {
        addr: "127.0.0.1:7411".into(),
        mode: Mode::Closed,
        clients: 2,
        batch: 64,
        requests: 32,
        rate: 100.0,
        radius: 1.5,
        k: 10,
        n: 20_000,
        dim: 24,
        seed: 23,
        queries: 256,
        warmup: 2,
        connect_timeout_secs: 120,
        json: None,
        sweep_clients: Vec::new(),
        sweep_requests: 768,
        sweep_batch: 16,
        churn: 0,
        churn_batch: 8,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut grab_str =
            |name: &str| -> String { it.next().unwrap_or_else(|| panic!("{name} needs a value")) };
        macro_rules! grab {
            ($name:literal) => {
                grab_str($name)
                    .parse::<usize>()
                    .unwrap_or_else(|_| panic!("{} needs a positive integer", $name))
            };
        }
        macro_rules! grab_f {
            ($name:literal) => {
                grab_str($name).parse::<f64>().unwrap_or_else(|_| panic!("{} needs a float", $name))
            };
        }
        match arg.as_str() {
            "--addr" => out.addr = grab_str("--addr"),
            "--mode" => {
                out.mode = match grab_str("--mode").as_str() {
                    "closed" => Mode::Closed,
                    "open" => Mode::Open,
                    other => panic!("--mode must be 'closed' or 'open', got {other:?}"),
                }
            }
            "--clients" => out.clients = grab!("--clients").max(1),
            "--batch" => out.batch = grab!("--batch").max(1),
            "--requests" => out.requests = grab!("--requests").max(1),
            "--rate" => out.rate = grab_f!("--rate").max(0.001),
            "--radius" => out.radius = grab_f!("--radius"),
            "--k" => out.k = grab!("--k"),
            "--n" => out.n = grab!("--n"),
            "--dim" => out.dim = grab!("--dim").max(1),
            "--seed" => out.seed = grab!("--seed") as u64,
            "--queries" => out.queries = grab!("--queries").max(1),
            "--warmup" => out.warmup = grab!("--warmup"),
            "--connect-timeout-secs" => {
                out.connect_timeout_secs = grab!("--connect-timeout-secs") as u64
            }
            "--json" => out.json = Some(grab_str("--json")),
            "--sweep-clients" => {
                out.sweep_clients = grab_str("--sweep-clients")
                    .split(',')
                    .map(|s| {
                        s.trim().parse::<usize>().ok().filter(|&c| c > 0).unwrap_or_else(|| {
                            panic!("--sweep-clients needs comma-separated positive integers")
                        })
                    })
                    .collect()
            }
            "--sweep-requests" => out.sweep_requests = grab!("--sweep-requests").max(1),
            "--sweep-batch" => out.sweep_batch = grab!("--sweep-batch").max(1),
            "--churn" => out.churn = grab!("--churn"),
            "--churn-batch" => out.churn_batch = grab!("--churn-batch").max(1),
            other => {
                eprintln!(
                    "unknown flag {other:?}\nusage: loadgen [--addr HOST:PORT] [--mode closed|open] [--clients N] [--batch N] [--requests N] [--rate F] [--radius F] [--k N] [--sweep-clients A,B,C] [--sweep-requests N] [--sweep-batch N] [--n N] [--dim N] [--seed N] [--queries N] [--warmup N] [--connect-timeout-secs N] [--json PATH] [--churn N [--churn-batch N]]"
                );
                std::process::exit(2);
            }
        }
    }
    assert!(out.queries < out.n, "--queries must be smaller than --n");
    out
}

/// Per-phase latency/throughput summary (all microseconds).
struct PhaseResult {
    id: String,
    queries_per_sec: f64,
    requests_per_sec: f64,
    p50_us: u64,
    p90_us: u64,
    p99_us: u64,
    max_us: u64,
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// One request issued against the server; returns the answered query
/// count (consumed so the optimizer can't elide the decode).
fn issue(client: &mut Client, queries: &[Vec<f32>], radius: f64, k: usize) -> usize {
    if k > 0 {
        let out = client.query_topk_batch(queries, k).unwrap_or_else(|e| panic!("topk: {e}"));
        out.len()
    } else {
        let out = client.query_batch(queries, radius).unwrap_or_else(|e| panic!("rnnr: {e}"));
        out.len()
    }
}

/// Runs one phase (`k == 0` ⇒ rNNR, else top-k) and gathers latencies.
#[allow(clippy::too_many_arguments)]
fn run_phase(args: &Args, pool: &[Vec<f32>], k: usize) -> PhaseResult {
    // Each client gets its own connection and pre-cut request batches
    // (round-robin over the pool so every request differs).
    let per_client_requests = args.requests;
    let batches: Vec<Vec<Vec<Vec<f32>>>> = (0..args.clients)
        .map(|c| {
            (0..per_client_requests)
                .map(|i| {
                    let start = (c * per_client_requests + i) * args.batch;
                    (0..args.batch).map(|j| pool[(start + j) % pool.len()].clone()).collect()
                })
                .collect()
        })
        .collect();

    let deadline = Duration::from_secs(args.connect_timeout_secs);
    let mut clients: Vec<Client> = (0..args.clients)
        .map(|_| {
            Client::connect_retry(args.addr.as_str(), deadline)
                .unwrap_or_else(|e| panic!("cannot connect to {}: {e}", args.addr))
        })
        .collect();

    // Warmup (connection setup, first-tick effects) outside the clock.
    for (client, reqs) in clients.iter_mut().zip(&batches) {
        for req in reqs.iter().take(args.warmup) {
            issue(client, req, args.radius, k);
        }
    }

    // Open-loop spacing: clients share one global schedule, interleaved.
    let interval = Duration::from_secs_f64(1.0 / args.rate);
    let start = Instant::now();
    let latencies: Vec<Vec<u64>> = std::thread::scope(|scope| {
        let handles: Vec<_> = clients
            .iter_mut()
            .zip(&batches)
            .enumerate()
            .map(|(c, (client, reqs))| {
                let (mode, radius, clients) = (args.mode, args.radius, args.clients);
                scope.spawn(move || {
                    let mut lat = Vec::with_capacity(reqs.len());
                    for (i, req) in reqs.iter().enumerate() {
                        let t0 = if mode == Mode::Open {
                            // Client c owns schedule slots c, c+C, c+2C…
                            let slot = start + interval * (c + i * clients) as u32;
                            let now = Instant::now();
                            if slot > now {
                                std::thread::sleep(slot - now);
                            }
                            slot // latency from the *scheduled* time
                        } else {
                            Instant::now()
                        };
                        std::hint::black_box(issue(client, req, radius, k));
                        lat.push(t0.elapsed().as_micros() as u64);
                    }
                    lat
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread panicked")).collect()
    });
    let wall = start.elapsed().as_secs_f64();

    let mut all: Vec<u64> = latencies.into_iter().flatten().collect();
    all.sort_unstable();
    let total_requests = all.len();
    let total_queries = total_requests * args.batch;
    let mode = if args.mode == Mode::Open { "open" } else { "closed" };
    let what = if k > 0 { format!("topk k={k}") } else { format!("rnnr r={}", args.radius) };
    PhaseResult {
        id: format!("{what} {mode} c={} b={}", args.clients, args.batch),
        queries_per_sec: total_queries as f64 / wall,
        requests_per_sec: total_requests as f64 / wall,
        p50_us: percentile(&all, 50.0),
        p90_us: percentile(&all, 90.0),
        p99_us: percentile(&all, 99.0),
        max_us: all.last().copied().unwrap_or(0),
    }
}

/// xorshift64* — a deterministic op stream with no external crates;
/// the `--seed` makes a churn run exactly reproducible.
struct Churn(u64);

impl Churn {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// Mutation workload against a `serve --live` process, then the
/// byte-identity check: rebuild the surviving corpus in process and
/// compare every pooled query's rNNR ids and top-k `(id, distance)`
/// pairs (bit for bit) against the server's answers.
fn run_churn(args: &Args, pool: &[Vec<f32>], data: &DenseDataset, info: &ServerInfo) {
    let deadline = Duration::from_secs(args.connect_timeout_secs);
    let mut client = Client::connect_retry(args.addr.as_str(), deadline)
        .unwrap_or_else(|e| panic!("cannot connect to {}: {e}", args.addr));

    // Local mirror of the server's live set: the original corpus under
    // ids 0..n, extended/shrunk in lockstep with every acked frame.
    let mut live: Vec<(PointId, Vec<f32>)> =
        (0..args.n).map(|i| (i as PointId, data.row(i).to_vec())).collect();
    let mut next_id = args.n as PointId;
    let mut rng = Churn(args.seed | 1);
    let (mut inserts, mut deletes) = (0usize, 0usize);
    let mut mut_lat: Vec<u64> = Vec::with_capacity(args.churn);

    let stop = AtomicBool::new(false);
    let t0 = Instant::now();
    let interleaved = std::thread::scope(|scope| {
        // Query pressure on a second connection, concurrent with the
        // mutations (answers are discarded; each one is linearized
        // against the index write lock at some point of the churn).
        let bg = scope.spawn(|| {
            let mut qc = Client::connect_retry(args.addr.as_str(), deadline)
                .unwrap_or_else(|e| panic!("cannot connect to {}: {e}", args.addr));
            let mut issued = 0usize;
            while !stop.load(Ordering::Relaxed) {
                let q = std::slice::from_ref(&pool[issued % pool.len()]);
                qc.query_batch(q, args.radius).unwrap_or_else(|e| panic!("churn query: {e}"));
                issued += 1;
            }
            issued
        });
        for _ in 0..args.churn {
            let b = args.churn_batch;
            let t = Instant::now();
            // Insert-biased only when the live set runs low, so the
            // delete arm can always pick `b` distinct live ids.
            if rng.below(2) == 0 || live.len() <= b {
                let ids: Vec<PointId> = (0..b as PointId).map(|j| next_id + j).collect();
                let points: Vec<Vec<f32>> =
                    (0..b).map(|_| data.row(rng.below(args.n)).to_vec()).collect();
                let acked = client
                    .insert_batch(&ids, &points)
                    .unwrap_or_else(|e| panic!("churn insert: {e}"));
                assert_eq!(acked as usize, b, "server acked a partial insert batch");
                next_id += b as PointId;
                live.extend(ids.into_iter().zip(points));
                inserts += b;
            } else {
                let ids: Vec<PointId> =
                    (0..b).map(|_| live.swap_remove(rng.below(live.len())).0).collect();
                let acked =
                    client.delete_batch(&ids).unwrap_or_else(|e| panic!("churn delete: {e}"));
                assert_eq!(acked as usize, b, "server acked a partial delete batch");
                deletes += b;
            }
            mut_lat.push(t.elapsed().as_micros() as u64);
        }
        stop.store(true, Ordering::Relaxed);
        bg.join().expect("churn query thread panicked")
    });
    let churn_ms = t0.elapsed().as_secs_f64() * 1e3;
    println!(
        "churn: {} mutation frame(s) ({inserts} inserts, {deletes} deletes) with \
         {interleaved} interleaved query frame(s) in {churn_ms:.1} ms",
        args.churn,
    );

    // Rebuild the survivors from scratch with the serving parameters —
    // the living index's contract is byte-identity with exactly this.
    let preset = MixturePreset {
        n: args.n,
        dim: args.dim,
        seed: args.seed,
        shards: (info.shards as usize).max(1),
        levels: (info.topk_levels as usize).max(1),
        radius: args.radius,
    };
    let ids: Vec<PointId> = live.iter().map(|(id, _)| *id).collect();
    let dataset = DenseDataset::from_rows(args.dim, live.iter().map(|(_, v)| v.as_slice()));
    let t1 = Instant::now();
    let oracle = SegmentedIndex::build_bulk(
        dataset.clone(),
        &ids,
        preset.assignment(),
        preset.rnnr_builder(),
    );

    let served =
        client.query_batch(pool, args.radius).unwrap_or_else(|e| panic!("post-churn rnnr: {e}"));
    let mut engine = SegmentedQueryEngine::new();
    for (qi, (got, q)) in served.iter().zip(pool).enumerate() {
        let want = engine.query_with_strategy(&oracle, q, args.radius, Strategy::Hybrid).ids;
        assert_eq!(*got, want, "churn verify: rNNR divergence from the rebuild at query {qi}");
    }

    let mut topk_checked = 0usize;
    if args.k > 0 && info.topk_levels > 0 {
        let oracle = SegmentedTopKIndex::build_bulk(
            dataset,
            &ids,
            preset.assignment(),
            preset.schedule(),
            |_, r| preset.level_builder(r),
        );
        let served = client
            .query_topk_batch(pool, args.k)
            .unwrap_or_else(|e| panic!("post-churn topk: {e}"));
        let mut engine = SegmentedTopKEngine::new();
        for (qi, (got, q)) in served.iter().zip(pool).enumerate() {
            let want: Vec<(PointId, f64)> = engine
                .query_topk(&oracle, q, args.k)
                .neighbors
                .iter()
                .map(|n| (n.id, n.dist))
                .collect();
            let bitwise = got.len() == want.len()
                && got
                    .iter()
                    .zip(&want)
                    .all(|((gi, gd), (wi, wd))| gi == wi && gd.to_bits() == wd.to_bits());
            assert!(
                bitwise,
                "churn verify: top-k divergence from the rebuild at query {qi}:\n  \
                 server {got:?}\n  rebuild {want:?}"
            );
        }
        topk_checked = pool.len();
    }
    let verify_ms = t1.elapsed().as_secs_f64() * 1e3;
    println!(
        "churn verify: OK — {} rNNR and {topk_checked} top-k queries byte-identical to a \
         fresh rebuild on {} survivors ({verify_ms:.1} ms)",
        pool.len(),
        ids.len(),
    );

    if let Some(path) = &args.json {
        mut_lat.sort_unstable();
        let json = format!(
            "{{\n  \"bench\": \"churn\",\n  \"command\": \"cargo run --release -p hlsh-server --bin loadgen -- --churn\",\n  \"params\": {{ \"churn\": {}, \"churn_batch\": {}, \"n\": {}, \"dim\": {}, \"seed\": {}, \"radius\": {}, \"k\": {} }},\n  \"server\": {{ \"points\": {}, \"dim\": {}, \"shards\": {}, \"topk_levels\": {} }},\n  \"ops\": {{ \"inserts\": {inserts}, \"deletes\": {deletes}, \"interleaved_queries\": {interleaved} }},\n  \"survivors\": {},\n  \"churn_ms\": {churn_ms:.1},\n  \"verify_ms\": {verify_ms:.1},\n  \"mutation_p50_us\": {},\n  \"mutation_p99_us\": {},\n  \"mutation_max_us\": {},\n  \"rnnr_queries_checked\": {},\n  \"topk_queries_checked\": {topk_checked},\n  \"verified\": true\n}}\n",
            args.churn,
            args.churn_batch,
            args.n,
            args.dim,
            args.seed,
            args.radius,
            args.k,
            info.points,
            info.dim,
            info.shards,
            info.topk_levels,
            ids.len(),
            percentile(&mut_lat, 50.0),
            percentile(&mut_lat, 99.0),
            mut_lat.last().copied().unwrap_or(0),
            pool.len(),
        );
        std::fs::write(path, json).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        println!("\nwrote {path}");
    }
}

fn main() {
    let args = parse_args();

    // The same mixture the server indexed; stride rows as the query
    // pool, matching the bench bins' query selection.
    let (data, _) = benchmark_mixture(args.dim, args.n, args.radius, args.seed);
    let stride = args.n / args.queries;
    let pool: Vec<Vec<f32>> = (0..args.queries).map(|i| data.row(i * stride).to_vec()).collect();

    let mut probe =
        Client::connect_retry(args.addr.as_str(), Duration::from_secs(args.connect_timeout_secs))
            .unwrap_or_else(|e| panic!("cannot connect to {}: {e}", args.addr));
    let info = probe.info().unwrap_or_else(|e| panic!("info: {e}"));
    drop(probe);
    assert_eq!(
        info.dim as usize, args.dim,
        "server indexes dim={} but loadgen generates dim={}",
        info.dim, args.dim
    );
    println!(
        "server at {}: {} points, dim {}, {} shard(s), {} top-k level(s)",
        args.addr, info.points, info.dim, info.shards, info.topk_levels
    );

    if args.churn > 0 {
        run_churn(&args, &pool, &data, &info);
        return;
    }
    drop(data);

    let mut results = vec![run_phase(&args, &pool, 0)];
    if args.k > 0 && info.topk_levels > 0 {
        results.push(run_phase(&args, &pool, args.k));
    }

    // Connection-scaling sweep: one open-loop rNNR point per client
    // count, same total sample count per point.
    for &c in &args.sweep_clients {
        let mut sweep = args.clone();
        sweep.mode = Mode::Open;
        sweep.clients = c;
        sweep.batch = args.sweep_batch;
        sweep.requests = (args.sweep_requests / c).max(3);
        sweep.warmup = args.warmup.min(1);
        results.push(run_phase(&sweep, &pool, 0));
    }

    for r in &results {
        println!(
            "{:<34} {:>9.0} queries/s  {:>7.0} req/s   p50 {:>7} µs  p90 {:>7} µs  p99 {:>7} µs  max {:>7} µs",
            r.id, r.queries_per_sec, r.requests_per_sec, r.p50_us, r.p90_us, r.p99_us, r.max_us
        );
    }

    if let Some(path) = &args.json {
        let mode = if args.mode == Mode::Open { "open" } else { "closed" };
        let entries: Vec<String> = results
            .iter()
            .map(|r| {
                format!(
                    "    {{ \"id\": \"{}\", \"queries_per_sec\": {:.1}, \"requests_per_sec\": {:.1}, \"p50_us\": {}, \"p90_us\": {}, \"p99_us\": {}, \"max_us\": {} }}",
                    r.id, r.queries_per_sec, r.requests_per_sec, r.p50_us, r.p90_us, r.p99_us, r.max_us
                )
            })
            .collect();
        let sweep_list =
            args.sweep_clients.iter().map(|c| c.to_string()).collect::<Vec<_>>().join(", ");
        let json = format!(
            "{{\n  \"bench\": \"serve\",\n  \"command\": \"cargo run --release -p hlsh-server --bin loadgen\",\n  \"params\": {{ \"mode\": \"{mode}\", \"clients\": {}, \"batch\": {}, \"requests_per_client\": {}, \"rate\": {:.1}, \"n\": {}, \"dim\": {}, \"seed\": {}, \"radius\": {}, \"k\": {}, \"sweep_clients\": [{sweep_list}], \"sweep_requests\": {}, \"sweep_batch\": {} }},\n  \"server\": {{ \"points\": {}, \"dim\": {}, \"shards\": {}, \"topk_levels\": {} }},\n  \"results\": [\n{}\n  ]\n}}\n",
            args.clients,
            args.batch,
            args.requests,
            args.rate,
            args.n,
            args.dim,
            args.seed,
            args.radius,
            args.k,
            args.sweep_requests,
            args.sweep_batch,
            info.points,
            info.dim,
            info.shards,
            info.topk_levels,
            entries.join(",\n"),
        );
        std::fs::write(path, json).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        println!("\nwrote {path}");
    }
}
