//! CI gate: the distributed deployment as real processes.
//!
//! The in-process gate (`tests/distributed.rs` at the workspace root)
//! pins the fan-out algebra; this one pins the *deployment story* from
//! `docs/DISTRIBUTED.md` end to end, with nothing shared but bytes:
//!
//! 1. build once, `--snapshot-save` a `.hlsh` file (the "ship" step);
//! 2. cold-start one `serve --role shard` **process** per shard from
//!    that same file;
//! 3. front them with a `serve --role coordinator` process;
//! 4. assert client answers are byte-identical to loading the same
//!    snapshot in-process, for shard counts 1, 2 and 4;
//! 5. SIGKILL a shard mid-conversation and assert the client sees a
//!    typed `Unavailable` error within the deadline, then restart the
//!    shard on the same port and assert it rejoins with exact answers.
//!
//! Every child is reaped by a drop guard, so a failing assertion never
//! leaks server processes into the test host.

use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use hlsh_core::{load_snapshot, LoadMode};
use hlsh_datagen::benchmark_mixture;
use hlsh_families::PStableL2;
use hlsh_server::{Client, ClientError, ErrorCode};
use hlsh_vec::L2;

const N: usize = 3_000;
const DIM: usize = 16;
const SEED: u64 = 11;
const LEVELS: usize = 3;
const RADIUS: f64 = 1.5;

/// A spawned `serve` process that is SIGKILLed on drop, so assertion
/// failures cannot leak listeners.
struct Server {
    child: Child,
    addr: String,
}

impl Drop for Server {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Launches `serve` with the given flags and blocks until it prints
/// its parseable listening line, returning the bound address.
fn spawn_serve(extra: &[&str]) -> Server {
    let mut child = Command::new(env!("CARGO_BIN_EXE_serve"))
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn serve");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut lines = BufReader::new(stdout).lines();
    let deadline = Instant::now() + Duration::from_secs(120);
    let addr = loop {
        assert!(Instant::now() < deadline, "serve never printed its listening line");
        let line = lines
            .next()
            .unwrap_or_else(|| panic!("serve exited before listening: {extra:?}"))
            .expect("read serve stdout");
        if let Some(rest) = line.strip_prefix("hlsh-server listening on ") {
            break rest.split_whitespace().next().expect("address token").to_string();
        }
    };
    Server { child, addr }
}

/// Common corpus flags, shared by every role so manifests agree.
/// `port` 0 asks the OS for an ephemeral port.
fn corpus_flags(shards: usize, port: &str) -> Vec<String> {
    vec![
        "--n".into(),
        N.to_string(),
        "--dim".into(),
        DIM.to_string(),
        "--seed".into(),
        SEED.to_string(),
        "--shards".into(),
        shards.to_string(),
        "--levels".into(),
        LEVELS.to_string(),
        "--radius".into(),
        RADIUS.to_string(),
        "--port".into(),
        port.into(),
    ]
}

/// Flags for a shard node cold-starting from `snap`.
fn shard_flags(shards: usize, sid: usize, port: &str, snap: &Path) -> Vec<String> {
    let mut flags = corpus_flags(shards, port);
    flags.extend([
        "--role".into(),
        "shard".into(),
        "--shard-id".into(),
        sid.to_string(),
        "--snapshot-load".into(),
        snap.display().to_string(),
    ]);
    flags
}

fn snapshot_path(shards: usize) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("hlsh-multiproc-{}-{shards}.hlsh", std::process::id()));
    p
}

/// Builds the snapshot (ship step), cold-starts one shard process per
/// shard from it, and fronts them with a coordinator process.
fn deploy(shards: usize) -> (Vec<Server>, Server, PathBuf) {
    let snap = snapshot_path(shards);
    let _ = std::fs::remove_file(&snap);

    // Build once and save — then immediately reap the builder; its only
    // job was producing the artifact every node cold-starts from.
    let mut save_flags = corpus_flags(shards, "0");
    save_flags.extend(["--snapshot-save".into(), snap.display().to_string()]);
    drop(spawn_serve(&save_flags.iter().map(String::as_str).collect::<Vec<_>>()));
    assert!(snap.exists(), "snapshot save step produced no file");

    let mut fleet = Vec::new();
    for sid in 0..shards {
        let flags = shard_flags(shards, sid, "0", &snap);
        fleet.push(spawn_serve(&flags.iter().map(String::as_str).collect::<Vec<_>>()));
    }
    let addr_list = fleet.iter().map(|s| s.addr.clone()).collect::<Vec<_>>().join(",");
    let coordinator = spawn_serve(&[
        "--role",
        "coordinator",
        "--shards",
        &addr_list,
        "--port",
        "0",
        "--shard-deadline-ms",
        "2000",
        "--connect-timeout-secs",
        "60",
    ]);
    (fleet, coordinator, snap)
}

fn queries() -> Vec<Vec<f32>> {
    let (data, _) = benchmark_mixture(DIM, N, RADIUS, SEED);
    (0..16).map(|i| data.row(i * 187).to_vec()).collect()
}

/// In-process reference answers from the *same* snapshot file the
/// shard processes cold-started from.
#[allow(clippy::type_complexity)]
fn reference(snap: &Path, queries: &[Vec<f32>], k: usize) -> (Vec<Vec<u32>>, Vec<Vec<(u32, u64)>>) {
    let loaded = load_snapshot::<PStableL2, L2>(snap, LoadMode::Read).expect("load reference");
    let rnnr: Vec<Vec<u32>> =
        loaded.rnnr.query_batch(queries, RADIUS).into_iter().map(|o| o.ids).collect();
    let topk = loaded
        .topk
        .expect("snapshot carries a ladder")
        .query_topk_batch(queries, k)
        .into_iter()
        .map(|o| o.neighbors.iter().map(|n| (n.id, n.dist.to_bits())).collect())
        .collect();
    (rnnr, topk)
}

#[test]
fn snapshot_shipped_processes_answer_byte_identically() {
    let queries = queries();
    for shards in [1usize, 2, 4] {
        let (fleet, coordinator, snap) = deploy(shards);
        let (expect_rnnr, expect_topk) = reference(&snap, &queries, 5);

        let mut client = Client::connect_retry(coordinator.addr.as_str(), Duration::from_secs(30))
            .expect("connect to coordinator");
        let info = client.info().expect("info");
        assert_eq!(info.points as usize, N);
        assert_eq!(info.shards as usize, shards);

        let got_rnnr = client.query_batch(&queries, RADIUS).expect("distributed rnnr");
        assert_eq!(got_rnnr, expect_rnnr, "rNNR mismatch at {shards} process(es)");

        let got_topk: Vec<Vec<(u32, u64)>> = client
            .query_topk_batch(&queries, 5)
            .expect("distributed topk")
            .into_iter()
            .map(|q| q.into_iter().map(|(id, d)| (id, d.to_bits())).collect())
            .collect();
        assert_eq!(got_topk, expect_topk, "top-k mismatch at {shards} process(es)");

        drop((fleet, coordinator));
        let _ = std::fs::remove_file(&snap);
    }
}

#[test]
fn sigkilled_shard_is_typed_unavailable_then_rejoins_on_its_port() {
    let queries = queries();
    let (mut fleet, coordinator, snap) = deploy(2);
    let (expect_rnnr, _) = reference(&snap, &queries, 5);

    let mut client = Client::connect_retry(coordinator.addr.as_str(), Duration::from_secs(30))
        .expect("connect to coordinator");
    assert_eq!(client.query_batch(&queries, RADIUS).expect("healthy fleet"), expect_rnnr);

    // SIGKILL shard 1 — no graceful shutdown, sockets die mid-stream.
    let dead = fleet.remove(1);
    let dead_addr = dead.addr.clone();
    drop(dead);

    let t0 = Instant::now();
    match client.query_batch(&queries, RADIUS) {
        Err(ClientError::Server { code: ErrorCode::Unavailable, message }) => {
            assert!(message.contains("shard 1"), "error should name the shard: {message}");
        }
        other => panic!("expected typed Unavailable after SIGKILL, got {other:?}"),
    }
    assert!(
        t0.elapsed() < Duration::from_secs(15),
        "failure took {:?} to surface (deadline is 2s)",
        t0.elapsed()
    );

    // Same connection, still alive, still a clean error.
    assert!(matches!(
        client.query_batch(&queries, RADIUS),
        Err(ClientError::Server { code: ErrorCode::Unavailable, .. })
    ));

    // Restart the shard on its old port from the same snapshot — the
    // SO_REUSEADDR bind makes this immediate despite TIME_WAIT — and
    // the fleet heals without touching coordinator or client.
    let port = dead_addr.rsplit(':').next().expect("port");
    let flags = shard_flags(2, 1, port, &snap);
    let revived = spawn_serve(&flags.iter().map(String::as_str).collect::<Vec<_>>());
    assert_eq!(revived.addr, dead_addr, "restarted shard must reclaim its address");

    assert_eq!(client.query_batch(&queries, RADIUS).expect("healed fleet"), expect_rnnr);

    drop((fleet, coordinator, revived));
    let _ = std::fs::remove_file(&snap);
}
