//! Tests of online (streaming) index growth: Algorithm 1 applied one
//! point at a time must be indistinguishable from a batch build.

use hlsh_core::{CostModel, IndexBuilder};
use hlsh_families::{BitSampling, PStableL2};
use hlsh_vec::{BinaryDataset, DenseDataset, Hamming, L2};

#[test]
fn streamed_index_equals_batch_index() {
    let all: Vec<u64> = (0..800u64).map(hlsh_hll_hash).collect();
    let (head, tail) = all.split_at(500);

    let batch = IndexBuilder::new(BitSampling::new(64), Hamming)
        .tables(10)
        .hash_len(8)
        .seed(4)
        .cost_model(CostModel::from_ratio(1.0))
        .build(BinaryDataset::from_fingerprints(&all));

    let mut streamed = IndexBuilder::new(BitSampling::new(64), Hamming)
        .tables(10)
        .hash_len(8)
        .seed(4)
        .cost_model(CostModel::from_ratio(1.0))
        .build(BinaryDataset::from_fingerprints(head));
    for &fp in tail {
        streamed.insert(&[fp][..]);
    }

    assert_eq!(streamed.len(), batch.len());
    assert_eq!(streamed.stats(), batch.stats());
    for &q in &[all[0], all[650], 0xFFFFu64] {
        let (a, b) = (batch.query(&[q][..], 16.0), streamed.query(&[q][..], 16.0));
        let mut ia = a.ids.clone();
        let mut ib = b.ids.clone();
        ia.sort_unstable();
        ib.sort_unstable();
        assert_eq!(ia, ib);
        assert_eq!(a.report.collisions, b.report.collisions);
        assert_eq!(a.report.cand_size_estimate, b.report.cand_size_estimate);
    }
}

#[test]
fn inserted_points_are_immediately_findable() {
    let mut index = IndexBuilder::new(PStableL2::new(3, 1.0), L2)
        .tables(8)
        .hash_len(3)
        .seed(9)
        .cost_model(CostModel::from_ratio(1.0))
        .build(DenseDataset::from_rows(3, [[0.0f32, 0.0, 0.0]]));
    assert_eq!(index.len(), 1);

    let id = index.insert(&[5.0f32, 5.0, 5.0]);
    assert_eq!(id, 1);
    assert_eq!(index.len(), 2);
    // Exact-match query must find the new point under every strategy
    // (identical points collide in every table).
    let out = index.query(&[5.0f32, 5.0, 5.0], 0.0);
    assert_eq!(out.ids, vec![1]);

    // The linear arm's cost grows with n automatically.
    let est = index.explain(&[5.0f32, 5.0, 5.0]);
    assert_eq!(est.linear_cost, index.cost_model().linear_cost(2));
}

#[test]
fn insert_updates_bucket_sketches() {
    // Push enough identical points through insert() to cross the lazy
    // threshold: the sketch must materialise and keep estimating ~1
    // distinct element.
    let mut index = IndexBuilder::new(BitSampling::new(64), Hamming)
        .tables(2)
        .hash_len(4)
        .seed(2)
        .lazy_threshold(16)
        .cost_model(CostModel::from_ratio(1.0))
        .build(BinaryDataset::from_fingerprints(&[42u64]));
    for _ in 0..40 {
        index.insert(&[42u64][..]);
    }
    let stats = index.stats();
    assert!(stats.sketched_buckets > 0, "sketch never materialised");
    let est = index.explain(&[42u64][..]);
    assert_eq!(est.collisions, 2 * 41); // 41 members in both tables
                                        // 41 distinct point ids, each seen in both tables: the merged
                                        // estimate must count them once, not twice (m = 128 ⇒ near-exact
                                        // in the linear-counting regime).
    assert!((est.cand_size_estimate - 41.0).abs() <= 6.0, "estimate {}", est.cand_size_estimate);
}

fn hlsh_hll_hash(i: u64) -> u64 {
    // Mix ids so fingerprints are spread (buckets stay small).
    i.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(31)
}
