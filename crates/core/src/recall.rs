//! Recall evaluation against exact ground truth.
//!
//! §4.2 of the paper notes ("due to the limit of space") that hybrid
//! search achieves *higher* recall than LSH-based search because the
//! linear arm is exact on hard queries. This module provides the
//! measurement machinery, and the `recall_table` bench regenerates the
//! unreported comparison.

use hlsh_vec::PointId;

/// Recall statistics of a reported result set against ground truth.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RecallReport {
    /// `|reported ∩ truth|`.
    pub true_positives: usize,
    /// `|truth|` (the exact output size).
    pub truth_size: usize,
    /// `|reported|`.
    pub reported_size: usize,
}

impl RecallReport {
    /// `recall = |reported ∩ truth| / |truth|`; defined as 1 when the
    /// truth is empty (nothing to miss).
    pub fn recall(&self) -> f64 {
        if self.truth_size == 0 {
            1.0
        } else {
            self.true_positives as f64 / self.truth_size as f64
        }
    }

    /// `precision = |reported ∩ truth| / |reported|`; defined as 1 when
    /// nothing was reported. For exact-filtering LSH this is always 1 —
    /// a useful invariant to assert in tests.
    pub fn precision(&self) -> f64 {
        if self.reported_size == 0 {
            1.0
        } else {
            self.true_positives as f64 / self.reported_size as f64
        }
    }
}

/// Compares a reported id set against the exact truth for one query.
///
/// Neither slice needs to be sorted; duplicates are counted once.
pub fn evaluate_recall(reported: &[PointId], truth: &[PointId]) -> RecallReport {
    let truth_set: std::collections::HashSet<PointId> = truth.iter().copied().collect();
    let mut seen: std::collections::HashSet<PointId> = std::collections::HashSet::new();
    let mut tp = 0usize;
    for &id in reported {
        if seen.insert(id) && truth_set.contains(&id) {
            tp += 1;
        }
    }
    RecallReport { true_positives: tp, truth_size: truth_set.len(), reported_size: seen.len() }
}

/// Averages recall over many queries (macro-average, the paper's
/// convention of averaging per-query metrics over the query set).
pub fn mean_recall(reports: &[RecallReport]) -> f64 {
    if reports.is_empty() {
        return 1.0;
    }
    reports.iter().map(RecallReport::recall).sum::<f64>() / reports.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_recall() {
        let r = evaluate_recall(&[1, 2, 3], &[1, 2, 3]);
        assert_eq!(r.recall(), 1.0);
        assert_eq!(r.precision(), 1.0);
        assert_eq!(r.true_positives, 3);
    }

    #[test]
    fn partial_recall() {
        let r = evaluate_recall(&[1, 2], &[1, 2, 3, 4]);
        assert_eq!(r.recall(), 0.5);
        assert_eq!(r.precision(), 1.0);
    }

    #[test]
    fn false_positives_hit_precision() {
        let r = evaluate_recall(&[1, 9], &[1, 2]);
        assert_eq!(r.recall(), 0.5);
        assert_eq!(r.precision(), 0.5);
    }

    #[test]
    fn empty_truth_is_full_recall() {
        let r = evaluate_recall(&[], &[]);
        assert_eq!(r.recall(), 1.0);
        assert_eq!(r.precision(), 1.0);
    }

    #[test]
    fn duplicates_in_reported_count_once() {
        let r = evaluate_recall(&[1, 1, 1, 2], &[1, 2]);
        assert_eq!(r.reported_size, 2);
        assert_eq!(r.recall(), 1.0);
    }

    #[test]
    fn mean_recall_averages() {
        let a = evaluate_recall(&[1], &[1, 2]); // 0.5
        let b = evaluate_recall(&[1, 2], &[1, 2]); // 1.0
        assert!((mean_recall(&[a, b]) - 0.75).abs() < 1e-12);
        assert_eq!(mean_recall(&[]), 1.0);
    }
}
