//! The hybrid-LSH index: Algorithm 1 (construction) and Algorithm 2
//! (hybrid query), generic over the bucket-storage backend.

use hlsh_families::{GFunction, LshFamily};
use hlsh_hll::{HllConfig, MergeAccumulator};
use hlsh_vec::{Distance, PointId, PointSet};

use crate::bucket::BucketRef;
use crate::builder::BuildMode;
use crate::cost::{CostEstimate, CostModel};
use crate::engine::QueryEngine;
use crate::hasher::FxHashSet;
use crate::pipeline::BuildPipeline;
use crate::report::QueryOutput;
use crate::search::Strategy;
use crate::store::{BucketStore, FrozenStore, MapStore};
use crate::table::HashTable;

/// Builds all `L` tables through the blocked pipeline, one table per
/// work item of the shared parallel scaffold (results in g-function
/// order, so the table set is deterministic on any thread count).
fn blocked_tables<G, S, B>(
    gfns: Vec<G>,
    data: &S,
    id_map: Option<&[PointId]>,
    pipeline: BuildPipeline,
    config: HllConfig,
    lazy_threshold: usize,
    parallel: bool,
) -> Vec<HashTable<G, B>>
where
    S: PointSet + Sync,
    G: GFunction<S::Point>,
    B: BucketStore + Send,
{
    let threads = if parallel { None } else { Some(1) };
    let gfns_ref = &gfns;
    let stores: Vec<B> = hlsh_vec::parallel::par_map_with(
        gfns.len(),
        threads,
        || (),
        |_, j| pipeline.build_store_mapped(&gfns_ref[j], data, id_map, config, lazy_threshold),
    );
    gfns.into_iter().zip(stores).map(|(g, store)| HashTable::from_parts(g, store)).collect()
}

/// An LSH index over a data set `S`, instrumented with per-bucket
/// HyperLogLog sketches so that each query can choose between LSH-based
/// search and a linear scan (the paper's hybrid strategy).
///
/// Generic over the point representation (`S::Point`), the LSH family
/// `F`, the distance `D` — so the same machinery serves all four of
/// the paper's experiments (Hamming/bit-sampling, cosine/SimHash,
/// L1/Cauchy, L2/Gaussian) — and the bucket store `B`:
/// [`MapStore`] (default) accepts streaming inserts, while
/// [`freeze`](Self::freeze) converts every table into a read-optimised
/// CSR arena ([`FrozenStore`]) for maximum query throughput.
pub struct HybridLshIndex<S, F, D, B = MapStore>
where
    S: PointSet,
    F: LshFamily<S::Point>,
    D: Distance<S::Point>,
    B: BucketStore,
{
    data: S,
    family: F,
    distance: D,
    tables: Vec<HashTable<F::GFn, B>>,
    hll_config: HllConfig,
    lazy_threshold: usize,
    cost: CostModel,
    k: usize,
}

impl<S, F, D> HybridLshIndex<S, F, D, MapStore>
where
    S: PointSet,
    F: LshFamily<S::Point>,
    D: Distance<S::Point>,
{
    /// Constructs the index (Algorithm 1). Called by
    /// [`IndexBuilder::build`](crate::IndexBuilder::build); prefer that
    /// entry point.
    ///
    /// Under [`BuildMode::Blocked`] each table runs the staged pipeline
    /// (block-hash → key-group → bulk insert); under
    /// [`BuildMode::PerPoint`] the literal per-point loop runs instead.
    /// The two produce byte-identical tables.
    ///
    /// `id_map`, when present, renames row `i` to `id_map[i]` in every
    /// bucket and sketch — the sharded build's global-id hook. A mapped
    /// index must only be queried through the sharded engines, which
    /// translate members back to rows.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn construct(
        data: S,
        family: F,
        distance: D,
        gfns: Vec<F::GFn>,
        hll_config: HllConfig,
        lazy_threshold: usize,
        cost: CostModel,
        k: usize,
        parallel: bool,
        mode: BuildMode,
        id_map: Option<&[PointId]>,
    ) -> Self
    where
        S: Sync,
        F::GFn: Send,
    {
        let tables: Vec<HashTable<F::GFn>> = match mode {
            BuildMode::Blocked { block } => blocked_tables(
                gfns,
                &data,
                id_map,
                BuildPipeline::with_block(block),
                hll_config,
                lazy_threshold,
                parallel,
            ),
            BuildMode::PerPoint => {
                let mut tables: Vec<HashTable<F::GFn>> =
                    gfns.into_iter().map(HashTable::new).collect();
                let n = data.len();

                // Algorithm 1 verbatim: for each point, for each table,
                // insert into the bucket g_i(x) and update its HLL.
                // Tables are independent, so build shards over tables —
                // no synchronisation on buckets.
                let threads = if parallel {
                    std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1)
                } else {
                    1
                };
                if threads > 1 && tables.len() > 1 {
                    let data_ref = &data;
                    let chunk_size = 1.max(tables.len().div_ceil(threads));
                    std::thread::scope(|scope| {
                        for chunk in tables.chunks_mut(chunk_size) {
                            scope.spawn(move || {
                                for table in chunk {
                                    for id in 0..n {
                                        table.insert(
                                            id_map.map_or(id as PointId, |m| m[id]),
                                            data_ref.point(id),
                                            hll_config,
                                            lazy_threshold,
                                        );
                                    }
                                }
                            });
                        }
                    });
                } else {
                    for table in &mut tables {
                        for id in 0..n {
                            table.insert(
                                id_map.map_or(id as PointId, |m| m[id]),
                                data.point(id),
                                hll_config,
                                lazy_threshold,
                            );
                        }
                    }
                }
                tables
            }
        };

        Self { data, family, distance, tables, hll_config, lazy_threshold, cost, k }
    }

    /// Appends a point to the index online (streaming ingestion),
    /// returning its id.
    ///
    /// Runs the Algorithm 1 inner loop for the new point: one bucket
    /// insert and one HLL update per table. Available when the data
    /// set type supports appends and the store is the mutable
    /// [`MapStore`] (a frozen index must [`thaw`](Self::thaw) first).
    /// Deletion is intentionally absent here — a HyperLogLog sketch
    /// cannot retract an element. For a corpus that shrinks as well as
    /// grows, use the LSM-style
    /// [`SegmentedIndex`](crate::segmented::SegmentedIndex), which
    /// layers tombstones and segment merges on top of this index.
    pub fn insert(&mut self, p: &S::Point) -> PointId
    where
        S: hlsh_vec::GrowablePointSet,
    {
        let id = self.data.len() as PointId;
        self.data.push_point(p);
        for table in &mut self.tables {
            table.insert(id, p, self.hll_config, self.lazy_threshold);
        }
        id
    }

    /// Converts every table into the read-optimised [`FrozenStore`]
    /// (sorted key array + offsets + contiguous member slab): query
    /// lookups become binary search + slice borrow with zero per-bucket
    /// allocation. Query results are byte-identical before and after.
    pub fn freeze(self) -> HybridLshIndex<S, F, D, FrozenStore> {
        HybridLshIndex {
            data: self.data,
            family: self.family,
            distance: self.distance,
            tables: self.tables.into_iter().map(HashTable::freeze).collect(),
            hll_config: self.hll_config,
            lazy_threshold: self.lazy_threshold,
            cost: self.cost,
            k: self.k,
        }
    }
}

impl<S, F, D> HybridLshIndex<S, F, D, FrozenStore>
where
    S: PointSet,
    F: LshFamily<S::Point>,
    D: Distance<S::Point>,
{
    /// Constructs a frozen index directly: the blocked pipeline's
    /// key-grouped runs become each table's CSR arena with no
    /// intermediate hashmap. Byte-identical to
    /// [`construct`](HybridLshIndex::construct) + `freeze()`. Called by
    /// [`IndexBuilder::build_frozen`](crate::IndexBuilder::build_frozen).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn construct_frozen(
        data: S,
        family: F,
        distance: D,
        gfns: Vec<F::GFn>,
        hll_config: HllConfig,
        lazy_threshold: usize,
        cost: CostModel,
        k: usize,
        parallel: bool,
        pipeline: BuildPipeline,
        id_map: Option<&[PointId]>,
    ) -> Self
    where
        S: Sync,
        F::GFn: Send,
    {
        let tables =
            blocked_tables(gfns, &data, id_map, pipeline, hll_config, lazy_threshold, parallel);
        Self { data, family, distance, tables, hll_config, lazy_threshold, cost, k }
    }

    /// Converts back to the mutable [`MapStore`] backend so streaming
    /// [`insert`](HybridLshIndex::insert) works again.
    pub fn thaw(self) -> HybridLshIndex<S, F, D, MapStore> {
        HybridLshIndex {
            data: self.data,
            family: self.family,
            distance: self.distance,
            tables: self.tables.into_iter().map(HashTable::thaw).collect(),
            hll_config: self.hll_config,
            lazy_threshold: self.lazy_threshold,
            cost: self.cost,
            k: self.k,
        }
    }
}

impl<S, F, D, B> HybridLshIndex<S, F, D, B>
where
    S: PointSet,
    F: LshFamily<S::Point>,
    D: Distance<S::Point>,
    B: BucketStore,
{
    /// The indexed data set.
    pub fn data(&self) -> &S {
        &self.data
    }

    /// Number of indexed points `n`.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the index holds no points.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Number of hash tables `L`.
    pub fn tables(&self) -> usize {
        self.tables.len()
    }

    /// Concatenation width `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The LSH family.
    pub fn family(&self) -> &F {
        &self.family
    }

    /// The distance function.
    pub fn distance(&self) -> &D {
        &self.distance
    }

    /// The cost model in force.
    pub fn cost_model(&self) -> CostModel {
        self.cost
    }

    /// The shared HLL configuration.
    pub fn hll_config(&self) -> HllConfig {
        self.hll_config
    }

    /// Direct access to the underlying tables (for the multi-probe
    /// extension crate).
    pub fn raw_tables(&self) -> &[HashTable<F::GFn, B>] {
        &self.tables
    }

    /// The lazy-sketch threshold in force (buckets at or above this
    /// size carry a materialised HLL). Persisted by the snapshot format
    /// so a loaded index makes identical sketch decisions on thaw +
    /// re-insert.
    pub fn lazy_threshold(&self) -> usize {
        self.lazy_threshold
    }

    /// Reassembles an index from already-built tables and parameters —
    /// the snapshot loader's entry point. The caller (the snapshot
    /// module) is responsible for the cross-table invariants: every
    /// table's g-function has width `k`, and sketched buckets use
    /// `hll_config`.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn assemble(
        data: S,
        family: F,
        distance: D,
        tables: Vec<HashTable<F::GFn, B>>,
        hll_config: HllConfig,
        lazy_threshold: usize,
        cost: CostModel,
        k: usize,
    ) -> Self {
        Self { data, family, distance, tables, hll_config, lazy_threshold, cost, k }
    }

    /// Hybrid query (Algorithm 2): estimate costs, pick the cheaper
    /// arm, report every indexed point within distance `r` of `q`.
    ///
    /// Allocates fresh per-query scratch; batch workloads should prefer
    /// [`query_batch`](Self::query_batch) or a reused [`QueryEngine`].
    pub fn query(&self, q: &S::Point, r: f64) -> QueryOutput {
        self.query_with_strategy(q, r, Strategy::Hybrid)
    }

    /// Convenience wrapper returning only the ids.
    pub fn query_radius(&self, q: &S::Point, r: f64) -> Vec<PointId> {
        self.query(q, r).ids
    }

    /// Runs a query under an explicit strategy (the Figure 2 baselines:
    /// `LshOnly`, `LinearOnly`, or the adaptive `Hybrid`).
    pub fn query_with_strategy(&self, q: &S::Point, r: f64, strategy: Strategy) -> QueryOutput {
        QueryEngine::new().query_with_strategy(self, q, r, strategy)
    }

    /// Returns the Algorithm 2 cost estimate for a query without
    /// executing either arm — useful for inspection and for the
    /// Figure 3 (right) accounting of linear-search decisions.
    pub fn explain(&self, q: &S::Point) -> CostEstimate {
        let (buckets, collisions, _) = self.probe(q);
        let cand = self.estimate_cand_size(&buckets);
        CostEstimate {
            collisions,
            cand_size_estimate: cand,
            lsh_cost: self.cost.lsh_cost(collisions, cand),
            linear_cost: self.cost.linear_cost(self.len()),
        }
    }

    /// Exact distinct-candidate count for a query (merges the buckets
    /// with a hash set). Used by Table 1 to measure the estimate error;
    /// not part of the query path.
    pub fn exact_cand_size(&self, q: &S::Point) -> usize {
        let (buckets, _, _) = self.probe(q);
        let mut set: FxHashSet<PointId> = FxHashSet::default();
        for b in &buckets {
            set.extend(b.members().iter().copied());
        }
        set.len()
    }

    /// Index statistics (for reports and the space-overhead ablation).
    pub fn stats(&self) -> IndexStats {
        let mut buckets = 0usize;
        let mut sketched = 0usize;
        let mut sketch_bytes = 0usize;
        let mut member_slots = 0usize;
        for t in &self.tables {
            buckets += t.bucket_count();
            for (_, b) in t.buckets() {
                if b.has_sketch() {
                    sketched += 1;
                    sketch_bytes += self.hll_config.registers();
                }
                member_slots += b.len();
            }
        }
        IndexStats {
            points: self.len(),
            tables: self.tables.len(),
            k: self.k,
            buckets,
            sketched_buckets: sketched,
            sketch_bytes,
            member_slots,
        }
    }

    /// Step S1 + bucket lookup: the `L` buckets matching `q`, the total
    /// collision count, and the elapsed nanoseconds.
    pub(crate) fn probe(&self, q: &S::Point) -> (Vec<BucketRef<'_>>, usize, u64) {
        let t = std::time::Instant::now();
        let mut buckets = Vec::with_capacity(self.tables.len());
        let mut collisions = 0usize;
        for table in &self.tables {
            if let Some(b) = table.bucket(q) {
                collisions += b.len();
                buckets.push(b);
            }
        }
        (buckets, collisions, t.elapsed().as_nanos() as u64)
    }

    /// Algorithm 2 line 2: merged-HLL candidate-size estimate (the
    /// `O(mL)` overhead; small buckets contribute raw members, §3.2).
    fn estimate_cand_size(&self, buckets: &[BucketRef<'_>]) -> f64 {
        let mut acc = MergeAccumulator::new(self.hll_config);
        for b in buckets {
            b.contribute_to(&mut acc);
        }
        acc.estimate()
    }
}

/// Aggregate statistics of a built index.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IndexStats {
    /// Indexed points `n`.
    pub points: usize,
    /// Hash tables `L`.
    pub tables: usize,
    /// Concatenation width `k`.
    pub k: usize,
    /// Non-empty buckets across all tables.
    pub buckets: usize,
    /// Buckets whose HLL was materialised (`len ≥ lazy threshold`).
    pub sketched_buckets: usize,
    /// Bytes of HLL registers.
    pub sketch_bytes: usize,
    /// Total membership slots (= `n·L`).
    pub member_slots: usize,
}

impl IndexStats {
    /// Fraction of buckets that carry a materialised sketch.
    pub fn sketched_fraction(&self) -> f64 {
        if self.buckets == 0 {
            0.0
        } else {
            self.sketched_buckets as f64 / self.buckets as f64
        }
    }
}
