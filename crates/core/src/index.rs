//! The hybrid-LSH index: Algorithm 1 (construction) and Algorithm 2
//! (hybrid query).

use std::time::Instant;

use hlsh_families::LshFamily;
use hlsh_hll::{HllConfig, MergeAccumulator};
use hlsh_vec::{Distance, PointId, PointSet};

use crate::bucket::Bucket;
use crate::cost::{CostEstimate, CostModel};
use crate::hasher::FxHashSet;
use crate::report::{QueryOutput, QueryReport};
use crate::search::{ExecutedArm, Strategy};
use crate::table::HashTable;

/// An LSH index over a data set `S`, instrumented with per-bucket
/// HyperLogLog sketches so that each query can choose between LSH-based
/// search and a linear scan (the paper's hybrid strategy).
///
/// Generic over the point representation (`S::Point`), the LSH family
/// `F` and the distance `D`, so the same machinery serves all four of
/// the paper's experiments (Hamming/bit-sampling, cosine/SimHash,
/// L1/Cauchy, L2/Gaussian).
pub struct HybridLshIndex<S, F, D>
where
    S: PointSet,
    F: LshFamily<S::Point>,
    D: Distance<S::Point>,
{
    data: S,
    family: F,
    distance: D,
    tables: Vec<HashTable<F::GFn>>,
    hll_config: HllConfig,
    lazy_threshold: usize,
    cost: CostModel,
    k: usize,
}

impl<S, F, D> HybridLshIndex<S, F, D>
where
    S: PointSet,
    F: LshFamily<S::Point>,
    D: Distance<S::Point>,
{
    /// Constructs the index (Algorithm 1). Called by
    /// [`IndexBuilder::build`]; prefer that entry point.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn construct(
        data: S,
        family: F,
        distance: D,
        gfns: Vec<F::GFn>,
        hll_config: HllConfig,
        lazy_threshold: usize,
        cost: CostModel,
        k: usize,
        parallel: bool,
    ) -> Self
    where
        S: Sync,
        F::GFn: Send,
    {
        let mut tables: Vec<HashTable<F::GFn>> =
            gfns.into_iter().map(HashTable::new).collect();
        let n = data.len();

        // Algorithm 1: for each point, for each table, insert into the
        // bucket g_i(x) and update its HLL. Tables are independent, so
        // build shards over tables — no synchronisation on buckets.
        let threads = if parallel {
            std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1)
        } else {
            1
        };
        if threads > 1 && tables.len() > 1 {
            let data_ref = &data;
            let chunk_size = 1.max(tables.len().div_ceil(threads));
            crossbeam::thread::scope(|scope| {
                for chunk in tables.chunks_mut(chunk_size) {
                    scope.spawn(move |_| {
                        for table in chunk {
                            for id in 0..n {
                                table.insert(
                                    id as PointId,
                                    data_ref.point(id),
                                    hll_config,
                                    lazy_threshold,
                                );
                            }
                        }
                    });
                }
            })
            .expect("index build thread panicked");
        } else {
            for table in &mut tables {
                for id in 0..n {
                    table.insert(id as PointId, data.point(id), hll_config, lazy_threshold);
                }
            }
        }

        Self { data, family, distance, tables, hll_config, lazy_threshold, cost, k }
    }

    /// The indexed data set.
    pub fn data(&self) -> &S {
        &self.data
    }

    /// Number of indexed points `n`.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the index holds no points.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Number of hash tables `L`.
    pub fn tables(&self) -> usize {
        self.tables.len()
    }

    /// Concatenation width `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The LSH family.
    pub fn family(&self) -> &F {
        &self.family
    }

    /// The distance function.
    pub fn distance(&self) -> &D {
        &self.distance
    }

    /// The cost model in force.
    pub fn cost_model(&self) -> CostModel {
        self.cost
    }

    /// The shared HLL configuration.
    pub fn hll_config(&self) -> HllConfig {
        self.hll_config
    }

    /// Direct access to the underlying tables (for the multi-probe
    /// extension crate).
    pub fn raw_tables(&self) -> &[HashTable<F::GFn>] {
        &self.tables
    }

    /// Appends a point to the index online (streaming ingestion),
    /// returning its id.
    ///
    /// Runs the Algorithm 1 inner loop for the new point: one bucket
    /// insert and one HLL update per table. Available when the data
    /// set type supports appends. Deletion is intentionally absent —
    /// a HyperLogLog sketch cannot retract an element (rebuild the
    /// index to shrink it).
    pub fn insert(&mut self, p: &S::Point) -> PointId
    where
        S: hlsh_vec::GrowablePointSet,
    {
        let id = self.data.len() as PointId;
        self.data.push_point(p);
        for table in &mut self.tables {
            table.insert(id, p, self.hll_config, self.lazy_threshold);
        }
        id
    }

    /// Hybrid query (Algorithm 2): estimate costs, pick the cheaper
    /// arm, report every indexed point within distance `r` of `q`.
    pub fn query(&self, q: &S::Point, r: f64) -> QueryOutput {
        self.query_with_strategy(q, r, Strategy::Hybrid)
    }

    /// Convenience wrapper returning only the ids.
    pub fn query_radius(&self, q: &S::Point, r: f64) -> Vec<PointId> {
        self.query(q, r).ids
    }

    /// Runs a query under an explicit strategy (the Figure 2 baselines:
    /// `LshOnly`, `LinearOnly`, or the adaptive `Hybrid`).
    pub fn query_with_strategy(&self, q: &S::Point, r: f64, strategy: Strategy) -> QueryOutput {
        let t_start = Instant::now();
        match strategy {
            Strategy::LinearOnly => {
                let ids = self.linear_arm(q, r);
                let total = t_start.elapsed().as_nanos() as u64;
                QueryOutput {
                    report: QueryReport {
                        executed: ExecutedArm::Linear,
                        collisions: 0,
                        cand_size_estimate: 0.0,
                        cand_size_actual: None,
                        output_size: ids.len(),
                        hash_nanos: 0,
                        hll_nanos: 0,
                        total_nanos: total,
                    },
                    ids,
                }
            }
            Strategy::LshOnly => {
                let (buckets, collisions, hash_nanos) = self.probe(q);
                let (ids, cand_actual) = self.lsh_arm(q, r, &buckets);
                let total = t_start.elapsed().as_nanos() as u64;
                QueryOutput {
                    report: QueryReport {
                        executed: ExecutedArm::Lsh,
                        collisions,
                        cand_size_estimate: cand_actual as f64,
                        cand_size_actual: Some(cand_actual),
                        output_size: ids.len(),
                        hash_nanos,
                        hll_nanos: 0,
                        total_nanos: total,
                    },
                    ids,
                }
            }
            Strategy::Hybrid => {
                // Algorithm 2 line 1: bucket sizes → #collisions.
                let (buckets, collisions, hash_nanos) = self.probe(q);
                // Line 2: merge HLLs → candSize estimate.
                let t_hll = Instant::now();
                let cand_estimate = self.estimate_cand_size(&buckets);
                let hll_nanos = t_hll.elapsed().as_nanos() as u64;
                // Lines 3–4: compare costs, run the cheaper arm.
                let prefer_lsh = self.cost.prefer_lsh(collisions, cand_estimate, self.len());
                let (executed, ids, cand_actual) = if prefer_lsh {
                    let (ids, cand) = self.lsh_arm(q, r, &buckets);
                    (ExecutedArm::Lsh, ids, Some(cand))
                } else {
                    (ExecutedArm::Linear, self.linear_arm(q, r), None)
                };
                let total = t_start.elapsed().as_nanos() as u64;
                QueryOutput {
                    report: QueryReport {
                        executed,
                        collisions,
                        cand_size_estimate: cand_estimate,
                        cand_size_actual: cand_actual,
                        output_size: ids.len(),
                        hash_nanos,
                        hll_nanos,
                        total_nanos: total,
                    },
                    ids,
                }
            }
        }
    }

    /// Returns the Algorithm 2 cost estimate for a query without
    /// executing either arm — useful for inspection and for the
    /// Figure 3 (right) accounting of linear-search decisions.
    pub fn explain(&self, q: &S::Point) -> CostEstimate {
        let (buckets, collisions, _) = self.probe(q);
        let cand = self.estimate_cand_size(&buckets);
        CostEstimate {
            collisions,
            cand_size_estimate: cand,
            lsh_cost: self.cost.lsh_cost(collisions, cand),
            linear_cost: self.cost.linear_cost(self.len()),
        }
    }

    /// Exact distinct-candidate count for a query (merges the buckets
    /// with a hash set). Used by Table 1 to measure the estimate error;
    /// not part of the query path.
    pub fn exact_cand_size(&self, q: &S::Point) -> usize {
        let (buckets, _, _) = self.probe(q);
        let mut set: FxHashSet<PointId> = FxHashSet::default();
        for b in &buckets {
            set.extend(b.members().iter().copied());
        }
        set.len()
    }

    /// Index statistics (for reports and the space-overhead ablation).
    pub fn stats(&self) -> IndexStats {
        let mut buckets = 0usize;
        let mut sketched = 0usize;
        let mut sketch_bytes = 0usize;
        let mut member_slots = 0usize;
        for t in &self.tables {
            buckets += t.bucket_count();
            for (_, b) in t.buckets() {
                if b.has_sketch() {
                    sketched += 1;
                    sketch_bytes += self.hll_config.registers();
                }
                member_slots += b.len();
            }
        }
        IndexStats {
            points: self.len(),
            tables: self.tables.len(),
            k: self.k,
            buckets,
            sketched_buckets: sketched,
            sketch_bytes,
            member_slots,
        }
    }

    /// Step S1 + bucket lookup: the `L` buckets matching `q`, the total
    /// collision count, and the elapsed nanoseconds.
    fn probe(&self, q: &S::Point) -> (Vec<&Bucket>, usize, u64) {
        let t = Instant::now();
        let mut buckets = Vec::with_capacity(self.tables.len());
        let mut collisions = 0usize;
        for table in &self.tables {
            if let Some(b) = table.bucket(q) {
                collisions += b.len();
                buckets.push(b);
            }
        }
        (buckets, collisions, t.elapsed().as_nanos() as u64)
    }

    /// Algorithm 2 line 2: merged-HLL candidate-size estimate (the
    /// `O(mL)` overhead; small buckets contribute raw members, §3.2).
    fn estimate_cand_size(&self, buckets: &[&Bucket]) -> f64 {
        let mut acc = MergeAccumulator::new(self.hll_config);
        for b in buckets {
            b.contribute_to(&mut acc);
        }
        acc.estimate()
    }

    /// Step S2 + S3: dedup the colliding points, filter by distance.
    /// Returns (reported ids, distinct candidate count).
    fn lsh_arm(&self, q: &S::Point, r: f64, buckets: &[&Bucket]) -> (Vec<PointId>, usize) {
        let mut seen: FxHashSet<PointId> = FxHashSet::default();
        let mut out = Vec::new();
        for b in buckets {
            for &id in b.members() {
                if seen.insert(id) && self.distance.distance(self.data.point(id as usize), q) <= r
                {
                    out.push(id);
                }
            }
        }
        (out, seen.len())
    }

    /// The brute-force arm: scan every point.
    fn linear_arm(&self, q: &S::Point, r: f64) -> Vec<PointId> {
        let mut out = Vec::new();
        for id in 0..self.data.len() {
            if self.distance.distance(self.data.point(id), q) <= r {
                out.push(id as PointId);
            }
        }
        out
    }
}

/// Aggregate statistics of a built index.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IndexStats {
    /// Indexed points `n`.
    pub points: usize,
    /// Hash tables `L`.
    pub tables: usize,
    /// Concatenation width `k`.
    pub k: usize,
    /// Non-empty buckets across all tables.
    pub buckets: usize,
    /// Buckets whose HLL was materialised (`len ≥ lazy threshold`).
    pub sketched_buckets: usize,
    /// Bytes of HLL registers.
    pub sketch_bytes: usize,
    /// Total membership slots (= `n·L`).
    pub member_slots: usize,
}

impl IndexStats {
    /// Fraction of buckets that carry a materialised sketch.
    pub fn sketched_fraction(&self) -> f64 {
        if self.buckets == 0 {
            0.0
        } else {
            self.sketched_buckets as f64 / self.buckets as f64
        }
    }
}
