//! LSM-style segmented indexes: a living corpus behind the static
//! query engines.
//!
//! Every serving path before this module assumed build-then-freeze:
//! streaming `insert` hashed one point at a time into a [`MapStore`]
//! and there was no delete at all. [`SegmentedIndex`] (and its top-k
//! twin [`SegmentedTopKIndex`]) restructure each shard as a small LSM
//! hierarchy:
//!
//! - a **memtable** — a mutable [`MapStore`]-backed index absorbing
//!   inserts one point at a time (buckets hold memtable-local rows; a
//!   side table maps rows to global ids and tracks row liveness);
//! - immutable **segments** — [`FrozenStore`] CSR arenas built from
//!   flushed memtables through the existing blocked pipeline, their
//!   buckets and sketches keyed by **global** ids exactly like shard
//!   tables;
//! - **tombstones** — per-segment sets of deleted global ids (a
//!   HyperLogLog sketch cannot retract an element, so segment deletion
//!   is logical until the next merge);
//! - **merges** — small segments compact into one clean segment (dead
//!   rows dropped, tombstones cleared) whenever a shard exceeds its
//!   segment budget, or on demand via [`SegmentedIndex::compact`].
//!
//! # Determinism contract
//!
//! Queries union candidates across memtable + segments minus
//! tombstones, with S1 collision counts summed and S2 HLL registers
//! max-merged across sources exactly as the sharded/distributed merge
//! already does, so the Algorithm-2 arm decision is made **once,
//! globally** — and every answer is **byte-identical to an index
//! rebuilt from scratch on the surviving points**
//! ([`SegmentedIndex::build_bulk`] is that rebuild). The ingredients:
//!
//! 1. **Shared randomness** — every memtable and segment samples its
//!    g-functions and HLL hash from the same builder seed
//!    (data-independent), so a point collides with a query in a
//!    segment iff it would collide in the rebuilt index.
//! 2. **Global ids in the registers** — clean segments contribute
//!    their materialised sketches (hashed over global ids); dirty
//!    segments and the memtable contribute **raw global ids** with
//!    dead rows filtered out. Register-wise `max` is associative, so
//!    the merged registers equal the rebuild's bit for bit, and the
//!    estimate (a pure function of the registers) matches exactly.
//! 3. **Global decisions on a pinned cost model** — the cost model is
//!    resolved once at creation and never recalibrated (calibration is
//!    data-dependent; supply an explicit [`CostModel`] for a
//!    mutation-independent byte-identity guarantee), and `n` is the
//!    **live** point count, matching the rebuild's `n`.
//! 4. **Liveness invariant** — at most one *live* location per global
//!    id across all sources (inserts reject duplicates; deletes kill
//!    the single live location), so per-source dedup sums equal the
//!    rebuild's per-shard dedup counts and result ids never repeat.
//!
//! rNNR ids are reported ascending (the canonical sharded order);
//! top-k rankings are `(distance, id)` heaps whose content depends
//! only on the offered candidate *set*, which is preserved level by
//! level. `tests/mutable_props.rs` pins the contract across arbitrary
//! interleavings, shard counts, verify modes and flush timings; the
//! in-module tests pin the tombstone edge cases.
//!
//! Merges run synchronously inside mutating calls (amortised by the
//! segment budget): byte-identity makes merge *timing* unobservable to
//! queries, so a background thread would change nothing a test could
//! see — on the 1-CPU reference box it would only add locking.

use std::time::Instant;

use hlsh_families::LshFamily;
use hlsh_hll::{HllConfig, MergeAccumulator};
use hlsh_vec::{DenseDataset, Distance, PointId, SubsetPointSet};

use crate::bucket::BucketRef;
use crate::builder::IndexBuilder;
use crate::cost::CostModel;
use crate::hasher::{FxHashMap, FxHashSet};
use crate::index::HybridLshIndex;
use crate::report::{QueryOutput, QueryReport};
use crate::schedule::RadiusSchedule;
use crate::search::{ExecutedArm, Strategy, VerifyMode};
use crate::sharded::{ensure_accumulator, ShardAssignment};
use crate::store::{FrozenStore, MapStore};
use crate::topk::{fallback_scan_pairs, BoundedHeap, Neighbor, TopKIndex, TopKOutput, TopKReport};

/// Why an insert or delete was rejected. Mutations are all-or-nothing:
/// a rejected mutation leaves the index untouched.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MutationError {
    /// Insert of a global id that is already live somewhere in the
    /// index (delete it first to replace its point).
    DuplicateId {
        /// The offending global id.
        id: PointId,
    },
    /// Delete of a global id that is not live anywhere (never
    /// inserted, or already deleted).
    UnknownId {
        /// The offending global id.
        id: PointId,
    },
    /// Inserted point's dimensionality differs from the index's.
    DimMismatch {
        /// The index dimensionality.
        expected: usize,
        /// The inserted point's dimensionality.
        got: usize,
    },
}

impl std::fmt::Display for MutationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            Self::DuplicateId { id } => write!(f, "id {id} is already live in the index"),
            Self::UnknownId { id } => write!(f, "id {id} is not live in the index"),
            Self::DimMismatch { expected, got } => {
                write!(f, "point has dimension {got}, index expects {expected}")
            }
        }
    }
}

impl std::error::Error for MutationError {}

/// Row bookkeeping shared by the rNNR and top-k memtables: memtable
/// buckets hold local row numbers; this maps rows to global ids and
/// tracks which rows are still live. Rows are append-only — a deleted
/// or superseded row stays in the buckets (and the slab) as a dead row
/// filtered out at query time, until the next flush drops it.
#[derive(Default)]
struct Rows {
    /// `ids[row] = global id` (including dead rows).
    ids: Vec<PointId>,
    /// `live[row]`: whether the row still represents its id.
    live: Vec<bool>,
    /// `global id → live row`; ids with only dead rows are absent.
    row_of: FxHashMap<PointId, u32>,
    live_rows: usize,
}

impl Rows {
    /// Records a freshly appended live row for `id`.
    fn append(&mut self, id: PointId) {
        let row = self.ids.len() as u32;
        self.ids.push(id);
        self.live.push(true);
        self.row_of.insert(id, row);
        self.live_rows += 1;
    }

    /// Kills `id`'s live row, if it has one.
    fn kill(&mut self, id: PointId) -> bool {
        match self.row_of.remove(&id) {
            Some(row) => {
                self.live[row as usize] = false;
                self.live_rows -= 1;
                true
            }
            None => false,
        }
    }
}

/// A segment's id mapping plus its logical deletions, shared by the
/// rNNR and top-k segments. `ids` is ascending, so local row `i` holds
/// global id `ids[i]` and global→local is a binary search.
struct SegMeta {
    ids: Vec<PointId>,
    tombstones: FxHashSet<PointId>,
}

impl SegMeta {
    fn new(ids: Vec<PointId>) -> Self {
        debug_assert!(ids.windows(2).all(|w| w[0] < w[1]), "segment ids must ascend");
        Self { ids, tombstones: FxHashSet::default() }
    }

    /// Whether `id` is stored here and not tombstoned.
    fn contains_live(&self, id: PointId) -> bool {
        self.ids.binary_search(&id).is_ok() && !self.tombstones.contains(&id)
    }

    fn live_len(&self) -> usize {
        self.ids.len() - self.tombstones.len()
    }

    /// Whether any stored row is tombstoned (a dirty segment's sketch
    /// overcounts, so queries fall back to raw-id contribution).
    fn is_dirty(&self) -> bool {
        !self.tombstones.is_empty()
    }
}

/// The mutable head of one shard: a [`MapStore`]-backed index whose
/// buckets hold local rows (never sketched — local rows must not leak
/// into merged registers; the engines contribute live global ids raw).
struct Memtable<F, D>
where
    F: LshFamily<[f32]>,
    D: Distance<[f32]>,
{
    index: HybridLshIndex<DenseDataset, F, D, MapStore>,
    rows: Rows,
}

impl<F, D> Memtable<F, D>
where
    F: LshFamily<[f32]> + Clone,
    F::GFn: Send,
    D: Distance<[f32]> + Clone,
{
    fn new(dim: usize, builder: &IndexBuilder<F, D>, cost: CostModel) -> Self {
        let index = builder
            .clone()
            .cost_model(cost)
            .lazy_threshold(usize::MAX)
            .sequential()
            .build(DenseDataset::new(dim));
        Self { index, rows: Rows::default() }
    }

    fn insert(&mut self, id: PointId, point: &[f32]) {
        self.index.insert(point);
        self.rows.append(id);
    }
}

/// One immutable frozen segment: buckets and sketches keyed by global
/// ids, plus tombstones for logical deletes.
struct Segment<F, D>
where
    F: LshFamily<[f32]>,
    D: Distance<[f32]>,
{
    index: HybridLshIndex<DenseDataset, F, D, FrozenStore>,
    meta: SegMeta,
}

/// Builds one clean segment over `data` whose row `i` carries global
/// id `ids[i]` (ascending — the blocked pipeline's id-mapping hook
/// requires it and the binary-search translation depends on it).
fn build_segment<F, D>(
    builder: &IndexBuilder<F, D>,
    cost: CostModel,
    data: DenseDataset,
    ids: Vec<PointId>,
) -> Segment<F, D>
where
    F: LshFamily<[f32]> + Clone,
    F::GFn: Send,
    D: Distance<[f32]> + Clone,
{
    let index = builder.clone().cost_model(cost).sequential().build_frozen_mapped(data, Some(&ids));
    Segment { index, meta: SegMeta::new(ids) }
}

/// One shard's LSM hierarchy: the memtable plus its frozen segments.
struct LsmShard<F, D>
where
    F: LshFamily<[f32]>,
    D: Distance<[f32]>,
{
    mem: Memtable<F, D>,
    segments: Vec<Segment<F, D>>,
}

/// Collects a memtable's live rows sorted by global id, as
/// `(sub-dataset in id order, ascending ids)` — the flush input.
fn drain_live_rows(rows: &Rows, data: &DenseDataset, dim: usize) -> (DenseDataset, Vec<PointId>) {
    let mut pairs: Vec<(PointId, u32)> = rows.row_of.iter().map(|(&id, &row)| (id, row)).collect();
    pairs.sort_unstable_by_key(|&(id, _)| id);
    let mut sub = DenseDataset::with_capacity(dim, pairs.len());
    let mut ids = Vec::with_capacity(pairs.len());
    for &(id, row) in &pairs {
        sub.push(data.row(row as usize));
        ids.push(id);
    }
    (sub, ids)
}

/// Merges segments into one clean segment (tombstoned rows dropped);
/// `None` when nothing survives.
fn merge_segments<F, D>(
    segs: Vec<Segment<F, D>>,
    builder: &IndexBuilder<F, D>,
    cost: CostModel,
    dim: usize,
) -> Option<Segment<F, D>>
where
    F: LshFamily<[f32]> + Clone,
    F::GFn: Send,
    D: Distance<[f32]> + Clone,
{
    let total: usize = segs.iter().map(|s| s.meta.live_len()).sum();
    if total == 0 {
        return None;
    }
    let mut entries: Vec<(PointId, usize, usize)> = Vec::with_capacity(total);
    for (si, seg) in segs.iter().enumerate() {
        for (local, &id) in seg.meta.ids.iter().enumerate() {
            if !seg.meta.tombstones.contains(&id) {
                entries.push((id, si, local));
            }
        }
    }
    entries.sort_unstable_by_key(|&(id, _, _)| id);
    let mut sub = DenseDataset::with_capacity(dim, entries.len());
    let mut ids = Vec::with_capacity(entries.len());
    for &(id, si, local) in &entries {
        sub.push(segs[si].index.data().row(local));
        ids.push(id);
    }
    Some(build_segment(builder, cost, sub, ids))
}

/// Compacts the shard's two smallest segments (by live size) into one.
fn merge_two_smallest<F, D>(
    shard: &mut LsmShard<F, D>,
    builder: &IndexBuilder<F, D>,
    cost: CostModel,
    dim: usize,
) where
    F: LshFamily<[f32]> + Clone,
    F::GFn: Send,
    D: Distance<[f32]> + Clone,
{
    if shard.segments.len() < 2 {
        return;
    }
    let mut order: Vec<usize> = (0..shard.segments.len()).collect();
    order.sort_by_key(|&i| (shard.segments[i].meta.live_len(), i));
    let (a, b) = (order[0].min(order[1]), order[0].max(order[1]));
    let seg_b = shard.segments.remove(b);
    let seg_a = shard.segments.remove(a);
    if let Some(merged) = merge_segments(vec![seg_a, seg_b], builder, cost, dim) {
        shard.segments.insert(a, merged);
    }
}

/// An rNNR index that accepts inserts and deletes while serving
/// queries whose answers stay byte-identical to a rebuild from scratch
/// on the surviving points (see the module docs for the contract).
///
/// Points are partitioned across shards by a [`ShardAssignment`] (so a
/// segmented index composes with the sharded serving layout); each
/// shard is an independent memtable + segment hierarchy. Queries run
/// through [`SegmentedQueryEngine`], which merges statistics globally
/// before deciding the arm.
pub struct SegmentedIndex<F, D>
where
    F: LshFamily<[f32]>,
    D: Distance<[f32]>,
{
    shards: Vec<LsmShard<F, D>>,
    assignment: ShardAssignment,
    builder: IndexBuilder<F, D>,
    cost: CostModel,
    hll: HllConfig,
    dim: usize,
    live: usize,
    flush_threshold: usize,
    max_segments: usize,
}

/// Default memtable rows (live + dead) that trigger a flush.
pub const DEFAULT_FLUSH_THRESHOLD: usize = 4096;
/// Default per-shard segment budget before merges kick in.
pub const DEFAULT_MAX_SEGMENTS: usize = 8;

impl<F, D> SegmentedIndex<F, D>
where
    F: LshFamily<[f32]> + Clone,
    F::GFn: Send,
    D: Distance<[f32]> + Clone,
{
    /// An empty segmented index for `dim`-dimensional points with the
    /// default flush threshold and segment budget.
    ///
    /// The cost model is pinned here, once: the builder's explicit
    /// model if set, otherwise the empty-data default. Supply an
    /// explicit [`CostModel`] (via
    /// [`IndexBuilder::cost_model`]) when byte-identity
    /// against a rebuild matters — calibration is data-dependent, so a
    /// model calibrated at rebuild time could differ.
    pub fn new(dim: usize, assignment: ShardAssignment, builder: IndexBuilder<F, D>) -> Self {
        Self::with_limits(dim, assignment, builder, DEFAULT_FLUSH_THRESHOLD, DEFAULT_MAX_SEGMENTS)
    }

    /// [`new`](Self::new) with explicit LSM knobs: a shard flushes its
    /// memtable once it holds `flush_threshold` rows (live + dead),
    /// and merges segments whenever it exceeds `max_segments`.
    ///
    /// Neither knob affects query answers — only when work happens.
    ///
    /// # Panics
    /// Panics if `flush_threshold == 0` or `max_segments == 0`.
    pub fn with_limits(
        dim: usize,
        assignment: ShardAssignment,
        builder: IndexBuilder<F, D>,
        flush_threshold: usize,
        max_segments: usize,
    ) -> Self {
        assert!(flush_threshold >= 1, "flush threshold must be at least 1");
        assert!(max_segments >= 1, "segment budget must be at least 1");
        let cost = builder.resolve_cost(&DenseDataset::new(dim));
        let shards: Vec<LsmShard<F, D>> = (0..assignment.shards())
            .map(|_| LsmShard { mem: Memtable::new(dim, &builder, cost), segments: Vec::new() })
            .collect();
        let hll = shards[0].mem.index.hll_config();
        Self { shards, assignment, builder, cost, hll, dim, live: 0, flush_threshold, max_segments }
    }

    /// Builds the index over a whole corpus at once: one clean frozen
    /// segment per shard, empty memtables. This is the
    /// rebuild-from-scratch oracle the mutation paths are pinned
    /// against — `ids[i]` is row `i`'s global id.
    ///
    /// # Panics
    /// Panics if `ids.len() != data.len()` or `ids` contains
    /// duplicates.
    pub fn build_bulk(
        data: DenseDataset,
        ids: &[PointId],
        assignment: ShardAssignment,
        builder: IndexBuilder<F, D>,
    ) -> Self {
        assert_eq!(ids.len(), data.len(), "one id per data row");
        let mut index = Self::new(data.dim(), assignment, builder);
        let mut seen = FxHashSet::default();
        for &id in ids {
            assert!(seen.insert(id), "duplicate id {id} in bulk build");
        }
        let mut per_shard: Vec<Vec<(PointId, u32)>> = vec![Vec::new(); assignment.shards()];
        for (row, &id) in ids.iter().enumerate() {
            per_shard[assignment.shard_of(id)].push((id, row as u32));
        }
        for (si, mut pairs) in per_shard.into_iter().enumerate() {
            if pairs.is_empty() {
                continue;
            }
            pairs.sort_unstable_by_key(|&(id, _)| id);
            let rows: Vec<PointId> = pairs.iter().map(|&(_, row)| row).collect();
            let sub = data.subset(&rows);
            let seg_ids: Vec<PointId> = pairs.iter().map(|&(id, _)| id).collect();
            index.shards[si].segments.push(build_segment(&index.builder, index.cost, sub, seg_ids));
        }
        index.live = data.len();
        index
    }

    /// Inserts `point` under global id `id`.
    ///
    /// The point lands in its shard's memtable; once the memtable
    /// reaches the flush threshold the shard flushes (and possibly
    /// merges) synchronously. Rejects ids that are already live and
    /// points of the wrong dimension, leaving the index untouched.
    pub fn insert(&mut self, id: PointId, point: &[f32]) -> Result<(), MutationError> {
        if point.len() != self.dim {
            return Err(MutationError::DimMismatch { expected: self.dim, got: point.len() });
        }
        let si = self.assignment.shard_of(id);
        let shard = &self.shards[si];
        if shard.mem.rows.row_of.contains_key(&id)
            || shard.segments.iter().any(|s| s.meta.contains_live(id))
        {
            return Err(MutationError::DuplicateId { id });
        }
        self.shards[si].mem.insert(id, point);
        self.live += 1;
        if self.shards[si].mem.rows.ids.len() >= self.flush_threshold {
            self.flush_shard(si);
        }
        Ok(())
    }

    /// Deletes global id `id`: kills its memtable row in place, or
    /// tombstones it in the segment holding it live. Rejects ids that
    /// are not live (never inserted, or already deleted).
    pub fn delete(&mut self, id: PointId) -> Result<(), MutationError> {
        let si = self.assignment.shard_of(id);
        let shard = &mut self.shards[si];
        if shard.mem.rows.kill(id) {
            self.live -= 1;
            return Ok(());
        }
        for seg in &mut shard.segments {
            if seg.meta.contains_live(id) {
                seg.meta.tombstones.insert(id);
                self.live -= 1;
                return Ok(());
            }
        }
        Err(MutationError::UnknownId { id })
    }

    /// Flushes shard `shard`'s memtable into a new frozen segment
    /// (dead rows dropped), then merges while the shard exceeds its
    /// segment budget. A memtable with no live rows resets without
    /// producing a segment. Query answers are unchanged.
    pub fn flush_shard(&mut self, shard: usize) {
        let sh = &mut self.shards[shard];
        if sh.mem.rows.live_rows > 0 {
            let (sub, ids) = drain_live_rows(&sh.mem.rows, sh.mem.index.data(), self.dim);
            sh.segments.push(build_segment(&self.builder, self.cost, sub, ids));
        }
        if !sh.mem.rows.ids.is_empty() {
            sh.mem = Memtable::new(self.dim, &self.builder, self.cost);
        }
        while sh.segments.len() > self.max_segments {
            merge_two_smallest(sh, &self.builder, self.cost, self.dim);
        }
    }

    /// Flushes every shard's memtable; see
    /// [`flush_shard`](Self::flush_shard).
    pub fn flush(&mut self) {
        for si in 0..self.shards.len() {
            self.flush_shard(si);
        }
    }

    /// Merges all of shard `shard`'s segments into one clean segment,
    /// dropping tombstoned rows. No-op when the shard already holds at
    /// most one clean segment. The memtable is untouched — flush first
    /// for a fully compacted shard.
    pub fn compact_shard(&mut self, shard: usize) {
        let sh = &mut self.shards[shard];
        if sh.segments.len() <= 1 && !sh.segments.iter().any(|s| s.meta.is_dirty()) {
            return;
        }
        let segs = std::mem::take(&mut sh.segments);
        if let Some(merged) = merge_segments(segs, &self.builder, self.cost, self.dim) {
            self.shards[shard].segments.push(merged);
        }
    }

    /// Compacts every shard; see
    /// [`compact_shard`](Self::compact_shard).
    pub fn compact(&mut self) {
        for si in 0..self.shards.len() {
            self.compact_shard(si);
        }
    }
}

impl<F, D> SegmentedIndex<F, D>
where
    F: LshFamily<[f32]>,
    D: Distance<[f32]>,
{
    /// Number of live points.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether no live points are indexed.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// The point dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The shard assignment in force.
    pub fn assignment(&self) -> ShardAssignment {
        self.assignment
    }

    /// The cost model pinned at creation, shared by every source.
    pub fn cost_model(&self) -> CostModel {
        self.cost
    }

    /// The HLL configuration shared by every source's buckets.
    pub fn hll_config(&self) -> HllConfig {
        self.hll
    }

    /// Whether `id` is currently live.
    pub fn contains(&self, id: PointId) -> bool {
        let shard = &self.shards[self.assignment.shard_of(id)];
        shard.mem.rows.row_of.contains_key(&id)
            || shard.segments.iter().any(|s| s.meta.contains_live(id))
    }

    /// Per-shard frozen segment counts (instrumentation: shows flush
    /// and merge activity).
    pub fn segment_counts(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.segments.len()).collect()
    }

    /// All live global ids, ascending.
    pub fn live_ids(&self) -> Vec<PointId> {
        let mut ids = Vec::with_capacity(self.live);
        for sh in &self.shards {
            ids.extend(sh.mem.rows.row_of.keys().copied());
            for seg in &sh.segments {
                ids.extend(
                    seg.meta.ids.iter().filter(|id| !seg.meta.tombstones.contains(id)).copied(),
                );
            }
        }
        ids.sort_unstable();
        ids
    }

    /// Hybrid query with fresh scratch; batch workloads should reuse a
    /// [`SegmentedQueryEngine`].
    pub fn query(&self, q: &[f32], r: f64) -> QueryOutput {
        SegmentedQueryEngine::new().query(self, q, r)
    }

    /// Runs a query under an explicit strategy; see
    /// [`SegmentedQueryEngine::query_with_strategy`].
    pub fn query_with_strategy(&self, q: &[f32], r: f64, strategy: Strategy) -> QueryOutput {
        SegmentedQueryEngine::new().query_with_strategy(self, q, r, strategy)
    }
}

/// One probed source's buckets: `seg == None` is the shard's memtable,
/// `Some(i)` its `i`-th segment.
struct ProbedSource<'a> {
    shard: usize,
    seg: Option<usize>,
    buckets: Vec<BucketRef<'a>>,
}

/// Counts a memtable bucket's **live** members.
fn live_count(members: &[PointId], live: &[bool]) -> usize {
    members.iter().filter(|&&row| live[row as usize]).count()
}

/// Counts a segment bucket's non-tombstoned members.
fn surviving_count(members: &[PointId], meta: &SegMeta) -> usize {
    members.iter().filter(|id| !meta.tombstones.contains(id)).count()
}

/// Probes a memtable's tables, counting only live rows toward S1.
fn probe_memtable<'a, F, D, B>(
    index: &'a HybridLshIndex<DenseDataset, F, D, B>,
    rows: &Rows,
    q: &[f32],
    collisions: &mut usize,
) -> Vec<BucketRef<'a>>
where
    F: LshFamily<[f32]>,
    D: Distance<[f32]>,
    B: crate::store::BucketStore,
{
    let mut buckets = Vec::with_capacity(index.tables());
    for table in index.raw_tables() {
        if let Some(b) = table.bucket(q) {
            *collisions += live_count(b.members(), &rows.live);
            buckets.push(b);
        }
    }
    buckets
}

/// Merges a probed source's buckets into the accumulator: clean
/// segments ship their sketches (or raw global members) via
/// [`BucketRef::contribute_to`]; dirty segments and the memtable feed
/// surviving **global** ids raw, so the merged registers equal the
/// rebuild's bit for bit.
fn contribute_source(
    acc: &mut MergeAccumulator,
    buckets: &[BucketRef<'_>],
    mem_rows: Option<&Rows>,
    seg_meta: Option<&SegMeta>,
) {
    match (mem_rows, seg_meta) {
        (Some(rows), None) => {
            for b in buckets {
                acc.add_raw(
                    b.members()
                        .iter()
                        .filter(|&&row| rows.live[row as usize])
                        .map(|&row| rows.ids[row as usize] as u64),
                );
            }
        }
        (None, Some(meta)) if meta.is_dirty() => {
            for b in buckets {
                acc.add_raw(
                    b.members()
                        .iter()
                        .filter(|id| !meta.tombstones.contains(id))
                        .map(|&id| id as u64),
                );
            }
        }
        (None, Some(_)) => {
            for b in buckets {
                b.contribute_to(acc);
            }
        }
        _ => unreachable!("a source is a memtable or a segment"),
    }
}

/// Collects a memtable source's deduped candidates: live rows whose
/// global id is new to `seen`, pushed as memtable rows.
fn collect_mem_cands(
    seen: &mut FxHashSet<PointId>,
    cands: &mut Vec<PointId>,
    buckets: &[BucketRef<'_>],
    rows: &Rows,
) {
    seen.clear();
    cands.clear();
    for b in buckets {
        for &row in b.members() {
            if rows.live[row as usize] && seen.insert(rows.ids[row as usize]) {
                cands.push(row);
            }
        }
    }
}

/// Collects a segment source's deduped candidates: surviving global
/// members translated to segment rows by binary search.
fn collect_seg_cands(
    seen: &mut FxHashSet<PointId>,
    cands: &mut Vec<PointId>,
    buckets: &[BucketRef<'_>],
    meta: &SegMeta,
) {
    seen.clear();
    cands.clear();
    for b in buckets {
        for &global in b.members() {
            if !meta.tombstones.contains(&global) && seen.insert(global) {
                let local = meta.ids.binary_search(&global).expect("segment member is indexed");
                cands.push(local as PointId);
            }
        }
    }
}

/// Reusable scratch for querying a [`SegmentedIndex`]: per-source
/// dedup set and candidate list plus the global merge accumulator —
/// the segmented twin of
/// [`ShardedQueryEngine`](crate::sharded::ShardedQueryEngine).
#[derive(Debug, Default)]
pub struct SegmentedQueryEngine {
    seen: FxHashSet<PointId>,
    cands: Vec<PointId>,
    acc: Option<MergeAccumulator>,
    verify: VerifyMode,
}

impl SegmentedQueryEngine {
    /// Engine with empty scratch and the default kernel verify mode.
    pub fn new() -> Self {
        Self::default()
    }

    /// Engine with an explicit S3 verification mode.
    pub fn with_verify_mode(verify: VerifyMode) -> Self {
        Self { verify, ..Self::default() }
    }

    /// The S3 verification mode in force.
    pub fn verify_mode(&self) -> VerifyMode {
        self.verify
    }

    /// Hybrid query with reused scratch.
    pub fn query<F, D>(&mut self, index: &SegmentedIndex<F, D>, q: &[f32], r: f64) -> QueryOutput
    where
        F: LshFamily<[f32]>,
        D: Distance<[f32]>,
    {
        self.query_with_strategy(index, q, r, Strategy::Hybrid)
    }

    /// Runs one query across every memtable and segment under
    /// `strategy`.
    ///
    /// S1 probes every source (dead rows excluded from the counts), S2
    /// merges every probed sketch or surviving raw id into one
    /// accumulator, the Algorithm 2 decision compares the global costs
    /// once against the **live** `n`, and the chosen arm runs on every
    /// source; outputs are mapped to global ids and reported in
    /// ascending-id order — byte-identical to
    /// [`SegmentedIndex::build_bulk`] on the surviving points.
    pub fn query_with_strategy<F, D>(
        &mut self,
        index: &SegmentedIndex<F, D>,
        q: &[f32],
        r: f64,
        strategy: Strategy,
    ) -> QueryOutput
    where
        F: LshFamily<[f32]>,
        D: Distance<[f32]>,
    {
        let t_start = Instant::now();
        if matches!(strategy, Strategy::LinearOnly) {
            let ids = self.linear_arm(index, q, r);
            let total = t_start.elapsed().as_nanos() as u64;
            return QueryOutput {
                report: QueryReport {
                    executed: ExecutedArm::Linear,
                    collisions: 0,
                    cand_size_estimate: 0.0,
                    cand_size_actual: None,
                    output_size: ids.len(),
                    hash_nanos: 0,
                    hll_nanos: 0,
                    total_nanos: total,
                },
                ids,
            };
        }

        // S1 on every source: the global collision count sums live
        // bucket members across memtables and segments (together they
        // partition the rebuild's buckets).
        let t_hash = Instant::now();
        let mut probed: Vec<ProbedSource<'_>> = Vec::new();
        let mut collisions = 0usize;
        for (si, shard) in index.shards.iter().enumerate() {
            if shard.mem.rows.live_rows > 0 {
                let buckets = probe_memtable(&shard.mem.index, &shard.mem.rows, q, &mut collisions);
                probed.push(ProbedSource { shard: si, seg: None, buckets });
            }
            for (gi, seg) in shard.segments.iter().enumerate() {
                let (buckets, c, _) = seg.index.probe(q);
                if seg.meta.is_dirty() {
                    collisions += buckets
                        .iter()
                        .map(|b| surviving_count(b.members(), &seg.meta))
                        .sum::<usize>();
                } else {
                    collisions += c;
                }
                probed.push(ProbedSource { shard: si, seg: Some(gi), buckets });
            }
        }
        let hash_nanos = t_hash.elapsed().as_nanos() as u64;

        // S2 — Hybrid only, mirroring the unsharded path: one merged
        // estimate across every probed source.
        let (cand_estimate, hll_nanos) = if matches!(strategy, Strategy::LshOnly) {
            (0.0, 0)
        } else {
            let t_hll = Instant::now();
            let acc = ensure_accumulator(&mut self.acc, index.hll);
            for src in &probed {
                let shard = &index.shards[src.shard];
                match src.seg {
                    None => contribute_source(acc, &src.buckets, Some(&shard.mem.rows), None),
                    Some(gi) => {
                        contribute_source(acc, &src.buckets, None, Some(&shard.segments[gi].meta))
                    }
                }
            }
            (acc.estimate(), t_hll.elapsed().as_nanos() as u64)
        };

        // Global Algorithm 2 decision against the live point count.
        let prefer_lsh = match strategy {
            Strategy::LshOnly => true,
            _ => index.cost.prefer_lsh(collisions, cand_estimate, index.live),
        };
        let (executed, ids, cand_actual) = if prefer_lsh {
            let (ids, distinct) = self.lsh_arm(index, q, r, &probed);
            (ExecutedArm::Lsh, ids, Some(distinct))
        } else {
            (ExecutedArm::Linear, self.linear_arm(index, q, r), None)
        };
        let cand_size_estimate = match (strategy, cand_actual) {
            (Strategy::LshOnly, Some(actual)) => actual as f64,
            _ => cand_estimate,
        };
        let total = t_start.elapsed().as_nanos() as u64;
        QueryOutput {
            report: QueryReport {
                executed,
                collisions,
                cand_size_estimate,
                cand_size_actual: cand_actual,
                output_size: ids.len(),
                hash_nanos,
                hll_nanos,
                total_nanos: total,
            },
            ids,
        }
    }

    /// The LSH arm across sources: per source, dedup the surviving
    /// colliding members, verify the whole list in one batched kernel
    /// call against the source's own slab, map accepts to global ids.
    /// Live ids are disjoint across sources, so no cross-source dedup
    /// is needed; the concatenation is sorted into the canonical
    /// ascending order. Returns `(ids, distinct candidate count)`.
    fn lsh_arm<F, D>(
        &mut self,
        index: &SegmentedIndex<F, D>,
        q: &[f32],
        r: f64,
        probed: &[ProbedSource<'_>],
    ) -> (Vec<PointId>, usize)
    where
        F: LshFamily<[f32]>,
        D: Distance<[f32]>,
    {
        let mut out_global = Vec::new();
        let mut distinct = 0usize;
        let mut local_out = Vec::new();
        for src in probed {
            let shard = &index.shards[src.shard];
            let (data, distance, to_global): (_, _, &dyn Fn(PointId) -> PointId) = match src.seg {
                None => {
                    let mem = &shard.mem;
                    collect_mem_cands(&mut self.seen, &mut self.cands, &src.buckets, &mem.rows);
                    (mem.index.data(), mem.index.distance(), &|l: PointId| mem.rows.ids[l as usize])
                }
                Some(gi) => {
                    let seg = &shard.segments[gi];
                    collect_seg_cands(&mut self.seen, &mut self.cands, &src.buckets, &seg.meta);
                    (seg.index.data(), seg.index.distance(), &|l: PointId| seg.meta.ids[l as usize])
                }
            };
            distinct += self.cands.len();
            local_out.clear();
            match self.verify {
                VerifyMode::Kernel => distance.verify_many(data, &self.cands, q, r, &mut local_out),
                VerifyMode::Scalar => hlsh_vec::metric::verify_scalar(
                    distance,
                    data,
                    &self.cands,
                    q,
                    r,
                    &mut local_out,
                ),
            }
            out_global.extend(local_out.iter().map(|&l| to_global(l)));
        }
        out_global.sort_unstable();
        (out_global, distinct)
    }

    /// The brute-force arm across sources: scan each slab, keep live
    /// rows, map to global ids, sort ascending. Per-point acceptance
    /// is the same predicate the rebuild's scan applies, so filtering
    /// dead rows afterwards changes nothing else.
    fn linear_arm<F, D>(&mut self, index: &SegmentedIndex<F, D>, q: &[f32], r: f64) -> Vec<PointId>
    where
        F: LshFamily<[f32]>,
        D: Distance<[f32]>,
    {
        let mut out_global = Vec::new();
        let mut local_out = Vec::new();
        for shard in &index.shards {
            if shard.mem.rows.live_rows > 0 {
                let (data, distance) = (shard.mem.index.data(), shard.mem.index.distance());
                local_out.clear();
                match self.verify {
                    VerifyMode::Kernel => distance.scan_within(data, q, r, &mut local_out),
                    VerifyMode::Scalar => {
                        hlsh_vec::metric::scan_scalar(distance, data, q, r, &mut local_out)
                    }
                }
                out_global.extend(
                    local_out
                        .iter()
                        .filter(|&&l| shard.mem.rows.live[l as usize])
                        .map(|&l| shard.mem.rows.ids[l as usize]),
                );
            }
            for seg in &shard.segments {
                let (data, distance) = (seg.index.data(), seg.index.distance());
                local_out.clear();
                match self.verify {
                    VerifyMode::Kernel => distance.scan_within(data, q, r, &mut local_out),
                    VerifyMode::Scalar => {
                        hlsh_vec::metric::scan_scalar(distance, data, q, r, &mut local_out)
                    }
                }
                out_global.extend(
                    local_out
                        .iter()
                        .map(|&l| seg.meta.ids[l as usize])
                        .filter(|id| !seg.meta.tombstones.contains(id)),
                );
            }
        }
        out_global.sort_unstable();
        out_global
    }
}

// ---------------------------------------------------------------------------
// Top-k
// ---------------------------------------------------------------------------

/// The mutable head of one top-k shard: one [`MapStore`]-backed index
/// per schedule level (each owns its own small copy of the memtable
/// points — memtables are small by construction, and per-level slabs
/// keep the level indexes self-contained).
struct TopKMemtable<F, D>
where
    F: LshFamily<[f32]>,
    D: Distance<[f32]>,
{
    levels: Vec<HybridLshIndex<DenseDataset, F, D, MapStore>>,
    rows: Rows,
}

impl<F, D> TopKMemtable<F, D>
where
    F: LshFamily<[f32]> + Clone,
    F::GFn: Send,
    D: Distance<[f32]> + Clone,
{
    fn new(dim: usize, level_builders: &[IndexBuilder<F, D>], level_costs: &[CostModel]) -> Self {
        let levels = level_builders
            .iter()
            .zip(level_costs)
            .map(|(b, &cost)| {
                b.clone()
                    .cost_model(cost)
                    .lazy_threshold(usize::MAX)
                    .sequential()
                    .build(DenseDataset::new(dim))
            })
            .collect();
        Self { levels, rows: Rows::default() }
    }

    fn insert(&mut self, id: PointId, point: &[f32]) {
        for level in &mut self.levels {
            level.insert(point);
        }
        self.rows.append(id);
    }
}

/// One immutable top-k segment: a frozen radius-schedule ladder keyed
/// by global ids, plus tombstones.
struct TopKSegment<F, D>
where
    F: LshFamily<[f32]>,
    D: Distance<[f32]>,
{
    index: TopKIndex<DenseDataset, F, D, FrozenStore>,
    meta: SegMeta,
}

fn build_topk_segment<F, D>(
    schedule: RadiusSchedule,
    level_builders: &[IndexBuilder<F, D>],
    level_costs: &[CostModel],
    data: DenseDataset,
    ids: Vec<PointId>,
) -> TopKSegment<F, D>
where
    F: LshFamily<[f32]> + Clone,
    F::GFn: Send,
    D: Distance<[f32]> + Clone,
{
    let index = TopKIndex::build_mapped(
        data,
        schedule,
        |li, _r| level_builders[li].clone().cost_model(level_costs[li]).sequential(),
        Some(&ids),
    )
    .freeze();
    TopKSegment { index, meta: SegMeta::new(ids) }
}

/// One top-k shard's LSM hierarchy.
struct LsmTopKShard<F, D>
where
    F: LshFamily<[f32]>,
    D: Distance<[f32]>,
{
    mem: TopKMemtable<F, D>,
    segments: Vec<TopKSegment<F, D>>,
}

fn merge_topk_segments<F, D>(
    segs: Vec<TopKSegment<F, D>>,
    schedule: RadiusSchedule,
    level_builders: &[IndexBuilder<F, D>],
    level_costs: &[CostModel],
    dim: usize,
) -> Option<TopKSegment<F, D>>
where
    F: LshFamily<[f32]> + Clone,
    F::GFn: Send,
    D: Distance<[f32]> + Clone,
{
    let total: usize = segs.iter().map(|s| s.meta.live_len()).sum();
    if total == 0 {
        return None;
    }
    let mut entries: Vec<(PointId, usize, usize)> = Vec::with_capacity(total);
    for (si, seg) in segs.iter().enumerate() {
        for (local, &id) in seg.meta.ids.iter().enumerate() {
            if !seg.meta.tombstones.contains(&id) {
                entries.push((id, si, local));
            }
        }
    }
    entries.sort_unstable_by_key(|&(id, _, _)| id);
    let mut sub = DenseDataset::with_capacity(dim, entries.len());
    let mut ids = Vec::with_capacity(entries.len());
    for &(id, si, local) in &entries {
        sub.push(segs[si].index.data().row(local));
        ids.push(id);
    }
    Some(build_topk_segment(schedule, level_builders, level_costs, sub, ids))
}

/// A top-k index that accepts inserts and deletes while serving
/// `(distance, id)` rankings byte-identical to a ladder rebuilt from
/// scratch on the surviving points — the top-k twin of
/// [`SegmentedIndex`], walked by [`SegmentedTopKEngine`].
pub struct SegmentedTopKIndex<F, D>
where
    F: LshFamily<[f32]>,
    D: Distance<[f32]>,
{
    shards: Vec<LsmTopKShard<F, D>>,
    assignment: ShardAssignment,
    schedule: RadiusSchedule,
    level_builders: Vec<IndexBuilder<F, D>>,
    level_costs: Vec<CostModel>,
    level_hll: Vec<HllConfig>,
    dim: usize,
    live: usize,
    flush_threshold: usize,
    max_segments: usize,
}

impl<F, D> SegmentedTopKIndex<F, D>
where
    F: LshFamily<[f32]> + Clone,
    F::GFn: Send,
    D: Distance<[f32]> + Clone,
{
    /// An empty segmented ladder with the default LSM knobs.
    /// `level_builder(level, radius)` configures each level exactly as
    /// for [`TopKIndex::build`]; each level's cost model is pinned at
    /// creation (see [`SegmentedIndex::new`] on why explicit models
    /// matter for byte-identity).
    pub fn new(
        dim: usize,
        assignment: ShardAssignment,
        schedule: RadiusSchedule,
        level_builder: impl Fn(usize, f64) -> IndexBuilder<F, D>,
    ) -> Self {
        Self::with_limits(
            dim,
            assignment,
            schedule,
            level_builder,
            DEFAULT_FLUSH_THRESHOLD,
            DEFAULT_MAX_SEGMENTS,
        )
    }

    /// [`new`](Self::new) with explicit flush threshold and per-shard
    /// segment budget; neither affects query answers.
    ///
    /// # Panics
    /// Panics if `flush_threshold == 0` or `max_segments == 0`.
    pub fn with_limits(
        dim: usize,
        assignment: ShardAssignment,
        schedule: RadiusSchedule,
        level_builder: impl Fn(usize, f64) -> IndexBuilder<F, D>,
        flush_threshold: usize,
        max_segments: usize,
    ) -> Self {
        assert!(flush_threshold >= 1, "flush threshold must be at least 1");
        assert!(max_segments >= 1, "segment budget must be at least 1");
        let level_builders: Vec<IndexBuilder<F, D>> =
            schedule.radii().enumerate().map(|(li, r)| level_builder(li, r)).collect();
        let empty = DenseDataset::new(dim);
        let level_costs: Vec<CostModel> =
            level_builders.iter().map(|b| b.resolve_cost(&empty)).collect();
        let shards: Vec<LsmTopKShard<F, D>> = (0..assignment.shards())
            .map(|_| LsmTopKShard {
                mem: TopKMemtable::new(dim, &level_builders, &level_costs),
                segments: Vec::new(),
            })
            .collect();
        let level_hll: Vec<HllConfig> =
            shards[0].mem.levels.iter().map(|l| l.hll_config()).collect();
        Self {
            shards,
            assignment,
            schedule,
            level_builders,
            level_costs,
            level_hll,
            dim,
            live: 0,
            flush_threshold,
            max_segments,
        }
    }

    /// Builds the ladder over a whole corpus at once: one clean frozen
    /// segment per shard, empty memtables — the rebuild oracle.
    ///
    /// # Panics
    /// Panics if `ids.len() != data.len()` or `ids` contains
    /// duplicates.
    pub fn build_bulk(
        data: DenseDataset,
        ids: &[PointId],
        assignment: ShardAssignment,
        schedule: RadiusSchedule,
        level_builder: impl Fn(usize, f64) -> IndexBuilder<F, D>,
    ) -> Self {
        assert_eq!(ids.len(), data.len(), "one id per data row");
        let mut index = Self::new(data.dim(), assignment, schedule, level_builder);
        let mut seen = FxHashSet::default();
        for &id in ids {
            assert!(seen.insert(id), "duplicate id {id} in bulk build");
        }
        let mut per_shard: Vec<Vec<(PointId, u32)>> = vec![Vec::new(); assignment.shards()];
        for (row, &id) in ids.iter().enumerate() {
            per_shard[assignment.shard_of(id)].push((id, row as u32));
        }
        for (si, mut pairs) in per_shard.into_iter().enumerate() {
            if pairs.is_empty() {
                continue;
            }
            pairs.sort_unstable_by_key(|&(id, _)| id);
            let rows: Vec<PointId> = pairs.iter().map(|&(_, row)| row).collect();
            let sub = data.subset(&rows);
            let seg_ids: Vec<PointId> = pairs.iter().map(|&(id, _)| id).collect();
            index.shards[si].segments.push(build_topk_segment(
                index.schedule,
                &index.level_builders,
                &index.level_costs,
                sub,
                seg_ids,
            ));
        }
        index.live = data.len();
        index
    }

    /// Inserts `point` under global id `id` into every schedule level
    /// of its shard's memtable; flushes at the threshold. Same
    /// rejection rules as [`SegmentedIndex::insert`].
    pub fn insert(&mut self, id: PointId, point: &[f32]) -> Result<(), MutationError> {
        if point.len() != self.dim {
            return Err(MutationError::DimMismatch { expected: self.dim, got: point.len() });
        }
        let si = self.assignment.shard_of(id);
        let shard = &self.shards[si];
        if shard.mem.rows.row_of.contains_key(&id)
            || shard.segments.iter().any(|s| s.meta.contains_live(id))
        {
            return Err(MutationError::DuplicateId { id });
        }
        self.shards[si].mem.insert(id, point);
        self.live += 1;
        if self.shards[si].mem.rows.ids.len() >= self.flush_threshold {
            self.flush_shard(si);
        }
        Ok(())
    }

    /// Deletes global id `id`; same semantics as
    /// [`SegmentedIndex::delete`].
    pub fn delete(&mut self, id: PointId) -> Result<(), MutationError> {
        let si = self.assignment.shard_of(id);
        let shard = &mut self.shards[si];
        if shard.mem.rows.kill(id) {
            self.live -= 1;
            return Ok(());
        }
        for seg in &mut shard.segments {
            if seg.meta.contains_live(id) {
                seg.meta.tombstones.insert(id);
                self.live -= 1;
                return Ok(());
            }
        }
        Err(MutationError::UnknownId { id })
    }

    /// Flushes shard `shard`'s memtable into a new frozen ladder
    /// segment, then merges while over the segment budget.
    pub fn flush_shard(&mut self, shard: usize) {
        let sh = &mut self.shards[shard];
        if sh.mem.rows.live_rows > 0 {
            let (sub, ids) = drain_live_rows(&sh.mem.rows, sh.mem.levels[0].data(), self.dim);
            sh.segments.push(build_topk_segment(
                self.schedule,
                &self.level_builders,
                &self.level_costs,
                sub,
                ids,
            ));
        }
        if !sh.mem.rows.ids.is_empty() {
            sh.mem = TopKMemtable::new(self.dim, &self.level_builders, &self.level_costs);
        }
        while sh.segments.len() > self.max_segments {
            if sh.segments.len() < 2 {
                break;
            }
            let mut order: Vec<usize> = (0..sh.segments.len()).collect();
            order.sort_by_key(|&i| (sh.segments[i].meta.live_len(), i));
            let (a, b) = (order[0].min(order[1]), order[0].max(order[1]));
            let seg_b = sh.segments.remove(b);
            let seg_a = sh.segments.remove(a);
            if let Some(merged) = merge_topk_segments(
                vec![seg_a, seg_b],
                self.schedule,
                &self.level_builders,
                &self.level_costs,
                self.dim,
            ) {
                sh.segments.insert(a, merged);
            }
        }
    }

    /// Flushes every shard's memtable.
    pub fn flush(&mut self) {
        for si in 0..self.shards.len() {
            self.flush_shard(si);
        }
    }

    /// Merges all of shard `shard`'s segments into one clean segment.
    pub fn compact_shard(&mut self, shard: usize) {
        let sh = &mut self.shards[shard];
        if sh.segments.len() <= 1 && !sh.segments.iter().any(|s| s.meta.is_dirty()) {
            return;
        }
        let segs = std::mem::take(&mut sh.segments);
        if let Some(merged) = merge_topk_segments(
            segs,
            self.schedule,
            &self.level_builders,
            &self.level_costs,
            self.dim,
        ) {
            self.shards[shard].segments.push(merged);
        }
    }

    /// Compacts every shard.
    pub fn compact(&mut self) {
        for si in 0..self.shards.len() {
            self.compact_shard(si);
        }
    }
}

impl<F, D> SegmentedTopKIndex<F, D>
where
    F: LshFamily<[f32]>,
    D: Distance<[f32]>,
{
    /// Number of live points.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether no live points are indexed.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// The point dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The shard assignment in force.
    pub fn assignment(&self) -> ShardAssignment {
        self.assignment
    }

    /// The radius schedule shared by every segment and memtable.
    pub fn schedule(&self) -> RadiusSchedule {
        self.schedule
    }

    /// Whether `id` is currently live.
    pub fn contains(&self, id: PointId) -> bool {
        let shard = &self.shards[self.assignment.shard_of(id)];
        shard.mem.rows.row_of.contains_key(&id)
            || shard.segments.iter().any(|s| s.meta.contains_live(id))
    }

    /// Per-shard frozen segment counts.
    pub fn segment_counts(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.segments.len()).collect()
    }

    /// All live global ids, ascending.
    pub fn live_ids(&self) -> Vec<PointId> {
        let mut ids = Vec::with_capacity(self.live);
        for sh in &self.shards {
            ids.extend(sh.mem.rows.row_of.keys().copied());
            for seg in &sh.segments {
                ids.extend(
                    seg.meta.ids.iter().filter(|id| !seg.meta.tombstones.contains(id)).copied(),
                );
            }
        }
        ids.sort_unstable();
        ids
    }

    /// Answers one top-k query with fresh scratch.
    pub fn query_topk(&self, q: &[f32], k: usize) -> TopKOutput {
        SegmentedTopKEngine::new().query_topk(self, q, k)
    }
}

/// Reusable scratch for running top-k queries over a
/// [`SegmentedTopKIndex`] — the segmented twin of
/// [`ShardedTopKEngine`](crate::sharded::ShardedTopKEngine), kept in
/// lockstep with its walk (early exit, HLL defer + revisit, exact
/// fallback) so rankings and reports stay byte-identical to a rebuilt
/// ladder.
#[derive(Debug, Default)]
pub struct SegmentedTopKEngine {
    seen: FxHashSet<PointId>,
    cands: Vec<PointId>,
    acc: Option<MergeAccumulator>,
    reported: FxHashSet<PointId>,
    verify: VerifyMode,
}

impl SegmentedTopKEngine {
    /// Engine with empty scratch and the default kernel verify mode.
    pub fn new() -> Self {
        Self::default()
    }

    /// Engine whose rNNR level queries verify in an explicit
    /// [`VerifyMode`]; output is identical across modes.
    pub fn with_verify_mode(verify: VerifyMode) -> Self {
        Self { verify, ..Self::default() }
    }

    /// Answers one top-k query under the default per-level
    /// [`Strategy::Hybrid`].
    pub fn query_topk<F, D>(
        &mut self,
        index: &SegmentedTopKIndex<F, D>,
        q: &[f32],
        k: usize,
    ) -> TopKOutput
    where
        F: LshFamily<[f32]>,
        D: Distance<[f32]>,
    {
        self.query_topk_with(index, q, k, Strategy::Hybrid)
    }

    /// The global schedule walk over memtables and segments; every
    /// decision (skip, early exit, arm choice, fallback) is made on
    /// merged statistics against the live point count, so the walk
    /// matches a rebuilt ladder step for step.
    pub fn query_topk_with<F, D>(
        &mut self,
        index: &SegmentedTopKIndex<F, D>,
        q: &[f32],
        k: usize,
        strategy: Strategy,
    ) -> TopKOutput
    where
        F: LshFamily<[f32]>,
        D: Distance<[f32]>,
    {
        let t_start = Instant::now();
        let n = index.live;
        let k_eff = k.min(n);
        let mut report = TopKReport {
            levels_executed: 0,
            levels_skipped: 0,
            early_exit: false,
            exact_fallback: false,
            verified: 0,
            total_nanos: 0,
        };
        if k_eff == 0 {
            report.total_nanos = t_start.elapsed().as_nanos() as u64;
            return TopKOutput { neighbors: Vec::new(), report };
        }

        let mut heap = BoundedHeap::new(k_eff);
        self.reported.clear();
        let mut covered_r = 0.0_f64;
        let mut deferred: Vec<usize> = Vec::new();

        for li in 0..index.schedule.levels() {
            let r = index.schedule.radius(li);
            if report.levels_executed > 0
                && heap.is_full()
                && heap.worst_dist().is_some_and(|w| w <= covered_r)
            {
                report.early_exit = true;
                break;
            }
            let skip_at_most = if report.levels_executed > 0 {
                let m = index.level_hll[li].registers() as f64;
                self.reported.len() as f64 * (1.0 + 1.04 / m.sqrt())
            } else {
                f64::NEG_INFINITY // level 0 always runs
            };
            match self.query_level(index, li, q, r, strategy, skip_at_most) {
                None => {
                    deferred.push(li);
                    continue;
                }
                Some(pairs) => {
                    report.levels_executed += 1;
                    covered_r = r;
                    for (id, dist) in pairs {
                        if self.reported.insert(id) {
                            heap.push(Neighbor { id, dist });
                        }
                    }
                }
            }
        }

        if heap.len() < k_eff {
            // Exact fallback: distance-returning scans per source with
            // dead rows and already-reported ids filtered out — the
            // heap's content depends only on the offered set, which
            // equals the rebuild's fallback set.
            report.exact_fallback = true;
            report.levels_skipped = deferred.len();
            for shard in &index.shards {
                if shard.mem.rows.live_rows > 0 {
                    let mem = &shard.mem;
                    for (local, dist) in fallback_scan_pairs(
                        mem.levels[0].data(),
                        mem.levels[0].distance(),
                        q,
                        self.verify,
                    ) {
                        if !mem.rows.live[local as usize] {
                            continue;
                        }
                        let id = mem.rows.ids[local as usize];
                        if !self.reported.contains(&id) {
                            heap.push(Neighbor { id, dist });
                        }
                    }
                }
                for seg in &shard.segments {
                    for (local, dist) in
                        fallback_scan_pairs(seg.index.data(), seg.index.distance(), q, self.verify)
                    {
                        let id = seg.meta.ids[local as usize];
                        if seg.meta.tombstones.contains(&id) || self.reported.contains(&id) {
                            continue;
                        }
                        heap.push(Neighbor { id, dist });
                    }
                }
            }
        } else if !deferred.is_empty() {
            // Revisit deferred levels once the heap fills, exactly as
            // the unsharded walk does.
            for li in deferred {
                let pairs = self
                    .query_level(
                        index,
                        li,
                        q,
                        index.schedule.radius(li),
                        strategy,
                        f64::NEG_INFINITY,
                    )
                    .expect("forced level query always executes");
                report.levels_executed += 1;
                for (id, dist) in pairs {
                    if self.reported.insert(id) {
                        heap.push(Neighbor { id, dist });
                    }
                }
            }
        }

        report.verified = self.reported.len();
        report.total_nanos = t_start.elapsed().as_nanos() as u64;
        TopKOutput { neighbors: heap.into_sorted_vec(), report }
    }

    /// One level's rNNR query across every source: merged probe +
    /// estimate, global skip and arm decisions, per-source
    /// verification with distances, global ids out. `None` = deferred
    /// by the HLL prediction.
    fn query_level<F, D>(
        &mut self,
        index: &SegmentedTopKIndex<F, D>,
        li: usize,
        q: &[f32],
        r: f64,
        strategy: Strategy,
        skip_at_most: f64,
    ) -> Option<Vec<(PointId, f64)>>
    where
        F: LshFamily<[f32]>,
        D: Distance<[f32]>,
    {
        if !matches!(strategy, Strategy::LinearOnly) {
            // Merged S1 + S2 over every source's level-li index.
            let mut probed: Vec<ProbedSource<'_>> = Vec::new();
            let mut collisions = 0usize;
            for (si, shard) in index.shards.iter().enumerate() {
                if shard.mem.rows.live_rows > 0 {
                    let buckets =
                        probe_memtable(&shard.mem.levels[li], &shard.mem.rows, q, &mut collisions);
                    probed.push(ProbedSource { shard: si, seg: None, buckets });
                }
                for (gi, seg) in shard.segments.iter().enumerate() {
                    let (buckets, c, _) = seg.index.levels()[li].probe(q);
                    if seg.meta.is_dirty() {
                        collisions += buckets
                            .iter()
                            .map(|b| surviving_count(b.members(), &seg.meta))
                            .sum::<usize>();
                    } else {
                        collisions += c;
                    }
                    probed.push(ProbedSource { shard: si, seg: Some(gi), buckets });
                }
            }
            let acc = ensure_accumulator(&mut self.acc, index.level_hll[li]);
            for src in &probed {
                let shard = &index.shards[src.shard];
                match src.seg {
                    None => contribute_source(acc, &src.buckets, Some(&shard.mem.rows), None),
                    Some(gi) => {
                        contribute_source(acc, &src.buckets, None, Some(&shard.segments[gi].meta))
                    }
                }
            }
            let cand_estimate = acc.estimate();
            if cand_estimate <= skip_at_most {
                return None;
            }
            let prefer_lsh = match strategy {
                Strategy::LshOnly => true,
                _ => index.level_costs[li].prefer_lsh(collisions, cand_estimate, index.live),
            };
            if prefer_lsh {
                let mut out_global = Vec::new();
                let mut local_out = Vec::new();
                for src in &probed {
                    let shard = &index.shards[src.shard];
                    let (data, distance, to_global): (_, _, &dyn Fn(PointId) -> PointId) = match src
                        .seg
                    {
                        None => {
                            let mem = &shard.mem;
                            collect_mem_cands(
                                &mut self.seen,
                                &mut self.cands,
                                &src.buckets,
                                &mem.rows,
                            );
                            (mem.levels[li].data(), mem.levels[li].distance(), &|l: PointId| {
                                mem.rows.ids[l as usize]
                            })
                        }
                        Some(gi) => {
                            let seg = &shard.segments[gi];
                            collect_seg_cands(
                                &mut self.seen,
                                &mut self.cands,
                                &src.buckets,
                                &seg.meta,
                            );
                            (seg.index.data(), seg.index.levels()[li].distance(), &|l: PointId| {
                                seg.meta.ids[l as usize]
                            })
                        }
                    };
                    local_out.clear();
                    match self.verify {
                        VerifyMode::Kernel => {
                            distance.verify_many_dist(data, &self.cands, q, r, &mut local_out)
                        }
                        VerifyMode::Scalar => hlsh_vec::metric::verify_scalar_dist(
                            distance,
                            data,
                            &self.cands,
                            q,
                            r,
                            &mut local_out,
                        ),
                    }
                    out_global.extend(local_out.iter().map(|&(l, d)| (to_global(l), d)));
                }
                return Some(out_global);
            }
        }
        // Linear arm (forced or chosen): scan every source with
        // distances, dead rows filtered.
        let mut out_global = Vec::new();
        let mut local_out = Vec::new();
        for shard in &index.shards {
            if shard.mem.rows.live_rows > 0 {
                let mem = &shard.mem;
                let (data, distance) = (mem.levels[li].data(), mem.levels[li].distance());
                local_out.clear();
                match self.verify {
                    VerifyMode::Kernel => distance.scan_within_dist(data, q, r, &mut local_out),
                    VerifyMode::Scalar => {
                        hlsh_vec::metric::scan_scalar_dist(distance, data, q, r, &mut local_out)
                    }
                }
                out_global.extend(
                    local_out
                        .iter()
                        .filter(|&&(l, _)| mem.rows.live[l as usize])
                        .map(|&(l, d)| (mem.rows.ids[l as usize], d)),
                );
            }
            for seg in &shard.segments {
                let (data, distance) = (seg.index.data(), seg.index.levels()[li].distance());
                local_out.clear();
                match self.verify {
                    VerifyMode::Kernel => distance.scan_within_dist(data, q, r, &mut local_out),
                    VerifyMode::Scalar => {
                        hlsh_vec::metric::scan_scalar_dist(distance, data, q, r, &mut local_out)
                    }
                }
                out_global.extend(
                    local_out
                        .iter()
                        .map(|&(l, d)| (seg.meta.ids[l as usize], d))
                        .filter(|(id, _)| !seg.meta.tombstones.contains(id)),
                );
            }
        }
        Some(out_global)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sharded::{ShardedIndex, ShardedTopKIndex};
    use hlsh_families::PStableL2;
    use hlsh_vec::L2;

    const DIM: usize = 2;

    /// Deterministic point for a global id, so oracles can regenerate
    /// any surviving subset from ids alone.
    fn point(id: PointId) -> [f32; DIM] {
        [(id % 17) as f32, (id / 17) as f32 * 0.5]
    }

    fn builder() -> IndexBuilder<PStableL2, L2> {
        IndexBuilder::new(PStableL2::new(DIM, 2.0), L2)
            .tables(8)
            .hash_len(4)
            .seed(11)
            .cost_model(CostModel::from_ratio(4.0))
    }

    fn dataset(ids: &[PointId]) -> DenseDataset {
        DenseDataset::from_rows(DIM, ids.iter().map(|&id| point(id)))
    }

    fn rebuild(index: &SegmentedIndex<PStableL2, L2>) -> SegmentedIndex<PStableL2, L2> {
        let ids = index.live_ids();
        SegmentedIndex::build_bulk(dataset(&ids), &ids, index.assignment(), builder())
    }

    /// Asserts byte-identity of outputs *and* decision-relevant report
    /// fields between the mutated index and its rebuild oracle, across
    /// strategies and verify modes.
    fn assert_matches_oracle(index: &SegmentedIndex<PStableL2, L2>, context: &str) {
        let oracle = rebuild(index);
        assert_eq!(index.len(), oracle.len(), "{context}: live count");
        for (qi, r) in [(0 as PointId, 1.0), (140, 2.5), (299, 0.2), (7, 5.0)] {
            let q = point(qi);
            for strategy in Strategy::ALL {
                for verify in [VerifyMode::Kernel, VerifyMode::Scalar] {
                    let mut engine = SegmentedQueryEngine::with_verify_mode(verify);
                    let got = engine.query_with_strategy(index, &q, r, strategy);
                    let mut oracle_engine = SegmentedQueryEngine::with_verify_mode(verify);
                    let want = oracle_engine.query_with_strategy(&oracle, &q, r, strategy);
                    let tag = format!("{context} q={qi} r={r} {strategy} {verify:?}");
                    assert_eq!(got.ids, want.ids, "{tag}: ids");
                    assert_eq!(got.report.executed, want.report.executed, "{tag}: arm");
                    assert_eq!(got.report.collisions, want.report.collisions, "{tag}: S1");
                    assert_eq!(
                        got.report.cand_size_estimate.to_bits(),
                        want.report.cand_size_estimate.to_bits(),
                        "{tag}: S2"
                    );
                    assert_eq!(
                        got.report.cand_size_actual, want.report.cand_size_actual,
                        "{tag}: distinct"
                    );
                }
            }
        }
    }

    #[test]
    fn bulk_build_matches_sharded_reference() {
        // Grounds the rebuild oracle itself: on dense ids 0..n the
        // segmented bulk build must reproduce the (already pinned)
        // sharded index bit for bit — ids, arm, S1 and S2.
        let n = 300;
        let ids: Vec<PointId> = (0..n as PointId).collect();
        let data = dataset(&ids);
        for shards in [1usize, 3] {
            let assignment = ShardAssignment::new(5, shards);
            let sharded = ShardedIndex::build(data.clone(), assignment, builder());
            let segmented = SegmentedIndex::build_bulk(data.clone(), &ids, assignment, builder());
            assert_eq!(segmented.len(), n);
            for (qi, r) in [(0 as PointId, 1.0), (140, 2.5), (299, 0.2)] {
                let q = point(qi);
                for strategy in Strategy::ALL {
                    let want = sharded.query_with_strategy(&q, r, strategy);
                    let got = segmented.query_with_strategy(&q, r, strategy);
                    let tag = format!("shards={shards} q={qi} r={r} {strategy}");
                    assert_eq!(got.ids, want.ids, "{tag}");
                    assert_eq!(got.report.executed, want.report.executed, "{tag}: arm");
                    assert_eq!(got.report.collisions, want.report.collisions, "{tag}: S1");
                    assert_eq!(
                        got.report.cand_size_estimate.to_bits(),
                        want.report.cand_size_estimate.to_bits(),
                        "{tag}: S2"
                    );
                }
            }
        }
    }

    #[test]
    fn insert_rejects_dim_mismatch_and_duplicates() {
        let mut index = SegmentedIndex::new(DIM, ShardAssignment::new(1, 2), builder());
        assert_eq!(
            index.insert(0, &[1.0, 2.0, 3.0]),
            Err(MutationError::DimMismatch { expected: DIM, got: 3 })
        );
        index.insert(7, &point(7)).unwrap();
        // Duplicate against the unflushed memtable...
        assert_eq!(index.insert(7, &point(7)), Err(MutationError::DuplicateId { id: 7 }));
        index.flush();
        // ...and against a frozen segment.
        assert_eq!(index.insert(7, &point(7)), Err(MutationError::DuplicateId { id: 7 }));
        assert_eq!(index.len(), 1);
    }

    #[test]
    fn delete_of_nonexistent_id_errors() {
        let mut index = SegmentedIndex::new(DIM, ShardAssignment::new(1, 2), builder());
        index.insert(3, &point(3)).unwrap();
        assert_eq!(index.delete(99), Err(MutationError::UnknownId { id: 99 }));
        assert_eq!(index.len(), 1);
        assert_matches_oracle(&index, "after rejected delete");
    }

    #[test]
    fn duplicate_delete_errors() {
        let mut index = SegmentedIndex::new(DIM, ShardAssignment::new(1, 2), builder());
        for id in 0..20 {
            index.insert(id, &point(id)).unwrap();
        }
        index.flush();
        index.delete(5).unwrap();
        // Second delete of a tombstoned segment id fails...
        assert_eq!(index.delete(5), Err(MutationError::UnknownId { id: 5 }));
        // ...as does a duplicate delete in the memtable.
        index.insert(100, &point(100)).unwrap();
        index.delete(100).unwrap();
        assert_eq!(index.delete(100), Err(MutationError::UnknownId { id: 100 }));
        assert_eq!(index.len(), 19);
        assert_matches_oracle(&index, "after duplicate deletes");
    }

    #[test]
    fn delete_in_unflushed_memtable_matches_oracle() {
        // Never flush: deletes land on memtable rows in place.
        let mut index =
            SegmentedIndex::with_limits(DIM, ShardAssignment::new(2, 2), builder(), usize::MAX, 8);
        for id in 0..120 {
            index.insert(id, &point(id)).unwrap();
        }
        for id in (0..120).step_by(3) {
            index.delete(id).unwrap();
        }
        assert_eq!(index.segment_counts(), vec![0, 0], "nothing flushed");
        assert_eq!(index.len(), 80);
        assert_matches_oracle(&index, "memtable deletes");
    }

    #[test]
    fn delete_then_reinsert_matches_oracle() {
        let mut index = SegmentedIndex::new(DIM, ShardAssignment::new(3, 2), builder());
        for id in 0..100 {
            index.insert(id, &point(id)).unwrap();
        }
        index.flush();
        // Tombstone a segment id, then reinsert it (lands in the
        // memtable; the segment row stays dead).
        index.delete(42).unwrap();
        index.insert(42, &point(42)).unwrap();
        // Kill a memtable row and reinsert: the dead row stays in the
        // buckets, the live row is appended after it.
        index.insert(200, &point(200)).unwrap();
        index.delete(200).unwrap();
        index.insert(200, &point(200)).unwrap();
        assert_eq!(index.len(), 101);
        assert_matches_oracle(&index, "delete then reinsert");
    }

    #[test]
    fn query_mid_merge_matches_oracle() {
        // Flush-after-every-insert produces many tiny segments and
        // exercises the merge path; queries issued between partial
        // compactions (one shard compacted, the other not) must match
        // the oracle at every step.
        let mut index =
            SegmentedIndex::with_limits(DIM, ShardAssignment::new(7, 2), builder(), 1, 4);
        for id in 0..90 {
            index.insert(id, &point(id)).unwrap();
        }
        assert!(
            index.segment_counts().iter().all(|&c| c <= 4),
            "budget enforced: {:?}",
            index.segment_counts()
        );
        for id in (0..90).step_by(4) {
            index.delete(id).unwrap();
        }
        assert_matches_oracle(&index, "pre-compact");
        index.compact_shard(0);
        assert_matches_oracle(&index, "mid-merge (shard 0 compacted)");
        index.compact();
        assert_eq!(index.segment_counts(), vec![1, 1], "fully compacted");
        assert_matches_oracle(&index, "post-compact");
    }

    #[test]
    fn empty_and_emptied_indexes_answer_cleanly() {
        let index = SegmentedIndex::new(DIM, ShardAssignment::new(1, 2), builder());
        assert!(index.is_empty());
        assert!(index.query(&point(0), 2.0).ids.is_empty());
        let mut index = SegmentedIndex::new(DIM, ShardAssignment::new(1, 2), builder());
        for id in 0..10 {
            index.insert(id, &point(id)).unwrap();
        }
        index.flush();
        for id in 0..10 {
            index.delete(id).unwrap();
        }
        assert!(index.is_empty());
        assert!(index.query(&point(0), 100.0).ids.is_empty());
        assert!(index.live_ids().is_empty());
        index.compact();
        assert_eq!(index.segment_counts(), vec![0, 0], "all-dead segments vanish");
    }

    // -- top-k ------------------------------------------------------

    fn level_builder(_li: usize, r: f64) -> IndexBuilder<PStableL2, L2> {
        IndexBuilder::new(PStableL2::new(DIM, 2.0 * r), L2)
            .tables(8)
            .hash_len(4)
            .seed(7)
            .cost_model(CostModel::from_ratio(4.0))
    }

    fn schedule() -> RadiusSchedule {
        RadiusSchedule::doubling(0.8, 4)
    }

    fn rebuild_topk(
        index: &SegmentedTopKIndex<PStableL2, L2>,
    ) -> SegmentedTopKIndex<PStableL2, L2> {
        let ids = index.live_ids();
        SegmentedTopKIndex::build_bulk(
            dataset(&ids),
            &ids,
            index.assignment(),
            index.schedule(),
            level_builder,
        )
    }

    fn assert_topk_matches_oracle(index: &SegmentedTopKIndex<PStableL2, L2>, context: &str) {
        let oracle = rebuild_topk(index);
        for qi in [0 as PointId, 31, 124, 249] {
            let q = point(qi);
            for k in [1usize, 7, 1000] {
                for verify in [VerifyMode::Kernel, VerifyMode::Scalar] {
                    let got =
                        SegmentedTopKEngine::with_verify_mode(verify).query_topk(index, &q, k);
                    let want =
                        SegmentedTopKEngine::with_verify_mode(verify).query_topk(&oracle, &q, k);
                    assert_eq!(got, want, "{context} q={qi} k={k} {verify:?}");
                }
            }
        }
    }

    #[test]
    fn bulk_topk_matches_sharded_reference() {
        let n = 250;
        let ids: Vec<PointId> = (0..n as PointId).collect();
        let data = dataset(&ids);
        for shards in [1usize, 4] {
            let assignment = ShardAssignment::new(3, shards);
            let sharded =
                ShardedTopKIndex::build(data.clone(), assignment, schedule(), level_builder);
            let segmented = SegmentedTopKIndex::build_bulk(
                data.clone(),
                &ids,
                assignment,
                schedule(),
                level_builder,
            );
            for qi in (0..n as PointId).step_by(31) {
                let q = point(qi);
                let want = sharded.query_topk(&q, 7);
                let got = segmented.query_topk(&q, 7);
                assert_eq!(got, want, "shards={shards} q={qi}");
            }
        }
    }

    #[test]
    fn topk_mutations_match_rebuild() {
        let mut index = SegmentedTopKIndex::with_limits(
            DIM,
            ShardAssignment::new(9, 2),
            schedule(),
            level_builder,
            40,
            3,
        );
        for id in 0..150 {
            index.insert(id, &point(id)).unwrap();
        }
        for id in (0..150).step_by(5) {
            index.delete(id).unwrap();
        }
        assert_topk_matches_oracle(&index, "after churn");
        // Reinsert a tombstoned id and a memtable-killed id.
        index.insert(0, &point(0)).unwrap();
        assert_eq!(index.insert(0, &point(0)), Err(MutationError::DuplicateId { id: 0 }));
        assert_eq!(index.delete(5), Err(MutationError::UnknownId { id: 5 }));
        index.compact_shard(0);
        assert_topk_matches_oracle(&index, "mid-merge");
        index.flush();
        index.compact();
        assert_topk_matches_oracle(&index, "post-compact");
        // Drain to empty: top-k on an empty ladder returns nothing.
        for id in index.live_ids() {
            index.delete(id).unwrap();
        }
        assert!(index.query_topk(&point(0), 5).neighbors.is_empty());
    }
}
