//! The query execution engine: reusable per-thread scratch state and
//! the parallel batch API.
//!
//! A single Algorithm 2 query needs three pieces of transient state —
//! the probed bucket list, the HLL merge accumulator, and the
//! candidate-dedup hash set. Allocating them per query is fine for one
//! call but wasteful under batch load, where the dedup set alone can
//! reach `n` entries. [`QueryEngine`] owns that scratch and reuses it
//! across queries; [`HybridLshIndex::query_batch`] shards a query slice
//! over scoped threads, one engine per thread, and returns outputs in
//! input order — byte-identical ids to a sequential loop.

use std::time::Instant;

use hlsh_families::LshFamily;
use hlsh_hll::MergeAccumulator;
use hlsh_vec::{Distance, PointId, PointSet};

use crate::hasher::FxHashSet;
use crate::index::HybridLshIndex;
use crate::report::{QueryOutput, QueryReport};
use crate::search::{ExecutedArm, Strategy, VerifyMode};
use crate::store::BucketStore;

/// Reusable scratch state for running queries.
///
/// One engine serves one thread: methods take `&mut self` and recycle
/// the dedup set, candidate list and merge accumulator between calls.
/// Results are identical to the allocate-per-query path.
#[derive(Debug, Default)]
pub struct QueryEngine {
    seen: FxHashSet<PointId>,
    cands: Vec<PointId>,
    acc: Option<MergeAccumulator>,
    verify: VerifyMode,
}

impl QueryEngine {
    /// Creates an engine with empty scratch and the default
    /// [`VerifyMode::Kernel`] distance filter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an engine with an explicit S3 verification mode
    /// ([`VerifyMode::Scalar`] forces per-candidate `distance()` calls;
    /// useful as a benchmark baseline).
    pub fn with_verify_mode(verify: VerifyMode) -> Self {
        Self { verify, ..Self::default() }
    }

    /// The S3 verification mode in force.
    pub fn verify_mode(&self) -> VerifyMode {
        self.verify
    }

    /// Hybrid query (Algorithm 2) with reused scratch.
    pub fn query<S, F, D, B>(
        &mut self,
        index: &HybridLshIndex<S, F, D, B>,
        q: &S::Point,
        r: f64,
    ) -> QueryOutput
    where
        S: PointSet,
        F: LshFamily<S::Point>,
        D: Distance<S::Point>,
        B: BucketStore,
    {
        self.query_with_strategy(index, q, r, Strategy::Hybrid)
    }

    /// Runs a query under an explicit strategy with reused scratch.
    pub fn query_with_strategy<S, F, D, B>(
        &mut self,
        index: &HybridLshIndex<S, F, D, B>,
        q: &S::Point,
        r: f64,
        strategy: Strategy,
    ) -> QueryOutput
    where
        S: PointSet,
        F: LshFamily<S::Point>,
        D: Distance<S::Point>,
        B: BucketStore,
    {
        let t_start = Instant::now();
        match strategy {
            Strategy::LinearOnly => {
                let ids = linear_arm(index, q, r, self.verify);
                let total = t_start.elapsed().as_nanos() as u64;
                QueryOutput {
                    report: QueryReport {
                        executed: ExecutedArm::Linear,
                        collisions: 0,
                        cand_size_estimate: 0.0,
                        cand_size_actual: None,
                        output_size: ids.len(),
                        hash_nanos: 0,
                        hll_nanos: 0,
                        total_nanos: total,
                    },
                    ids,
                }
            }
            Strategy::LshOnly => {
                let (buckets, collisions, hash_nanos) = index.probe(q);
                self.lsh_output(index, q, r, &buckets, collisions, hash_nanos, 0, None, t_start)
            }
            Strategy::Hybrid => {
                // Algorithm 2 lines 1–2: collisions + candSize estimate.
                let (buckets, collisions, hash_nanos, cand_estimate, hll_nanos) =
                    self.probe_and_estimate(index, q);
                self.hybrid_decision(
                    index,
                    q,
                    r,
                    &buckets,
                    collisions,
                    cand_estimate,
                    hash_nanos,
                    hll_nanos,
                    t_start,
                )
            }
        }
    }

    /// Probes and estimates once, then runs the query only when the
    /// estimated distinct-candidate count exceeds `skip_at_most`;
    /// returns `None` (no arm executed) otherwise.
    ///
    /// This is the top-k driver's level filter: a schedule level whose
    /// predicted candidates are all already verified cannot improve the
    /// heap, and deciding that from the sketches costs `O(mL)` — the
    /// same probe + merge work the executed query needs anyway, done
    /// once here rather than twice.
    ///
    /// Under [`Strategy::LinearOnly`] the filter does not apply (a scan
    /// forms no candidate set) and the query always runs. Under
    /// [`Strategy::LshOnly`] the report's `cand_size_estimate` carries
    /// the sketch estimate (unlike
    /// [`query_with_strategy`](Self::query_with_strategy), which skips
    /// estimation there); ids are identical.
    pub fn query_unless_cand_at_most<S, F, D, B>(
        &mut self,
        index: &HybridLshIndex<S, F, D, B>,
        q: &S::Point,
        r: f64,
        strategy: Strategy,
        skip_at_most: f64,
    ) -> Option<QueryOutput>
    where
        S: PointSet,
        F: LshFamily<S::Point>,
        D: Distance<S::Point>,
        B: BucketStore,
    {
        if matches!(strategy, Strategy::LinearOnly) {
            return Some(self.query_with_strategy(index, q, r, strategy));
        }
        let t_start = Instant::now();
        let (buckets, collisions, hash_nanos, cand_estimate, hll_nanos) =
            self.probe_and_estimate(index, q);
        if cand_estimate <= skip_at_most {
            return None;
        }
        Some(match strategy {
            Strategy::LshOnly => self.lsh_output(
                index,
                q,
                r,
                &buckets,
                collisions,
                hash_nanos,
                hll_nanos,
                Some(cand_estimate),
                t_start,
            ),
            _ => self.hybrid_decision(
                index,
                q,
                r,
                &buckets,
                collisions,
                cand_estimate,
                hash_nanos,
                hll_nanos,
                t_start,
            ),
        })
    }

    /// Steps S1–S2 of Algorithm 2 with reused scratch: probe the `L`
    /// buckets, merge their sketches. Returns `(buckets, collisions,
    /// hash_nanos, cand_estimate, hll_nanos)`.
    fn probe_and_estimate<'a, S, F, D, B>(
        &mut self,
        index: &'a HybridLshIndex<S, F, D, B>,
        q: &S::Point,
    ) -> (Vec<crate::bucket::BucketRef<'a>>, usize, u64, f64, u64)
    where
        S: PointSet,
        F: LshFamily<S::Point>,
        D: Distance<S::Point>,
        B: BucketStore,
    {
        let (buckets, collisions, hash_nanos) = index.probe(q);
        let t_hll = Instant::now();
        let acc = self.accumulator(index);
        for b in &buckets {
            b.contribute_to(acc);
        }
        let cand_estimate = acc.estimate();
        let hll_nanos = t_hll.elapsed().as_nanos() as u64;
        (buckets, collisions, hash_nanos, cand_estimate, hll_nanos)
    }

    /// Runs the LSH arm over already-probed buckets and assembles the
    /// report; `estimate` carries a sketch estimate when one was
    /// computed (`None` mirrors the classic LshOnly report, whose
    /// `cand_size_estimate` is the exact candidate count).
    #[allow(clippy::too_many_arguments)]
    fn lsh_output<S, F, D, B>(
        &mut self,
        index: &HybridLshIndex<S, F, D, B>,
        q: &S::Point,
        r: f64,
        buckets: &[crate::bucket::BucketRef<'_>],
        collisions: usize,
        hash_nanos: u64,
        hll_nanos: u64,
        estimate: Option<f64>,
        t_start: Instant,
    ) -> QueryOutput
    where
        S: PointSet,
        F: LshFamily<S::Point>,
        D: Distance<S::Point>,
        B: BucketStore,
    {
        let (ids, cand_actual) = self.lsh_arm(index, q, r, buckets);
        let total = t_start.elapsed().as_nanos() as u64;
        QueryOutput {
            report: QueryReport {
                executed: ExecutedArm::Lsh,
                collisions,
                cand_size_estimate: estimate.unwrap_or(cand_actual as f64),
                cand_size_actual: Some(cand_actual),
                output_size: ids.len(),
                hash_nanos,
                hll_nanos,
                total_nanos: total,
            },
            ids,
        }
    }

    /// Algorithm 2 lines 3–4 over already-probed buckets: compare
    /// costs, run the cheaper arm, assemble the report.
    #[allow(clippy::too_many_arguments)]
    fn hybrid_decision<S, F, D, B>(
        &mut self,
        index: &HybridLshIndex<S, F, D, B>,
        q: &S::Point,
        r: f64,
        buckets: &[crate::bucket::BucketRef<'_>],
        collisions: usize,
        cand_estimate: f64,
        hash_nanos: u64,
        hll_nanos: u64,
        t_start: Instant,
    ) -> QueryOutput
    where
        S: PointSet,
        F: LshFamily<S::Point>,
        D: Distance<S::Point>,
        B: BucketStore,
    {
        let prefer_lsh = index.cost_model().prefer_lsh(collisions, cand_estimate, index.len());
        let (executed, ids, cand_actual) = if prefer_lsh {
            let (ids, cand) = self.lsh_arm(index, q, r, buckets);
            (ExecutedArm::Lsh, ids, Some(cand))
        } else {
            (ExecutedArm::Linear, linear_arm(index, q, r, self.verify), None)
        };
        let total = t_start.elapsed().as_nanos() as u64;
        QueryOutput {
            report: QueryReport {
                executed,
                collisions,
                cand_size_estimate: cand_estimate,
                cand_size_actual: cand_actual,
                output_size: ids.len(),
                hash_nanos,
                hll_nanos,
                total_nanos: total,
            },
            ids,
        }
    }

    /// Like [`query_with_strategy`](Self::query_with_strategy) but the
    /// output carries each reported id's exact distance, emitted by the
    /// distance-returning verification kernels instead of being
    /// recomputed per id afterwards. The id sequence and the report are
    /// identical to the id-only path; each distance is bit-identical to
    /// `index.distance().distance(point, q)`.
    pub fn query_with_strategy_dist<S, F, D, B>(
        &mut self,
        index: &HybridLshIndex<S, F, D, B>,
        q: &S::Point,
        r: f64,
        strategy: Strategy,
    ) -> QueryDistOutput
    where
        S: PointSet,
        F: LshFamily<S::Point>,
        D: Distance<S::Point>,
        B: BucketStore,
    {
        let t_start = Instant::now();
        match strategy {
            Strategy::LinearOnly => {
                let pairs = linear_arm_dist(index, q, r, self.verify);
                let total = t_start.elapsed().as_nanos() as u64;
                QueryDistOutput {
                    report: QueryReport {
                        executed: ExecutedArm::Linear,
                        collisions: 0,
                        cand_size_estimate: 0.0,
                        cand_size_actual: None,
                        output_size: pairs.len(),
                        hash_nanos: 0,
                        hll_nanos: 0,
                        total_nanos: total,
                    },
                    pairs,
                }
            }
            Strategy::LshOnly => {
                let (buckets, collisions, hash_nanos) = index.probe(q);
                self.lsh_output_dist(
                    index, q, r, &buckets, collisions, hash_nanos, 0, None, t_start,
                )
            }
            Strategy::Hybrid => {
                let (buckets, collisions, hash_nanos, cand_estimate, hll_nanos) =
                    self.probe_and_estimate(index, q);
                self.hybrid_decision_dist(
                    index,
                    q,
                    r,
                    &buckets,
                    collisions,
                    cand_estimate,
                    hash_nanos,
                    hll_nanos,
                    t_start,
                )
            }
        }
    }

    /// Distance-returning twin of
    /// [`query_unless_cand_at_most`](Self::query_unless_cand_at_most):
    /// same probe/estimate sharing, same skip decision, but an executed
    /// query's output carries `(id, distance)` pairs — the top-k
    /// driver's level query.
    pub fn query_unless_cand_at_most_dist<S, F, D, B>(
        &mut self,
        index: &HybridLshIndex<S, F, D, B>,
        q: &S::Point,
        r: f64,
        strategy: Strategy,
        skip_at_most: f64,
    ) -> Option<QueryDistOutput>
    where
        S: PointSet,
        F: LshFamily<S::Point>,
        D: Distance<S::Point>,
        B: BucketStore,
    {
        if matches!(strategy, Strategy::LinearOnly) {
            return Some(self.query_with_strategy_dist(index, q, r, strategy));
        }
        let t_start = Instant::now();
        let (buckets, collisions, hash_nanos, cand_estimate, hll_nanos) =
            self.probe_and_estimate(index, q);
        if cand_estimate <= skip_at_most {
            return None;
        }
        Some(match strategy {
            Strategy::LshOnly => self.lsh_output_dist(
                index,
                q,
                r,
                &buckets,
                collisions,
                hash_nanos,
                hll_nanos,
                Some(cand_estimate),
                t_start,
            ),
            _ => self.hybrid_decision_dist(
                index,
                q,
                r,
                &buckets,
                collisions,
                cand_estimate,
                hash_nanos,
                hll_nanos,
                t_start,
            ),
        })
    }

    /// Distance-returning twin of [`lsh_output`](Self::lsh_output).
    #[allow(clippy::too_many_arguments)]
    fn lsh_output_dist<S, F, D, B>(
        &mut self,
        index: &HybridLshIndex<S, F, D, B>,
        q: &S::Point,
        r: f64,
        buckets: &[crate::bucket::BucketRef<'_>],
        collisions: usize,
        hash_nanos: u64,
        hll_nanos: u64,
        estimate: Option<f64>,
        t_start: Instant,
    ) -> QueryDistOutput
    where
        S: PointSet,
        F: LshFamily<S::Point>,
        D: Distance<S::Point>,
        B: BucketStore,
    {
        let (pairs, cand_actual) = self.lsh_arm_dist(index, q, r, buckets);
        let total = t_start.elapsed().as_nanos() as u64;
        QueryDistOutput {
            report: QueryReport {
                executed: ExecutedArm::Lsh,
                collisions,
                cand_size_estimate: estimate.unwrap_or(cand_actual as f64),
                cand_size_actual: Some(cand_actual),
                output_size: pairs.len(),
                hash_nanos,
                hll_nanos,
                total_nanos: total,
            },
            pairs,
        }
    }

    /// Distance-returning twin of
    /// [`hybrid_decision`](Self::hybrid_decision).
    #[allow(clippy::too_many_arguments)]
    fn hybrid_decision_dist<S, F, D, B>(
        &mut self,
        index: &HybridLshIndex<S, F, D, B>,
        q: &S::Point,
        r: f64,
        buckets: &[crate::bucket::BucketRef<'_>],
        collisions: usize,
        cand_estimate: f64,
        hash_nanos: u64,
        hll_nanos: u64,
        t_start: Instant,
    ) -> QueryDistOutput
    where
        S: PointSet,
        F: LshFamily<S::Point>,
        D: Distance<S::Point>,
        B: BucketStore,
    {
        let prefer_lsh = index.cost_model().prefer_lsh(collisions, cand_estimate, index.len());
        let (executed, pairs, cand_actual) = if prefer_lsh {
            let (pairs, cand) = self.lsh_arm_dist(index, q, r, buckets);
            (ExecutedArm::Lsh, pairs, Some(cand))
        } else {
            (ExecutedArm::Linear, linear_arm_dist(index, q, r, self.verify), None)
        };
        let total = t_start.elapsed().as_nanos() as u64;
        QueryDistOutput {
            report: QueryReport {
                executed,
                collisions,
                cand_size_estimate: cand_estimate,
                cand_size_actual: cand_actual,
                output_size: pairs.len(),
                hash_nanos,
                hll_nanos,
                total_nanos: total,
            },
            pairs,
        }
    }

    /// Distance-returning twin of [`lsh_arm`](Self::lsh_arm): same
    /// dedup, same filter predicate, distances emitted alongside.
    fn lsh_arm_dist<S, F, D, B>(
        &mut self,
        index: &HybridLshIndex<S, F, D, B>,
        q: &S::Point,
        r: f64,
        buckets: &[crate::bucket::BucketRef<'_>],
    ) -> (Vec<(PointId, f64)>, usize)
    where
        S: PointSet,
        F: LshFamily<S::Point>,
        D: Distance<S::Point>,
        B: BucketStore,
    {
        self.seen.clear();
        self.cands.clear();
        for b in buckets {
            for &id in b.members() {
                if self.seen.insert(id) {
                    self.cands.push(id);
                }
            }
        }
        let (data, distance) = (index.data(), index.distance());
        let mut out = Vec::new();
        match self.verify {
            VerifyMode::Kernel => distance.verify_many_dist(data, &self.cands, q, r, &mut out),
            VerifyMode::Scalar => {
                hlsh_vec::metric::verify_scalar_dist(distance, data, &self.cands, q, r, &mut out)
            }
        }
        (out, self.cands.len())
    }

    /// The merge accumulator for `index`'s HLL config, cleared and
    /// ready (recreated only when the config changes between indexes).
    fn accumulator<S, F, D, B>(
        &mut self,
        index: &HybridLshIndex<S, F, D, B>,
    ) -> &mut MergeAccumulator
    where
        S: PointSet,
        F: LshFamily<S::Point>,
        D: Distance<S::Point>,
        B: BucketStore,
    {
        let config = index.hll_config();
        match &mut self.acc {
            Some(acc) if acc.config() == config => acc.clear(),
            slot => *slot = Some(MergeAccumulator::new(config)),
        }
        self.acc.as_mut().expect("accumulator just ensured")
    }

    /// Step S2 + S3: dedup the colliding points, then verify the whole
    /// candidate list in one batched distance-filter call (under
    /// [`VerifyMode::Kernel`], a one-to-many kernel straight over the
    /// dataset's flat storage on dense data). Returns (reported ids,
    /// distinct candidate count). Output order equals the interleaved
    /// per-candidate loop: first-collision order, filtered.
    fn lsh_arm<S, F, D, B>(
        &mut self,
        index: &HybridLshIndex<S, F, D, B>,
        q: &S::Point,
        r: f64,
        buckets: &[crate::bucket::BucketRef<'_>],
    ) -> (Vec<PointId>, usize)
    where
        S: PointSet,
        F: LshFamily<S::Point>,
        D: Distance<S::Point>,
        B: BucketStore,
    {
        self.seen.clear();
        self.cands.clear();
        for b in buckets {
            for &id in b.members() {
                if self.seen.insert(id) {
                    self.cands.push(id);
                }
            }
        }
        let (data, distance) = (index.data(), index.distance());
        let mut out = Vec::new();
        match self.verify {
            VerifyMode::Kernel => distance.verify_many(data, &self.cands, q, r, &mut out),
            VerifyMode::Scalar => {
                hlsh_vec::metric::verify_scalar(distance, data, &self.cands, q, r, &mut out)
            }
        }
        (out, self.cands.len())
    }
}

/// One query's distance-annotated result: the usual [`QueryReport`]
/// plus the reported ids paired with their exact distances (each
/// bit-identical to a `distance()` call on the same point). Produced by
/// [`QueryEngine::query_with_strategy_dist`] and consumed by rankers —
/// the top-k engine feeds these pairs straight into its heap.
#[derive(Clone, Debug)]
pub struct QueryDistOutput {
    /// `(id, distance)` of every reported point, in the same order the
    /// id-only path reports ids.
    pub pairs: Vec<(PointId, f64)>,
    /// Instrumentation (same contract as [`QueryOutput`]).
    pub report: QueryReport,
}

/// The brute-force arm: scan every point (batched through the metric's
/// [`scan_within`](Distance::scan_within) kernel unless scalar mode is
/// forced).
fn linear_arm<S, F, D, B>(
    index: &HybridLshIndex<S, F, D, B>,
    q: &S::Point,
    r: f64,
    verify: VerifyMode,
) -> Vec<PointId>
where
    S: PointSet,
    F: LshFamily<S::Point>,
    D: Distance<S::Point>,
    B: BucketStore,
{
    let (data, distance) = (index.data(), index.distance());
    let mut out = Vec::new();
    match verify {
        VerifyMode::Kernel => distance.scan_within(data, q, r, &mut out),
        VerifyMode::Scalar => hlsh_vec::metric::scan_scalar(distance, data, q, r, &mut out),
    }
    out
}

/// Distance-returning twin of [`linear_arm`].
fn linear_arm_dist<S, F, D, B>(
    index: &HybridLshIndex<S, F, D, B>,
    q: &S::Point,
    r: f64,
    verify: VerifyMode,
) -> Vec<(PointId, f64)>
where
    S: PointSet,
    F: LshFamily<S::Point>,
    D: Distance<S::Point>,
    B: BucketStore,
{
    let (data, distance) = (index.data(), index.distance());
    let mut out = Vec::new();
    match verify {
        VerifyMode::Kernel => distance.scan_within_dist(data, q, r, &mut out),
        VerifyMode::Scalar => hlsh_vec::metric::scan_scalar_dist(distance, data, q, r, &mut out),
    }
    out
}

/// Adapter presenting a slice of `AsRef<P>` values as a [`PointSet`].
/// (The `fn() -> &P` phantom keeps the adapter `Sync` regardless of
/// `P`'s own `Sync`-ness; only `&Q` is ever shared across threads.)
struct SliceSet<'a, Q, P: ?Sized>(&'a [Q], std::marker::PhantomData<fn() -> &'a P>);

impl<Q, P> PointSet for SliceSet<'_, Q, P>
where
    Q: AsRef<P>,
    P: ?Sized,
{
    type Point = P;

    fn len(&self) -> usize {
        self.0.len()
    }

    fn point(&self, i: usize) -> &P {
        self.0[i].as_ref()
    }
}

impl<S, F, D, B> HybridLshIndex<S, F, D, B>
where
    S: PointSet + Sync,
    F: LshFamily<S::Point> + Sync,
    F::GFn: Sync,
    D: Distance<S::Point> + Sync,
    B: BucketStore + Sync,
{
    /// Answers a batch of hybrid queries, sharded across all available
    /// cores. Outputs are in input order and their ids are
    /// byte-identical to a sequential `query` loop.
    pub fn query_batch<Q>(&self, queries: &[Q], r: f64) -> Vec<QueryOutput>
    where
        Q: AsRef<S::Point> + Sync,
    {
        self.query_batch_with_strategy(queries, r, Strategy::Hybrid, None)
    }

    /// Batch querying under an explicit strategy and optional thread
    /// count (`None` = all available cores).
    pub fn query_batch_with_strategy<Q>(
        &self,
        queries: &[Q],
        r: f64,
        strategy: Strategy,
        threads: Option<usize>,
    ) -> Vec<QueryOutput>
    where
        Q: AsRef<S::Point> + Sync,
    {
        self.query_batch_set(&SliceSet(queries, std::marker::PhantomData), r, strategy, threads)
    }

    /// Batch querying over any [`PointSet`] of queries (the natural
    /// shape for the experiment harness, whose held-out query sets are
    /// themselves datasets).
    pub fn query_batch_set<Q>(
        &self,
        queries: &Q,
        r: f64,
        strategy: Strategy,
        threads: Option<usize>,
    ) -> Vec<QueryOutput>
    where
        Q: PointSet<Point = S::Point> + Sync,
    {
        hlsh_vec::parallel::par_map_with(queries.len(), threads, QueryEngine::new, |engine, qi| {
            engine.query_with_strategy(self, queries.point(qi), r, strategy)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::IndexBuilder;
    use crate::cost::CostModel;
    use hlsh_families::BitSampling;
    use hlsh_vec::{BinaryDataset, Hamming};

    fn fingerprints(n: u64, seed: u64) -> Vec<u64> {
        (0..n).map(|i| hlsh_hll::hash::hash_id(seed, i / 3)).collect()
    }

    fn build_index(fps: &[u64]) -> HybridLshIndex<BinaryDataset, BitSampling, Hamming> {
        IndexBuilder::new(BitSampling::new(64), Hamming)
            .tables(8)
            .hash_len(10)
            .seed(42)
            .cost_model(CostModel::from_ratio(4.0))
            .build(BinaryDataset::from_fingerprints(fps))
    }

    #[test]
    fn engine_reuse_matches_fresh_engines() {
        let fps = fingerprints(600, 9);
        let index = build_index(&fps);
        let mut engine = QueryEngine::new();
        for qi in (0..fps.len()).step_by(37) {
            let q = [fps[qi]];
            let reused = engine.query(&index, &q[..], 6.0);
            let fresh = index.query(&q[..], 6.0);
            assert_eq!(reused.ids, fresh.ids);
            assert_eq!(reused.report.executed, fresh.report.executed);
            assert_eq!(reused.report.collisions, fresh.report.collisions);
            assert_eq!(reused.report.cand_size_estimate, fresh.report.cand_size_estimate);
        }
    }

    #[test]
    fn batch_matches_sequential_loop_all_strategies() {
        let fps = fingerprints(500, 4);
        let index = build_index(&fps);
        let queries: Vec<Vec<u64>> =
            (0..40).map(|i| vec![fps[i * 12] ^ (i as u64 & 0b11)]).collect();
        for strategy in Strategy::ALL {
            for threads in [Some(1), Some(3), Some(7), None] {
                let batch = index.query_batch_with_strategy(&queries, 5.0, strategy, threads);
                assert_eq!(batch.len(), queries.len());
                for (qi, out) in batch.iter().enumerate() {
                    let seq = index.query_with_strategy(&queries[qi], 5.0, strategy);
                    assert_eq!(out.ids, seq.ids, "strategy {strategy} query {qi}");
                    assert_eq!(out.report.executed, seq.report.executed);
                }
            }
        }
    }

    #[test]
    fn batch_on_empty_query_set() {
        let index = build_index(&fingerprints(50, 1));
        let queries: Vec<Vec<u64>> = Vec::new();
        assert!(index.query_batch(&queries, 2.0).is_empty());
    }

    #[test]
    fn batch_with_more_threads_than_queries() {
        let fps = fingerprints(80, 2);
        let index = build_index(&fps);
        let queries = vec![vec![fps[0]], vec![fps[40]]];
        let out = index.query_batch_with_strategy(&queries, 3.0, Strategy::Hybrid, Some(16));
        assert_eq!(out.len(), 2);
        for (qi, o) in out.iter().enumerate() {
            assert_eq!(o.ids, index.query(&queries[qi], 3.0).ids);
        }
    }

    #[test]
    fn frozen_batch_matches_map_batch() {
        let fps = fingerprints(400, 7);
        let queries: Vec<Vec<u64>> = (0..25).map(|i| vec![fps[i * 16]]).collect();
        let map_index = build_index(&fps);
        let map_out = map_index.query_batch(&queries, 4.0);
        let frozen = map_index.freeze();
        let frozen_out = frozen.query_batch(&queries, 4.0);
        for (a, b) in map_out.iter().zip(&frozen_out) {
            assert_eq!(a.ids, b.ids);
            assert_eq!(a.report.executed, b.report.executed);
            assert_eq!(a.report.collisions, b.report.collisions);
            assert_eq!(a.report.cand_size_estimate, b.report.cand_size_estimate);
        }
    }
}
