//! Fluent construction of a [`HybridLshIndex`].

use hlsh_families::sampling::rng_stream;
use hlsh_families::LshFamily;
use hlsh_hll::HllConfig;
use hlsh_vec::{Distance, PointId, PointSet};

use crate::cost::CostModel;
use crate::index::HybridLshIndex;
use crate::pipeline::{BuildPipeline, DEFAULT_BLOCK};
use crate::store::FrozenStore;

/// How Algorithm 1 construction walks the data.
///
/// Both modes produce byte-identical indexes (same bucket contents,
/// same sketch registers after a freeze) — asserted by
/// `tests/build_parity.rs`; [`Blocked`](BuildMode::Blocked) is the
/// default and the faster path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BuildMode {
    /// The literal per-point loop: for each point, for each table, one
    /// `bucket_key` + one hashmap insert. Kept as the reference
    /// baseline (and the `build` bench's comparison arm).
    PerPoint,
    /// The staged pipeline: hash `block` points per kernel call, group
    /// keys, bulk-insert runs (see [`crate::pipeline`]).
    Blocked {
        /// Points hashed per kernel call.
        block: usize,
    },
}

impl Default for BuildMode {
    fn default() -> Self {
        BuildMode::Blocked { block: DEFAULT_BLOCK }
    }
}

/// Configures and builds a [`HybridLshIndex`].
///
/// Defaults follow the paper's experimental setting (§4.1): `L = 50`
/// tables, HLL precision 7 (`m = 128`), lazy-sketch threshold `m`, and
/// automatic cost-model calibration on the indexed data when no model
/// is supplied. Construction runs the blocked pipeline by default
/// ([`BuildMode`]).
#[derive(Clone, Debug)]
pub struct IndexBuilder<F, D> {
    family: F,
    distance: D,
    l: usize,
    k: usize,
    hll_precision: u8,
    lazy_threshold: Option<usize>,
    seed: u64,
    cost: Option<CostModel>,
    parallel: bool,
    mode: BuildMode,
}

impl<F, D> IndexBuilder<F, D> {
    /// Starts a builder around a family and distance.
    pub fn new(family: F, distance: D) -> Self {
        Self {
            family,
            distance,
            l: 50,
            k: 8,
            hll_precision: 7,
            lazy_threshold: None,
            seed: 0,
            cost: None,
            parallel: true,
            mode: BuildMode::default(),
        }
    }

    /// Sets the number of hash tables `L` (default 50, the paper's
    /// setting).
    pub fn tables(mut self, l: usize) -> Self {
        self.l = l;
        self
    }

    /// Sets the concatenation width `k` (default 8). See
    /// [`hlsh_families::k_paper`] for the paper's rule deriving `k`
    /// from `δ`, `L` and `p₁`.
    pub fn hash_len(mut self, k: usize) -> Self {
        self.k = k;
        self
    }

    /// Sets the HLL precision (register count `m = 2^precision`,
    /// default 7 → `m = 128`).
    pub fn hll_precision(mut self, precision: u8) -> Self {
        self.hll_precision = precision;
        self
    }

    /// Sets the bucket size at which a sketch is materialised
    /// (default: the register count `m`, the paper's suggestion).
    pub fn lazy_threshold(mut self, threshold: usize) -> Self {
        self.lazy_threshold = Some(threshold);
        self
    }

    /// Seeds all randomness (g-function sampling and the HLL element
    /// hash). Two builds with equal seeds are identical.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Supplies an explicit cost model; without one, `build` calibrates
    /// `α` and `β` on the indexed data (the paper's procedure).
    pub fn cost_model(mut self, cost: CostModel) -> Self {
        self.cost = Some(cost);
        self
    }

    /// Disables the multi-threaded build (tables are built in parallel
    /// by default).
    pub fn sequential(mut self) -> Self {
        self.parallel = false;
        self
    }

    /// Selects the construction walk ([`BuildMode::Blocked`] is the
    /// default).
    pub fn build_mode(mut self, mode: BuildMode) -> Self {
        self.mode = mode;
        self
    }

    /// Forces the per-point Algorithm 1 loop (the baseline the blocked
    /// pipeline is benchmarked against).
    pub fn per_point(self) -> Self {
        self.build_mode(BuildMode::PerPoint)
    }

    /// Sets the blocked pipeline's block size (points per hashing
    /// kernel call), switching to [`BuildMode::Blocked`] if needed.
    ///
    /// # Panics
    /// `build` panics if `block == 0`.
    pub fn block_size(self, block: usize) -> Self {
        self.build_mode(BuildMode::Blocked { block })
    }

    /// Resolves the cost model exactly as [`build`](Self::build) would
    /// on `data`: the explicit model if one was supplied, calibration
    /// otherwise. The sharded builders use this to calibrate once on
    /// the full data set and hand every shard the same model — a
    /// prerequisite of shard-merge byte-identity.
    pub(crate) fn resolve_cost<S>(&self, data: &S) -> CostModel
    where
        S: PointSet,
        D: Distance<S::Point>,
    {
        self.cost.unwrap_or_else(|| {
            if data.len() >= 2 {
                // The paper calibrates on ~10k points / 100 queries.
                let sample = 10_000.min(100 * data.len());
                CostModel::calibrate(data, &self.distance, sample, self.seed)
            } else {
                CostModel::from_ratio(1.0)
            }
        })
    }

    /// Samples the `L` g-functions and fixes the HLL configuration —
    /// the deterministic part of every build path (depends only on the
    /// builder's seed and knobs, never on the data).
    fn prepare<P: ?Sized>(&self) -> (Vec<F::GFn>, HllConfig, usize)
    where
        F: LshFamily<P>,
    {
        assert!(self.l > 0, "need at least one hash table");
        assert!(self.k > 0, "need at least one atom per g-function");
        let hll_config = HllConfig::new(self.hll_precision, self.seed ^ 0x48_4C_4C);
        let lazy_threshold = self.lazy_threshold.unwrap_or_else(|| hll_config.registers());
        let gfns: Vec<F::GFn> = (0..self.l)
            .map(|j| {
                let mut rng = rng_stream(self.seed, j as u64);
                self.family.sample(self.k, &mut rng)
            })
            .collect();
        (gfns, hll_config, lazy_threshold)
    }

    /// Like [`build`](Self::build) but decides the cost model at the
    /// call site: `Some(model)` uses it, `None` calibrates on the data
    /// (overriding any earlier [`cost_model`](Self::cost_model) call).
    pub fn build_with_cost<S>(mut self, data: S, cost: Option<CostModel>) -> HybridLshIndex<S, F, D>
    where
        S: PointSet + Sync,
        F: LshFamily<S::Point>,
        F::GFn: Send,
        D: Distance<S::Point>,
    {
        self.cost = cost;
        self.build(data)
    }

    /// Builds the index over `data` (Algorithm 1).
    ///
    /// # Panics
    /// Panics if `L == 0` or `k == 0`.
    pub fn build<S>(self, data: S) -> HybridLshIndex<S, F, D>
    where
        S: PointSet + Sync,
        F: LshFamily<S::Point>,
        F::GFn: Send,
        D: Distance<S::Point>,
    {
        self.build_mapped(data, None)
    }

    /// [`build`](Self::build) with an optional id renaming: row `i` is
    /// indexed under id `id_map[i]`. This is the sharded build's
    /// global-id hook (`pub(crate)`: a renamed index is only coherent
    /// behind a sharded engine that translates members back to rows).
    pub(crate) fn build_mapped<S>(
        self,
        data: S,
        id_map: Option<&[PointId]>,
    ) -> HybridLshIndex<S, F, D>
    where
        S: PointSet + Sync,
        F: LshFamily<S::Point>,
        F::GFn: Send,
        D: Distance<S::Point>,
    {
        let (gfns, hll_config, lazy_threshold) = self.prepare();
        let cost = self.resolve_cost(&data);
        HybridLshIndex::construct(
            data,
            self.family,
            self.distance,
            gfns,
            hll_config,
            lazy_threshold,
            cost,
            self.k,
            self.parallel,
            self.mode,
            id_map,
        )
    }

    /// Builds the index with every table already in the read-optimised
    /// CSR arena ([`FrozenStore`]) — the right call for
    /// build-once/query-many workloads. Under the default
    /// [`BuildMode::Blocked`] the arenas are laid out straight from the
    /// pipeline's key-grouped runs with no intermediate hashmap; under
    /// [`BuildMode::PerPoint`] this is `build(..).freeze()`. Both are
    /// byte-identical. See [`HybridLshIndex::freeze`].
    pub fn build_frozen<S>(self, data: S) -> HybridLshIndex<S, F, D, FrozenStore>
    where
        S: PointSet + Sync,
        F: LshFamily<S::Point>,
        F::GFn: Send,
        D: Distance<S::Point>,
    {
        self.build_frozen_mapped(data, None)
    }

    /// [`build_frozen`](Self::build_frozen) with the sharded build's id
    /// renaming; see [`build_mapped`](Self::build_mapped).
    pub(crate) fn build_frozen_mapped<S>(
        self,
        data: S,
        id_map: Option<&[PointId]>,
    ) -> HybridLshIndex<S, F, D, FrozenStore>
    where
        S: PointSet + Sync,
        F: LshFamily<S::Point>,
        F::GFn: Send,
        D: Distance<S::Point>,
    {
        match self.mode {
            BuildMode::PerPoint => self.build_mapped(data, id_map).freeze(),
            BuildMode::Blocked { block } => {
                let (gfns, hll_config, lazy_threshold) = self.prepare();
                let cost = self.resolve_cost(&data);
                HybridLshIndex::construct_frozen(
                    data,
                    self.family,
                    self.distance,
                    gfns,
                    hll_config,
                    lazy_threshold,
                    cost,
                    self.k,
                    self.parallel,
                    BuildPipeline::with_block(block),
                    id_map,
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlsh_families::BitSampling;
    use hlsh_vec::{BinaryDataset, Hamming};

    fn tiny_data() -> BinaryDataset {
        BinaryDataset::from_fingerprints(&[0, 1, 3, 0xFF, 0xFFFF, u64::MAX])
    }

    #[test]
    fn builder_defaults_match_paper() {
        let idx = IndexBuilder::new(BitSampling::new(64), Hamming)
            .hash_len(4)
            .seed(1)
            .cost_model(CostModel::from_ratio(1.0))
            .build(tiny_data());
        assert_eq!(idx.tables(), 50);
        assert_eq!(idx.k(), 4);
        assert_eq!(idx.hll_config().registers(), 128);
        assert_eq!(idx.len(), 6);
    }

    #[test]
    #[should_panic(expected = "at least one hash table")]
    fn zero_tables_rejected() {
        let _ = IndexBuilder::new(BitSampling::new(64), Hamming).tables(0).build(tiny_data());
    }

    #[test]
    #[should_panic(expected = "at least one atom")]
    fn zero_k_rejected() {
        let _ = IndexBuilder::new(BitSampling::new(64), Hamming).hash_len(0).build(tiny_data());
    }

    #[test]
    fn same_seed_same_index() {
        let build = |seed| {
            IndexBuilder::new(BitSampling::new(64), Hamming)
                .tables(8)
                .hash_len(6)
                .seed(seed)
                .cost_model(CostModel::from_ratio(1.0))
                .build(tiny_data())
        };
        let a = build(7);
        let b = build(7);
        let c = build(8);
        let q = [0u64];
        assert_eq!(a.explain(&q[..]).collisions, b.explain(&q[..]).collisions);
        assert_eq!(a.explain(&q[..]).cand_size_estimate, b.explain(&q[..]).cand_size_estimate);
        // A different seed almost surely samples different coords.
        let _ = c; // (collision counts may coincide; just ensure it builds)
    }

    #[test]
    fn auto_calibration_kicks_in() {
        let idx = IndexBuilder::new(BitSampling::new(64), Hamming)
            .tables(4)
            .hash_len(4)
            .seed(3)
            .build(tiny_data());
        assert!(idx.cost_model().alpha() > 0.0);
        assert!(idx.cost_model().beta() > 0.0);
    }

    #[test]
    fn sequential_build_equals_parallel_build() {
        let data = || {
            BinaryDataset::from_fingerprints(
                &(0..500u64).map(|i| i.wrapping_mul(0x9E3779B9)).collect::<Vec<_>>(),
            )
        };
        let par = IndexBuilder::new(BitSampling::new(64), Hamming)
            .tables(6)
            .hash_len(8)
            .seed(11)
            .cost_model(CostModel::from_ratio(1.0))
            .build(data());
        let seq = IndexBuilder::new(BitSampling::new(64), Hamming)
            .tables(6)
            .hash_len(8)
            .seed(11)
            .cost_model(CostModel::from_ratio(1.0))
            .sequential()
            .build(data());
        let q = [0xABCDu64];
        let (ep, es) = (par.explain(&q[..]), seq.explain(&q[..]));
        assert_eq!(ep.collisions, es.collisions);
        assert_eq!(ep.cand_size_estimate, es.cand_size_estimate);
        let sp = par.stats();
        let ss = seq.stats();
        assert_eq!(sp, ss);
    }
}
