//! One LSH hash table: a g-function plus its bucket map.

use hlsh_families::GFunction;
use hlsh_hll::HllConfig;
use hlsh_vec::PointId;

use crate::bucket::Bucket;
use crate::hasher::FxHashMap;

/// A single hash table `T_j` with hash function `g_j`.
#[derive(Clone, Debug)]
pub struct HashTable<G> {
    g: G,
    buckets: FxHashMap<u64, Bucket>,
}

impl<G> HashTable<G> {
    /// Creates an empty table around a sampled g-function.
    pub fn new(g: G) -> Self {
        Self { g, buckets: FxHashMap::default() }
    }

    /// The table's g-function.
    pub fn g(&self) -> &G {
        &self.g
    }

    /// Number of non-empty buckets.
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// Iterates over all buckets.
    pub fn buckets(&self) -> impl Iterator<Item = (&u64, &Bucket)> {
        self.buckets.iter()
    }

    /// Looks up the bucket for a raw key (used by multi-probe, which
    /// addresses perturbed keys directly).
    pub fn bucket_for_key(&self, key: u64) -> Option<&Bucket> {
        self.buckets.get(&key)
    }

    /// Total heap bytes of all buckets.
    pub fn memory_bytes(&self) -> usize {
        self.buckets.values().map(Bucket::memory_bytes).sum()
    }
}

impl<G> HashTable<G> {
    /// Inserts a point (Algorithm 1 lines 3–4: insert into bucket
    /// `g_i(x)` and update that bucket's HLL).
    pub fn insert<P: ?Sized>(
        &mut self,
        id: PointId,
        point: &P,
        config: HllConfig,
        lazy_threshold: usize,
    ) where
        G: GFunction<P>,
    {
        let key = self.g.bucket_key(point);
        self.buckets.entry(key).or_default().insert(id, config, lazy_threshold);
    }

    /// Looks up the bucket matching a query point.
    pub fn bucket<P: ?Sized>(&self, q: &P) -> Option<&Bucket>
    where
        G: GFunction<P>,
    {
        self.buckets.get(&self.g.bucket_key(q))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlsh_families::{BitSampling, LshFamily};
    use hlsh_families::sampling::rng_stream;
    use hlsh_vec::BinaryVec;

    fn cfg() -> HllConfig {
        HllConfig::new(7, 5)
    }

    #[test]
    fn insert_and_lookup() {
        let family = BitSampling::new(64);
        let g = family.sample(8, &mut rng_stream(3, 0));
        let mut t = HashTable::new(g);
        let a = BinaryVec::from_u64(0xFFFF_0000_FFFF_0000);
        let b = BinaryVec::from_u64(0x0000_FFFF_0000_FFFF);
        t.insert(0, a.words(), cfg(), 128);
        t.insert(1, a.words(), cfg(), 128);
        t.insert(2, b.words(), cfg(), 128);

        let bucket_a = t.bucket(a.words()).expect("bucket for a");
        assert!(bucket_a.members().contains(&0));
        assert!(bucket_a.members().contains(&1));
        // a and b differ in every sampled coordinate, so almost surely
        // land in different buckets; at minimum, bucket counts are sane.
        assert!(t.bucket_count() >= 1 && t.bucket_count() <= 2);
    }

    #[test]
    fn missing_bucket_is_none() {
        let family = BitSampling::new(64);
        let g = family.sample(8, &mut rng_stream(4, 0));
        let t: HashTable<_> = HashTable::new(g);
        let q = BinaryVec::from_u64(42);
        assert!(t.bucket(q.words()).is_none());
        assert_eq!(t.bucket_count(), 0);
        assert_eq!(t.memory_bytes(), 0);
    }

    #[test]
    fn bucket_for_key_matches_bucket() {
        let family = BitSampling::new(64);
        let g = family.sample(8, &mut rng_stream(5, 0));
        let mut t = HashTable::new(g);
        let p = BinaryVec::from_u64(12345);
        t.insert(7, p.words(), cfg(), 128);
        let key = t.g().bucket_key(p.words());
        assert_eq!(
            t.bucket_for_key(key).map(|b| b.members()),
            t.bucket(p.words()).map(|b| b.members())
        );
    }
}
