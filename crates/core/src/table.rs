//! One LSH hash table: a g-function plus a pluggable bucket store.

use hlsh_families::GFunction;
use hlsh_hll::HllConfig;
use hlsh_vec::PointId;

use crate::bucket::BucketRef;
use crate::store::{BucketStore, FrozenStore, MapStore};

/// A single hash table `T_j` with hash function `g_j`, generic over its
/// storage backend `B` ([`MapStore`] while building/streaming,
/// [`FrozenStore`] after [`freeze`](Self::freeze)).
#[derive(Clone, Debug)]
pub struct HashTable<G, B = MapStore> {
    g: G,
    store: B,
}

impl<G, B: BucketStore> HashTable<G, B> {
    /// Creates an empty table around a sampled g-function.
    pub fn new(g: G) -> Self {
        Self { g, store: B::new() }
    }

    /// Assembles a table from a g-function and an already-built store —
    /// the blocked build pipeline's terminal step, which builds stores
    /// for all `L` tables in parallel and zips them back together.
    pub fn from_parts(g: G, store: B) -> Self {
        Self { g, store }
    }

    /// The table's g-function.
    pub fn g(&self) -> &G {
        &self.g
    }

    /// The storage backend.
    pub fn store(&self) -> &B {
        &self.store
    }

    /// Number of non-empty buckets.
    pub fn bucket_count(&self) -> usize {
        self.store.bucket_count()
    }

    /// Iterates over all buckets (order is backend-defined).
    pub fn buckets(&self) -> impl Iterator<Item = (u64, BucketRef<'_>)> + '_ {
        self.store.iter()
    }

    /// Looks up the bucket for a raw key (used by multi-probe and
    /// covering LSH, which address perturbed keys directly).
    pub fn bucket_for_key(&self, key: u64) -> Option<BucketRef<'_>> {
        self.store.get(key)
    }

    /// Total heap bytes of all buckets.
    pub fn memory_bytes(&self) -> usize {
        self.store.memory_bytes()
    }

    /// Inserts a point (Algorithm 1 lines 3–4: insert into bucket
    /// `g_i(x)` and update that bucket's HLL).
    ///
    /// # Panics
    /// Panics on an immutable backend ([`FrozenStore`]).
    pub fn insert<P: ?Sized>(
        &mut self,
        id: PointId,
        point: &P,
        config: HllConfig,
        lazy_threshold: usize,
    ) where
        G: GFunction<P>,
    {
        let key = self.g.bucket_key(point);
        self.store.insert(key, id, config, lazy_threshold);
    }

    /// Looks up the bucket matching a query point.
    pub fn bucket<P: ?Sized>(&self, q: &P) -> Option<BucketRef<'_>>
    where
        G: GFunction<P>,
    {
        self.store.get(self.g.bucket_key(q))
    }
}

impl<G> HashTable<G, MapStore> {
    /// Converts to the read-optimised frozen backend. Lookups keep
    /// returning byte-identical buckets; inserts panic until
    /// [`thaw`](HashTable::thaw).
    pub fn freeze(self) -> HashTable<G, FrozenStore> {
        HashTable { g: self.g, store: self.store.freeze() }
    }
}

impl<G> HashTable<G, FrozenStore> {
    /// Converts back to the mutable hashmap backend.
    pub fn thaw(self) -> HashTable<G, MapStore> {
        HashTable { g: self.g, store: self.store.thaw() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlsh_families::sampling::rng_stream;
    use hlsh_families::{BitSampling, LshFamily};
    use hlsh_vec::BinaryVec;

    fn cfg() -> HllConfig {
        HllConfig::new(7, 5)
    }

    #[test]
    fn insert_and_lookup() {
        let family = BitSampling::new(64);
        let g = family.sample(8, &mut rng_stream(3, 0));
        let mut t: HashTable<_> = HashTable::new(g);
        let a = BinaryVec::from_u64(0xFFFF_0000_FFFF_0000);
        let b = BinaryVec::from_u64(0x0000_FFFF_0000_FFFF);
        t.insert(0, a.words(), cfg(), 128);
        t.insert(1, a.words(), cfg(), 128);
        t.insert(2, b.words(), cfg(), 128);

        let bucket_a = t.bucket(a.words()).expect("bucket for a");
        assert!(bucket_a.members().contains(&0));
        assert!(bucket_a.members().contains(&1));
        // a and b differ in every sampled coordinate, so almost surely
        // land in different buckets; at minimum, bucket counts are sane.
        assert!(t.bucket_count() >= 1 && t.bucket_count() <= 2);
    }

    #[test]
    fn missing_bucket_is_none() {
        let family = BitSampling::new(64);
        let g = family.sample(8, &mut rng_stream(4, 0));
        let t: HashTable<_> = HashTable::new(g);
        let q = BinaryVec::from_u64(42);
        assert!(t.bucket(q.words()).is_none());
        assert_eq!(t.bucket_count(), 0);
        assert_eq!(t.memory_bytes(), 0);
    }

    #[test]
    fn bucket_for_key_matches_bucket() {
        let family = BitSampling::new(64);
        let g = family.sample(8, &mut rng_stream(5, 0));
        let mut t: HashTable<_> = HashTable::new(g);
        let p = BinaryVec::from_u64(12345);
        t.insert(7, p.words(), cfg(), 128);
        let key = t.g().bucket_key(p.words());
        assert_eq!(
            t.bucket_for_key(key).map(|b| b.members()),
            t.bucket(p.words()).map(|b| b.members())
        );
    }

    #[test]
    fn freeze_preserves_lookups_and_thaw_restores_inserts() {
        let family = BitSampling::new(64);
        let g = family.sample(10, &mut rng_stream(6, 0));
        let mut t: HashTable<_> = HashTable::new(g);
        let points: Vec<BinaryVec> = (0..300u64)
            .map(|i| BinaryVec::from_u64(i.wrapping_mul(0x9E37_79B9_7F4A_7C15)))
            .collect();
        for (id, p) in points.iter().enumerate() {
            t.insert(id as PointId, p.words(), cfg(), 16);
        }

        let frozen = t.clone().freeze();
        assert_eq!(frozen.bucket_count(), t.bucket_count());
        for p in &points {
            let a = t.bucket(p.words()).expect("map bucket");
            let b = frozen.bucket(p.words()).expect("frozen bucket");
            assert_eq!(a.members(), b.members());
            assert_eq!(a.has_sketch(), b.has_sketch());
        }

        let mut thawed = frozen.thaw();
        let extra = BinaryVec::from_u64(0xABCD);
        thawed.insert(300, extra.words(), cfg(), 16);
        assert!(thawed.bucket(extra.words()).expect("bucket after thaw").members().contains(&300));
    }
}
