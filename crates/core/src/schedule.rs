//! Geometric radius schedules for the top-k ⇒ rNNR reduction.
//!
//! Classic LSH answers k-nearest-neighbor queries by solving a sequence
//! of r-near-neighbor-reporting problems at geometrically increasing
//! radii `r, cr, c²r, …` (Indyk & Motwani's reduction): stop at the
//! first radius whose answer set already contains the k nearest
//! neighbors. [`RadiusSchedule`] captures that ladder; the
//! [top-k engine](crate::topk) walks it level by level.

/// A geometric ladder of query radii `base · ratio^level`.
///
/// The schedule is the shared contract between index construction (one
/// index per level, each tuned for its radius — e.g. a p-stable family
/// with width `w ∝ r_level`) and query execution (run levels in order,
/// stop early once the heap of verified neighbors is provably — up to
/// LSH's probabilistic guarantee — complete).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RadiusSchedule {
    base: f64,
    ratio: f64,
    levels: usize,
}

impl RadiusSchedule {
    /// Creates a schedule of `levels` radii `base · ratio^i`,
    /// `i = 0 .. levels`.
    ///
    /// # Panics
    /// Panics unless `base > 0`, `ratio > 1` and `levels ≥ 1` — a
    /// non-increasing ladder would make every level redundant.
    pub fn new(base: f64, ratio: f64, levels: usize) -> Self {
        assert!(base > 0.0 && base.is_finite(), "base radius must be positive and finite");
        assert!(ratio > 1.0 && ratio.is_finite(), "radius ratio must exceed 1");
        assert!(levels >= 1, "schedule needs at least one level");
        Self { base, ratio, levels }
    }

    /// The conventional doubling schedule (`ratio = 2`).
    pub fn doubling(base: f64, levels: usize) -> Self {
        Self::new(base, 2.0, levels)
    }

    /// Smallest (first) radius.
    pub fn base(&self) -> f64 {
        self.base
    }

    /// Geometric growth factor `c`.
    pub fn ratio(&self) -> f64 {
        self.ratio
    }

    /// Number of levels.
    pub fn levels(&self) -> usize {
        self.levels
    }

    /// The radius of one level.
    ///
    /// # Panics
    /// Panics if `level >= self.levels()`.
    pub fn radius(&self, level: usize) -> f64 {
        assert!(level < self.levels, "level {level} out of range ({} levels)", self.levels);
        self.base * self.ratio.powi(level as i32)
    }

    /// Largest (last) radius — the schedule's coverage horizon; beyond
    /// it the top-k engine falls back to an exact scan.
    pub fn max_radius(&self) -> f64 {
        self.radius(self.levels - 1)
    }

    /// Iterates the radii in ascending order.
    pub fn radii(&self) -> impl Iterator<Item = f64> + '_ {
        (0..self.levels).map(|i| self.radius(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn doubling_ladder() {
        let s = RadiusSchedule::doubling(1.5, 4);
        let radii: Vec<f64> = s.radii().collect();
        assert_eq!(radii, vec![1.5, 3.0, 6.0, 12.0]);
        assert_eq!(s.base(), 1.5);
        assert_eq!(s.ratio(), 2.0);
        assert_eq!(s.levels(), 4);
        assert_eq!(s.max_radius(), 12.0);
    }

    #[test]
    fn custom_ratio() {
        let s = RadiusSchedule::new(2.0, 1.5, 3);
        assert_eq!(s.radius(0), 2.0);
        assert_eq!(s.radius(1), 3.0);
        assert_eq!(s.radius(2), 4.5);
    }

    #[test]
    fn single_level_schedule() {
        let s = RadiusSchedule::new(0.25, 4.0, 1);
        assert_eq!(s.radii().collect::<Vec<_>>(), vec![0.25]);
        assert_eq!(s.max_radius(), 0.25);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_base_rejected() {
        let _ = RadiusSchedule::new(0.0, 2.0, 3);
    }

    #[test]
    #[should_panic(expected = "exceed 1")]
    fn flat_ratio_rejected() {
        let _ = RadiusSchedule::new(1.0, 1.0, 3);
    }

    #[test]
    #[should_panic(expected = "at least one level")]
    fn empty_schedule_rejected() {
        let _ = RadiusSchedule::new(1.0, 2.0, 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_level_rejected() {
        let _ = RadiusSchedule::doubling(1.0, 2).radius(2);
    }
}
