//! Sharded indexes: partition the data across `N` independent indexes
//! and answer queries by merging per-shard outputs.
//!
//! The hybrid rNNR design partitions cleanly: per-shard candidate sets
//! union to exactly the unsharded candidate set, and per-shard
//! HyperLogLog sketches merge losslessly (registers are element-wise
//! maxima). Two properties make the merge *byte-identical* to an
//! unsharded index over the same data, not merely equivalent in
//! expectation:
//!
//! 1. **Shared randomness, global ids** — every shard samples its
//!    g-functions and HLL hash from the same builder seed, so a point
//!    hashes to the same bucket key in its shard as it would in the
//!    unsharded index; and shard tables store the points' **global**
//!    ids (the build pipeline's id-mapping hook), so bucket members
//!    *and sketch element hashes* are exactly the global bucket
//!    restricted to the shard's points. Without global ids the merged
//!    registers would encode local row numbers and shard-count-
//!    dependent estimates would leak into the walk's decisions.
//! 2. **Global decisions** — Algorithm 2's cost comparison and the
//!    top-k engine's skip/early-exit decisions run once per query on
//!    the *merged* statistics (summed collision counts, one
//!    accumulator over every shard's probed sketches, the global `n`,
//!    and a cost model calibrated once on the full data), never
//!    per-shard. Merged registers equal the unsharded registers, so
//!    every decision matches the unsharded walk bit for bit.
//!
//! With both in place, [`ShardedIndex`] reports exactly the unsharded
//! result set (ids canonically sorted ascending — the shard merge's
//! natural order; the unsharded LSH arm's first-collision order is not
//! meaningful across shards), and [`ShardedTopKIndex`] produces
//! byte-identical `(distance, id)` rankings and reports, because a
//! bounded heap's content depends only on the *set* of offered
//! candidates, which is preserved level by level. `tests/
//! sharded_props.rs` pins both contracts across shard counts, storage
//! backends and verify modes.
//!
//! Shards are built in parallel (one worker per shard via
//! [`hlsh_vec::parallel::par_map_with`], each running the blocked build
//! pipeline) and hold disjoint copies of their rows, so the total
//! resident data equals the unsharded index and each shard is a
//! self-contained unit ready to migrate to another machine.

use std::time::Instant;

use hlsh_families::LshFamily;
use hlsh_hll::hash::splitmix64;
use hlsh_hll::MergeAccumulator;
use hlsh_vec::parallel::par_map_with;
use hlsh_vec::{Distance, PointId, PointSet, SubsetPointSet};

use crate::bucket::BucketRef;
use crate::builder::IndexBuilder;
use crate::hasher::FxHashSet;
use crate::index::HybridLshIndex;
use crate::report::{QueryOutput, QueryReport};
use crate::schedule::RadiusSchedule;
use crate::search::{ExecutedArm, Strategy, VerifyMode};
use crate::store::{BucketStore, FrozenStore, MapStore};
use crate::topk::{BoundedHeap, Neighbor, TopKIndex, TopKOutput, TopKReport};

/// Deterministic seeded assignment of global point ids to shards.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardAssignment {
    seed: u64,
    shards: usize,
}

impl ShardAssignment {
    /// An assignment of points to `shards` shards, mixed by `seed`.
    ///
    /// # Panics
    /// Panics if `shards == 0`.
    pub fn new(seed: u64, shards: usize) -> Self {
        assert!(shards >= 1, "need at least one shard");
        Self { seed, shards }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The assignment seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The shard owning global point `id` — a pure function of
    /// `(seed, shards, id)`, so any party can recompute placements.
    #[inline]
    pub fn shard_of(&self, id: PointId) -> usize {
        if self.shards == 1 {
            return 0;
        }
        (splitmix64(self.seed ^ 0x5348_4152_4431_5458 ^ id as u64) % self.shards as u64) as usize
    }

    /// Partitions ids `0..n` into per-shard owner lists; list `s` holds
    /// shard `s`'s global ids in ascending order (which is also each
    /// shard's local insertion order).
    pub fn partition(&self, n: usize) -> Vec<Vec<PointId>> {
        let mut owners: Vec<Vec<PointId>> = vec![Vec::new(); self.shards];
        for id in 0..n {
            owners[self.shard_of(id as PointId)].push(id as PointId);
        }
        owners
    }
}

/// An rNNR index partitioned across `N` shards; see the module docs for
/// the byte-identity contract.
pub struct ShardedIndex<S, F, D, B = MapStore>
where
    S: PointSet,
    F: LshFamily<S::Point>,
    D: Distance<S::Point>,
    B: BucketStore,
{
    shards: Vec<HybridLshIndex<S, F, D, B>>,
    /// `owners[s][local] = global` (ascending per shard).
    owners: Vec<Vec<PointId>>,
    /// `local_of[global] = local` (the shard is implied by the
    /// assignment); translates global bucket members to rows of their
    /// shard's slab for verification.
    local_of: Vec<PointId>,
    assignment: ShardAssignment,
    n: usize,
}

/// Inverts per-shard owner lists into the `global → local` table.
fn invert_owners(owners: &[Vec<PointId>], n: usize) -> Vec<PointId> {
    let mut local_of = vec![0 as PointId; n];
    for ids in owners {
        for (local, &global) in ids.iter().enumerate() {
            local_of[global as usize] = local as PointId;
        }
    }
    local_of
}

/// Clears and returns the engine's merge accumulator for `config`,
/// recreating it only when the config changes between indexes (the
/// sharded twin of `QueryEngine::accumulator`, shared by the rNNR and
/// top-k engines here and by the segmented engines).
pub(crate) fn ensure_accumulator(
    slot: &mut Option<MergeAccumulator>,
    config: hlsh_hll::HllConfig,
) -> &mut MergeAccumulator {
    match &mut *slot {
        Some(acc) if acc.config() == config => acc.clear(),
        other => *other = Some(MergeAccumulator::new(config)),
    }
    slot.as_mut().expect("accumulator just ensured")
}

/// Collects one shard's deduped candidates from its probed buckets:
/// `seen` dedups the **global** member ids, `cands` receives the
/// corresponding shard-local rows (via `local_of`) ready for slab
/// verification. Shared by the rNNR LSH arm and the top-k level query.
fn collect_shard_cands(
    seen: &mut FxHashSet<PointId>,
    cands: &mut Vec<PointId>,
    buckets: &[BucketRef<'_>],
    local_of: &[PointId],
) {
    seen.clear();
    cands.clear();
    for b in buckets {
        for &global in b.members() {
            if seen.insert(global) {
                cands.push(local_of[global as usize]);
            }
        }
    }
}

impl<S, F, D> ShardedIndex<S, F, D, MapStore>
where
    S: SubsetPointSet + Send + Sync,
    F: LshFamily<S::Point>,
    F::GFn: Send,
    D: Distance<S::Point>,
{
    /// Partitions `data` per `assignment` and builds one index per
    /// shard — in parallel, each through the blocked build pipeline.
    ///
    /// The cost model is resolved **once on the full data** (explicit
    /// model or one calibration) and shared by every shard; the builder
    /// seed is shared too, so all shards sample identical g-functions.
    /// Consumes `data`: after the per-shard copies are cut, the
    /// original is dropped, keeping resident memory at one copy.
    pub fn build(data: S, assignment: ShardAssignment, builder: IndexBuilder<F, D>) -> Self {
        Self::build_each(data, assignment, &builder, |b, sub, cost, ids| {
            b.cost_model(cost).build_mapped(sub, Some(ids))
        })
    }

    /// Converts every shard to the read-optimised [`FrozenStore`];
    /// query results are byte-identical before and after.
    pub fn freeze(self) -> ShardedIndex<S, F, D, FrozenStore> {
        ShardedIndex {
            shards: self.shards.into_iter().map(HybridLshIndex::freeze).collect(),
            owners: self.owners,
            local_of: self.local_of,
            assignment: self.assignment,
            n: self.n,
        }
    }
}

impl<S, F, D> ShardedIndex<S, F, D, FrozenStore>
where
    S: SubsetPointSet + Send + Sync,
    F: LshFamily<S::Point>,
    F::GFn: Send,
    D: Distance<S::Point>,
{
    /// Like [`ShardedIndex::build`] but every shard's tables are laid
    /// out directly as frozen CSR arenas (no intermediate hashmaps).
    pub fn build_frozen(data: S, assignment: ShardAssignment, builder: IndexBuilder<F, D>) -> Self {
        Self::build_each(data, assignment, &builder, |b, sub, cost, ids| {
            b.cost_model(cost).build_frozen_mapped(sub, Some(ids))
        })
    }

    /// Converts every shard back to the mutable [`MapStore`] backend.
    pub fn thaw(self) -> ShardedIndex<S, F, D, MapStore> {
        ShardedIndex {
            shards: self.shards.into_iter().map(HybridLshIndex::thaw).collect(),
            owners: self.owners,
            local_of: self.local_of,
            assignment: self.assignment,
            n: self.n,
        }
    }

    /// Reassembles a sharded index from already-built shards and their
    /// persisted owner lists — the snapshot loader's entry point.
    /// `local_of` is recomputed from `owners`, which is the one
    /// direction that is always consistent.
    ///
    /// # Panics
    /// Panics if the shapes disagree: shard count vs assignment, owner
    /// list lengths vs shard sizes, or owner ids out of `0..n`.
    pub(crate) fn assemble(
        shards: Vec<HybridLshIndex<S, F, D, FrozenStore>>,
        owners: Vec<Vec<PointId>>,
        assignment: ShardAssignment,
        n: usize,
    ) -> Self {
        assert_eq!(shards.len(), assignment.shards(), "one shard index per assignment shard");
        assert_eq!(owners.len(), shards.len(), "one owner list per shard");
        assert_eq!(owners.iter().map(Vec::len).sum::<usize>(), n, "owner lists must cover 0..n");
        for (shard, ids) in shards.iter().zip(&owners) {
            assert_eq!(shard.len(), ids.len(), "shard size must match its owner list");
            assert!(ids.iter().all(|&g| (g as usize) < n), "owner id out of range");
        }
        let local_of = invert_owners(&owners, n);
        Self { shards, owners, local_of, assignment, n }
    }
}

impl<S, F, D, B> ShardedIndex<S, F, D, B>
where
    S: SubsetPointSet + Send + Sync,
    F: LshFamily<S::Point>,
    F::GFn: Send,
    D: Distance<S::Point>,
    B: BucketStore,
{
    /// Shared shard-construction scaffold: partition, resolve the
    /// global cost model, cut each shard's subset inside its worker and
    /// build it there.
    fn build_each(
        data: S,
        assignment: ShardAssignment,
        builder: &IndexBuilder<F, D>,
        build_one: impl Fn(
                IndexBuilder<F, D>,
                S,
                crate::cost::CostModel,
                &[PointId],
            ) -> HybridLshIndex<S, F, D, B>
            + Sync,
    ) -> Self
    where
        S: Send,
        HybridLshIndex<S, F, D, B>: Send,
    {
        let n = data.len();
        let owners = assignment.partition(n);
        let local_of = invert_owners(&owners, n);
        let cost = builder.resolve_cost(&data);
        // One worker per shard; nested table-parallelism is pointless
        // once shards already fan out, so inner builds go sequential
        // whenever more than one shard exists.
        let inner_sequential = owners.len() > 1;
        let data_ref = &data;
        let owners_ref = &owners;
        let build_one_ref = &build_one;
        let shards = par_map_with(
            owners.len(),
            None,
            || (),
            |_, si| {
                let sub = data_ref.subset(&owners_ref[si]);
                let mut b = builder.clone();
                if inner_sequential {
                    b = b.sequential();
                }
                build_one_ref(b, sub, cost, &owners_ref[si])
            },
        );
        drop(data);
        Self { shards, owners, local_of, assignment, n }
    }
}

impl<S, F, D, B> ShardedIndex<S, F, D, B>
where
    S: PointSet,
    F: LshFamily<S::Point>,
    D: Distance<S::Point>,
    B: BucketStore,
{
    /// Total indexed points across all shards.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether no points are indexed.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The shard assignment in force.
    pub fn assignment(&self) -> ShardAssignment {
        self.assignment
    }

    /// The per-shard indexes. **Caution:** shard tables store *global*
    /// ids (so sketches merge byte-identically with the unsharded
    /// index), which do not index the shard's own data slab — query
    /// them through the sharded engines, never directly.
    pub fn shards(&self) -> &[HybridLshIndex<S, F, D, B>] {
        &self.shards
    }

    /// Shard `s`'s global ids, ascending (`owners[local] = global`).
    pub fn global_ids(&self, shard: usize) -> &[PointId] {
        &self.owners[shard]
    }

    /// Hybrid query (Algorithm 2 with a global decision); allocates
    /// fresh scratch. Batch workloads should prefer
    /// [`query_batch`](Self::query_batch) or a reused
    /// [`ShardedQueryEngine`].
    pub fn query(&self, q: &S::Point, r: f64) -> QueryOutput {
        ShardedQueryEngine::new().query(self, q, r)
    }

    /// Runs a query under an explicit strategy; see
    /// [`ShardedQueryEngine::query_with_strategy`].
    pub fn query_with_strategy(&self, q: &S::Point, r: f64, strategy: Strategy) -> QueryOutput {
        ShardedQueryEngine::new().query_with_strategy(self, q, r, strategy)
    }
}

impl<S, F, D, B> ShardedIndex<S, F, D, B>
where
    S: PointSet + Sync,
    F: LshFamily<S::Point> + Sync,
    F::GFn: Sync,
    D: Distance<S::Point> + Sync,
    B: BucketStore + Sync,
{
    /// Answers a batch of hybrid queries, sharded across all available
    /// cores (each query still fans over every index shard). Outputs
    /// are in input order, ids ascending per query.
    pub fn query_batch<Q>(&self, queries: &[Q], r: f64) -> Vec<QueryOutput>
    where
        Q: AsRef<S::Point> + Sync,
    {
        self.query_batch_with_strategy(queries, r, Strategy::Hybrid, None)
    }

    /// Batch querying under an explicit strategy and optional thread
    /// count (`None` = all available cores).
    pub fn query_batch_with_strategy<Q>(
        &self,
        queries: &[Q],
        r: f64,
        strategy: Strategy,
        threads: Option<usize>,
    ) -> Vec<QueryOutput>
    where
        Q: AsRef<S::Point> + Sync,
    {
        par_map_with(queries.len(), threads, ShardedQueryEngine::new, |engine, qi| {
            engine.query_with_strategy(self, queries[qi].as_ref(), r, strategy)
        })
    }
}

/// Reusable scratch for querying a [`ShardedIndex`]: per-shard dedup
/// set and candidate list plus the *global* merge accumulator.
#[derive(Debug, Default)]
pub struct ShardedQueryEngine {
    seen: FxHashSet<PointId>,
    cands: Vec<PointId>,
    acc: Option<MergeAccumulator>,
    verify: VerifyMode,
}

impl ShardedQueryEngine {
    /// Engine with empty scratch and the default kernel verify mode.
    pub fn new() -> Self {
        Self::default()
    }

    /// Engine with an explicit S3 verification mode.
    pub fn with_verify_mode(verify: VerifyMode) -> Self {
        Self { verify, ..Self::default() }
    }

    /// The S3 verification mode in force.
    pub fn verify_mode(&self) -> VerifyMode {
        self.verify
    }

    /// Hybrid query with reused scratch.
    pub fn query<S, F, D, B>(
        &mut self,
        index: &ShardedIndex<S, F, D, B>,
        q: &S::Point,
        r: f64,
    ) -> QueryOutput
    where
        S: PointSet,
        F: LshFamily<S::Point>,
        D: Distance<S::Point>,
        B: BucketStore,
    {
        self.query_with_strategy(index, q, r, Strategy::Hybrid)
    }

    /// Runs one query across every shard under `strategy`.
    ///
    /// S1 probes all shards, S2 merges every probed sketch into one
    /// accumulator, the Algorithm 2 decision compares the *global*
    /// costs once, and the chosen arm then runs on every shard; shard
    /// outputs are mapped to global ids and reported in ascending-id
    /// order. The reported id *set* is identical to the unsharded
    /// index's under the same strategy (see the module docs).
    pub fn query_with_strategy<S, F, D, B>(
        &mut self,
        index: &ShardedIndex<S, F, D, B>,
        q: &S::Point,
        r: f64,
        strategy: Strategy,
    ) -> QueryOutput
    where
        S: PointSet,
        F: LshFamily<S::Point>,
        D: Distance<S::Point>,
        B: BucketStore,
    {
        let t_start = Instant::now();
        if matches!(strategy, Strategy::LinearOnly) {
            let ids = self.linear_arm(index, q, r);
            let total = t_start.elapsed().as_nanos() as u64;
            return QueryOutput {
                report: QueryReport {
                    executed: ExecutedArm::Linear,
                    collisions: 0,
                    cand_size_estimate: 0.0,
                    cand_size_actual: None,
                    output_size: ids.len(),
                    hash_nanos: 0,
                    hll_nanos: 0,
                    total_nanos: total,
                },
                ids,
            };
        }

        // S1 on every shard: global collision count is the sum of the
        // per-shard bucket sizes (shard buckets partition the global
        // bucket).
        let t_hash = Instant::now();
        let mut per_shard: Vec<Vec<BucketRef<'_>>> = Vec::with_capacity(index.shards.len());
        let mut collisions = 0usize;
        for shard in &index.shards {
            let (buckets, c, _) = shard.probe(q);
            collisions += c;
            per_shard.push(buckets);
        }
        let hash_nanos = t_hash.elapsed().as_nanos() as u64;

        // S2 — Hybrid only, mirroring the unsharded path (LshOnly
        // probes without estimating): one merged estimate across every
        // probed bucket of every shard — register-wise max is
        // associative, so this equals the unsharded merged sketch byte
        // for byte.
        let (cand_estimate, hll_nanos) = if matches!(strategy, Strategy::LshOnly) {
            (0.0, 0)
        } else {
            let t_hll = Instant::now();
            let config = index.shards[0].hll_config();
            let acc = ensure_accumulator(&mut self.acc, config);
            for buckets in &per_shard {
                for b in buckets {
                    b.contribute_to(acc);
                }
            }
            (acc.estimate(), t_hll.elapsed().as_nanos() as u64)
        };

        // Global Algorithm 2 decision (cost model shared by all shards,
        // resolved once at build time on the full data).
        let prefer_lsh = match strategy {
            Strategy::LshOnly => true,
            _ => index.shards[0].cost_model().prefer_lsh(collisions, cand_estimate, index.n),
        };
        let (executed, ids, cand_actual) = if prefer_lsh {
            let (ids, distinct) = self.lsh_arm(index, q, r, &per_shard);
            (ExecutedArm::Lsh, ids, Some(distinct))
        } else {
            (ExecutedArm::Linear, self.linear_arm(index, q, r), None)
        };
        let cand_size_estimate = match (strategy, cand_actual) {
            // Mirror the unsharded LshOnly report (exact count, no
            // estimate) so the instrumented fields line up too.
            (Strategy::LshOnly, Some(actual)) => actual as f64,
            _ => cand_estimate,
        };
        let total = t_start.elapsed().as_nanos() as u64;
        QueryOutput {
            report: QueryReport {
                executed,
                collisions,
                cand_size_estimate,
                cand_size_actual: cand_actual,
                output_size: ids.len(),
                hash_nanos,
                hll_nanos,
                total_nanos: total,
            },
            ids,
        }
    }

    /// The LSH arm across shards: per shard, dedup the colliding
    /// members (global ids), translate them to rows of the shard's own
    /// dense slab, verify the whole list in one batched kernel call,
    /// and map accepts back to global ids. Shards are disjoint, so no
    /// cross-shard dedup is needed; the concatenation is sorted into
    /// the canonical ascending order. Returns `(ids, distinct
    /// candidate count)`.
    fn lsh_arm<S, F, D, B>(
        &mut self,
        index: &ShardedIndex<S, F, D, B>,
        q: &S::Point,
        r: f64,
        per_shard: &[Vec<BucketRef<'_>>],
    ) -> (Vec<PointId>, usize)
    where
        S: PointSet,
        F: LshFamily<S::Point>,
        D: Distance<S::Point>,
        B: BucketStore,
    {
        let mut out_global = Vec::new();
        let mut distinct = 0usize;
        let mut local_out = Vec::new();
        for (si, buckets) in per_shard.iter().enumerate() {
            collect_shard_cands(&mut self.seen, &mut self.cands, buckets, &index.local_of);
            distinct += self.cands.len();
            let shard = &index.shards[si];
            let (data, distance) = (shard.data(), shard.distance());
            local_out.clear();
            match self.verify {
                VerifyMode::Kernel => distance.verify_many(data, &self.cands, q, r, &mut local_out),
                VerifyMode::Scalar => hlsh_vec::metric::verify_scalar(
                    distance,
                    data,
                    &self.cands,
                    q,
                    r,
                    &mut local_out,
                ),
            }
            out_global.extend(local_out.iter().map(|&l| index.owners[si][l as usize]));
        }
        out_global.sort_unstable();
        (out_global, distinct)
    }

    /// The brute-force arm across shards: scan each shard's slab, map
    /// to global ids, sort ascending.
    fn linear_arm<S, F, D, B>(
        &mut self,
        index: &ShardedIndex<S, F, D, B>,
        q: &S::Point,
        r: f64,
    ) -> Vec<PointId>
    where
        S: PointSet,
        F: LshFamily<S::Point>,
        D: Distance<S::Point>,
        B: BucketStore,
    {
        let mut out_global = Vec::new();
        let mut local_out = Vec::new();
        for (si, shard) in index.shards.iter().enumerate() {
            let (data, distance) = (shard.data(), shard.distance());
            local_out.clear();
            match self.verify {
                VerifyMode::Kernel => distance.scan_within(data, q, r, &mut local_out),
                VerifyMode::Scalar => {
                    hlsh_vec::metric::scan_scalar(distance, data, q, r, &mut local_out)
                }
            }
            out_global.extend(local_out.iter().map(|&l| index.owners[si][l as usize]));
        }
        out_global.sort_unstable();
        out_global
    }
}

/// A top-k index partitioned across shards: one [`TopKIndex`] (a full
/// radius-schedule ladder) per shard, walked by a *global* engine.
///
/// Per-shard heaps are merged through the same bounded `(distance, id)`
/// heap the unsharded engine uses — and because every walk decision
/// (skip, early exit, fallback, arm choice) is made on merged
/// statistics, the final ranking and report are byte-identical to the
/// unsharded [`TopKIndex`] over the same data.
pub struct ShardedTopKIndex<S, F, D, B = MapStore>
where
    S: PointSet,
    F: LshFamily<S::Point>,
    D: Distance<S::Point>,
    B: BucketStore,
{
    shards: Vec<TopKIndex<S, F, D, B>>,
    owners: Vec<Vec<PointId>>,
    local_of: Vec<PointId>,
    assignment: ShardAssignment,
    schedule: RadiusSchedule,
    n: usize,
}

impl<S, F, D> ShardedTopKIndex<S, F, D, MapStore>
where
    S: SubsetPointSet + Send + Sync,
    F: LshFamily<S::Point>,
    F::GFn: Send,
    D: Distance<S::Point>,
{
    /// Partitions `data` and builds one schedule ladder per shard, in
    /// parallel.
    ///
    /// `level_builder(level, radius)` configures each level exactly as
    /// for [`TopKIndex::build`]; it must be `Fn` (not `FnMut`) because
    /// it is re-invoked per `(shard, level)` from parallel workers.
    /// Each level's cost model is resolved once on the **full** data
    /// and shared by that level's builders in every shard, keeping the
    /// walk's arm decisions byte-identical to the unsharded ladder.
    pub fn build<M>(
        data: S,
        assignment: ShardAssignment,
        schedule: RadiusSchedule,
        level_builder: M,
    ) -> Self
    where
        M: Fn(usize, f64) -> IndexBuilder<F, D> + Sync,
        D: Sync,
        F: Sync,
        TopKIndex<S, F, D, MapStore>: Send,
    {
        let n = data.len();
        let owners = assignment.partition(n);
        let local_of = invert_owners(&owners, n);
        let level_costs: Vec<crate::cost::CostModel> = schedule
            .radii()
            .enumerate()
            .map(|(li, r)| level_builder(li, r).resolve_cost(&data))
            .collect();
        let inner_sequential = owners.len() > 1;
        let data_ref = &data;
        let owners_ref = &owners;
        let level_builder_ref = &level_builder;
        let level_costs_ref = &level_costs;
        let shards = par_map_with(
            owners.len(),
            None,
            || (),
            |_, si| {
                let sub = data_ref.subset(&owners_ref[si]);
                TopKIndex::build_mapped(
                    sub,
                    schedule,
                    |li, r| {
                        let mut b = level_builder_ref(li, r).cost_model(level_costs_ref[li]);
                        if inner_sequential {
                            b = b.sequential();
                        }
                        b
                    },
                    Some(&owners_ref[si]),
                )
            },
        );
        drop(data);
        Self { shards, owners, local_of, assignment, schedule, n }
    }

    /// Freezes every shard's every level into the CSR arena backend.
    pub fn freeze(self) -> ShardedTopKIndex<S, F, D, FrozenStore> {
        ShardedTopKIndex {
            shards: self.shards.into_iter().map(TopKIndex::freeze).collect(),
            owners: self.owners,
            local_of: self.local_of,
            assignment: self.assignment,
            schedule: self.schedule,
            n: self.n,
        }
    }
}

impl<S, F, D> ShardedTopKIndex<S, F, D, FrozenStore>
where
    S: PointSet,
    F: LshFamily<S::Point>,
    D: Distance<S::Point>,
{
    /// Converts every shard back to the mutable backend.
    pub fn thaw(self) -> ShardedTopKIndex<S, F, D, MapStore> {
        ShardedTopKIndex {
            shards: self.shards.into_iter().map(TopKIndex::thaw).collect(),
            owners: self.owners,
            local_of: self.local_of,
            assignment: self.assignment,
            schedule: self.schedule,
            n: self.n,
        }
    }

    /// Reassembles a sharded ladder from already-built per-shard
    /// ladders and their persisted owner lists — the snapshot loader's
    /// entry point. `local_of` is recomputed from `owners`.
    ///
    /// # Panics
    /// Panics if the shapes disagree: shard count vs assignment, ladder
    /// sizes or schedules vs their owner lists, or owner ids out of
    /// `0..n`.
    pub(crate) fn assemble(
        shards: Vec<TopKIndex<S, F, D, FrozenStore>>,
        owners: Vec<Vec<PointId>>,
        assignment: ShardAssignment,
        schedule: RadiusSchedule,
        n: usize,
    ) -> Self {
        assert_eq!(shards.len(), assignment.shards(), "one ladder per assignment shard");
        assert_eq!(owners.len(), shards.len(), "one owner list per shard");
        assert_eq!(owners.iter().map(Vec::len).sum::<usize>(), n, "owner lists must cover 0..n");
        for (shard, ids) in shards.iter().zip(&owners) {
            assert_eq!(shard.len(), ids.len(), "ladder size must match its owner list");
            assert_eq!(shard.schedule(), schedule, "every ladder shares the schedule");
            assert!(ids.iter().all(|&g| (g as usize) < n), "owner id out of range");
        }
        let local_of = invert_owners(&owners, n);
        Self { shards, owners, local_of, assignment, schedule, n }
    }
}

impl<S, F, D, B> ShardedTopKIndex<S, F, D, B>
where
    S: PointSet,
    F: LshFamily<S::Point>,
    D: Distance<S::Point>,
    B: BucketStore,
{
    /// Total indexed points across all shards.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether no points are indexed.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The radius schedule shared by every shard.
    pub fn schedule(&self) -> RadiusSchedule {
        self.schedule
    }

    /// The shard assignment in force.
    pub fn assignment(&self) -> ShardAssignment {
        self.assignment
    }

    /// The per-shard ladders. **Caution:** shard tables store *global*
    /// ids (see [`ShardedIndex::shards`]); query them only through the
    /// sharded engines.
    pub fn shards(&self) -> &[TopKIndex<S, F, D, B>] {
        &self.shards
    }

    /// The global ids owned by `shard`, in that shard's local row order
    /// (mirrors [`ShardedIndex::global_ids`]).
    pub fn global_ids(&self, shard: usize) -> &[PointId] {
        &self.owners[shard]
    }

    /// Answers one top-k query with fresh scratch.
    pub fn query_topk(&self, q: &S::Point, k: usize) -> TopKOutput {
        ShardedTopKEngine::new().query_topk(self, q, k)
    }
}

impl<S, F, D, B> ShardedTopKIndex<S, F, D, B>
where
    S: PointSet + Send + Sync,
    F: LshFamily<S::Point> + Sync,
    F::GFn: Sync,
    D: Distance<S::Point> + Sync,
    B: BucketStore + Sync,
{
    /// Answers a batch of top-k queries, sharded across all available
    /// cores; outputs in input order, byte-identical to a sequential
    /// loop.
    pub fn query_topk_batch<Q>(&self, queries: &[Q], k: usize) -> Vec<TopKOutput>
    where
        Q: AsRef<S::Point> + Sync,
    {
        self.query_topk_batch_with(queries, k, Strategy::Hybrid, None)
    }

    /// Batch top-k under an explicit per-level strategy and optional
    /// thread count.
    pub fn query_topk_batch_with<Q>(
        &self,
        queries: &[Q],
        k: usize,
        strategy: Strategy,
        threads: Option<usize>,
    ) -> Vec<TopKOutput>
    where
        Q: AsRef<S::Point> + Sync,
    {
        par_map_with(queries.len(), threads, ShardedTopKEngine::new, |engine, qi| {
            engine.query_topk_with(self, queries[qi].as_ref(), k, strategy)
        })
    }
}

/// Reusable scratch for running top-k queries over a
/// [`ShardedTopKIndex`]: the per-shard rNNR scratch plus the global
/// cross-level dedup set.
#[derive(Debug, Default)]
pub struct ShardedTopKEngine {
    seen: FxHashSet<PointId>,
    cands: Vec<PointId>,
    acc: Option<MergeAccumulator>,
    reported: FxHashSet<PointId>,
    verify: VerifyMode,
}

impl ShardedTopKEngine {
    /// Engine with empty scratch and the default kernel verify mode.
    pub fn new() -> Self {
        Self::default()
    }

    /// Engine whose rNNR level queries verify in an explicit
    /// [`VerifyMode`]; output is identical across modes.
    pub fn with_verify_mode(verify: VerifyMode) -> Self {
        Self { verify, ..Self::default() }
    }

    /// Answers one top-k query under the default per-level
    /// [`Strategy::Hybrid`].
    pub fn query_topk<S, F, D, B>(
        &mut self,
        index: &ShardedTopKIndex<S, F, D, B>,
        q: &S::Point,
        k: usize,
    ) -> TopKOutput
    where
        S: PointSet,
        F: LshFamily<S::Point>,
        D: Distance<S::Point>,
        B: BucketStore,
    {
        self.query_topk_with(index, q, k, Strategy::Hybrid)
    }

    /// The global schedule walk — the sharded mirror of
    /// [`TopKEngine::query_topk_with`](crate::topk::TopKEngine::query_topk_with),
    /// with every per-level query fanned across shards and every
    /// decision made on merged statistics. The walk structure (early
    /// exit, HLL defer + revisit, exact fallback) is kept in lockstep
    /// with the unsharded engine; `tests/sharded_props.rs` pins the
    /// byte-identity of outputs and reports.
    pub fn query_topk_with<S, F, D, B>(
        &mut self,
        index: &ShardedTopKIndex<S, F, D, B>,
        q: &S::Point,
        k: usize,
        strategy: Strategy,
    ) -> TopKOutput
    where
        S: PointSet,
        F: LshFamily<S::Point>,
        D: Distance<S::Point>,
        B: BucketStore,
    {
        let t_start = Instant::now();
        let n = index.n;
        let k_eff = k.min(n);
        let mut report = TopKReport {
            levels_executed: 0,
            levels_skipped: 0,
            early_exit: false,
            exact_fallback: false,
            verified: 0,
            total_nanos: 0,
        };
        if k_eff == 0 {
            report.total_nanos = t_start.elapsed().as_nanos() as u64;
            return TopKOutput { neighbors: Vec::new(), report };
        }

        let mut heap = BoundedHeap::new(k_eff);
        self.reported.clear();
        let mut covered_r = 0.0_f64;
        let mut deferred: Vec<usize> = Vec::new();

        for li in 0..index.schedule.levels() {
            let r = index.schedule.radius(li);
            if report.levels_executed > 0
                && heap.is_full()
                && heap.worst_dist().is_some_and(|w| w <= covered_r)
            {
                report.early_exit = true;
                break;
            }
            let skip_at_most = if report.levels_executed > 0 {
                let m = index.shards[0].levels()[li].hll_config().registers() as f64;
                self.reported.len() as f64 * (1.0 + 1.04 / m.sqrt())
            } else {
                f64::NEG_INFINITY // level 0 always runs
            };
            match self.query_level(index, li, q, r, strategy, skip_at_most) {
                None => {
                    deferred.push(li);
                    continue;
                }
                Some(pairs) => {
                    report.levels_executed += 1;
                    covered_r = r;
                    for (id, dist) in pairs {
                        if self.reported.insert(id) {
                            heap.push(Neighbor { id, dist });
                        }
                    }
                }
            }
        }

        if heap.len() < k_eff {
            // Exact fallback: one distance-returning scan per shard
            // (the shard slabs partition the data), already-reported
            // ids filtered out, NaN-distance gaps completed — the
            // shared scaffold of the unsharded fallback.
            report.exact_fallback = true;
            report.levels_skipped = deferred.len();
            for (si, shard) in index.shards.iter().enumerate() {
                crate::topk::fallback_scan_into(
                    shard.data(),
                    shard.distance(),
                    q,
                    self.verify,
                    &self.reported,
                    &mut heap,
                    |local| index.owners[si][local as usize],
                );
            }
        } else if !deferred.is_empty() {
            // Revisit deferred levels once the heap fills, exactly as
            // the unsharded walk does (no skip threshold: NEG_INFINITY
            // forces execution).
            for li in deferred {
                let pairs = self
                    .query_level(
                        index,
                        li,
                        q,
                        index.schedule.radius(li),
                        strategy,
                        f64::NEG_INFINITY,
                    )
                    .expect("forced level query always executes");
                report.levels_executed += 1;
                for (id, dist) in pairs {
                    if self.reported.insert(id) {
                        heap.push(Neighbor { id, dist });
                    }
                }
            }
        }

        report.verified = self.reported.len();
        report.total_nanos = t_start.elapsed().as_nanos() as u64;
        TopKOutput { neighbors: heap.into_sorted_vec(), report }
    }

    /// One level's rNNR query across every shard: merged probe +
    /// estimate, global skip and arm decisions, per-shard verification
    /// with distances, global ids out. `None` = deferred by the HLL
    /// prediction (mirrors
    /// [`QueryEngine::query_unless_cand_at_most_dist`](crate::engine::QueryEngine::query_unless_cand_at_most_dist)).
    #[allow(clippy::too_many_arguments)]
    fn query_level<S, F, D, B>(
        &mut self,
        index: &ShardedTopKIndex<S, F, D, B>,
        li: usize,
        q: &S::Point,
        r: f64,
        strategy: Strategy,
        skip_at_most: f64,
    ) -> Option<Vec<(PointId, f64)>>
    where
        S: PointSet,
        F: LshFamily<S::Point>,
        D: Distance<S::Point>,
        B: BucketStore,
    {
        if !matches!(strategy, Strategy::LinearOnly) {
            // Merged S1 + S2 over every shard's level-li index.
            let mut per_shard: Vec<Vec<BucketRef<'_>>> = Vec::with_capacity(index.shards.len());
            let mut collisions = 0usize;
            for shard in &index.shards {
                let (buckets, c, _) = shard.levels()[li].probe(q);
                collisions += c;
                per_shard.push(buckets);
            }
            let config = index.shards[0].levels()[li].hll_config();
            let acc = ensure_accumulator(&mut self.acc, config);
            for buckets in &per_shard {
                for b in buckets {
                    b.contribute_to(acc);
                }
            }
            let cand_estimate = acc.estimate();
            if cand_estimate <= skip_at_most {
                return None;
            }
            let prefer_lsh = match strategy {
                Strategy::LshOnly => true,
                _ => index.shards[0].levels()[li].cost_model().prefer_lsh(
                    collisions,
                    cand_estimate,
                    index.n,
                ),
            };
            if prefer_lsh {
                let mut out_global = Vec::new();
                let mut local_out = Vec::new();
                for (si, buckets) in per_shard.iter().enumerate() {
                    collect_shard_cands(&mut self.seen, &mut self.cands, buckets, &index.local_of);
                    let shard = &index.shards[si];
                    let (data, distance) = (shard.data(), shard.distance());
                    local_out.clear();
                    match self.verify {
                        VerifyMode::Kernel => {
                            distance.verify_many_dist(data, &self.cands, q, r, &mut local_out)
                        }
                        VerifyMode::Scalar => hlsh_vec::metric::verify_scalar_dist(
                            distance,
                            data,
                            &self.cands,
                            q,
                            r,
                            &mut local_out,
                        ),
                    }
                    out_global
                        .extend(local_out.iter().map(|&(l, d)| (index.owners[si][l as usize], d)));
                }
                return Some(out_global);
            }
        }
        // Linear arm (forced or chosen): scan every shard with
        // distances.
        let mut out_global = Vec::new();
        let mut local_out = Vec::new();
        for (si, shard) in index.shards.iter().enumerate() {
            let (data, distance) = (shard.data(), shard.distance());
            local_out.clear();
            match self.verify {
                VerifyMode::Kernel => distance.scan_within_dist(data, q, r, &mut local_out),
                VerifyMode::Scalar => {
                    hlsh_vec::metric::scan_scalar_dist(distance, data, q, r, &mut local_out)
                }
            }
            out_global.extend(local_out.iter().map(|&(l, d)| (index.owners[si][l as usize], d)));
        }
        Some(out_global)
    }
}

// ---------------------------------------------------------------------------
// Distributed hooks
// ---------------------------------------------------------------------------
//
// A shard node in a distributed deployment holds the full sharded index
// (loaded from the same snapshot every node ships) but answers only for
// its assigned shard. The methods below expose exactly the per-shard
// work the in-process engines do — probe + local sketch merge, arm
// execution, fallback scan — so a remote coordinator that merges the
// summaries and replays the global decisions reproduces the in-process
// answers byte for byte. All of them verify in the default
// [`VerifyMode::Kernel`], matching the engines the serving layer uses.

/// One query's compact S1/S2 summary from one shard: the summed bucket
/// sizes (S1) and the shard-local merged HyperLogLog registers (S2).
///
/// Register-wise `max` over per-shard registers equals the registers of
/// one accumulator fed every shard's probed buckets — HLL merge is
/// associative and commutative — so a coordinator that max-merges these
/// summaries and estimates once reproduces the in-process
/// [`ShardedQueryEngine`] statistics bit for bit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardSummary {
    /// Sum of probed bucket sizes on this shard (S1 contribution).
    pub collisions: u64,
    /// This shard's merged sketch registers, `m = 2^precision` bytes.
    pub registers: Vec<u8>,
}

impl<S, F, D, B> ShardedIndex<S, F, D, B>
where
    S: PointSet,
    F: LshFamily<S::Point>,
    D: Distance<S::Point>,
    B: BucketStore,
{
    /// The HLL configuration shared by every shard's buckets.
    pub fn hll_config(&self) -> hlsh_hll::HllConfig {
        self.shards[0].hll_config()
    }

    /// The cost model shared by every shard (resolved once on the full
    /// data at build time).
    pub fn cost_model(&self) -> crate::cost::CostModel {
        self.shards[0].cost_model()
    }

    /// One shard's S1/S2 summary for one query: probe the shard's
    /// tables, sum the bucket sizes, merge the probed sketches.
    ///
    /// # Panics
    /// Panics if `shard` is out of range.
    pub fn shard_summary(&self, shard: usize, q: &S::Point) -> ShardSummary {
        let mut acc = None;
        self.shard_summary_with(shard, q, &mut acc)
    }

    fn shard_summary_with(
        &self,
        shard: usize,
        q: &S::Point,
        acc_slot: &mut Option<MergeAccumulator>,
    ) -> ShardSummary {
        let sh = &self.shards[shard];
        let (buckets, collisions, _) = sh.probe(q);
        let acc = ensure_accumulator(acc_slot, sh.hll_config());
        for b in &buckets {
            b.contribute_to(acc);
        }
        ShardSummary { collisions: collisions as u64, registers: acc.registers().to_vec() }
    }

    /// One shard's chosen-arm execution for one query: the LSH arm
    /// (probe → dedup global members → batched kernel verification) or
    /// the linear arm (full shard scan), either way returning the
    /// shard's **global** ids within `r`, ascending.
    ///
    /// # Panics
    /// Panics if `shard` is out of range.
    pub fn shard_arm(&self, shard: usize, q: &S::Point, r: f64, lsh: bool) -> Vec<PointId> {
        let mut seen = FxHashSet::default();
        let mut cands = Vec::new();
        self.shard_arm_with(shard, q, r, lsh, &mut seen, &mut cands)
    }

    fn shard_arm_with(
        &self,
        shard: usize,
        q: &S::Point,
        r: f64,
        lsh: bool,
        seen: &mut FxHashSet<PointId>,
        cands: &mut Vec<PointId>,
    ) -> Vec<PointId> {
        let sh = &self.shards[shard];
        let (data, distance) = (sh.data(), sh.distance());
        let mut local_out = Vec::new();
        if lsh {
            let (buckets, _, _) = sh.probe(q);
            collect_shard_cands(seen, cands, &buckets, &self.local_of);
            distance.verify_many(data, cands, q, r, &mut local_out);
        } else {
            distance.scan_within(data, q, r, &mut local_out);
        }
        let mut out: Vec<PointId> =
            local_out.iter().map(|&l| self.owners[shard][l as usize]).collect();
        out.sort_unstable();
        out
    }
}

impl<S, F, D, B> ShardedIndex<S, F, D, B>
where
    S: PointSet + Sync,
    F: LshFamily<S::Point> + Sync,
    F::GFn: Sync,
    D: Distance<S::Point> + Sync,
    B: BucketStore + Sync,
{
    /// [`shard_summary`](Self::shard_summary) over a batch, fanned
    /// across scoped threads; outputs in input order.
    pub fn shard_summaries<Q>(
        &self,
        shard: usize,
        queries: &[Q],
        threads: Option<usize>,
    ) -> Vec<ShardSummary>
    where
        Q: AsRef<S::Point> + Sync,
    {
        par_map_with(
            queries.len(),
            threads,
            || None,
            |acc, qi| self.shard_summary_with(shard, queries[qi].as_ref(), acc),
        )
    }

    /// [`shard_arm`](Self::shard_arm) over a batch, fanned across
    /// scoped threads; outputs in input order.
    pub fn shard_arm_batch<Q>(
        &self,
        shard: usize,
        queries: &[Q],
        r: f64,
        lsh: bool,
        threads: Option<usize>,
    ) -> Vec<Vec<PointId>>
    where
        Q: AsRef<S::Point> + Sync,
    {
        par_map_with(
            queries.len(),
            threads,
            || (FxHashSet::default(), Vec::new()),
            |(seen, cands), qi| {
                self.shard_arm_with(shard, queries[qi].as_ref(), r, lsh, seen, cands)
            },
        )
    }
}

impl<S, F, D, B> ShardedTopKIndex<S, F, D, B>
where
    S: PointSet,
    F: LshFamily<S::Point>,
    D: Distance<S::Point>,
    B: BucketStore,
{
    /// Level `li`'s HLL configuration (shared by every shard).
    ///
    /// # Panics
    /// Panics if `li` is out of range.
    pub fn level_hll_config(&self, li: usize) -> hlsh_hll::HllConfig {
        self.shards[0].levels()[li].hll_config()
    }

    /// Level `li`'s cost model (resolved once on the full data).
    ///
    /// # Panics
    /// Panics if `li` is out of range.
    pub fn level_cost_model(&self, li: usize) -> crate::cost::CostModel {
        self.shards[0].levels()[li].cost_model()
    }

    fn shard_level_summary_with(
        &self,
        shard: usize,
        li: usize,
        q: &S::Point,
        acc_slot: &mut Option<MergeAccumulator>,
    ) -> ShardSummary {
        let level = &self.shards[shard].levels()[li];
        let (buckets, collisions, _) = level.probe(q);
        let acc = ensure_accumulator(acc_slot, level.hll_config());
        for b in &buckets {
            b.contribute_to(acc);
        }
        ShardSummary { collisions: collisions as u64, registers: acc.registers().to_vec() }
    }

    #[allow(clippy::too_many_arguments)]
    fn shard_level_arm_with(
        &self,
        shard: usize,
        li: usize,
        q: &S::Point,
        r: f64,
        lsh: bool,
        seen: &mut FxHashSet<PointId>,
        cands: &mut Vec<PointId>,
    ) -> Vec<(PointId, f64)> {
        let sh = &self.shards[shard];
        let (data, distance) = (sh.data(), sh.distance());
        let mut local_out = Vec::new();
        if lsh {
            let (buckets, _, _) = sh.levels()[li].probe(q);
            collect_shard_cands(seen, cands, &buckets, &self.local_of);
            distance.verify_many_dist(data, cands, q, r, &mut local_out);
        } else {
            distance.scan_within_dist(data, q, r, &mut local_out);
        }
        local_out.iter().map(|&(l, d)| (self.owners[shard][l as usize], d)).collect()
    }
}

impl<S, F, D, B> ShardedTopKIndex<S, F, D, B>
where
    S: PointSet + Send + Sync,
    F: LshFamily<S::Point> + Sync,
    F::GFn: Sync,
    D: Distance<S::Point> + Sync,
    B: BucketStore + Sync,
{
    /// One shard's S1/S2 summaries against schedule level `li` for a
    /// batch of queries; outputs in input order.
    ///
    /// # Panics
    /// Panics if `shard` or `li` is out of range.
    pub fn shard_level_summaries<Q>(
        &self,
        shard: usize,
        li: usize,
        queries: &[Q],
        threads: Option<usize>,
    ) -> Vec<ShardSummary>
    where
        Q: AsRef<S::Point> + Sync,
    {
        par_map_with(
            queries.len(),
            threads,
            || None,
            |acc, qi| self.shard_level_summary_with(shard, li, queries[qi].as_ref(), acc),
        )
    }

    /// One shard's chosen-arm execution against level `li`: per query,
    /// the shard's `(global id, distance)` pairs within `r` — in the
    /// shard-local candidate order the in-process walk offers them
    /// (first-collision order for the LSH arm, ascending row order for
    /// the linear arm).
    ///
    /// # Panics
    /// Panics if `shard` or `li` is out of range.
    pub fn shard_level_arm_batch<Q>(
        &self,
        shard: usize,
        li: usize,
        queries: &[Q],
        r: f64,
        lsh: bool,
        threads: Option<usize>,
    ) -> Vec<Vec<(PointId, f64)>>
    where
        Q: AsRef<S::Point> + Sync,
    {
        par_map_with(
            queries.len(),
            threads,
            || (FxHashSet::default(), Vec::new()),
            |(seen, cands), qi| {
                self.shard_level_arm_with(shard, li, queries[qi].as_ref(), r, lsh, seen, cands)
            },
        )
    }

    /// One shard's exact-fallback scan: per query, **every** row the
    /// shard owns as `(global id, distance)`, ascending by local row,
    /// NaN-distance gaps completed — the per-shard slice of the walk's
    /// exact fallback. The coordinator filters already-reported ids,
    /// exactly as [`ShardedTopKEngine`] does in-process.
    ///
    /// # Panics
    /// Panics if `shard` is out of range.
    pub fn shard_fallback_scan_batch<Q>(
        &self,
        shard: usize,
        queries: &[Q],
        threads: Option<usize>,
    ) -> Vec<Vec<(PointId, f64)>>
    where
        Q: AsRef<S::Point> + Sync,
    {
        let sh = &self.shards[shard];
        par_map_with(
            queries.len(),
            threads,
            || (),
            |_, qi| {
                crate::topk::fallback_scan_pairs(
                    sh.data(),
                    sh.distance(),
                    queries[qi].as_ref(),
                    VerifyMode::Kernel,
                )
                .into_iter()
                .map(|(l, d)| (self.owners[shard][l as usize], d))
                .collect()
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;
    use hlsh_families::PStableL2;
    use hlsh_vec::{DenseDataset, L2};

    fn grid_data(n: usize) -> DenseDataset {
        DenseDataset::from_rows(2, (0..n).map(|i| [(i % 17) as f32, (i / 17) as f32 * 0.5]))
    }

    fn builder() -> IndexBuilder<PStableL2, L2> {
        IndexBuilder::new(PStableL2::new(2, 2.0), L2)
            .tables(8)
            .hash_len(4)
            .seed(11)
            .cost_model(CostModel::from_ratio(4.0))
    }

    #[test]
    fn assignment_is_deterministic_and_total() {
        let a = ShardAssignment::new(9, 4);
        let owners = a.partition(100);
        assert_eq!(owners.len(), 4);
        let total: usize = owners.iter().map(Vec::len).sum();
        assert_eq!(total, 100);
        for (s, ids) in owners.iter().enumerate() {
            assert!(ids.windows(2).all(|w| w[0] < w[1]), "ascending owners");
            for &id in ids {
                assert_eq!(a.shard_of(id), s);
            }
        }
        // Same seed → same partition; single shard owns everything.
        assert_eq!(ShardAssignment::new(9, 4).partition(100), owners);
        assert_eq!(ShardAssignment::new(9, 1).partition(5)[0], vec![0, 1, 2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        let _ = ShardAssignment::new(0, 0);
    }

    #[test]
    fn sharded_rnnr_matches_sorted_unsharded_output() {
        let data = grid_data(300);
        let unsharded = builder().build(data.clone());
        for shards in [1usize, 3] {
            let sharded =
                ShardedIndex::build(data.clone(), ShardAssignment::new(5, shards), builder());
            assert_eq!(sharded.len(), 300);
            for (qi, r) in [(0usize, 1.0), (140, 2.5), (299, 0.2)] {
                let q = data.row(qi).to_vec();
                for strategy in Strategy::ALL {
                    let mut expect = unsharded.query_with_strategy(&q[..], r, strategy).ids;
                    expect.sort_unstable();
                    let got = sharded.query_with_strategy(&q[..], r, strategy);
                    assert_eq!(got.ids, expect, "shards={shards} q={qi} r={r} {strategy}");
                }
            }
        }
    }

    #[test]
    fn sharded_topk_matches_unsharded_byte_for_byte() {
        let data = grid_data(250);
        let schedule = RadiusSchedule::doubling(0.8, 4);
        let level_builder = |_li: usize, r: f64| {
            IndexBuilder::new(PStableL2::new(2, 2.0 * r), L2)
                .tables(8)
                .hash_len(4)
                .seed(7)
                .cost_model(CostModel::from_ratio(4.0))
        };
        let unsharded = TopKIndex::build(data.clone(), schedule, level_builder);
        for shards in [1usize, 4] {
            let sharded = ShardedTopKIndex::build(
                data.clone(),
                ShardAssignment::new(3, shards),
                schedule,
                level_builder,
            );
            for qi in (0..250).step_by(31) {
                let q = data.row(qi).to_vec();
                let a = unsharded.query_topk(&q[..], 7);
                let b = sharded.query_topk(&q[..], 7);
                assert_eq!(a, b, "shards={shards} q={qi}");
            }
        }
    }

    #[test]
    fn sharded_batch_matches_sequential_and_frozen_matches_map() {
        let data = grid_data(200);
        let sharded = ShardedIndex::build(data.clone(), ShardAssignment::new(2, 3), builder());
        let queries: Vec<Vec<f32>> = (0..12).map(|i| data.row(i * 16).to_vec()).collect();
        let mut engine = ShardedQueryEngine::new();
        let sequential: Vec<Vec<PointId>> =
            queries.iter().map(|q| engine.query(&sharded, q, 1.5).ids).collect();
        for threads in [Some(1), Some(4), None] {
            let batch = sharded.query_batch_with_strategy(&queries, 1.5, Strategy::Hybrid, threads);
            for (s, b) in sequential.iter().zip(&batch) {
                assert_eq!(s, &b.ids, "threads {threads:?}");
            }
        }
        let frozen = sharded.freeze();
        for (qi, q) in queries.iter().enumerate() {
            assert_eq!(frozen.query(q, 1.5).ids, sequential[qi], "frozen q={qi}");
        }
        let thawed = frozen.thaw();
        assert_eq!(thawed.query(&queries[0], 1.5).ids, sequential[0]);
    }

    /// Replays the distributed coordinator's merge protocol in-process:
    /// max-merged shard summaries must reproduce the engine's global
    /// statistics, decision and result set exactly.
    #[test]
    fn shard_summaries_and_arms_replay_the_global_decision() {
        let data = grid_data(300);
        let sharded = ShardedIndex::build(data.clone(), ShardAssignment::new(5, 3), builder());
        let config = sharded.hll_config();
        let cost = sharded.cost_model();
        for (qi, r) in [(0usize, 1.0), (140, 2.5), (299, 0.2)] {
            let q = data.row(qi).to_vec();
            let expect = sharded.query(&q[..], r);

            // Coordinator-side merge: sum collisions, max registers.
            let mut collisions = 0usize;
            let mut regs = vec![0u8; config.registers()];
            for si in 0..3 {
                let s = sharded.shard_summary(si, &q[..]);
                collisions += s.collisions as usize;
                for (m, &v) in regs.iter_mut().zip(&s.registers) {
                    *m = (*m).max(v);
                }
            }
            assert_eq!(collisions, expect.report.collisions, "q={qi}");
            let est = hlsh_hll::HyperLogLog::from_registers(config, regs).estimate();
            assert_eq!(est.to_bits(), expect.report.cand_size_estimate.to_bits(), "q={qi}");

            // Global decision + per-shard arms concatenated and sorted.
            let lsh = cost.prefer_lsh(collisions, est, sharded.len());
            let mut ids: Vec<PointId> =
                (0..3).flat_map(|si| sharded.shard_arm(si, &q[..], r, lsh)).collect();
            ids.sort_unstable();
            assert_eq!(ids, expect.ids, "q={qi} r={r}");
        }
    }

    #[test]
    fn empty_and_tiny_data_shard_cleanly() {
        let empty = DenseDataset::new(2);
        let sharded = ShardedIndex::build(empty, ShardAssignment::new(1, 3), builder());
        assert!(sharded.is_empty());
        assert!(sharded.query(&[0.0f32, 0.0][..], 1.0).ids.is_empty());

        // Fewer points than shards: some shards stay empty.
        let tiny = DenseDataset::from_rows(2, (0..2).map(|i| [i as f32, 0.0]));
        let sharded = ShardedIndex::build(tiny, ShardAssignment::new(1, 7), builder());
        assert_eq!(sharded.len(), 2);
        let mut ids = sharded.query(&[0.0f32, 0.0][..], 1.5).ids;
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1]);
    }
}
