//! The storage-aware load planner behind [`LoadMode::Auto`]: given a
//! [`StorageProfile`] and the snapshot's section statistics, pick the
//! cheapest way to cold-start.
//!
//! The planner reasons with a two-term cost model:
//!
//! * **Buffered read** — one forward pass over the whole file:
//!   `total_bytes / seq_bandwidth`. Predictable, works everywhere,
//!   but every byte lands on the heap.
//! * **Lazy mmap** — encoded sections are still read and decoded up
//!   front (`encoded_bytes / seq_bandwidth`), but raw sections fault in
//!   page by page on first touch. With the kernel's readahead
//!   amortising roughly [`READAHEAD_PAGES`] pages per fault, that
//!   costs about `(raw_bytes / (page_size * READAHEAD_PAGES)) *
//!   rand_read_secs` of latency on top of the transfer time.
//! * **Mmap with prefetch** — `madvise(SEQUENTIAL + WILLNEED)` turns
//!   the faults into sequential readahead: roughly the buffered-read
//!   transfer cost, while keeping the page-cache residency and
//!   copy-on-write sharing of a mapping.
//!
//! The decision degrades gracefully: no mmap support means buffered
//! reads; no profile means a lazy mapping (v1 behaviour); a
//! high-latency medium (think network mounts) means buffered reads,
//! because per-fault latency dominates and `madvise` is advisory at
//! best there. [`plan_load`] is a pure function of its inputs, so every
//! branch is unit-tested without touching a disk.
//!
//! [`LoadMode::Auto`]: super::LoadMode::Auto

use super::profile::StorageProfile;

/// Pages one page fault effectively pulls in once the kernel's
/// readahead has ramped up on a forward scan.
pub const READAHEAD_PAGES: u64 = 16;

/// Random-read latency above which demand paging is written off
/// entirely and the planner prefers one buffered forward pass.
pub const HIGH_LATENCY_SECS: f64 = 500e-6;

/// Prefetch budget: if the whole file streams in under this, prefetch
/// unconditionally — the cold start is transfer-bound either way and
/// the mapping keeps its residency benefits.
pub const PREFETCH_BUDGET_SECS: f64 = 0.25;

/// Aggregate section statistics of one snapshot file, as the planner
/// consumes them (derived from the directory without reading sections).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LayoutStats {
    /// Exact file length in bytes.
    pub total_bytes: u64,
    /// On-disk bytes of raw (mmap-able) section payload.
    pub raw_section_bytes: u64,
    /// On-disk bytes of varint/delta-encoded section payload, which is
    /// fully read and decoded in every mode.
    pub encoded_section_bytes: u64,
}

/// Which byte supplier the planner chose.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PlannedBackend {
    /// Buffered reads in one forward pass over the file.
    Read,
    /// Zero-copy mapping.
    Mmap,
}

/// A resolved plan for [`LoadMode::Auto`](super::LoadMode::Auto).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LoadPlan {
    /// The chosen byte supplier.
    pub backend: PlannedBackend,
    /// Whether to issue `madvise(SEQUENTIAL + WILLNEED)` over the
    /// mapping before section assembly (mmap backend only).
    pub prefetch: bool,
    /// One-line human-readable justification, for logs.
    pub reason: &'static str,
}

/// Chooses a load plan from the storage profile and the snapshot's
/// layout statistics. Pure: no I/O, fully unit-tested.
pub fn plan_load(
    profile: Option<&StorageProfile>,
    mmap_available: bool,
    stats: &LayoutStats,
) -> LoadPlan {
    if !mmap_available {
        return LoadPlan {
            backend: PlannedBackend::Read,
            prefetch: false,
            reason: "zero-copy mapping unavailable on this host",
        };
    }
    let Some(p) = profile else {
        return LoadPlan {
            backend: PlannedBackend::Mmap,
            prefetch: false,
            reason: "no storage profile; defaulting to lazy mmap",
        };
    };
    if p.rand_read_secs > HIGH_LATENCY_SECS {
        return LoadPlan {
            backend: PlannedBackend::Read,
            prefetch: false,
            reason: "high random-read latency; one buffered forward pass beats demand paging",
        };
    }
    let bw = p.seq_bytes_per_sec.max(1.0);
    let stream_secs = stats.total_bytes as f64 / bw;
    // Lazy mapping defers the raw-byte transfer to query time; what it
    // cannot defer is the per-fault latency sprinkled over the first
    // queries. (The transfer itself is paid either way once the data is
    // touched, so it cancels out of the comparison.)
    let faults = stats.raw_section_bytes / (p.page_size.max(4096) * READAHEAD_PAGES);
    let lazy_fault_secs = faults as f64 * p.rand_read_secs;
    if stream_secs <= PREFETCH_BUDGET_SECS {
        LoadPlan {
            backend: PlannedBackend::Mmap,
            prefetch: true,
            reason: "mapped with prefetch: whole file streams within budget",
        }
    } else if lazy_fault_secs > stream_secs {
        LoadPlan {
            backend: PlannedBackend::Mmap,
            prefetch: true,
            reason: "mapped with prefetch: sequential readahead beats demand paging",
        }
    } else {
        LoadPlan {
            backend: PlannedBackend::Mmap,
            prefetch: false,
            reason: "mapped lazily: file too large to prefetch within budget",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(total: u64, raw: u64) -> LayoutStats {
        LayoutStats {
            total_bytes: total,
            raw_section_bytes: raw,
            encoded_section_bytes: total.saturating_sub(raw),
        }
    }

    #[test]
    fn no_mmap_means_read() {
        let p = StorageProfile { seq_bytes_per_sec: 1e9, rand_read_secs: 1e-5, page_size: 4096 };
        let plan = plan_load(Some(&p), false, &stats(1 << 25, 1 << 24));
        assert_eq!(plan.backend, PlannedBackend::Read);
    }

    #[test]
    fn no_profile_means_lazy_mmap() {
        let plan = plan_load(None, true, &stats(1 << 25, 1 << 24));
        assert_eq!(plan.backend, PlannedBackend::Mmap);
        assert!(!plan.prefetch);
    }

    #[test]
    fn high_latency_medium_means_read() {
        // A network-mount-ish profile: 2 ms per random read.
        let p = StorageProfile { seq_bytes_per_sec: 100e6, rand_read_secs: 2e-3, page_size: 4096 };
        let plan = plan_load(Some(&p), true, &stats(1 << 25, 1 << 24));
        assert_eq!(plan.backend, PlannedBackend::Read);
    }

    #[test]
    fn fast_local_disk_prefetches_small_files() {
        // NVMe-ish: 2 GB/s, 20 µs random reads, a 40 MB snapshot.
        let p = StorageProfile { seq_bytes_per_sec: 2e9, rand_read_secs: 20e-6, page_size: 4096 };
        let plan = plan_load(Some(&p), true, &stats(40 << 20, 30 << 20));
        assert_eq!(plan.backend, PlannedBackend::Mmap);
        assert!(plan.prefetch);
    }

    #[test]
    fn huge_file_on_modest_disk_stays_lazy() {
        // 100 MB/s disk, 10 GB file: streaming takes 100 s, faulting in
        // lazily is far cheaper when only parts get touched.
        let p =
            StorageProfile { seq_bytes_per_sec: 100e6, rand_read_secs: 100e-6, page_size: 4096 };
        let plan = plan_load(Some(&p), true, &stats(10 << 30, 10 << 30));
        assert_eq!(plan.backend, PlannedBackend::Mmap);
        assert!(!plan.prefetch);
    }
}
