//! Snapshot writer: one streaming pass over the flat arrays, then a
//! seek back to fill in the directory and header.
//!
//! The writer first verifies every cross-index invariant the loader
//! will rely on (shards agree on parameters, the top-k ladder was built
//! over the same partition and data as the radius index), so a file
//! that saves successfully always round-trips. Sections are streamed in
//! fixed-size chunks with their CRC computed on the encoded bytes — the
//! file is never buffered whole in memory.
//!
//! [`save_snapshot`] writes the current v2 layout: each section gets
//! the cheapest of the three [`SectionEncoding`]s (chosen by
//! [`encode::plan`](super::encode::plan)), encoded sections are packed
//! with no alignment right after the directory, raw sections follow
//! aligned for the mmap path (runtime page size when at least a page
//! long, 64 bytes otherwise), and the g-function area is stored **once**
//! — the shared-randomness invariant says every shard carries identical
//! g-functions, which the writer verifies byte-for-byte before relying
//! on it. [`save_snapshot_v1`] retains the original all-raw,
//! all-page-aligned layout for compatibility tests and benchmarks.

use std::fs::File;
use std::io::{BufWriter, Seek, SeekFrom, Write};
use std::path::Path;

use hlsh_vec::DenseDataset;

use super::codec::{SnapshotDistance, SnapshotFamily};
use super::encode::{self, SectionEncoder};
use super::format::{
    align_up, crc32, Crc32, DirEntry, Header, ParamWriter, SectionEncoding, DIR_ENTRY_LEN,
    DIR_ENTRY_LEN_V1, HEADER_LEN, PAGE, RAW_ALIGN, RAW_PAGE_ALIGN_MIN, VERSION, VERSION_V1,
};
use super::mmap::page_size;
use super::params::{GroupParams, RawParams, TopKParams};
use super::source::Pod;
use super::{SnapshotError, MAX_LEVELS, MAX_SHARDS, MAX_TABLES};
use crate::index::HybridLshIndex;
use crate::sharded::{ShardedIndex, ShardedTopKIndex};
use crate::store::FrozenStore;

/// What [`save_snapshot`] wrote, for logging and benchmarks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SaveStats {
    /// Total file size in bytes.
    pub bytes: u64,
    /// Number of sections written.
    pub sections: usize,
    /// Section payload size before encoding (the bytes a v1-style raw
    /// dump of the same arrays would hold, padding excluded).
    pub raw_payload_bytes: u64,
    /// Section payload size as written (equals `raw_payload_bytes` for
    /// v1 files).
    pub encoded_payload_bytes: u64,
    /// Sections left raw (zero-copy mmap-able).
    pub raw_sections: usize,
    /// Sections stored as plain varints.
    pub varint_sections: usize,
    /// Sections stored as delta varints.
    pub delta_sections: usize,
    /// Sections stored as Elias-Fano.
    pub ef_sections: usize,
}

/// Elements encoded per write chunk (64 Ki elements, ≤ 512 KiB).
const CHUNK: usize = 64 * 1024;

/// One section's source elements, type-tagged so the schema walk can
/// collect every payload into a single list.
enum SectionSlice<'a> {
    U8(&'a [u8]),
    U32(&'a [u32]),
    U64(&'a [u64]),
    F32(&'a [f32]),
}

/// Dispatches a generic expression over the concrete element type of a
/// [`SectionSlice`].
macro_rules! each_slice {
    ($slice:expr, $elems:ident => $body:expr) => {
        match $slice {
            SectionSlice::U8($elems) => $body,
            SectionSlice::U32($elems) => $body,
            SectionSlice::U64($elems) => $body,
            SectionSlice::F32($elems) => $body,
        }
    };
}

impl SectionSlice<'_> {
    fn raw_len(&self) -> u64 {
        each_slice!(self, e => std::mem::size_of_val(*e) as u64)
    }
}

struct SectionWriter {
    out: BufWriter<File>,
    cursor: u64,
}

impl SectionWriter {
    fn pad_to(&mut self, target: u64) -> Result<(), SnapshotError> {
        const ZEROS: [u8; 4096] = [0u8; 4096];
        let mut gap = (target - self.cursor) as usize;
        while gap > 0 {
            let step = gap.min(ZEROS.len());
            self.out.write_all(&ZEROS[..step])?;
            gap -= step;
        }
        self.cursor = target;
        Ok(())
    }

    /// Streams one raw section: pad to `align`, then encode `elems`
    /// little-endian in chunks while folding the CRC.
    fn section_raw<T: Pod>(&mut self, elems: &[T], align: u64) -> Result<DirEntry, SnapshotError> {
        let offset = align_up(self.cursor, align);
        self.pad_to(offset)?;
        let mut crc = Crc32::new();
        let mut buf = Vec::with_capacity(CHUNK.min(elems.len()) * T::SIZE);
        for chunk in elems.chunks(CHUNK) {
            buf.clear();
            for &e in chunk {
                e.to_le(&mut buf);
            }
            crc.update(&buf);
            self.out.write_all(&buf)?;
        }
        let raw_len = (elems.len() * T::SIZE) as u64;
        self.cursor = offset + raw_len;
        Ok(DirEntry {
            offset,
            raw_len,
            enc_len: raw_len,
            elem_size: T::SIZE as u32,
            encoding: SectionEncoding::Raw,
            crc: crc.finish(),
        })
    }

    /// Streams one encoded section at the current cursor (no
    /// alignment), folding the CRC over the encoded bytes.
    fn section_encoded<T: Pod>(
        &mut self,
        elems: &[T],
        encoding: SectionEncoding,
    ) -> Result<DirEntry, SnapshotError> {
        let offset = self.cursor;
        let mut crc = Crc32::new();
        let mut enc_len = 0u64;
        if encoding == SectionEncoding::EliasFano {
            // Elias-Fano sizes its regions from the whole section, so
            // it cannot stream; the monotone sections it wins on (key
            // and offset arrays) are small enough to buffer.
            let buf = encode::encode_section(elems, encoding);
            crc.update(&buf);
            self.out.write_all(&buf)?;
            enc_len = buf.len() as u64;
        } else {
            let mut enc = SectionEncoder::new(encoding);
            let mut buf = Vec::new();
            for chunk in elems.chunks(CHUNK) {
                buf.clear();
                enc.extend(chunk, &mut buf);
                crc.update(&buf);
                self.out.write_all(&buf)?;
                enc_len += buf.len() as u64;
            }
        }
        self.cursor = offset + enc_len;
        Ok(DirEntry {
            offset,
            raw_len: (elems.len() * T::SIZE) as u64,
            enc_len,
            elem_size: T::SIZE as u32,
            encoding,
            crc: crc.finish(),
        })
    }
}

/// Extracts one index's parameter group, checking the per-table sketch
/// configs agree with the index-level one.
fn group_of<S, F, D>(
    ix: &HybridLshIndex<S, F, D, FrozenStore>,
) -> Result<GroupParams, SnapshotError>
where
    S: hlsh_vec::PointSet,
    F: SnapshotFamily + hlsh_families::LshFamily<S::Point>,
    D: hlsh_vec::Distance<S::Point>,
{
    for table in ix.raw_tables() {
        let (.., config) = table.store().sections();
        if config.is_some_and(|c| c != ix.hll_config()) {
            return Err(SnapshotError::Inconsistent(
                "table sketch config disagrees with the index HLL config",
            ));
        }
    }
    let mut fw = ParamWriter::new();
    // The family-parameter codec is only defined over [f32] points, but
    // `ix` may hold `DenseDataset` or `Arc<DenseDataset>`; the family
    // value itself is point-type independent.
    SnapshotFamily::encode_params(ix.family(), &mut fw);
    Ok(GroupParams {
        family: fw.into_bytes(),
        tables: ix.tables(),
        k: ix.k(),
        precision: ix.hll_config().precision(),
        hll_seed: ix.hll_config().seed(),
        lazy: ix.lazy_threshold(),
        alpha: ix.cost_model().alpha(),
        beta_scan: ix.cost_model().beta(),
        beta_cand: ix.cost_model().beta_cand(),
    })
}

/// Runs every save-side cross-check and assembles the scalar params.
fn validate<F, D>(
    rnnr: &ShardedIndex<DenseDataset, F, D, FrozenStore>,
    topk: Option<&ShardedTopKIndex<DenseDataset, F, D, FrozenStore>>,
) -> Result<RawParams, SnapshotError>
where
    F: SnapshotFamily,
    D: SnapshotDistance,
{
    let shards = rnnr.shards();
    let n = rnnr.len();
    let assignment = rnnr.assignment();
    let first = shards.first().ok_or(SnapshotError::Inconsistent("index has no shards"))?;
    if n > u32::MAX as usize {
        return Err(SnapshotError::Inconsistent("point count exceeds the id space"));
    }
    if shards.len() > MAX_SHARDS {
        return Err(SnapshotError::Inconsistent("shard count exceeds the format cap"));
    }
    let dim = first.data().dim();
    let rnnr_group = group_of(first)?;
    if rnnr_group.tables > MAX_TABLES {
        return Err(SnapshotError::Inconsistent("table count exceeds the format cap"));
    }
    for shard in shards {
        if shard.data().dim() != dim
            || group_of(shard)? != rnnr_group
            || shard.family() != first.family()
        {
            return Err(SnapshotError::Inconsistent("shards disagree on index parameters"));
        }
    }

    // Cross-check the ladder against the radius index before promising
    // the loader it can share one data copy between them.
    let mut topk_raw = None;
    if let Some(tk) = topk {
        if tk.assignment() != assignment || tk.len() != n {
            return Err(SnapshotError::Inconsistent(
                "top-k index partitioned differently from the radius index",
            ));
        }
        if tk.schedule().levels() > MAX_LEVELS {
            return Err(SnapshotError::Inconsistent("schedule level count exceeds the format cap"));
        }
        for (s, shard) in tk.shards().iter().enumerate() {
            if tk.global_ids(s) != rnnr.global_ids(s) {
                return Err(SnapshotError::Inconsistent(
                    "top-k owner lists differ from the radius index",
                ));
            }
            if shard.data() != shards[s].data() {
                return Err(SnapshotError::Inconsistent(
                    "top-k shard data differs from the radius index",
                ));
            }
        }
        let reference = tk.shards().first().expect("assignment implies at least one shard");
        let mut level_groups = Vec::with_capacity(tk.schedule().levels());
        for (l, level) in reference.levels().iter().enumerate() {
            let g = group_of(level)?;
            if g.tables > MAX_TABLES {
                return Err(SnapshotError::Inconsistent("table count exceeds the format cap"));
            }
            for shard in tk.shards() {
                if group_of(&shard.levels()[l])? != g
                    || shard.levels()[l].family() != level.family()
                {
                    return Err(SnapshotError::Inconsistent(
                        "top-k shards disagree on level parameters",
                    ));
                }
            }
            level_groups.push(g);
        }
        topk_raw = Some(TopKParams {
            base: tk.schedule().base(),
            ratio: tk.schedule().ratio(),
            levels: level_groups,
        });
    }

    Ok(RawParams {
        distance_tag: D::TAG,
        family_tag: F::TAG,
        n,
        dim,
        seed: assignment.seed(),
        shards: shards.len(),
        rnnr: rnnr_group,
        topk: topk_raw,
    })
}

/// Encodes one shard's full g-function area (radius tables, then every
/// top-k level's tables) — the unit the v2 format stores once.
fn shard_gfn_area<F, D>(
    rnnr: &ShardedIndex<DenseDataset, F, D, FrozenStore>,
    topk: Option<&ShardedTopKIndex<DenseDataset, F, D, FrozenStore>>,
    s: usize,
) -> Vec<u8>
where
    F: SnapshotFamily,
    D: SnapshotDistance,
{
    let mut w = ParamWriter::new();
    for table in rnnr.shards()[s].raw_tables() {
        F::encode_gfn(table.g(), &mut w);
    }
    if let Some(tk) = topk {
        for level in tk.shards()[s].levels() {
            for table in level.raw_tables() {
                F::encode_gfn(table.g(), &mut w);
            }
        }
    }
    w.into_bytes()
}

/// Collects every section payload in the format's fixed schema order:
/// per shard its owner list, point data and radius-table stores; then
/// per shard every top-k level's stores.
fn collect_sections<'a, F, D>(
    rnnr: &'a ShardedIndex<DenseDataset, F, D, FrozenStore>,
    topk: Option<&'a ShardedTopKIndex<DenseDataset, F, D, FrozenStore>>,
) -> Vec<SectionSlice<'a>>
where
    F: SnapshotFamily,
    D: SnapshotDistance,
{
    let mut out = Vec::new();
    let push_store = |out: &mut Vec<SectionSlice<'a>>, store: &'a FrozenStore| {
        let (keys, prefix, offsets, members, bits, rank, regs, _) = store.sections();
        out.push(SectionSlice::U64(keys));
        out.push(SectionSlice::U32(prefix));
        out.push(SectionSlice::U64(offsets));
        out.push(SectionSlice::U32(members));
        out.push(SectionSlice::U64(bits));
        out.push(SectionSlice::U32(rank));
        out.push(SectionSlice::U8(regs));
    };
    for (s, shard) in rnnr.shards().iter().enumerate() {
        out.push(SectionSlice::U32(rnnr.global_ids(s)));
        out.push(SectionSlice::F32(shard.data().as_flat()));
        for table in shard.raw_tables() {
            push_store(&mut out, table.store());
        }
    }
    if let Some(tk) = topk {
        for shard in tk.shards() {
            for level in shard.levels() {
                for table in level.raw_tables() {
                    push_store(&mut out, table.store());
                }
            }
        }
    }
    out
}

/// Serialises a sharded radius index — and optionally the sharded top-k
/// ladder built over the **same** data and partition — to `path` in the
/// current (v2) format of `docs/SNAPSHOT.md`: per-section encodings,
/// packed encoded sections, page-aligned raw sections, one shared
/// g-function area.
///
/// Shard data is stored once: when `topk` is given, the writer verifies
/// it shares the radius index's assignment, owner lists and per-shard
/// rows, and the loader reconstructs both indexes over one shared copy.
/// Returns [`SnapshotError::Inconsistent`] if the two indexes disagree
/// (e.g. they were built from different builds of the data).
pub fn save_snapshot<F, D>(
    path: &Path,
    rnnr: &ShardedIndex<DenseDataset, F, D, FrozenStore>,
    topk: Option<&ShardedTopKIndex<DenseDataset, F, D, FrozenStore>>,
) -> Result<SaveStats, SnapshotError>
where
    F: SnapshotFamily,
    D: SnapshotDistance,
{
    let raw = validate(rnnr, topk)?;
    let dir_count = raw.expected_sections();

    // Scalars, then the g-function area exactly once. Every shard's
    // area must be byte-identical (the shared-randomness invariant the
    // sharded builder guarantees); verify rather than trust.
    let mut pw = ParamWriter::new();
    raw.encode(&mut pw);
    let gfn_area = shard_gfn_area(rnnr, topk, 0);
    for s in 1..raw.shards {
        if shard_gfn_area(rnnr, topk, s) != gfn_area {
            return Err(SnapshotError::Inconsistent("shards disagree on g-functions"));
        }
    }
    let mut param = pw.into_bytes();
    param.extend_from_slice(&gfn_area);

    let param_off = HEADER_LEN as u64;
    let param_len = param.len() as u64;
    let dir_off = param_off + param_len;
    let dir_len = (dir_count * DIR_ENTRY_LEN) as u64;

    let file = File::create(path)?;
    let mut sw = SectionWriter { out: BufWriter::new(file), cursor: 0 };
    sw.out.write_all(&[0u8; HEADER_LEN])?;
    sw.out.write_all(&param)?;
    sw.cursor = dir_off;
    sw.pad_to(dir_off + dir_len)?;

    let slices = collect_sections(rnnr, topk);
    debug_assert_eq!(slices.len(), dir_count);
    let mut entries: Vec<Option<DirEntry>> = vec![None; dir_count];
    let mut stats = SaveStats {
        bytes: 0,
        sections: dir_count,
        raw_payload_bytes: 0,
        encoded_payload_bytes: 0,
        raw_sections: 0,
        varint_sections: 0,
        delta_sections: 0,
        ef_sections: 0,
    };

    // Pass A: encoded sections, packed tight right after the directory.
    let mut plans = Vec::with_capacity(slices.len());
    for (i, slice) in slices.iter().enumerate() {
        stats.raw_payload_bytes += slice.raw_len();
        let (encoding, _) = each_slice!(slice, e => encode::plan(e));
        plans.push(encoding);
        match encoding {
            SectionEncoding::Raw => {}
            SectionEncoding::Varint => stats.varint_sections += 1,
            SectionEncoding::DeltaVarint => stats.delta_sections += 1,
            SectionEncoding::EliasFano => stats.ef_sections += 1,
        }
        if encoding != SectionEncoding::Raw {
            let entry = each_slice!(slice, e => sw.section_encoded(e, encoding))?;
            stats.encoded_payload_bytes += entry.enc_len;
            entries[i] = Some(entry);
        }
    }

    // Pass B: raw sections, aligned for the zero-copy path — runtime
    // page size for page-sized-and-up sections, 64 bytes for small
    // ones.
    let page = page_size().max(PAGE);
    for (i, slice) in slices.iter().enumerate() {
        if plans[i] != SectionEncoding::Raw {
            continue;
        }
        let align = if slice.raw_len() >= RAW_PAGE_ALIGN_MIN { page } else { RAW_ALIGN };
        let entry = each_slice!(slice, e => sw.section_raw(e, align))?;
        stats.raw_sections += 1;
        stats.encoded_payload_bytes += entry.enc_len;
        entries[i] = Some(entry);
    }

    let total_len = sw.cursor;
    let mut dir_bytes = Vec::with_capacity(dir_len as usize);
    for entry in &entries {
        dir_bytes.extend_from_slice(&entry.expect("every section written in pass A or B").encode());
    }
    let header = Header {
        version: VERSION,
        total_len,
        param_off,
        param_len,
        dir_off,
        dir_count: dir_count as u32,
        param_crc: crc32(&param),
        dir_crc: crc32(&dir_bytes),
    };
    sw.out.seek(SeekFrom::Start(0))?;
    sw.out.write_all(&header.encode())?;
    sw.out.seek(SeekFrom::Start(dir_off))?;
    sw.out.write_all(&dir_bytes)?;
    sw.out.flush()?;
    stats.bytes = total_len;
    Ok(stats)
}

/// Serialises in the original v1 layout: every section raw and
/// page-aligned, 24-byte directory entries, the g-function area
/// repeated per shard. Retained so compatibility tests and the
/// `snapshot` bench bin can produce v1 files to hold the
/// version-dispatched reader to its contract; new code should call
/// [`save_snapshot`].
pub fn save_snapshot_v1<F, D>(
    path: &Path,
    rnnr: &ShardedIndex<DenseDataset, F, D, FrozenStore>,
    topk: Option<&ShardedTopKIndex<DenseDataset, F, D, FrozenStore>>,
) -> Result<SaveStats, SnapshotError>
where
    F: SnapshotFamily,
    D: SnapshotDistance,
{
    let raw = validate(rnnr, topk)?;
    let dir_count = raw.expected_sections();

    // Scalars first, then every g-function verbatim: all shards'
    // radius tables, then all shards' ladder tables (the v1 layout).
    let mut pw = ParamWriter::new();
    raw.encode(&mut pw);
    for shard in rnnr.shards() {
        for table in shard.raw_tables() {
            F::encode_gfn(table.g(), &mut pw);
        }
    }
    if let Some(tk) = topk {
        for shard in tk.shards() {
            for level in shard.levels() {
                for table in level.raw_tables() {
                    F::encode_gfn(table.g(), &mut pw);
                }
            }
        }
    }
    let param = pw.into_bytes();

    let param_off = HEADER_LEN as u64;
    let param_len = param.len() as u64;
    let dir_off = param_off + param_len;
    let dir_len = (dir_count * DIR_ENTRY_LEN_V1) as u64;

    let file = File::create(path)?;
    let mut sw = SectionWriter { out: BufWriter::new(file), cursor: 0 };
    sw.out.write_all(&[0u8; HEADER_LEN])?;
    sw.out.write_all(&param)?;
    sw.cursor = dir_off;
    sw.pad_to(dir_off + dir_len)?;

    let slices = collect_sections(rnnr, topk);
    debug_assert_eq!(slices.len(), dir_count);
    let mut entries = Vec::with_capacity(dir_count);
    let mut raw_payload = 0u64;
    for slice in &slices {
        // v1 alignment rule: every section starts on a 4096 boundary.
        let entry = each_slice!(slice, e => sw.section_raw(e, PAGE))?;
        raw_payload += entry.raw_len;
        entries.push(entry);
    }

    let total_len = sw.cursor;
    let mut dir_bytes = Vec::with_capacity(dir_len as usize);
    for entry in &entries {
        dir_bytes.extend_from_slice(&entry.encode_v1());
    }
    let header = Header {
        version: VERSION_V1,
        total_len,
        param_off,
        param_len,
        dir_off,
        dir_count: dir_count as u32,
        param_crc: crc32(&param),
        dir_crc: crc32(&dir_bytes),
    };
    sw.out.seek(SeekFrom::Start(0))?;
    sw.out.write_all(&header.encode())?;
    sw.out.seek(SeekFrom::Start(dir_off))?;
    sw.out.write_all(&dir_bytes)?;
    sw.out.flush()?;
    Ok(SaveStats {
        bytes: total_len,
        sections: dir_count,
        raw_payload_bytes: raw_payload,
        encoded_payload_bytes: raw_payload,
        raw_sections: dir_count,
        varint_sections: 0,
        delta_sections: 0,
        ef_sections: 0,
    })
}
