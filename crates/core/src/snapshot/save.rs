//! Snapshot writer: one streaming pass over the flat arrays, then a
//! seek back to fill in the directory and header.
//!
//! The writer first verifies every cross-index invariant the loader
//! will rely on (shards agree on parameters, the top-k ladder was built
//! over the same partition and data as the radius index), so a file
//! that saves successfully always round-trips. Sections are streamed in
//! fixed-size chunks with their CRC computed on the encoded bytes — the
//! file is never buffered whole in memory.

use std::fs::File;
use std::io::{BufWriter, Seek, SeekFrom, Write};
use std::path::Path;

use hlsh_vec::DenseDataset;

use super::codec::{SnapshotDistance, SnapshotFamily};
use super::format::{
    crc32, page_align, Crc32, DirEntry, Header, ParamWriter, DIR_ENTRY_LEN, HEADER_LEN,
};
use super::params::{GroupParams, RawParams, TopKParams};
use super::source::Pod;
use super::{SnapshotError, MAX_LEVELS, MAX_SHARDS, MAX_TABLES};
use crate::index::HybridLshIndex;
use crate::sharded::{ShardedIndex, ShardedTopKIndex};
use crate::store::FrozenStore;

/// What [`save_snapshot`] wrote, for logging and benchmarks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SaveStats {
    /// Total file size in bytes.
    pub bytes: u64,
    /// Number of page-aligned sections written.
    pub sections: usize,
}

/// Elements encoded per write chunk (64 Ki elements, ≤ 512 KiB).
const CHUNK: usize = 64 * 1024;

struct SectionWriter {
    out: BufWriter<File>,
    cursor: u64,
    entries: Vec<DirEntry>,
}

impl SectionWriter {
    fn pad_to(&mut self, target: u64) -> Result<(), SnapshotError> {
        const ZEROS: [u8; 4096] = [0u8; 4096];
        let mut gap = (target - self.cursor) as usize;
        while gap > 0 {
            let step = gap.min(ZEROS.len());
            self.out.write_all(&ZEROS[..step])?;
            gap -= step;
        }
        self.cursor = target;
        Ok(())
    }

    /// Streams one section: pad to the next page boundary, then encode
    /// `elems` little-endian in chunks while folding the CRC.
    fn section<T: Pod>(&mut self, elems: &[T]) -> Result<(), SnapshotError> {
        let offset = page_align(self.cursor);
        self.pad_to(offset)?;
        let mut crc = Crc32::new();
        let mut buf = Vec::with_capacity(CHUNK.min(elems.len()) * T::SIZE);
        for chunk in elems.chunks(CHUNK) {
            buf.clear();
            for &e in chunk {
                e.to_le(&mut buf);
            }
            crc.update(&buf);
            self.out.write_all(&buf)?;
        }
        let byte_len = (elems.len() * T::SIZE) as u64;
        self.cursor = offset + byte_len;
        self.entries.push(DirEntry {
            offset,
            byte_len,
            elem_size: T::SIZE as u32,
            crc: crc.finish(),
        });
        Ok(())
    }

    /// The seven flat arrays of one frozen store, in schema order.
    fn store(&mut self, store: &FrozenStore) -> Result<(), SnapshotError> {
        let (keys, prefix, offsets, members, bits, rank, regs, _) = store.sections();
        self.section::<u64>(keys)?;
        self.section::<u32>(prefix)?;
        self.section::<u64>(offsets)?;
        self.section::<u32>(members)?;
        self.section::<u64>(bits)?;
        self.section::<u32>(rank)?;
        self.section::<u8>(regs)
    }
}

/// Extracts one index's parameter group, checking the per-table sketch
/// configs agree with the index-level one.
fn group_of<S, F, D>(
    ix: &HybridLshIndex<S, F, D, FrozenStore>,
) -> Result<GroupParams, SnapshotError>
where
    S: hlsh_vec::PointSet,
    F: SnapshotFamily + hlsh_families::LshFamily<S::Point>,
    D: hlsh_vec::Distance<S::Point>,
{
    for table in ix.raw_tables() {
        let (.., config) = table.store().sections();
        if config.is_some_and(|c| c != ix.hll_config()) {
            return Err(SnapshotError::Inconsistent(
                "table sketch config disagrees with the index HLL config",
            ));
        }
    }
    let mut fw = ParamWriter::new();
    // The family-parameter codec is only defined over [f32] points, but
    // `ix` may hold `DenseDataset` or `Arc<DenseDataset>`; the family
    // value itself is point-type independent.
    SnapshotFamily::encode_params(ix.family(), &mut fw);
    Ok(GroupParams {
        family: fw.into_bytes(),
        tables: ix.tables(),
        k: ix.k(),
        precision: ix.hll_config().precision(),
        hll_seed: ix.hll_config().seed(),
        lazy: ix.lazy_threshold(),
        alpha: ix.cost_model().alpha(),
        beta_scan: ix.cost_model().beta(),
        beta_cand: ix.cost_model().beta_cand(),
    })
}

/// Serialises a sharded radius index — and optionally the sharded top-k
/// ladder built over the **same** data and partition — to `path` in the
/// versioned format of `docs/SNAPSHOT.md`.
///
/// Shard data is stored once: when `topk` is given, the writer verifies
/// it shares the radius index's assignment, owner lists and per-shard
/// rows, and the loader reconstructs both indexes over one shared copy.
/// Returns [`SnapshotError::Inconsistent`] if the two indexes disagree
/// (e.g. they were built from different builds of the data).
pub fn save_snapshot<F, D>(
    path: &Path,
    rnnr: &ShardedIndex<DenseDataset, F, D, FrozenStore>,
    topk: Option<&ShardedTopKIndex<DenseDataset, F, D, FrozenStore>>,
) -> Result<SaveStats, SnapshotError>
where
    F: SnapshotFamily,
    D: SnapshotDistance,
{
    let shards = rnnr.shards();
    let n = rnnr.len();
    let assignment = rnnr.assignment();
    let first = shards.first().ok_or(SnapshotError::Inconsistent("index has no shards"))?;
    if n > u32::MAX as usize {
        return Err(SnapshotError::Inconsistent("point count exceeds the id space"));
    }
    if shards.len() > MAX_SHARDS {
        return Err(SnapshotError::Inconsistent("shard count exceeds the format cap"));
    }
    let dim = first.data().dim();
    let rnnr_group = group_of(first)?;
    if rnnr_group.tables > MAX_TABLES {
        return Err(SnapshotError::Inconsistent("table count exceeds the format cap"));
    }
    for shard in shards {
        if shard.data().dim() != dim
            || group_of(shard)? != rnnr_group
            || shard.family() != first.family()
        {
            return Err(SnapshotError::Inconsistent("shards disagree on index parameters"));
        }
    }

    // Cross-check the ladder against the radius index before promising
    // the loader it can share one data copy between them.
    let mut topk_raw = None;
    if let Some(tk) = topk {
        if tk.assignment() != assignment || tk.len() != n {
            return Err(SnapshotError::Inconsistent(
                "top-k index partitioned differently from the radius index",
            ));
        }
        if tk.schedule().levels() > MAX_LEVELS {
            return Err(SnapshotError::Inconsistent("schedule level count exceeds the format cap"));
        }
        for (s, shard) in tk.shards().iter().enumerate() {
            if tk.global_ids(s) != rnnr.global_ids(s) {
                return Err(SnapshotError::Inconsistent(
                    "top-k owner lists differ from the radius index",
                ));
            }
            if shard.data() != shards[s].data() {
                return Err(SnapshotError::Inconsistent(
                    "top-k shard data differs from the radius index",
                ));
            }
        }
        let reference = tk.shards().first().expect("assignment implies at least one shard");
        let mut level_groups = Vec::with_capacity(tk.schedule().levels());
        for (l, level) in reference.levels().iter().enumerate() {
            let g = group_of(level)?;
            if g.tables > MAX_TABLES {
                return Err(SnapshotError::Inconsistent("table count exceeds the format cap"));
            }
            for shard in tk.shards() {
                if group_of(&shard.levels()[l])? != g
                    || shard.levels()[l].family() != level.family()
                {
                    return Err(SnapshotError::Inconsistent(
                        "top-k shards disagree on level parameters",
                    ));
                }
            }
            level_groups.push(g);
        }
        topk_raw = Some(TopKParams {
            base: tk.schedule().base(),
            ratio: tk.schedule().ratio(),
            levels: level_groups,
        });
    }

    let raw = RawParams {
        distance_tag: D::TAG,
        family_tag: F::TAG,
        n,
        dim,
        seed: assignment.seed(),
        shards: shards.len(),
        rnnr: rnnr_group,
        topk: topk_raw,
    };
    let dir_count = raw.expected_sections();

    // Scalars first, then every g-function verbatim, in section order.
    let mut pw = ParamWriter::new();
    raw.encode(&mut pw);
    for shard in shards {
        for table in shard.raw_tables() {
            F::encode_gfn(table.g(), &mut pw);
        }
    }
    if let Some(tk) = topk {
        for shard in tk.shards() {
            for level in shard.levels() {
                for table in level.raw_tables() {
                    F::encode_gfn(table.g(), &mut pw);
                }
            }
        }
    }
    let param = pw.into_bytes();

    let param_off = HEADER_LEN as u64;
    let param_len = param.len() as u64;
    let dir_off = param_off + param_len;
    let dir_len = (dir_count * DIR_ENTRY_LEN) as u64;

    let file = File::create(path)?;
    let mut sw = SectionWriter {
        out: BufWriter::new(file),
        cursor: 0,
        entries: Vec::with_capacity(dir_count),
    };
    // Header and directory are written last (their CRCs depend on the
    // streamed sections); reserve their space with zeros for now.
    sw.out.write_all(&[0u8; HEADER_LEN])?;
    sw.out.write_all(&param)?;
    sw.cursor = dir_off;
    sw.pad_to(dir_off + dir_len)?;

    for (s, shard) in shards.iter().enumerate() {
        sw.section::<u32>(rnnr.global_ids(s))?;
        sw.section::<f32>(shard.data().as_flat())?;
        for table in shard.raw_tables() {
            sw.store(table.store())?;
        }
    }
    if let Some(tk) = topk {
        for shard in tk.shards() {
            for level in shard.levels() {
                for table in level.raw_tables() {
                    sw.store(table.store())?;
                }
            }
        }
    }
    debug_assert_eq!(sw.entries.len(), dir_count);

    let total_len = sw.cursor;
    let mut dir_bytes = Vec::with_capacity(dir_len as usize);
    for entry in &sw.entries {
        dir_bytes.extend_from_slice(&entry.encode());
    }
    let header = Header {
        total_len,
        param_off,
        param_len,
        dir_off,
        dir_count: dir_count as u32,
        param_crc: crc32(&param),
        dir_crc: crc32(&dir_bytes),
    };
    sw.out.seek(SeekFrom::Start(0))?;
    sw.out.write_all(&header.encode())?;
    sw.out.seek(SeekFrom::Start(dir_off))?;
    sw.out.write_all(&dir_bytes)?;
    sw.out.flush()?;
    Ok(SaveStats { bytes: total_len, sections: dir_count })
}
