//! The pinned on-disk primitives: header, section directory, CRC-32,
//! and the little-endian parameter codec.
//!
//! Everything here is **format**, not policy: byte layouts are fixed by
//! `docs/SNAPSHOT.md` and guarded by [`VERSION`]. All multi-byte values
//! are little-endian regardless of host; decoding is total (every
//! malformed input maps to a [`SnapshotError`], never a panic), in the
//! same style as the wire protocol's frame decoder.

use super::SnapshotError;

/// The 8-byte file magic.
pub const MAGIC: [u8; 8] = *b"HLSHSNAP";

/// Current format version, written by [`save_snapshot`]. The loader is
/// version-dispatched and still reads [`VERSION_V1`] files; see the
/// compatibility policy in `docs/SNAPSHOT.md`.
///
/// [`save_snapshot`]: super::save_snapshot
pub const VERSION: u32 = 2;

/// The original format version: raw page-aligned sections only, 24-byte
/// directory entries, g-functions repeated per shard in the param
/// block. Still written by [`save_snapshot_v1`](super::save_snapshot_v1)
/// for compatibility tests and benchmarks.
pub const VERSION_V1: u32 = 1;

/// Endianness canary, written little-endian. A loader that reads it
/// back as anything but this value is mis-decoding the file.
pub const ENDIAN_TAG: u32 = 0x0A0B_0C0D;

/// The format's page-size floor. In v1 every section offset is a
/// multiple of this; in v2 it is the alignment floor for *large* raw
/// sections (the writer aligns them to the runtime page size, which is
/// always a multiple of 4096 on supported hosts), so a page-aligned
/// mmap base keeps every raw section slice aligned for any element type
/// up to 8 bytes.
pub const PAGE: u64 = 4096;

/// v2 alignment for raw sections smaller than one page: enough for any
/// element type, without burning most of a page on padding per section.
pub const RAW_ALIGN: u64 = 64;

/// Raw sections at or above this many bytes are page-aligned in v2 (so
/// the mmap path wastes no partial pages on them); smaller ones are
/// [`RAW_ALIGN`]-aligned.
pub const RAW_PAGE_ALIGN_MIN: u64 = PAGE;

/// Fixed header size in bytes.
pub const HEADER_LEN: usize = 64;

/// Size of one v2 directory entry in bytes.
pub const DIR_ENTRY_LEN: usize = 32;

/// Size of one v1 directory entry in bytes.
pub const DIR_ENTRY_LEN_V1: usize = 24;

/// Rounds `v` up to the next multiple of [`PAGE`].
pub fn page_align(v: u64) -> u64 {
    v.div_ceil(PAGE) * PAGE
}

/// Rounds `v` up to the next multiple of `align` (a power of two).
pub fn align_up(v: u64, align: u64) -> u64 {
    debug_assert!(align.is_power_of_two());
    v.div_ceil(align) * align
}

/// How a section's payload is stored on disk. The tag lives in each v2
/// directory entry; v1 files are all-[`Raw`](SectionEncoding::Raw).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SectionEncoding {
    /// Verbatim little-endian elements — the only encoding the
    /// zero-copy mmap path can serve without materialising.
    Raw,
    /// LEB128 varints, one per element (integer element types only).
    /// Wins on small-valued arrays such as bucket members and owners.
    Varint,
    /// First element as a varint, then varint deltas between
    /// consecutive elements. Wins on sorted/monotone arrays such as
    /// CSR offsets and prefix tables.
    DeltaVarint,
    /// Elias-Fano: fixed-width low bits plus a unary high-bit bitmap.
    /// Wins on monotone arrays whose deltas are too large for varints
    /// to beat raw — the sorted 64-bit bucket-key arrays, whose nearly
    /// uniform spacing costs ~`log2(universe / n) + 2` bits per key.
    EliasFano,
}

impl SectionEncoding {
    /// The on-disk tag byte.
    pub fn tag(self) -> u8 {
        match self {
            SectionEncoding::Raw => 0,
            SectionEncoding::Varint => 1,
            SectionEncoding::DeltaVarint => 2,
            SectionEncoding::EliasFano => 3,
        }
    }

    /// Decodes a tag byte.
    pub fn from_tag(tag: u8) -> Result<Self, SnapshotError> {
        match tag {
            0 => Ok(SectionEncoding::Raw),
            1 => Ok(SectionEncoding::Varint),
            2 => Ok(SectionEncoding::DeltaVarint),
            3 => Ok(SectionEncoding::EliasFano),
            _ => Err(SnapshotError::Malformed("unknown section encoding tag")),
        }
    }
}

// --- CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320) ---

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0usize;
    while i < 256 {
        let mut c = i as u32;
        let mut b = 0;
        while b < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            b += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc_table();

/// Incremental CRC-32 state, for checksumming sections as they stream
/// through the writer.
#[derive(Clone, Copy, Debug)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// Fresh state.
    pub fn new() -> Self {
        Self { state: 0xFFFF_FFFF }
    }

    /// Folds `bytes` into the checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut c = self.state;
        for &b in bytes {
            c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
        }
        self.state = c;
    }

    /// The finished checksum.
    pub fn finish(self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

/// One-shot CRC-32 of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finish()
}

// --- header ---

/// The fixed 64-byte file header (identical layout in v1 and v2; only
/// the `version` word and the directory entry size behind `dir_off`
/// differ).
///
/// ```text
/// off  size  field
///   0     8  magic        b"HLSHSNAP"
///   8     4  version      u32 (1 or 2)
///  12     4  endian       u32 canary 0x0A0B0C0D
///  16     8  total_len    u64, exact file length
///  24     8  param_off    u64 (always 64)
///  32     8  param_len    u64
///  40     8  dir_off      u64 (= param_off + param_len)
///  48     4  dir_count    u32, number of directory entries
///  52     4  param_crc    u32 over the param block bytes
///  56     4  dir_crc      u32 over the directory bytes
///  60     4  header_crc   u32 over bytes 0..60
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Header {
    /// Format version ([`VERSION`] or [`VERSION_V1`]).
    pub version: u32,
    /// Exact file length in bytes.
    pub total_len: u64,
    /// Byte offset of the parameter block.
    pub param_off: u64,
    /// Byte length of the parameter block.
    pub param_len: u64,
    /// Byte offset of the section directory.
    pub dir_off: u64,
    /// Number of directory entries.
    pub dir_count: u32,
    /// CRC-32 of the parameter block.
    pub param_crc: u32,
    /// CRC-32 of the directory bytes.
    pub dir_crc: u32,
}

impl Header {
    /// Size in bytes of one directory entry under this header's format
    /// version.
    pub fn dir_entry_len(&self) -> usize {
        if self.version == VERSION_V1 {
            DIR_ENTRY_LEN_V1
        } else {
            DIR_ENTRY_LEN
        }
    }

    /// Serialises the header to its 64-byte form (computing the
    /// trailing header CRC).
    pub fn encode(&self) -> [u8; HEADER_LEN] {
        let mut out = [0u8; HEADER_LEN];
        out[0..8].copy_from_slice(&MAGIC);
        out[8..12].copy_from_slice(&self.version.to_le_bytes());
        out[12..16].copy_from_slice(&ENDIAN_TAG.to_le_bytes());
        out[16..24].copy_from_slice(&self.total_len.to_le_bytes());
        out[24..32].copy_from_slice(&self.param_off.to_le_bytes());
        out[32..40].copy_from_slice(&self.param_len.to_le_bytes());
        out[40..48].copy_from_slice(&self.dir_off.to_le_bytes());
        out[48..52].copy_from_slice(&self.dir_count.to_le_bytes());
        out[52..56].copy_from_slice(&self.param_crc.to_le_bytes());
        out[56..60].copy_from_slice(&self.dir_crc.to_le_bytes());
        let crc = crc32(&out[..60]);
        out[60..64].copy_from_slice(&crc.to_le_bytes());
        out
    }

    /// Parses and validates a header: magic, version, endian canary and
    /// the header's own CRC. Structural plausibility of the offsets
    /// (within `total_len`, non-overlapping) is checked here too, so
    /// downstream reads can trust the ranges.
    pub fn decode(bytes: &[u8]) -> Result<Self, SnapshotError> {
        if bytes.len() < HEADER_LEN {
            return Err(SnapshotError::Truncated);
        }
        let le_u32 =
            |o: usize| u32::from_le_bytes(bytes[o..o + 4].try_into().expect("4-byte range"));
        let le_u64 =
            |o: usize| u64::from_le_bytes(bytes[o..o + 8].try_into().expect("8-byte range"));
        if bytes[0..8] != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = le_u32(8);
        if !(version == VERSION_V1 || version == VERSION) {
            return Err(SnapshotError::BadVersion(version));
        }
        if le_u32(12) != ENDIAN_TAG {
            return Err(SnapshotError::BadEndian);
        }
        if le_u32(60) != crc32(&bytes[..60]) {
            return Err(SnapshotError::ChecksumMismatch("header"));
        }
        let header = Self {
            version,
            total_len: le_u64(16),
            param_off: le_u64(24),
            param_len: le_u64(32),
            dir_off: le_u64(40),
            dir_count: le_u32(48),
            param_crc: le_u32(52),
            dir_crc: le_u32(56),
        };
        let dir_len = header.dir_count as u64 * header.dir_entry_len() as u64;
        if header.param_off != HEADER_LEN as u64
            || header.dir_off != header.param_off + header.param_len
            || header.dir_off + dir_len > header.total_len
        {
            return Err(SnapshotError::Malformed("header offsets out of range"));
        }
        Ok(header)
    }
}

// --- section directory ---

/// One directory entry describing a section's on-disk form.
///
/// The 32-byte v2 layout:
///
/// ```text
/// off  size  field
///   0     8  offset     u64, byte offset of the on-disk payload
///   8     8  raw_len    u64, decoded payload length in bytes
///  16     8  enc_len    u64, on-disk payload length (= raw_len if Raw)
///  24     1  elem_size  u8 (1, 4 or 8)
///  25     1  encoding   u8 SectionEncoding tag
///  26     2  reserved   u16, must be 0
///  28     4  crc        u32 CRC-32 over the on-disk payload bytes
/// ```
///
/// v1 entries (24 bytes: offset, byte_len, elem_size as `u32`, crc) are
/// parsed by [`decode_v1`](DirEntry::decode_v1) into the same struct
/// with `enc_len == raw_len` and [`SectionEncoding::Raw`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DirEntry {
    /// Byte offset of the on-disk payload. Raw sections are aligned
    /// ([`PAGE`] in v1; in v2, page-aligned when at least
    /// [`RAW_PAGE_ALIGN_MIN`] bytes, else [`RAW_ALIGN`]); encoded
    /// sections are packed with no alignment.
    pub offset: u64,
    /// Decoded payload length in bytes (a multiple of `elem_size`).
    pub raw_len: u64,
    /// On-disk payload length in bytes. Equals `raw_len` for raw
    /// sections; for encoded sections it is the varint stream length,
    /// and each element costs at least one encoded byte
    /// (`raw_len / elem_size <= enc_len`), so a corrupt entry can never
    /// demand an allocation larger than the file itself.
    pub enc_len: u64,
    /// Size of one decoded element in bytes (1, 4 or 8).
    pub elem_size: u32,
    /// How the payload is stored on disk.
    pub encoding: SectionEncoding,
    /// CRC-32 of the on-disk payload bytes (encoded form for encoded
    /// sections).
    pub crc: u32,
}

impl DirEntry {
    /// Number of decoded elements.
    pub fn elem_count(&self) -> u64 {
        self.raw_len / self.elem_size as u64
    }

    /// Serialises the entry to its 32-byte v2 form.
    pub fn encode(&self) -> [u8; DIR_ENTRY_LEN] {
        let mut out = [0u8; DIR_ENTRY_LEN];
        out[0..8].copy_from_slice(&self.offset.to_le_bytes());
        out[8..16].copy_from_slice(&self.raw_len.to_le_bytes());
        out[16..24].copy_from_slice(&self.enc_len.to_le_bytes());
        out[24] = self.elem_size as u8;
        out[25] = self.encoding.tag();
        // bytes 26..28 reserved, zero
        out[28..32].copy_from_slice(&self.crc.to_le_bytes());
        out
    }

    /// Serialises the entry to the 24-byte v1 form (raw sections only —
    /// v1 has no encoding tag).
    pub fn encode_v1(&self) -> [u8; DIR_ENTRY_LEN_V1] {
        debug_assert_eq!(self.encoding, SectionEncoding::Raw);
        debug_assert_eq!(self.raw_len, self.enc_len);
        let mut out = [0u8; DIR_ENTRY_LEN_V1];
        out[0..8].copy_from_slice(&self.offset.to_le_bytes());
        out[8..16].copy_from_slice(&self.raw_len.to_le_bytes());
        out[16..20].copy_from_slice(&self.elem_size.to_le_bytes());
        out[20..24].copy_from_slice(&self.crc.to_le_bytes());
        out
    }

    /// Parses one 32-byte v2 entry and checks its structural invariants
    /// against the file length: alignment (raw sections), element
    /// divisibility, the decoded-length bound, range.
    pub fn decode(bytes: &[u8], total_len: u64) -> Result<Self, SnapshotError> {
        if bytes.len() < DIR_ENTRY_LEN {
            return Err(SnapshotError::Truncated);
        }
        let entry = Self {
            offset: u64::from_le_bytes(bytes[0..8].try_into().expect("8-byte range")),
            raw_len: u64::from_le_bytes(bytes[8..16].try_into().expect("8-byte range")),
            enc_len: u64::from_le_bytes(bytes[16..24].try_into().expect("8-byte range")),
            elem_size: bytes[24] as u32,
            encoding: SectionEncoding::from_tag(bytes[25])?,
            crc: u32::from_le_bytes(bytes[28..32].try_into().expect("4-byte range")),
        };
        if bytes[26] != 0 || bytes[27] != 0 {
            return Err(SnapshotError::Malformed("reserved directory bytes not zero"));
        }
        if !matches!(entry.elem_size, 1 | 4 | 8) {
            return Err(SnapshotError::Malformed("unsupported section element size"));
        }
        if !entry.raw_len.is_multiple_of(entry.elem_size as u64) {
            return Err(SnapshotError::Malformed("section length not a multiple of element size"));
        }
        match entry.encoding {
            SectionEncoding::Raw => {
                if entry.enc_len != entry.raw_len {
                    return Err(SnapshotError::Malformed(
                        "raw section declares distinct encoded length",
                    ));
                }
                let align = if entry.raw_len >= RAW_PAGE_ALIGN_MIN { PAGE } else { RAW_ALIGN };
                if !entry.offset.is_multiple_of(align) {
                    return Err(SnapshotError::Malformed("raw section offset misaligned"));
                }
            }
            SectionEncoding::Varint | SectionEncoding::DeltaVarint | SectionEncoding::EliasFano => {
                // Varints are only defined over the integer elements.
                if !matches!(entry.elem_size, 4 | 8) {
                    return Err(SnapshotError::Malformed(
                        "encoded section with non-integer element size",
                    ));
                }
                // Each element costs >= 1 encoded byte: bounds the
                // decode allocation by the on-disk length.
                if entry.raw_len / entry.elem_size as u64 > entry.enc_len {
                    return Err(SnapshotError::Malformed(
                        "encoded section over-declares its decoded length",
                    ));
                }
            }
        }
        let end = entry.offset.checked_add(entry.enc_len);
        if end.is_none_or(|e| e > total_len) {
            return Err(SnapshotError::Truncated);
        }
        Ok(entry)
    }

    /// Parses one 24-byte v1 entry (always raw, page-aligned) and
    /// checks the v1 structural invariants.
    pub fn decode_v1(bytes: &[u8], total_len: u64) -> Result<Self, SnapshotError> {
        if bytes.len() < DIR_ENTRY_LEN_V1 {
            return Err(SnapshotError::Truncated);
        }
        let byte_len = u64::from_le_bytes(bytes[8..16].try_into().expect("8-byte range"));
        let entry = Self {
            offset: u64::from_le_bytes(bytes[0..8].try_into().expect("8-byte range")),
            raw_len: byte_len,
            enc_len: byte_len,
            elem_size: u32::from_le_bytes(bytes[16..20].try_into().expect("4-byte range")),
            encoding: SectionEncoding::Raw,
            crc: u32::from_le_bytes(bytes[20..24].try_into().expect("4-byte range")),
        };
        if !entry.offset.is_multiple_of(PAGE) {
            return Err(SnapshotError::Malformed("section offset not page-aligned"));
        }
        if !matches!(entry.elem_size, 1 | 4 | 8) {
            return Err(SnapshotError::Malformed("unsupported section element size"));
        }
        if !entry.raw_len.is_multiple_of(entry.elem_size as u64) {
            return Err(SnapshotError::Malformed("section length not a multiple of element size"));
        }
        let end = entry.offset.checked_add(entry.raw_len);
        if end.is_none_or(|e| e > total_len) {
            return Err(SnapshotError::Truncated);
        }
        Ok(entry)
    }
}

// --- little-endian parameter codec ---

/// Appends little-endian parameter values to a growing byte buffer
/// (the param-block writer).
#[derive(Debug, Default)]
pub struct ParamWriter {
    buf: Vec<u8>,
}

impl ParamWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` by bit pattern.
    pub fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a length-prefixed opaque byte blob (used for the
    /// family-specific parameter groups, so readers that do not know
    /// the family — e.g. the manifest parser — can skip them).
    pub fn blob(&mut self, bytes: &[u8]) {
        self.u32(bytes.len() as u32);
        self.buf.extend_from_slice(bytes);
    }

    /// Appends a length-prefixed `f32` slice by bit pattern.
    pub fn f32_slice(&mut self, vs: &[f32]) {
        self.u32(vs.len() as u32);
        for &v in vs {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }
    }

    /// Appends a length-prefixed `f64` slice by bit pattern.
    pub fn f64_slice(&mut self, vs: &[f64]) {
        self.u32(vs.len() as u32);
        for &v in vs {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }
    }

    /// The finished param-block bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Total little-endian decoder over a param block: every read is
/// bounds-checked and returns [`SnapshotError::Truncated`] past the
/// end, mirroring the wire protocol's frame decoder.
#[derive(Debug)]
pub struct ParamReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ParamReader<'a> {
    /// A reader over the whole block.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let end = self.pos.checked_add(n).ok_or(SnapshotError::Truncated)?;
        if end > self.buf.len() {
            return Err(SnapshotError::Truncated);
        }
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `u32`.
    pub fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4-byte range")))
    }

    /// Reads a `u64`.
    pub fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8-byte range")))
    }

    /// Reads an `f64` by bit pattern.
    pub fn f64(&mut self) -> Result<f64, SnapshotError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().expect("8-byte range")))
    }

    /// Reads a length-prefixed opaque byte blob (the counterpart of
    /// [`ParamWriter::blob`]).
    pub fn blob(&mut self) -> Result<&'a [u8], SnapshotError> {
        let len = self.u32()? as usize;
        self.take(len)
    }

    /// Reads a length-prefixed `f32` slice, capping the declared length
    /// at what the block can actually hold (so a corrupt length cannot
    /// trigger a huge allocation).
    pub fn f32_vec(&mut self) -> Result<Vec<f32>, SnapshotError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len.checked_mul(4).ok_or(SnapshotError::Truncated)?)?;
        Ok(bytes
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().expect("4-byte chunk")))
            .collect())
    }

    /// Reads a length-prefixed `f64` slice (same overflow guard as
    /// [`f32_vec`](Self::f32_vec)).
    pub fn f64_vec(&mut self) -> Result<Vec<f64>, SnapshotError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len.checked_mul(8).ok_or(SnapshotError::Truncated)?)?;
        Ok(bytes
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().expect("8-byte chunk")))
            .collect())
    }

    /// Takes the unread remainder of the block, consuming it. Used for
    /// the v2 g-function area, which is stored once and decoded once
    /// per shard with a fresh reader over these bytes.
    pub fn take_rest(&mut self) -> &'a [u8] {
        let out = &self.buf[self.pos..];
        self.pos = self.buf.len();
        out
    }

    /// Asserts the block was consumed exactly; trailing bytes mean the
    /// reader and writer disagree on the layout.
    pub fn finish(self) -> Result<(), SnapshotError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(SnapshotError::Malformed("trailing bytes in param block"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vector() {
        // The classic check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        let mut inc = Crc32::new();
        inc.update(b"1234");
        inc.update(b"56789");
        assert_eq!(inc.finish(), 0xCBF4_3926);
    }

    #[test]
    fn header_round_trip_and_rejections() {
        let h = Header {
            version: VERSION,
            total_len: 8192,
            param_off: 64,
            param_len: 100,
            dir_off: 164,
            dir_count: 3,
            param_crc: 7,
            dir_crc: 9,
        };
        let bytes = h.encode();
        assert_eq!(Header::decode(&bytes).expect("round trip"), h);

        // A v1 header round-trips too, with the smaller entry size.
        let v1 = Header { version: VERSION_V1, ..h };
        let decoded = Header::decode(&v1.encode()).expect("v1 round trip");
        assert_eq!(decoded, v1);
        assert_eq!(decoded.dir_entry_len(), DIR_ENTRY_LEN_V1);
        assert_eq!(h.dir_entry_len(), DIR_ENTRY_LEN);

        let mut bad_magic = bytes;
        bad_magic[0] = b'X';
        assert!(matches!(Header::decode(&bad_magic), Err(SnapshotError::BadMagic)));

        let mut bad_version = bytes;
        bad_version[8] = 99;
        // Re-sign so the version check (not the CRC) fires.
        let crc = crc32(&bad_version[..60]);
        bad_version[60..64].copy_from_slice(&crc.to_le_bytes());
        assert!(matches!(Header::decode(&bad_version), Err(SnapshotError::BadVersion(99))));

        let mut flipped = bytes;
        flipped[20] ^= 1; // corrupt total_len, leave the CRC stale
        assert!(matches!(Header::decode(&flipped), Err(SnapshotError::ChecksumMismatch("header"))));

        assert!(matches!(Header::decode(&bytes[..40]), Err(SnapshotError::Truncated)));
    }

    #[test]
    fn dir_entry_round_trip_and_rejections() {
        let e = DirEntry {
            offset: 8192,
            raw_len: 8192,
            enc_len: 8192,
            elem_size: 8,
            encoding: SectionEncoding::Raw,
            crc: 5,
        };
        assert_eq!(DirEntry::decode(&e.encode(), 1 << 20).expect("round trip"), e);
        assert_eq!(e.elem_count(), 1024);

        // Large raw sections must be page-aligned; small ones only need
        // the 64-byte floor.
        let unaligned = DirEntry { offset: 8192 + 64, ..e };
        assert!(DirEntry::decode(&unaligned.encode(), 1 << 20).is_err());
        let small = DirEntry { offset: 8192 + 64, raw_len: 24, enc_len: 24, ..e };
        assert!(DirEntry::decode(&small.encode(), 1 << 20).is_ok());
        let small_unaligned = DirEntry { offset: 8192 + 32, raw_len: 24, enc_len: 24, ..e };
        assert!(DirEntry::decode(&small_unaligned.encode(), 1 << 20).is_err());

        let ragged = DirEntry { raw_len: 8193, enc_len: 8193, ..e };
        assert!(DirEntry::decode(&ragged.encode(), 1 << 20).is_err());
        let overrun = DirEntry { offset: 4096, raw_len: 8192, enc_len: 8192, ..e };
        assert!(matches!(DirEntry::decode(&overrun.encode(), 8192), Err(SnapshotError::Truncated)));
        let raw_with_enc = DirEntry { enc_len: 100, ..e };
        assert!(DirEntry::decode(&raw_with_enc.encode(), 1 << 20).is_err());

        // Encoded sections: unaligned offsets are fine, but an entry
        // whose decoded length could not possibly fit its encoded bytes
        // is rejected before any allocation.
        let enc = DirEntry {
            offset: 999,
            raw_len: 800,
            enc_len: 300,
            elem_size: 4,
            encoding: SectionEncoding::Varint,
            crc: 5,
        };
        assert_eq!(DirEntry::decode(&enc.encode(), 1 << 20).expect("round trip"), enc);
        let oversold = DirEntry { raw_len: 4 * 301, ..enc };
        assert!(matches!(
            DirEntry::decode(&oversold.encode(), 1 << 20),
            Err(SnapshotError::Malformed(_))
        ));
        let enc_bytes = DirEntry { elem_size: 1, raw_len: 100, ..enc };
        assert!(DirEntry::decode(&enc_bytes.encode(), 1 << 20).is_err());

        // Unknown encoding tags and non-zero reserved bytes.
        let mut bad_tag = enc.encode();
        bad_tag[25] = 7;
        assert!(matches!(
            DirEntry::decode(&bad_tag, 1 << 20),
            Err(SnapshotError::Malformed("unknown section encoding tag"))
        ));
        let mut bad_reserved = enc.encode();
        bad_reserved[26] = 1;
        assert!(DirEntry::decode(&bad_reserved, 1 << 20).is_err());

        // v1 entries decode into the same struct, raw by construction.
        let v1 = DirEntry::decode_v1(&e.encode_v1(), 1 << 20).expect("v1 round trip");
        assert_eq!(v1, e);
        let v1_unaligned = DirEntry { offset: 64, raw_len: 24, enc_len: 24, ..e };
        assert!(DirEntry::decode_v1(&v1_unaligned.encode_v1(), 1 << 20).is_err());
    }

    #[test]
    fn param_codec_round_trips_and_is_total() {
        let mut w = ParamWriter::new();
        w.u8(7);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX - 1);
        w.f64(-0.5);
        w.f32_slice(&[1.0, -2.5]);
        w.f64_slice(&[3.25]);
        let bytes = w.into_bytes();

        let mut r = ParamReader::new(&bytes);
        assert_eq!(r.u8().expect("u8"), 7);
        assert_eq!(r.u32().expect("u32"), 0xDEAD_BEEF);
        assert_eq!(r.u64().expect("u64"), u64::MAX - 1);
        assert_eq!(r.f64().expect("f64"), -0.5);
        assert_eq!(r.f32_vec().expect("f32 vec"), vec![1.0, -2.5]);
        assert_eq!(r.f64_vec().expect("f64 vec"), vec![3.25]);
        r.finish().expect("fully consumed");

        // Truncated at every offset: total decoding, no panic.
        for cut in 0..bytes.len() {
            let mut r = ParamReader::new(&bytes[..cut]);
            let result: Result<(), SnapshotError> = (|| {
                r.u8()?;
                r.u32()?;
                r.u64()?;
                r.f64()?;
                r.f32_vec()?;
                r.f64_vec()?;
                Ok(())
            })();
            assert!(result.is_err(), "cut at {cut} must fail");
        }

        // Trailing bytes are rejected.
        let mut r = ParamReader::new(&bytes);
        r.u8().expect("u8");
        assert!(r.finish().is_err());
    }

    #[test]
    fn page_alignment_math() {
        assert_eq!(page_align(0), 0);
        assert_eq!(page_align(1), 4096);
        assert_eq!(page_align(4096), 4096);
        assert_eq!(page_align(4097), 8192);
        assert_eq!(align_up(0, 64), 0);
        assert_eq!(align_up(1, 64), 64);
        assert_eq!(align_up(64, 64), 64);
        assert_eq!(align_up(65, 16384), 16384);
    }
}
