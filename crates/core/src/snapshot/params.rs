//! The param-block schema: everything needed to reconstruct a sharded
//! index *except* the flat arrays (which live in page-aligned sections)
//! and the g-functions (which follow the scalars in the same block).
//!
//! Field order is pinned by `docs/SNAPSHOT.md` and deliberately puts
//! every fixed-size scalar group **before** the variable g-function
//! area, so [`read_manifest`](super::read_manifest) can stop early
//! without knowing the family type. Family-specific parameters are
//! length-prefixed blobs for the same reason.

use hlsh_hll::HllConfig;

use super::format::{ParamReader, ParamWriter};
use super::{SnapshotError, MAX_DIM, MAX_K, MAX_LEVELS, MAX_SHARDS, MAX_TABLES};
use crate::cost::CostModel;

/// The shared parameter group of one hybrid index (the radius index, or
/// one level of a top-k ladder): family parameters plus everything the
/// builder would otherwise have derived at build time. The cost model
/// is persisted (not re-derived) because it may have been calibrated
/// from timings — re-deriving it could flip per-query arm decisions and
/// break the byte-identity contract.
#[derive(Clone, Debug, PartialEq)]
pub(super) struct GroupParams {
    /// Opaque family-parameter blob ([`SnapshotFamily`] encoded).
    ///
    /// [`SnapshotFamily`]: super::SnapshotFamily
    pub family: Vec<u8>,
    /// Number of hash tables `L`.
    pub tables: usize,
    /// Concatenation width `k` of every g-function.
    pub k: usize,
    /// HLL precision (validated `4..=16`).
    pub precision: u8,
    /// HLL element-hash seed.
    pub hll_seed: u64,
    /// Lazy-sketch threshold (buckets at or above this size carry a
    /// materialised sketch).
    pub lazy: usize,
    /// Cost-model `α` (per-collision cost).
    pub alpha: f64,
    /// Cost-model `β` for scanned points.
    pub beta_scan: f64,
    /// Cost-model `β` for candidate points.
    pub beta_cand: f64,
}

impl GroupParams {
    pub(super) fn encode(&self, w: &mut ParamWriter) {
        w.blob(&self.family);
        w.u32(self.tables as u32);
        w.u32(self.k as u32);
        w.u8(self.precision);
        w.u64(self.hll_seed);
        w.u64(self.lazy as u64);
        w.f64(self.alpha);
        w.f64(self.beta_scan);
        w.f64(self.beta_cand);
    }

    pub(super) fn decode(r: &mut ParamReader) -> Result<Self, SnapshotError> {
        let family = r.blob()?.to_vec();
        let tables = r.u32()? as usize;
        if tables == 0 || tables > MAX_TABLES {
            return Err(SnapshotError::Malformed("table count out of range"));
        }
        let k = r.u32()? as usize;
        if k == 0 || k > MAX_K {
            return Err(SnapshotError::Malformed("hash width out of range"));
        }
        let precision = r.u8()?;
        if !(4..=16).contains(&precision) {
            return Err(SnapshotError::Malformed("HLL precision out of range"));
        }
        let hll_seed = r.u64()?;
        let lazy = usize::try_from(r.u64()?)
            .map_err(|_| SnapshotError::Malformed("lazy threshold out of range"))?;
        let [alpha, beta_scan, beta_cand] = [r.f64()?, r.f64()?, r.f64()?];
        for c in [alpha, beta_scan, beta_cand] {
            if !(c.is_finite() && c > 0.0) {
                return Err(SnapshotError::Malformed(
                    "cost coefficients must be positive and finite",
                ));
            }
        }
        Ok(Self { family, tables, k, precision, hll_seed, lazy, alpha, beta_scan, beta_cand })
    }

    /// The validated HLL configuration (safe: precision was checked).
    pub(super) fn hll_config(&self) -> HllConfig {
        HllConfig::new(self.precision, self.hll_seed)
    }

    /// The validated cost model (safe: coefficients were checked).
    pub(super) fn cost_model(&self) -> CostModel {
        CostModel::new_split(self.alpha, self.beta_scan, self.beta_cand)
    }
}

/// The top-k extension of the param block: the radius schedule plus one
/// parameter group per level.
#[derive(Clone, Debug, PartialEq)]
pub(super) struct TopKParams {
    /// Smallest schedule radius.
    pub base: f64,
    /// Geometric growth factor (validated `> 1`).
    pub ratio: f64,
    /// One group per schedule level, ascending radius.
    pub levels: Vec<GroupParams>,
}

/// The decoded scalar prefix of the param block — everything before the
/// g-function area.
#[derive(Clone, Debug, PartialEq)]
pub(super) struct RawParams {
    /// [`SnapshotDistance::TAG`](super::SnapshotDistance::TAG).
    pub distance_tag: u8,
    /// [`SnapshotFamily::TAG`](super::SnapshotFamily::TAG).
    pub family_tag: u8,
    /// Total indexed points across shards.
    pub n: usize,
    /// Dimensionality of every point.
    pub dim: usize,
    /// Shard-assignment hash seed.
    pub seed: u64,
    /// Number of shards.
    pub shards: usize,
    /// The radius (r-NNR) index parameters.
    pub rnnr: GroupParams,
    /// Top-k ladder parameters, when one was snapshotted.
    pub topk: Option<TopKParams>,
}

impl RawParams {
    pub(super) fn encode(&self, w: &mut ParamWriter) {
        w.u8(self.distance_tag);
        w.u8(self.family_tag);
        w.u64(self.n as u64);
        w.u32(self.dim as u32);
        w.u64(self.seed);
        w.u32(self.shards as u32);
        self.rnnr.encode(w);
        match &self.topk {
            None => w.u8(0),
            Some(tk) => {
                w.u8(1);
                w.f64(tk.base);
                w.f64(tk.ratio);
                w.u32(tk.levels.len() as u32);
                for level in &tk.levels {
                    level.encode(w);
                }
            }
        }
    }

    pub(super) fn decode(r: &mut ParamReader) -> Result<Self, SnapshotError> {
        let distance_tag = r.u8()?;
        let family_tag = r.u8()?;
        let n = usize::try_from(r.u64()?)
            .ok()
            .filter(|&n| n <= u32::MAX as usize)
            .ok_or(SnapshotError::Malformed("point count exceeds the id space"))?;
        let dim = r.u32()? as usize;
        if dim == 0 || dim > MAX_DIM {
            return Err(SnapshotError::Malformed("dimensionality out of range"));
        }
        let seed = r.u64()?;
        let shards = r.u32()? as usize;
        if shards == 0 || shards > MAX_SHARDS {
            return Err(SnapshotError::Malformed("shard count out of range"));
        }
        let rnnr = GroupParams::decode(r)?;
        let topk = match r.u8()? {
            0 => None,
            1 => {
                let base = r.f64()?;
                if !(base.is_finite() && base > 0.0) {
                    return Err(SnapshotError::Malformed(
                        "schedule base radius must be positive and finite",
                    ));
                }
                let ratio = r.f64()?;
                if !(ratio.is_finite() && ratio > 1.0) {
                    return Err(SnapshotError::Malformed("schedule ratio must exceed 1"));
                }
                let levels = r.u32()? as usize;
                if levels == 0 || levels > MAX_LEVELS {
                    return Err(SnapshotError::Malformed("schedule level count out of range"));
                }
                let levels =
                    (0..levels).map(|_| GroupParams::decode(r)).collect::<Result<Vec<_>, _>>()?;
                Some(TopKParams { base, ratio, levels })
            }
            _ => return Err(SnapshotError::Malformed("invalid top-k presence flag")),
        };
        Ok(Self { distance_tag, family_tag, n, dim, seed, shards, rnnr, topk })
    }

    /// Number of directory entries this parameter set implies: per shard
    /// an owner list, a data section, and seven store sections per table
    /// of the radius index and of every top-k level.
    pub(super) fn expected_sections(&self) -> usize {
        let per_shard_topk: usize =
            self.topk.iter().flat_map(|tk| tk.levels.iter()).map(|g| 7 * g.tables).sum();
        self.shards * (2 + 7 * self.rnnr.tables + per_shard_topk)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn group(tables: usize) -> GroupParams {
        GroupParams {
            family: vec![1, 2, 3],
            tables,
            k: 7,
            precision: 7,
            hll_seed: 99,
            lazy: 64,
            alpha: 1.0,
            beta_scan: 6.0,
            beta_cand: 6.0,
        }
    }

    #[test]
    fn params_round_trip_with_and_without_topk() {
        for topk in
            [None, Some(TopKParams { base: 0.5, ratio: 2.0, levels: vec![group(4), group(5)] })]
        {
            let raw = RawParams {
                distance_tag: 1,
                family_tag: 1,
                n: 1000,
                dim: 32,
                seed: 42,
                shards: 3,
                rnnr: group(10),
                topk,
            };
            let mut w = ParamWriter::new();
            raw.encode(&mut w);
            let bytes = w.into_bytes();
            let mut r = ParamReader::new(&bytes);
            assert_eq!(RawParams::decode(&mut r).expect("round trip"), raw);
            r.finish().expect("fully consumed");
        }
    }

    #[test]
    fn expected_sections_counts_every_array() {
        let raw = RawParams {
            distance_tag: 1,
            family_tag: 1,
            n: 10,
            dim: 4,
            seed: 0,
            shards: 2,
            rnnr: group(3),
            topk: Some(TopKParams { base: 1.0, ratio: 2.0, levels: vec![group(2), group(2)] }),
        };
        // Per shard: owners + data + 7·3 (rnnr) + 7·(2+2) (topk) = 51.
        assert_eq!(raw.expected_sections(), 2 * 51);
    }

    #[test]
    fn decode_rejects_out_of_range_scalars() {
        let encode = |f: &dyn Fn(&mut ParamWriter)| {
            let mut w = ParamWriter::new();
            f(&mut w);
            w.into_bytes()
        };
        // Zero shards.
        let bytes = encode(&|w| {
            w.u8(1);
            w.u8(1);
            w.u64(10);
            w.u32(4);
            w.u64(0);
            w.u32(0);
        });
        assert!(matches!(
            RawParams::decode(&mut ParamReader::new(&bytes)),
            Err(SnapshotError::Malformed(_))
        ));
        // Non-finite cost coefficient.
        let mut bad = group(3);
        bad.alpha = f64::NAN;
        let bytes = encode(&|w| bad.encode(w));
        assert!(matches!(
            GroupParams::decode(&mut ParamReader::new(&bytes)),
            Err(SnapshotError::Malformed(_))
        ));
        // Invalid HLL precision.
        let mut bad = group(3);
        bad.precision = 3;
        let bytes = encode(&|w| bad.encode(w));
        assert!(GroupParams::decode(&mut ParamReader::new(&bytes)).is_err());
    }
}
