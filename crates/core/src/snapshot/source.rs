//! The [`SnapshotSource`] abstraction: one loader, two byte suppliers.
//!
//! * [`SnapshotSource::Read`] — buffered `pread`-style reads into owned
//!   vectors, decoding little-endian explicitly (works on any host) and
//!   verifying every section's CRC.
//! * [`SnapshotSource::Mmap`] — the whole file mapped once; sections
//!   become zero-copy [`Section::shared`] views into the mapping.
//!   Per-section CRC verification is **off by default** here, because
//!   checksumming would fault in every page and forfeit the lazy cold
//!   start that is the point of mapping; the header, param block and
//!   directory are always verified, and `verify: true` opts back into
//!   full checksumming for paranoid loads.

use std::fs::File;
use std::io::{Read, Seek, SeekFrom};
use std::sync::Arc;

use hlsh_vec::Section;

use super::format::{crc32, DirEntry};
use super::mmap::{Mmap, MmapSection};
use super::SnapshotError;

mod sealed {
    /// Seals [`Pod`](super::Pod) to the four primitive element types
    /// the snapshot format uses — the soundness of the mmap cast
    /// depends on no other type ever implementing it.
    pub trait Sealed {}
    impl Sealed for u8 {}
    impl Sealed for u32 {}
    impl Sealed for u64 {}
    impl Sealed for f32 {}
}

/// A plain-old-data section element: fixed size, valid for every bit
/// pattern, with an explicit little-endian codec for the buffered read
/// path. Sealed to `u8`/`u32`/`u64`/`f32` (the only element types the
/// format defines); [`PointId`](hlsh_vec::PointId) is `u32`.
pub trait Pod: Copy + Send + Sync + std::fmt::Debug + 'static + sealed::Sealed {
    /// Element size in bytes (= `size_of::<Self>()`, pinned on disk).
    const SIZE: usize;

    /// Decodes one element from exactly [`SIZE`](Self::SIZE) bytes.
    fn from_le(bytes: &[u8]) -> Self;

    /// Appends the element's little-endian encoding to `out`.
    fn to_le(self, out: &mut Vec<u8>);
}

impl Pod for u8 {
    const SIZE: usize = 1;
    fn from_le(bytes: &[u8]) -> Self {
        bytes[0]
    }
    fn to_le(self, out: &mut Vec<u8>) {
        out.push(self);
    }
}

impl Pod for u32 {
    const SIZE: usize = 4;
    fn from_le(bytes: &[u8]) -> Self {
        u32::from_le_bytes(bytes.try_into().expect("4-byte element"))
    }
    fn to_le(self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
}

impl Pod for u64 {
    const SIZE: usize = 8;
    fn from_le(bytes: &[u8]) -> Self {
        u64::from_le_bytes(bytes.try_into().expect("8-byte element"))
    }
    fn to_le(self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
}

impl Pod for f32 {
    const SIZE: usize = 4;
    fn from_le(bytes: &[u8]) -> Self {
        f32::from_le_bytes(bytes.try_into().expect("4-byte element"))
    }
    fn to_le(self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
}

/// Where a loader's bytes come from; see the module docs for the two
/// variants' verification contracts.
#[derive(Debug)]
pub enum SnapshotSource {
    /// Buffered reads into owned arrays (always CRC-verified).
    Read(File),
    /// Zero-copy views into one shared mapping.
    Mmap {
        /// The mapped file.
        map: Arc<Mmap>,
        /// Whether to checksum every section despite the paging cost.
        verify: bool,
    },
}

impl SnapshotSource {
    /// A buffered-read source over `file`.
    pub fn read(file: File) -> Self {
        SnapshotSource::Read(file)
    }

    /// Maps `file` (of known `total_len` bytes) and serves zero-copy
    /// sections from the mapping.
    pub fn mmap(file: &File, total_len: u64, verify: bool) -> Result<Self, SnapshotError> {
        Ok(SnapshotSource::Mmap { map: Arc::new(Mmap::map(file, total_len)?), verify })
    }

    /// Whether sections come back borrowing a shared mapping.
    pub fn is_mmap(&self) -> bool {
        matches!(self, SnapshotSource::Mmap { .. })
    }

    /// Reads `len` raw bytes at `offset` into an owned buffer — used
    /// for the header, param block and directory, which are always
    /// materialised and verified whatever the section path.
    pub fn bytes(&mut self, offset: u64, len: usize) -> Result<Vec<u8>, SnapshotError> {
        match self {
            SnapshotSource::Read(file) => {
                file.seek(SeekFrom::Start(offset))?;
                let mut buf = vec![0u8; len];
                file.read_exact(&mut buf).map_err(|e| {
                    if e.kind() == std::io::ErrorKind::UnexpectedEof {
                        SnapshotError::Truncated
                    } else {
                        SnapshotError::Io(e)
                    }
                })?;
                Ok(buf)
            }
            SnapshotSource::Mmap { map, .. } => {
                let offset = usize::try_from(offset).map_err(|_| SnapshotError::Truncated)?;
                let end = offset.checked_add(len).ok_or(SnapshotError::Truncated)?;
                let bytes = map.as_bytes().get(offset..end).ok_or(SnapshotError::Truncated)?;
                Ok(bytes.to_vec())
            }
        }
    }

    /// Materialises one directory section as a typed [`Section`].
    ///
    /// The entry's element size must match `T` (the caller walks the
    /// directory against the format's fixed section schema). Empty
    /// sections come back owned regardless of source.
    pub fn section<T: Pod>(&mut self, entry: &DirEntry) -> Result<Section<T>, SnapshotError> {
        if entry.elem_size as usize != T::SIZE {
            return Err(SnapshotError::Malformed("section element size disagrees with schema"));
        }
        let byte_len = usize::try_from(entry.byte_len).map_err(|_| SnapshotError::Truncated)?;
        let count = byte_len / T::SIZE;
        if count == 0 {
            return Ok(Section::new());
        }
        match self {
            SnapshotSource::Read(_) => {
                let bytes = self.bytes(entry.offset, byte_len)?;
                if crc32(&bytes) != entry.crc {
                    return Err(SnapshotError::ChecksumMismatch("section"));
                }
                Ok(Section::Owned(bytes.chunks_exact(T::SIZE).map(T::from_le).collect()))
            }
            SnapshotSource::Mmap { map, verify } => {
                if *verify {
                    let offset =
                        usize::try_from(entry.offset).map_err(|_| SnapshotError::Truncated)?;
                    let end = offset.checked_add(byte_len).ok_or(SnapshotError::Truncated)?;
                    let bytes = map.as_bytes().get(offset..end).ok_or(SnapshotError::Truncated)?;
                    if crc32(bytes) != entry.crc {
                        return Err(SnapshotError::ChecksumMismatch("section"));
                    }
                }
                let view = MmapSection::<T>::new(Arc::clone(map), entry.offset, count)?;
                Ok(Section::shared(Arc::new(view)))
            }
        }
    }
}
