//! The [`SnapshotSource`] abstraction: one loader, two byte suppliers.
//!
//! * [`SnapshotSource::Read`] — buffered reads into owned vectors,
//!   decoding little-endian explicitly (works on any host) and
//!   verifying every section's CRC. [`preload`](SnapshotSource::preload)
//!   pulls every section's on-disk bytes in **offset order** — one
//!   forward pass over the file instead of directory-order seeks — and
//!   later `section` calls consume the staged buffers.
//! * [`SnapshotSource::Mmap`] — the whole file mapped once; raw
//!   sections become zero-copy [`Section::shared`] views into the
//!   mapping. Per-section CRC verification of raw sections is **off by
//!   default** here, because checksumming would fault in every page and
//!   forfeit the lazy cold start that is the point of mapping; the
//!   header, param block and directory are always verified, and
//!   `verify: true` opts back into full checksumming for paranoid
//!   loads.
//!
//! Varint/delta-encoded sections (v2) are decoded into owned arrays in
//! **every** mode, and since decoding touches each encoded byte anyway,
//! their CRCs are always verified — even under plain
//! [`LoadMode::Mmap`](super::LoadMode::Mmap).

use std::fs::File;
use std::io::{Read, Seek, SeekFrom};
use std::sync::Arc;

use hlsh_vec::Section;

use super::encode::decode_section;
use super::format::{crc32, DirEntry, SectionEncoding};
use super::mmap::{Mmap, MmapSection};
use super::SnapshotError;

mod sealed {
    /// Seals [`Pod`](super::Pod) to the four primitive element types
    /// the snapshot format uses — the soundness of the mmap cast
    /// depends on no other type ever implementing it.
    pub trait Sealed {}
    impl Sealed for u8 {}
    impl Sealed for u32 {}
    impl Sealed for u64 {}
    impl Sealed for f32 {}
}

/// A plain-old-data section element: fixed size, valid for every bit
/// pattern, with an explicit little-endian codec for the buffered read
/// path. Sealed to `u8`/`u32`/`u64`/`f32` (the only element types the
/// format defines); [`PointId`](hlsh_vec::PointId) is `u32`.
pub trait Pod: Copy + Send + Sync + std::fmt::Debug + 'static + sealed::Sealed {
    /// Element size in bytes (= `size_of::<Self>()`, pinned on disk).
    const SIZE: usize;

    /// Decodes one element from exactly [`SIZE`](Self::SIZE) bytes.
    fn from_le(bytes: &[u8]) -> Self;

    /// Appends the element's little-endian encoding to `out`.
    fn to_le(self, out: &mut Vec<u8>);

    /// The element as an unsigned integer, for the varint codecs.
    /// `None` for element types the codecs do not cover (`f32`, and
    /// `u8`, where a varint can never beat the raw byte).
    fn to_u64(self) -> Option<u64>;

    /// The inverse of [`to_u64`](Self::to_u64); `None` when `v` is out
    /// of range for the element type (a decode-side range check).
    fn from_u64(v: u64) -> Option<Self>;
}

impl Pod for u8 {
    const SIZE: usize = 1;
    fn from_le(bytes: &[u8]) -> Self {
        bytes[0]
    }
    fn to_le(self, out: &mut Vec<u8>) {
        out.push(self);
    }
    fn to_u64(self) -> Option<u64> {
        None
    }
    fn from_u64(_v: u64) -> Option<Self> {
        None
    }
}

impl Pod for u32 {
    const SIZE: usize = 4;
    fn from_le(bytes: &[u8]) -> Self {
        u32::from_le_bytes(bytes.try_into().expect("4-byte element"))
    }
    fn to_le(self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
    fn to_u64(self) -> Option<u64> {
        Some(self as u64)
    }
    fn from_u64(v: u64) -> Option<Self> {
        u32::try_from(v).ok()
    }
}

impl Pod for u64 {
    const SIZE: usize = 8;
    fn from_le(bytes: &[u8]) -> Self {
        u64::from_le_bytes(bytes.try_into().expect("8-byte element"))
    }
    fn to_le(self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
    fn to_u64(self) -> Option<u64> {
        Some(self)
    }
    fn from_u64(v: u64) -> Option<Self> {
        Some(v)
    }
}

impl Pod for f32 {
    const SIZE: usize = 4;
    fn from_le(bytes: &[u8]) -> Self {
        f32::from_le_bytes(bytes.try_into().expect("4-byte element"))
    }
    fn to_le(self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
    fn to_u64(self) -> Option<u64> {
        None
    }
    fn from_u64(_v: u64) -> Option<Self> {
        None
    }
}

/// Where a loader's bytes come from; see the module docs for the two
/// variants' verification contracts.
#[derive(Debug)]
pub enum SnapshotSource {
    /// Buffered reads into owned arrays (always CRC-verified).
    Read {
        /// The open snapshot file.
        file: File,
        /// Per-section staged bytes, indexed like the directory; filled
        /// by [`preload`](SnapshotSource::preload) in offset order and
        /// taken by `section` calls. Empty when preloading was skipped
        /// (sections then fall back to positioned reads).
        preloaded: Vec<Option<Vec<u8>>>,
    },
    /// Zero-copy views into one shared mapping.
    Mmap {
        /// The mapped file.
        map: Arc<Mmap>,
        /// Whether to checksum every raw section despite the paging
        /// cost (encoded sections are always checksummed).
        verify: bool,
    },
}

impl SnapshotSource {
    /// A buffered-read source over `file`.
    pub fn read(file: File) -> Self {
        SnapshotSource::Read { file, preloaded: Vec::new() }
    }

    /// Maps `file` (of known `total_len` bytes) and serves zero-copy
    /// sections from the mapping.
    pub fn mmap(file: &File, total_len: u64, verify: bool) -> Result<Self, SnapshotError> {
        Ok(SnapshotSource::Mmap { map: Arc::new(Mmap::map(file, total_len)?), verify })
    }

    /// Whether sections come back borrowing a shared mapping.
    pub fn is_mmap(&self) -> bool {
        matches!(self, SnapshotSource::Mmap { .. })
    }

    /// Issues readahead advice over the whole mapping (no-op for the
    /// read source) — the planner's prefetch pass.
    pub fn advise_prefetch(&self) {
        if let SnapshotSource::Mmap { map, .. } = self {
            map.advise_prefetch();
        }
    }

    /// Reads `len` raw bytes at `offset` into an owned buffer — used
    /// for the header, param block and directory, which are always
    /// materialised and verified whatever the section path.
    pub fn bytes(&mut self, offset: u64, len: usize) -> Result<Vec<u8>, SnapshotError> {
        match self {
            SnapshotSource::Read { file, .. } => {
                file.seek(SeekFrom::Start(offset))?;
                let mut buf = vec![0u8; len];
                file.read_exact(&mut buf).map_err(|e| {
                    if e.kind() == std::io::ErrorKind::UnexpectedEof {
                        SnapshotError::Truncated
                    } else {
                        SnapshotError::Io(e)
                    }
                })?;
                Ok(buf)
            }
            SnapshotSource::Mmap { map, .. } => {
                let offset = usize::try_from(offset).map_err(|_| SnapshotError::Truncated)?;
                let end = offset.checked_add(len).ok_or(SnapshotError::Truncated)?;
                let bytes = map.as_bytes().get(offset..end).ok_or(SnapshotError::Truncated)?;
                Ok(bytes.to_vec())
            }
        }
    }

    /// Stages every section's on-disk bytes in one forward pass over
    /// the file, ordered by offset rather than directory position. A
    /// no-op for the mmap source (the mapping already serves any order)
    /// and when called twice.
    pub fn preload(&mut self, entries: &[DirEntry]) -> Result<(), SnapshotError> {
        let SnapshotSource::Read { file, preloaded } = self else {
            return Ok(());
        };
        if !preloaded.is_empty() {
            return Ok(());
        }
        let mut order: Vec<usize> = (0..entries.len()).collect();
        order.sort_by_key(|&i| entries[i].offset);
        let mut staged: Vec<Option<Vec<u8>>> = vec![None; entries.len()];
        for i in order {
            let entry = &entries[i];
            let len = usize::try_from(entry.enc_len).map_err(|_| SnapshotError::Truncated)?;
            file.seek(SeekFrom::Start(entry.offset))?;
            let mut buf = vec![0u8; len];
            file.read_exact(&mut buf).map_err(|e| {
                if e.kind() == std::io::ErrorKind::UnexpectedEof {
                    SnapshotError::Truncated
                } else {
                    SnapshotError::Io(e)
                }
            })?;
            staged[i] = Some(buf);
        }
        *preloaded = staged;
        Ok(())
    }

    /// Materialises directory section `index` as a typed [`Section`].
    ///
    /// The entry's element size must match `T` (the caller walks the
    /// directory against the format's fixed section schema); `index` is
    /// the entry's directory position, keying the
    /// [`preload`](Self::preload) stage. Empty sections come back owned
    /// regardless of source.
    pub fn section<T: Pod>(
        &mut self,
        index: usize,
        entry: &DirEntry,
    ) -> Result<Section<T>, SnapshotError> {
        if entry.elem_size as usize != T::SIZE {
            return Err(SnapshotError::Malformed("section element size disagrees with schema"));
        }
        let raw_len = usize::try_from(entry.raw_len).map_err(|_| SnapshotError::Truncated)?;
        let enc_len = usize::try_from(entry.enc_len).map_err(|_| SnapshotError::Truncated)?;
        let count = raw_len / T::SIZE;
        if count == 0 && enc_len == 0 {
            return Ok(Section::new());
        }
        match entry.encoding {
            SectionEncoding::Raw => match self {
                SnapshotSource::Read { .. } => {
                    let bytes = self.staged_bytes(index, entry)?;
                    if crc32(&bytes) != entry.crc {
                        return Err(SnapshotError::ChecksumMismatch("section"));
                    }
                    Ok(Section::Owned(bytes.chunks_exact(T::SIZE).map(T::from_le).collect()))
                }
                SnapshotSource::Mmap { map, verify } => {
                    if *verify {
                        let bytes = Self::mapped_bytes(map, entry)?;
                        if crc32(bytes) != entry.crc {
                            return Err(SnapshotError::ChecksumMismatch("section"));
                        }
                    }
                    let view = MmapSection::<T>::new(Arc::clone(map), entry.offset, count)?;
                    Ok(Section::shared(Arc::new(view)))
                }
            },
            encoding => {
                // Encoded sections are fully read in every mode, so the
                // CRC is always verified before decoding.
                match self {
                    SnapshotSource::Read { .. } => {
                        let bytes = self.staged_bytes(index, entry)?;
                        if crc32(&bytes) != entry.crc {
                            return Err(SnapshotError::ChecksumMismatch("section"));
                        }
                        Ok(Section::Owned(decode_section::<T>(&bytes, count, encoding)?))
                    }
                    SnapshotSource::Mmap { map, .. } => {
                        let bytes = Self::mapped_bytes(map, entry)?;
                        if crc32(bytes) != entry.crc {
                            return Err(SnapshotError::ChecksumMismatch("section"));
                        }
                        Ok(Section::Owned(decode_section::<T>(bytes, count, encoding)?))
                    }
                }
            }
        }
    }

    /// The on-disk bytes of one section from the read source: the
    /// preloaded stage when present, a positioned read otherwise.
    fn staged_bytes(&mut self, index: usize, entry: &DirEntry) -> Result<Vec<u8>, SnapshotError> {
        if let SnapshotSource::Read { preloaded, .. } = self {
            if let Some(slot) = preloaded.get_mut(index) {
                if let Some(bytes) = slot.take() {
                    return Ok(bytes);
                }
            }
        }
        let len = usize::try_from(entry.enc_len).map_err(|_| SnapshotError::Truncated)?;
        self.bytes(entry.offset, len)
    }

    /// The on-disk byte range of one section inside the mapping.
    fn mapped_bytes<'m>(map: &'m Arc<Mmap>, entry: &DirEntry) -> Result<&'m [u8], SnapshotError> {
        let offset = usize::try_from(entry.offset).map_err(|_| SnapshotError::Truncated)?;
        let len = usize::try_from(entry.enc_len).map_err(|_| SnapshotError::Truncated)?;
        let end = offset.checked_add(len).ok_or(SnapshotError::Truncated)?;
        map.as_bytes().get(offset..end).ok_or(SnapshotError::Truncated)
    }
}
