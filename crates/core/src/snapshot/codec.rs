//! Family and distance codecs: how each LSH family pins its parameters
//! and sampled g-functions into the param block.
//!
//! The snapshot **never re-samples** hash functions: a g-function's
//! projections and shifts are serialised verbatim, because byte-equal
//! g-functions are the first link in the query-determinism chain (the
//! builder's RNG seed is not retained by a built index). Decoding is
//! total — every constructor precondition (positive dims, `k ≤ 64` for
//! sign families, shape consistency) is checked explicitly and mapped
//! to a typed error before any panicking constructor runs, so a corrupt
//! file can never trip an assert.

use hlsh_families::pstable::PStableGFn;
use hlsh_families::simhash::SimHashGFn;
use hlsh_families::{LshFamily, PStableL1, PStableL2, SimHash};
use hlsh_vec::{Cosine, Distance, L1, L2};

use super::format::{ParamReader, ParamWriter};
use super::{SnapshotError, MAX_DIM, MAX_K};

/// An LSH family the snapshot format can persist. The tag is written to
/// the param block; a loader instantiated for a different family
/// rejects the file with [`SnapshotError::FamilyMismatch`].
pub trait SnapshotFamily: LshFamily<[f32]> + PartialEq {
    /// Family discriminant in the param block (1 = p-stable L2,
    /// 2 = p-stable L1, 3 = SimHash). Never reuse a retired value.
    const TAG: u8;

    /// Writes the family's own parameters (not a g-function's).
    fn encode_params(&self, w: &mut ParamWriter);

    /// Decodes and validates family parameters.
    fn decode_params(r: &mut ParamReader) -> Result<Self, SnapshotError>
    where
        Self: Sized;

    /// Writes one sampled g-function verbatim.
    fn encode_gfn(g: &Self::GFn, w: &mut ParamWriter);

    /// Decodes and validates one g-function.
    fn decode_gfn(r: &mut ParamReader) -> Result<Self::GFn, SnapshotError>;

    /// The `(dim, k)` shape of a g-function, so the loader can check
    /// every table against the index-level parameters before assembly.
    fn gfn_shape(g: &Self::GFn) -> (usize, usize);
}

/// A distance function the snapshot format can name. Distances carry no
/// state (unit structs), so only the tag is persisted; a loader
/// instantiated for a different metric rejects the file with
/// [`SnapshotError::DistanceMismatch`].
pub trait SnapshotDistance: Distance<[f32]> + Default {
    /// Distance discriminant in the param block (1 = L2, 2 = L1,
    /// 3 = cosine). Never reuse a retired value.
    const TAG: u8;
}

impl SnapshotDistance for L2 {
    const TAG: u8 = 1;
}

impl SnapshotDistance for L1 {
    const TAG: u8 = 2;
}

impl SnapshotDistance for Cosine {
    const TAG: u8 = 3;
}

fn decode_dim(r: &mut ParamReader) -> Result<usize, SnapshotError> {
    let dim = r.u32()? as usize;
    if dim == 0 || dim > MAX_DIM {
        return Err(SnapshotError::Malformed("dimensionality out of range"));
    }
    Ok(dim)
}

fn decode_width(r: &mut ParamReader) -> Result<f64, SnapshotError> {
    let w = r.f64()?;
    if !(w.is_finite() && w > 0.0) {
        return Err(SnapshotError::Malformed("slot width must be positive and finite"));
    }
    Ok(w)
}

fn encode_pstable_gfn(g: &PStableGFn, w: &mut ParamWriter) {
    let (dim, proj, shifts, width) = g.parts();
    w.u32(dim as u32);
    w.f64(width);
    w.f32_slice(proj);
    w.f64_slice(shifts);
}

fn decode_pstable_gfn(r: &mut ParamReader) -> Result<PStableGFn, SnapshotError> {
    let dim = decode_dim(r)?;
    let width = decode_width(r)?;
    let proj = r.f32_vec()?;
    let shifts = r.f64_vec()?;
    if shifts.is_empty() || shifts.len() > MAX_K {
        return Err(SnapshotError::Malformed("g-function width out of range"));
    }
    if shifts.len().checked_mul(dim) != Some(proj.len()) {
        return Err(SnapshotError::Malformed("g-function projection shape mismatch"));
    }
    Ok(PStableGFn::from_parts(dim, proj, shifts, width))
}

impl SnapshotFamily for PStableL2 {
    const TAG: u8 = 1;

    fn encode_params(&self, w: &mut ParamWriter) {
        w.u32(self.dim() as u32);
        w.f64(self.w());
    }

    fn decode_params(r: &mut ParamReader) -> Result<Self, SnapshotError> {
        let dim = decode_dim(r)?;
        let width = decode_width(r)?;
        Ok(Self::new(dim, width))
    }

    fn encode_gfn(g: &PStableGFn, w: &mut ParamWriter) {
        encode_pstable_gfn(g, w);
    }

    fn decode_gfn(r: &mut ParamReader) -> Result<PStableGFn, SnapshotError> {
        decode_pstable_gfn(r)
    }

    fn gfn_shape(g: &PStableGFn) -> (usize, usize) {
        let (dim, _, shifts, _) = g.parts();
        (dim, shifts.len())
    }
}

impl SnapshotFamily for PStableL1 {
    const TAG: u8 = 2;

    fn encode_params(&self, w: &mut ParamWriter) {
        w.u32(self.dim() as u32);
        w.f64(self.w());
    }

    fn decode_params(r: &mut ParamReader) -> Result<Self, SnapshotError> {
        let dim = decode_dim(r)?;
        let width = decode_width(r)?;
        Ok(Self::new(dim, width))
    }

    fn encode_gfn(g: &PStableGFn, w: &mut ParamWriter) {
        encode_pstable_gfn(g, w);
    }

    fn decode_gfn(r: &mut ParamReader) -> Result<PStableGFn, SnapshotError> {
        decode_pstable_gfn(r)
    }

    fn gfn_shape(g: &PStableGFn) -> (usize, usize) {
        let (dim, _, shifts, _) = g.parts();
        (dim, shifts.len())
    }
}

impl SnapshotFamily for SimHash {
    const TAG: u8 = 3;

    fn encode_params(&self, w: &mut ParamWriter) {
        w.u32(self.dim() as u32);
    }

    fn decode_params(r: &mut ParamReader) -> Result<Self, SnapshotError> {
        Ok(Self::new(decode_dim(r)?))
    }

    fn encode_gfn(g: &SimHashGFn, w: &mut ParamWriter) {
        let (dim, planes) = g.parts();
        w.u32(dim as u32);
        w.f32_slice(planes);
    }

    fn decode_gfn(r: &mut ParamReader) -> Result<SimHashGFn, SnapshotError> {
        let dim = decode_dim(r)?;
        let planes = r.f32_vec()?;
        if planes.is_empty() || !planes.len().is_multiple_of(dim) {
            return Err(SnapshotError::Malformed("g-function plane shape mismatch"));
        }
        if planes.len() / dim > 64 {
            return Err(SnapshotError::Malformed("sign-family g-function wider than 64 bits"));
        }
        Ok(SimHashGFn::from_parts(dim, planes))
    }

    fn gfn_shape(g: &SimHashGFn) -> (usize, usize) {
        let (dim, planes) = g.parts();
        (dim, planes.len() / dim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlsh_families::sampling::rng_stream;

    fn round_trip_gfn<F: SnapshotFamily>(family: &F, k: usize) -> F::GFn {
        let mut rng = rng_stream(7, 0);
        let g = family.sample(k, &mut rng);
        let mut w = ParamWriter::new();
        F::encode_gfn(&g, &mut w);
        let bytes = w.into_bytes();
        let mut r = ParamReader::new(&bytes);
        let back = F::decode_gfn(&mut r).expect("round trip");
        r.finish().expect("fully consumed");
        back
    }

    #[test]
    fn pstable_gfn_round_trips_verbatim() {
        let family = PStableL2::new(12, 3.5);
        let g = round_trip_gfn(&family, 5);
        assert_eq!(PStableL2::gfn_shape(&g), (12, 5));
        // Byte-identical re-encode: serialisation is verbatim.
        let mut w1 = ParamWriter::new();
        PStableL2::encode_gfn(&g, &mut w1);
        let mut w2 = ParamWriter::new();
        PStableL2::encode_gfn(&round_trip_gfn(&family, 5), &mut w2);
        assert_eq!(w1.into_bytes(), w2.into_bytes());
    }

    #[test]
    fn simhash_gfn_round_trips_and_rejects_bad_shapes() {
        let family = SimHash::new(8);
        let g = round_trip_gfn(&family, 6);
        assert_eq!(SimHash::gfn_shape(&g), (8, 6));

        // A plane buffer that is not a multiple of dim is rejected.
        let mut w = ParamWriter::new();
        w.u32(8);
        w.f32_slice(&[1.0; 9]);
        let bytes = w.into_bytes();
        assert!(matches!(
            SimHash::decode_gfn(&mut ParamReader::new(&bytes)),
            Err(SnapshotError::Malformed(_))
        ));
    }

    #[test]
    fn family_params_round_trip_and_validate() {
        let f = PStableL1::new(16, 2.25);
        let mut w = ParamWriter::new();
        f.encode_params(&mut w);
        let bytes = w.into_bytes();
        assert_eq!(PStableL1::decode_params(&mut ParamReader::new(&bytes)).expect("decode"), f);

        // Zero dimensionality and non-positive widths map to typed
        // errors, not constructor panics.
        let mut w = ParamWriter::new();
        w.u32(0);
        w.f64(2.0);
        let bytes = w.into_bytes();
        assert!(PStableL1::decode_params(&mut ParamReader::new(&bytes)).is_err());
        let mut w = ParamWriter::new();
        w.u32(4);
        w.f64(-1.0);
        let bytes = w.into_bytes();
        assert!(PStableL1::decode_params(&mut ParamReader::new(&bytes)).is_err());
    }
}
