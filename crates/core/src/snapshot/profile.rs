//! Storage profiling for the load planner: how fast is the medium a
//! snapshot sits on?
//!
//! [`StorageProfile::probe`] writes a scratch file next to the snapshot
//! and times two access patterns through plain buffered I/O:
//!
//! * one sequential pass in 256 KiB chunks → bytes/second;
//! * a burst of page-sized reads at pseudo-random offsets → seconds
//!   per small read.
//!
//! The numbers are **effective** figures — the page cache is not (and
//! cannot portably be) bypassed, so a warm medium reads fast. That is
//! the signal the planner wants: right after a snapshot is written the
//! file *is* warm and any mode is cheap; the profile matters on the
//! cold media (network mounts, spinning disks, throttled volumes)
//! where cache hits are rare and the two patterns genuinely diverge.
//!
//! A probe costs a few milliseconds on local disk, so the result is
//! cached as a small JSON sidecar next to the snapshot
//! (`<snapshot>.profile.json`, schema in `docs/SNAPSHOT.md`) and reused
//! by later loads; delete the sidecar to re-probe. All sidecar writes
//! are best-effort — a read-only snapshot directory degrades to
//! probing per process, never to a failed load.

use std::fs::{self, File};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::time::Instant;

use super::mmap::page_size;

/// Scratch file length: big enough to outlast burst buffering, small
/// enough to probe in milliseconds on local media.
const PROBE_LEN: usize = 4 << 20;
/// Sequential chunk size.
const SEQ_CHUNK: usize = 256 << 10;
/// Number of timed random reads.
const RAND_READS: usize = 64;
/// Bytes per random read.
const RAND_LEN: usize = 4096;

/// An empirical profile of a storage medium, as consumed by the load
/// planner ([`plan_load`](super::plan::plan_load)).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StorageProfile {
    /// Sequential read bandwidth in bytes per second.
    pub seq_bytes_per_sec: f64,
    /// Mean wall time of one 4 KiB read at a random offset, seconds.
    pub rand_read_secs: f64,
    /// Runtime page size of the host that measured the profile.
    pub page_size: u64,
}

impl StorageProfile {
    /// Measures the medium under `dir` by writing and timing a scratch
    /// file there. The file is removed before returning.
    pub fn probe(dir: &Path) -> std::io::Result<Self> {
        let path = dir.join(format!(".hlsh-probe-{}.tmp", std::process::id()));
        let result = Self::probe_at(&path);
        fs::remove_file(&path).ok();
        result
    }

    fn probe_at(path: &Path) -> std::io::Result<Self> {
        // Fill with a cheap LCG pattern so filesystems with transparent
        // compression cannot shortcut the reads.
        let mut chunk = vec![0u8; SEQ_CHUNK];
        let mut state = 0x243F_6A88_85A3_08D3u64;
        {
            let mut out = File::create(path)?;
            let mut written = 0usize;
            while written < PROBE_LEN {
                for b in chunk.iter_mut() {
                    state =
                        state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    *b = (state >> 56) as u8;
                }
                let step = SEQ_CHUNK.min(PROBE_LEN - written);
                out.write_all(&chunk[..step])?;
                written += step;
            }
            out.sync_all()?;
        }

        let mut file = File::open(path)?;

        // Sequential pass.
        let t0 = Instant::now();
        let mut remaining = PROBE_LEN;
        while remaining > 0 {
            let step = SEQ_CHUNK.min(remaining);
            file.read_exact(&mut chunk[..step])?;
            remaining -= step;
        }
        let seq_secs = t0.elapsed().as_secs_f64().max(1e-9);

        // Random page-sized reads at LCG offsets.
        let mut buf = [0u8; RAND_LEN];
        let span = (PROBE_LEN - RAND_LEN) as u64;
        let t0 = Instant::now();
        for _ in 0..RAND_READS {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let offset = (state >> 16) % span;
            file.seek(SeekFrom::Start(offset))?;
            file.read_exact(&mut buf)?;
        }
        let rand_secs = t0.elapsed().as_secs_f64().max(1e-9);

        Ok(Self {
            seq_bytes_per_sec: PROBE_LEN as f64 / seq_secs,
            rand_read_secs: rand_secs / RAND_READS as f64,
            page_size: page_size(),
        })
    }

    /// The profile as one line of flat JSON (the sidecar format).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"seq_bytes_per_sec\":{:.1},\"rand_read_secs\":{:.9},\"page_size\":{}}}\n",
            self.seq_bytes_per_sec, self.rand_read_secs, self.page_size
        )
    }

    /// Parses the sidecar JSON written by [`to_json`](Self::to_json).
    /// Tolerant of whitespace and key order; `None` on anything else
    /// (a stale or corrupt sidecar is simply re-probed).
    pub fn from_json(text: &str) -> Option<Self> {
        let body = text.trim().strip_prefix('{')?.strip_suffix('}')?;
        let (mut seq, mut rand, mut page) = (None, None, None);
        for field in body.split(',') {
            let (key, value) = field.split_once(':')?;
            let key = key.trim().trim_matches('"');
            let value = value.trim();
            match key {
                "seq_bytes_per_sec" => seq = value.parse::<f64>().ok(),
                "rand_read_secs" => rand = value.parse::<f64>().ok(),
                "page_size" => page = value.parse::<u64>().ok(),
                _ => return None,
            }
        }
        let profile = Self { seq_bytes_per_sec: seq?, rand_read_secs: rand?, page_size: page? };
        let sane = profile.seq_bytes_per_sec.is_finite()
            && profile.seq_bytes_per_sec > 0.0
            && profile.rand_read_secs.is_finite()
            && profile.rand_read_secs > 0.0
            && profile.page_size.is_power_of_two();
        sane.then_some(profile)
    }

    /// The sidecar path for a snapshot: `<snapshot>.profile.json`.
    pub fn cache_path(snapshot: &Path) -> PathBuf {
        let mut os = snapshot.as_os_str().to_os_string();
        os.push(".profile.json");
        PathBuf::from(os)
    }

    /// The profile for the medium `snapshot` sits on: the cached
    /// sidecar when present and parseable, else a fresh probe (cached
    /// best-effort). `None` when probing fails too (e.g. an unwritable
    /// directory) — the planner then falls back to its default.
    pub fn load_or_probe(snapshot: &Path) -> Option<Self> {
        let cache = Self::cache_path(snapshot);
        if let Ok(text) = fs::read_to_string(&cache) {
            if let Some(profile) = Self::from_json(&text) {
                return Some(profile);
            }
        }
        let dir = match snapshot.parent() {
            Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
            _ => PathBuf::from("."),
        };
        let profile = Self::probe(&dir).ok()?;
        fs::write(&cache, profile.to_json()).ok();
        Some(profile)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_round_trip_and_rejection() {
        let p =
            StorageProfile { seq_bytes_per_sec: 1.25e9, rand_read_secs: 3.5e-5, page_size: 4096 };
        assert_eq!(StorageProfile::from_json(&p.to_json()), Some(p));
        // Key order and whitespace are tolerated.
        let shuffled =
            " { \"page_size\": 16384 , \"rand_read_secs\": 0.001, \"seq_bytes_per_sec\": 5e8 } ";
        let parsed = StorageProfile::from_json(shuffled).expect("shuffled keys parse");
        assert_eq!(parsed.page_size, 16384);

        for bad in [
            "",
            "{}",
            "not json",
            "{\"seq_bytes_per_sec\":1.0}",
            "{\"seq_bytes_per_sec\":-1,\"rand_read_secs\":1e-5,\"page_size\":4096}",
            "{\"seq_bytes_per_sec\":1e9,\"rand_read_secs\":1e-5,\"page_size\":4095}",
            "{\"seq_bytes_per_sec\":1e9,\"rand_read_secs\":1e-5,\"page_size\":4096,\"x\":1}",
        ] {
            assert!(StorageProfile::from_json(bad).is_none(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn probe_measures_positive_rates_and_caches() {
        let dir = std::env::temp_dir().join("hlsh-profile-test");
        fs::create_dir_all(&dir).expect("temp dir");
        let profile = StorageProfile::probe(&dir).expect("probe");
        assert!(profile.seq_bytes_per_sec > 0.0);
        assert!(profile.rand_read_secs > 0.0);
        assert!(profile.page_size >= 4096);

        // load_or_probe writes the sidecar and then reuses it verbatim
        // (the first call returns the full-precision probe; later calls
        // return exactly what the sidecar holds).
        let snapshot = dir.join(format!("probe-cache-{}.hlsh", std::process::id()));
        let first = StorageProfile::load_or_probe(&snapshot).expect("probe or cache");
        let sidecar = StorageProfile::cache_path(&snapshot);
        assert!(sidecar.exists());
        let on_disk = StorageProfile::from_json(&fs::read_to_string(&sidecar).expect("sidecar"))
            .expect("sidecar parses");
        let second = StorageProfile::load_or_probe(&snapshot).expect("cached");
        assert_eq!(second, on_disk, "second load must come from the sidecar");
        assert_eq!(second.page_size, first.page_size);
        fs::remove_file(&sidecar).ok();
    }
}
