//! Snapshot loader: total validation first, infallible assembly after.
//!
//! Several in-memory constructors downstream of the loader enforce
//! their invariants with asserts (`HllConfig::new`, `CostModel`,
//! `RadiusSchedule`, the `assemble` hooks). A corrupt file must never
//! reach them, so this module checks **every** precondition explicitly
//! and maps violations to typed [`SnapshotError`]s — loading is total,
//! in the same spirit as the wire protocol's frame decoder. The one
//! documented exception: under [`LoadMode::Mmap`] the per-section CRCs
//! are skipped (checksumming would fault in every page and forfeit the
//! lazy cold start), so bit rot inside member or register arrays is
//! caught by the OS page checksums or not at all — use
//! [`LoadMode::MmapVerify`] or [`LoadMode::Read`] when that matters.

use std::fs::File;
use std::path::Path;
use std::sync::Arc;

use hlsh_hll::HllConfig;
use hlsh_vec::{DenseDataset, PointId, Section};

use super::codec::{SnapshotDistance, SnapshotFamily};
use super::format::{crc32, DirEntry, Header, ParamReader, DIR_ENTRY_LEN, HEADER_LEN};
use super::params::RawParams;
use super::source::SnapshotSource;
use super::{LoadMode, SnapshotError, SnapshotManifest, TopKManifest};
use crate::index::HybridLshIndex;
use crate::schedule::RadiusSchedule;
use crate::sharded::{ShardAssignment, ShardedIndex, ShardedTopKIndex};
use crate::store::FrozenStore;
use crate::table::HashTable;
use crate::topk::TopKIndex;

/// Everything a snapshot reconstructs: the sharded radius index, the
/// sharded top-k ladder when one was saved, and the manifest the file
/// declared.
pub struct LoadedSnapshot<F, D>
where
    F: SnapshotFamily,
    D: SnapshotDistance,
{
    /// The sharded r-near-neighbor-reporting index.
    pub rnnr: ShardedIndex<DenseDataset, F, D, FrozenStore>,
    /// The sharded top-k ladder, when the snapshot carried one.
    pub topk: Option<ShardedTopKIndex<DenseDataset, F, D, FrozenStore>>,
    /// The scalar parameters the file declared.
    pub manifest: SnapshotManifest,
}

/// Validated preamble: header, param bytes and directory bytes, each
/// checked against its CRC. Shared by the loader and the manifest
/// reader; works over either source.
fn read_preamble(
    src: &mut SnapshotSource,
    file_len: u64,
) -> Result<(Header, Vec<u8>, Vec<u8>), SnapshotError> {
    let header = Header::decode(&src.bytes(0, HEADER_LEN)?)?;
    if header.total_len != file_len {
        return if file_len < header.total_len {
            Err(SnapshotError::Truncated)
        } else {
            Err(SnapshotError::Malformed("file length disagrees with header"))
        };
    }
    let param_len = usize::try_from(header.param_len).map_err(|_| SnapshotError::Truncated)?;
    let param = src.bytes(header.param_off, param_len)?;
    if crc32(&param) != header.param_crc {
        return Err(SnapshotError::ChecksumMismatch("param block"));
    }
    let dir_len = header.dir_count as usize * DIR_ENTRY_LEN;
    let dir = src.bytes(header.dir_off, dir_len)?;
    if crc32(&dir) != header.dir_crc {
        return Err(SnapshotError::ChecksumMismatch("directory"));
    }
    Ok((header, param, dir))
}

fn manifest_of(raw: &RawParams) -> SnapshotManifest {
    SnapshotManifest {
        family_tag: raw.family_tag,
        distance_tag: raw.distance_tag,
        n: raw.n,
        dim: raw.dim,
        seed: raw.seed,
        shards: raw.shards,
        tables: raw.rnnr.tables,
        k: raw.rnnr.k,
        topk: raw.topk.as_ref().map(|tk| TopKManifest {
            base: tk.base,
            ratio: tk.ratio,
            levels: tk.levels.len(),
        }),
    }
}

/// Reads only the scalar parameters of a snapshot — no sections are
/// touched and no family/distance type is needed, so a server can
/// fail fast when CLI parameters disagree with the file before paying
/// for a load.
pub fn read_manifest(path: &Path) -> Result<SnapshotManifest, SnapshotError> {
    let file = File::open(path)?;
    let file_len = file.metadata()?.len();
    let mut src = SnapshotSource::read(file);
    let (_, param, _) = read_preamble(&mut src, file_len)?;
    let mut r = ParamReader::new(&param);
    // The g-function area follows the scalars; the manifest stops early
    // by design, so no `finish()` here.
    Ok(manifest_of(&RawParams::decode(&mut r)?))
}

fn next_entry<'a>(it: &mut std::slice::Iter<'a, DirEntry>) -> Result<&'a DirEntry, SnapshotError> {
    it.next().ok_or(SnapshotError::Malformed("directory ended before the section schema"))
}

/// Reads the seven arrays of one frozen store and revalidates the CSR
/// structural invariants via `FrozenStore::from_sections`.
fn load_store(
    src: &mut SnapshotSource,
    it: &mut std::slice::Iter<'_, DirEntry>,
    hll: HllConfig,
) -> Result<FrozenStore, SnapshotError> {
    let keys: Section<u64> = src.section(next_entry(it)?)?;
    let prefix: Section<u32> = src.section(next_entry(it)?)?;
    let offsets: Section<u64> = src.section(next_entry(it)?)?;
    let members: Section<PointId> = src.section(next_entry(it)?)?;
    let bits: Section<u64> = src.section(next_entry(it)?)?;
    let rank: Section<u32> = src.section(next_entry(it)?)?;
    let regs: Section<u8> = src.section(next_entry(it)?)?;
    FrozenStore::from_sections(keys, prefix, offsets, members, Some(hll), bits, rank, regs)
        .map_err(SnapshotError::Malformed)
}

/// Loads a snapshot written by [`save_snapshot`](super::save_snapshot).
///
/// The type parameters select the expected family and distance; a file
/// written for different ones is rejected with
/// [`SnapshotError::FamilyMismatch`] / [`DistanceMismatch`]. Queries
/// against the returned indexes are byte-identical to queries against
/// the indexes that were saved, in every [`LoadMode`].
///
/// [`DistanceMismatch`]: SnapshotError::DistanceMismatch
pub fn load_snapshot<F, D>(
    path: &Path,
    mode: LoadMode,
) -> Result<LoadedSnapshot<F, D>, SnapshotError>
where
    F: SnapshotFamily,
    D: SnapshotDistance,
{
    let file = File::open(path)?;
    let file_len = file.metadata()?.len();
    let mut src = match mode {
        LoadMode::Read => SnapshotSource::read(file),
        LoadMode::Mmap => SnapshotSource::mmap(&file, file_len, false)?,
        LoadMode::MmapVerify => SnapshotSource::mmap(&file, file_len, true)?,
    };
    let (header, param, dir) = read_preamble(&mut src, file_len)?;

    // --- params: scalars, then every g-function, fully consumed ---
    let mut r = ParamReader::new(&param);
    let raw = RawParams::decode(&mut r)?;
    if raw.distance_tag != D::TAG {
        return Err(SnapshotError::DistanceMismatch { expected: D::TAG, found: raw.distance_tag });
    }
    if raw.family_tag != F::TAG {
        return Err(SnapshotError::FamilyMismatch { expected: F::TAG, found: raw.family_tag });
    }
    if raw.expected_sections() != header.dir_count as usize {
        return Err(SnapshotError::Malformed("directory entry count disagrees with parameters"));
    }
    let decode_family = |blob: &[u8]| -> Result<F, SnapshotError> {
        let mut fr = ParamReader::new(blob);
        let family = F::decode_params(&mut fr)?;
        fr.finish()?;
        Ok(family)
    };
    let family = decode_family(&raw.rnnr.family)?;
    let level_families = match &raw.topk {
        Some(tk) => {
            tk.levels.iter().map(|g| decode_family(&g.family)).collect::<Result<Vec<_>, _>>()?
        }
        None => Vec::new(),
    };
    let decode_gfn = |r: &mut ParamReader, k: usize| -> Result<F::GFn, SnapshotError> {
        let g = F::decode_gfn(r)?;
        if F::gfn_shape(&g) != (raw.dim, k) {
            return Err(SnapshotError::Malformed("g-function shape disagrees with parameters"));
        }
        Ok(g)
    };
    let mut rnnr_gfns: Vec<Vec<F::GFn>> = Vec::with_capacity(raw.shards);
    for _ in 0..raw.shards {
        let gfns = (0..raw.rnnr.tables)
            .map(|_| decode_gfn(&mut r, raw.rnnr.k))
            .collect::<Result<Vec<_>, _>>()?;
        rnnr_gfns.push(gfns);
    }
    let mut topk_gfns: Vec<Vec<Vec<F::GFn>>> = Vec::new();
    if let Some(tk) = &raw.topk {
        for _ in 0..raw.shards {
            let mut per_level = Vec::with_capacity(tk.levels.len());
            for g in &tk.levels {
                per_level.push(
                    (0..g.tables)
                        .map(|_| decode_gfn(&mut r, g.k))
                        .collect::<Result<Vec<_>, _>>()?,
                );
            }
            topk_gfns.push(per_level);
        }
    }
    r.finish()?;

    // --- sections, in the writer's fixed order ---
    let entries = dir
        .chunks(DIR_ENTRY_LEN)
        .map(|c| DirEntry::decode(c, header.total_len))
        .collect::<Result<Vec<_>, _>>()?;
    let mut it = entries.iter();
    let hll = raw.rnnr.hll_config();
    let cost = raw.rnnr.cost_model();
    let has_topk = raw.topk.is_some();
    let mut owners_all: Vec<Vec<PointId>> = Vec::with_capacity(raw.shards);
    let mut data_secs: Vec<Section<f32>> = Vec::with_capacity(raw.shards);
    let mut seen = vec![false; raw.n];
    let mut rnnr_shards = Vec::with_capacity(raw.shards);
    for gfns in rnnr_gfns {
        let owners_sec: Section<PointId> = src.section(next_entry(&mut it)?)?;
        let owners = owners_sec.to_vec();
        for &g in &owners {
            if (g as usize) >= raw.n || std::mem::replace(&mut seen[g as usize], true) {
                return Err(SnapshotError::Malformed("owner lists do not partition the ids"));
            }
        }
        let mut data_sec: Section<f32> = src.section(next_entry(&mut it)?)?;
        if owners.len().checked_mul(raw.dim) != Some(data_sec.len()) {
            return Err(SnapshotError::Malformed("data section size disagrees with owner list"));
        }
        // When a ladder shares this shard, promote an owned buffer to a
        // shared backing so both indexes clone the same allocation.
        if has_topk && !data_sec.is_shared() {
            data_sec = Section::shared(Arc::new(data_sec.into_vec()));
        }
        let tables = gfns
            .into_iter()
            .map(|g| Ok(HashTable::from_parts(g, load_store(&mut src, &mut it, hll)?)))
            .collect::<Result<Vec<_>, SnapshotError>>()?;
        rnnr_shards.push(HybridLshIndex::assemble(
            DenseDataset::from_section(data_sec.clone(), raw.dim),
            family.clone(),
            D::default(),
            tables,
            hll,
            raw.rnnr.lazy,
            cost,
            raw.rnnr.k,
        ));
        owners_all.push(owners);
        data_secs.push(data_sec);
    }
    if !seen.into_iter().all(|b| b) {
        return Err(SnapshotError::Malformed("owner lists do not cover the ids"));
    }

    let assignment = ShardAssignment::new(raw.seed, raw.shards);
    let mut topk_index = None;
    if let Some(tk) = &raw.topk {
        let schedule = RadiusSchedule::new(tk.base, tk.ratio, tk.levels.len());
        let mut ladders = Vec::with_capacity(raw.shards);
        for (s, per_level) in topk_gfns.into_iter().enumerate() {
            let data = Arc::new(DenseDataset::from_section(data_secs[s].clone(), raw.dim));
            let mut levels = Vec::with_capacity(tk.levels.len());
            for (group, (gfns, lvl_family)) in
                tk.levels.iter().zip(per_level.into_iter().zip(&level_families))
            {
                let tables = gfns
                    .into_iter()
                    .map(|g| {
                        Ok(HashTable::from_parts(
                            g,
                            load_store(&mut src, &mut it, group.hll_config())?,
                        ))
                    })
                    .collect::<Result<Vec<_>, SnapshotError>>()?;
                levels.push(HybridLshIndex::assemble(
                    Arc::clone(&data),
                    lvl_family.clone(),
                    D::default(),
                    tables,
                    group.hll_config(),
                    group.lazy,
                    group.cost_model(),
                    group.k,
                ));
            }
            ladders.push(TopKIndex::assemble(data, schedule, levels));
        }
        topk_index = Some(ShardedTopKIndex::assemble(
            ladders,
            owners_all.clone(),
            assignment,
            schedule,
            raw.n,
        ));
    }
    let rnnr = ShardedIndex::assemble(rnnr_shards, owners_all, assignment, raw.n);
    Ok(LoadedSnapshot { rnnr, topk: topk_index, manifest: manifest_of(&raw) })
}
