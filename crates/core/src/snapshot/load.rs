//! Snapshot loader: total validation first, infallible assembly after.
//!
//! Several in-memory constructors downstream of the loader enforce
//! their invariants with asserts (`HllConfig::new`, `CostModel`,
//! `RadiusSchedule`, the `assemble` hooks). A corrupt file must never
//! reach them, so this module checks **every** precondition explicitly
//! and maps violations to typed [`SnapshotError`]s — loading is total,
//! in the same spirit as the wire protocol's frame decoder. The one
//! documented exception: under [`LoadMode::Mmap`] the per-section CRCs
//! of *raw* sections are skipped (checksumming would fault in every
//! page and forfeit the lazy cold start), so bit rot inside member or
//! register arrays is caught by the OS page checksums or not at all —
//! use [`LoadMode::MmapVerify`] or [`LoadMode::Read`] when that
//! matters. Encoded (v2) sections are decoded — hence checksummed — in
//! every mode.
//!
//! The loader is version-dispatched off the header: v1 files (24-byte
//! all-raw directory entries, g-functions repeated per shard) and v2
//! files (per-section encodings, one shared g-function area) both load
//! through the same section schema, and queries against either are
//! byte-identical. [`LoadMode::Auto`] resolves to a concrete backend
//! here: a cheap preamble pass collects [`LayoutStats`], the storage
//! profile is loaded or probed, and [`plan_load`] picks the backend and
//! prefetch policy.

use std::fs::File;
use std::path::Path;
use std::sync::Arc;

use hlsh_hll::HllConfig;
use hlsh_vec::{DenseDataset, PointId, Section};

use super::codec::{SnapshotDistance, SnapshotFamily};
use super::format::{
    crc32, DirEntry, Header, ParamReader, SectionEncoding, HEADER_LEN, VERSION_V1,
};
use super::mmap::mmap_supported;
use super::params::RawParams;
use super::plan::{plan_load, LayoutStats, LoadPlan, PlannedBackend};
use super::profile::StorageProfile;
use super::source::SnapshotSource;
use super::{LoadMode, SnapshotError, SnapshotManifest, TopKManifest};
use crate::index::HybridLshIndex;
use crate::schedule::RadiusSchedule;
use crate::sharded::{ShardAssignment, ShardedIndex, ShardedTopKIndex};
use crate::store::FrozenStore;
use crate::table::HashTable;
use crate::topk::TopKIndex;

/// Everything a snapshot reconstructs: the sharded radius index, the
/// sharded top-k ladder when one was saved, and the manifest the file
/// declared.
pub struct LoadedSnapshot<F, D>
where
    F: SnapshotFamily,
    D: SnapshotDistance,
{
    /// The sharded r-near-neighbor-reporting index.
    pub rnnr: ShardedIndex<DenseDataset, F, D, FrozenStore>,
    /// The sharded top-k ladder, when the snapshot carried one.
    pub topk: Option<ShardedTopKIndex<DenseDataset, F, D, FrozenStore>>,
    /// The scalar parameters the file declared.
    pub manifest: SnapshotManifest,
    /// The resolved plan when the load ran under [`LoadMode::Auto`]
    /// (`None` for the explicit modes), for logs.
    pub plan: Option<LoadPlan>,
}

/// Validated preamble: header, param bytes and directory bytes, each
/// checked against its CRC. Shared by the loader, the manifest reader
/// and the layout reader; works over either source and both versions.
fn read_preamble(
    src: &mut SnapshotSource,
    file_len: u64,
) -> Result<(Header, Vec<u8>, Vec<u8>), SnapshotError> {
    let header = Header::decode(&src.bytes(0, HEADER_LEN)?)?;
    if header.total_len != file_len {
        return if file_len < header.total_len {
            Err(SnapshotError::Truncated)
        } else {
            Err(SnapshotError::Malformed("file length disagrees with header"))
        };
    }
    let param_len = usize::try_from(header.param_len).map_err(|_| SnapshotError::Truncated)?;
    let param = src.bytes(header.param_off, param_len)?;
    if crc32(&param) != header.param_crc {
        return Err(SnapshotError::ChecksumMismatch("param block"));
    }
    let dir_len = header.dir_count as usize * header.dir_entry_len();
    let dir = src.bytes(header.dir_off, dir_len)?;
    if crc32(&dir) != header.dir_crc {
        return Err(SnapshotError::ChecksumMismatch("directory"));
    }
    Ok((header, param, dir))
}

/// Decodes the directory under the header's format version.
fn decode_entries(header: &Header, dir: &[u8]) -> Result<Vec<DirEntry>, SnapshotError> {
    dir.chunks(header.dir_entry_len())
        .map(|c| {
            if header.version == VERSION_V1 {
                DirEntry::decode_v1(c, header.total_len)
            } else {
                DirEntry::decode(c, header.total_len)
            }
        })
        .collect()
}

fn manifest_of(raw: &RawParams) -> SnapshotManifest {
    SnapshotManifest {
        family_tag: raw.family_tag,
        distance_tag: raw.distance_tag,
        n: raw.n,
        dim: raw.dim,
        seed: raw.seed,
        shards: raw.shards,
        tables: raw.rnnr.tables,
        k: raw.rnnr.k,
        topk: raw.topk.as_ref().map(|tk| TopKManifest {
            base: tk.base,
            ratio: tk.ratio,
            levels: tk.levels.len(),
        }),
    }
}

/// Reads only the scalar parameters of a snapshot — no sections are
/// touched and no family/distance type is needed, so a server can
/// fail fast when CLI parameters disagree with the file before paying
/// for a load.
pub fn read_manifest(path: &Path) -> Result<SnapshotManifest, SnapshotError> {
    let file = File::open(path)?;
    let file_len = file.metadata()?.len();
    let mut src = SnapshotSource::read(file);
    let (_, param, _) = read_preamble(&mut src, file_len)?;
    let mut r = ParamReader::new(&param);
    // The g-function area follows the scalars; the manifest stops early
    // by design, so no `finish()` here.
    Ok(manifest_of(&RawParams::decode(&mut r)?))
}

/// One section as described by the directory, labelled by its position
/// in the schema (`shard0/rnnr/t3/members`, `shard1/L2/t0/keys`, ...).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SectionInfo {
    /// Schema-derived label.
    pub label: String,
    /// How the payload is stored on disk.
    pub encoding: SectionEncoding,
    /// Decoded payload bytes.
    pub raw_len: u64,
    /// On-disk payload bytes.
    pub enc_len: u64,
}

/// A snapshot's on-disk shape — directory metadata only, no section
/// payloads touched. What the `snapshot` bench bin reports per-section
/// compression from.
#[derive(Clone, Debug, PartialEq)]
pub struct SnapshotLayout {
    /// Format version of the file ([`VERSION`](super::format::VERSION)
    /// or [`VERSION_V1`]).
    pub version: u32,
    /// The scalar parameters the file declared.
    pub manifest: SnapshotManifest,
    /// Exact file length in bytes.
    pub file_len: u64,
    /// Every section in directory (= schema) order.
    pub sections: Vec<SectionInfo>,
}

impl SnapshotLayout {
    /// Aggregates the per-section byte counts into the planner's input.
    pub fn stats(&self) -> LayoutStats {
        let mut stats = LayoutStats { total_bytes: self.file_len, ..Default::default() };
        for s in &self.sections {
            match s.encoding {
                SectionEncoding::Raw => stats.raw_section_bytes += s.enc_len,
                _ => stats.encoded_section_bytes += s.enc_len,
            }
        }
        stats
    }
}

/// The seven per-store array names, in schema order.
const STORE_ARRAYS: [&str; 7] = ["keys", "prefix", "offsets", "members", "bits", "rank", "regs"];

/// Reads a snapshot's directory and labels every section against the
/// format's fixed schema — cheap (preamble only), version-agnostic, and
/// family-agnostic like [`read_manifest`].
pub fn read_layout(path: &Path) -> Result<SnapshotLayout, SnapshotError> {
    let file = File::open(path)?;
    let file_len = file.metadata()?.len();
    let mut src = SnapshotSource::read(file);
    let (header, param, dir) = read_preamble(&mut src, file_len)?;
    let mut r = ParamReader::new(&param);
    let raw = RawParams::decode(&mut r)?;
    let entries = decode_entries(&header, &dir)?;
    if entries.len() != raw.expected_sections() {
        return Err(SnapshotError::Malformed("directory entry count disagrees with parameters"));
    }
    let mut labels = Vec::with_capacity(entries.len());
    for s in 0..raw.shards {
        labels.push(format!("shard{s}/owners"));
        labels.push(format!("shard{s}/data"));
        for t in 0..raw.rnnr.tables {
            for a in STORE_ARRAYS {
                labels.push(format!("shard{s}/rnnr/t{t}/{a}"));
            }
        }
    }
    if let Some(tk) = &raw.topk {
        for s in 0..raw.shards {
            for (l, g) in tk.levels.iter().enumerate() {
                for t in 0..g.tables {
                    for a in STORE_ARRAYS {
                        labels.push(format!("shard{s}/L{l}/t{t}/{a}"));
                    }
                }
            }
        }
    }
    debug_assert_eq!(labels.len(), entries.len());
    let sections = labels
        .into_iter()
        .zip(&entries)
        .map(|(label, e)| SectionInfo {
            label,
            encoding: e.encoding,
            raw_len: e.raw_len,
            enc_len: e.enc_len,
        })
        .collect();
    Ok(SnapshotLayout { version: header.version, manifest: manifest_of(&raw), file_len, sections })
}

/// Resolves [`LoadMode::Auto`] against this file and host: one cheap
/// preamble pass for the layout statistics, then the cached-or-probed
/// storage profile, then the pure planner.
fn resolve_auto(path: &Path, file: &File, file_len: u64) -> Result<LoadPlan, SnapshotError> {
    let mut probe_src = SnapshotSource::read(file.try_clone()?);
    let (header, _, dir) = read_preamble(&mut probe_src, file_len)?;
    let entries = decode_entries(&header, &dir)?;
    let mut stats = LayoutStats { total_bytes: file_len, ..Default::default() };
    for e in &entries {
        match e.encoding {
            SectionEncoding::Raw => stats.raw_section_bytes += e.enc_len,
            _ => stats.encoded_section_bytes += e.enc_len,
        }
    }
    let profile = StorageProfile::load_or_probe(path);
    Ok(plan_load(profile.as_ref(), mmap_supported(), &stats))
}

/// A cursor over the directory that also yields each entry's position
/// (the key into the read source's preload stage).
struct EntryCursor<'a> {
    entries: &'a [DirEntry],
    pos: usize,
}

impl<'a> EntryCursor<'a> {
    fn next(&mut self) -> Result<(usize, &'a DirEntry), SnapshotError> {
        let i = self.pos;
        let entry = self
            .entries
            .get(i)
            .ok_or(SnapshotError::Malformed("directory ended before the section schema"))?;
        self.pos += 1;
        Ok((i, entry))
    }
}

/// Reads the seven arrays of one frozen store and revalidates the CSR
/// structural invariants via `FrozenStore::from_sections`.
fn load_store(
    src: &mut SnapshotSource,
    cur: &mut EntryCursor<'_>,
    hll: HllConfig,
) -> Result<FrozenStore, SnapshotError> {
    let (i, e) = cur.next()?;
    let keys: Section<u64> = src.section(i, e)?;
    let (i, e) = cur.next()?;
    let prefix: Section<u32> = src.section(i, e)?;
    let (i, e) = cur.next()?;
    let offsets: Section<u64> = src.section(i, e)?;
    let (i, e) = cur.next()?;
    let members: Section<PointId> = src.section(i, e)?;
    let (i, e) = cur.next()?;
    let bits: Section<u64> = src.section(i, e)?;
    let (i, e) = cur.next()?;
    let rank: Section<u32> = src.section(i, e)?;
    let (i, e) = cur.next()?;
    let regs: Section<u8> = src.section(i, e)?;
    FrozenStore::from_sections(keys, prefix, offsets, members, Some(hll), bits, rank, regs)
        .map_err(SnapshotError::Malformed)
}

/// Loads a snapshot written by [`save_snapshot`](super::save_snapshot)
/// (v2) or [`save_snapshot_v1`](super::save_snapshot_v1).
///
/// The type parameters select the expected family and distance; a file
/// written for different ones is rejected with
/// [`SnapshotError::FamilyMismatch`] / [`DistanceMismatch`]. Queries
/// against the returned indexes are byte-identical to queries against
/// the indexes that were saved, in every [`LoadMode`] and for both
/// format versions.
///
/// [`DistanceMismatch`]: SnapshotError::DistanceMismatch
pub fn load_snapshot<F, D>(
    path: &Path,
    mode: LoadMode,
) -> Result<LoadedSnapshot<F, D>, SnapshotError>
where
    F: SnapshotFamily,
    D: SnapshotDistance,
{
    let file = File::open(path)?;
    let file_len = file.metadata()?.len();
    let (mut src, plan) = match mode {
        LoadMode::Read => (SnapshotSource::read(file), None),
        LoadMode::Mmap => (SnapshotSource::mmap(&file, file_len, false)?, None),
        LoadMode::MmapVerify => (SnapshotSource::mmap(&file, file_len, true)?, None),
        LoadMode::Auto => {
            let plan = resolve_auto(path, &file, file_len)?;
            let src = match plan.backend {
                PlannedBackend::Read => SnapshotSource::read(file),
                PlannedBackend::Mmap => match SnapshotSource::mmap(&file, file_len, false) {
                    Ok(src) => src,
                    // The planner consults `mmap_supported()`, but the
                    // map call itself can still fail (e.g. exotic file
                    // length); degrade rather than error.
                    Err(SnapshotError::MmapUnavailable(_)) => SnapshotSource::read(file),
                    Err(e) => return Err(e),
                },
            };
            if plan.prefetch {
                src.advise_prefetch();
            }
            (src, Some(plan))
        }
    };
    let (header, param, dir) = read_preamble(&mut src, file_len)?;

    // --- params: scalars, then the g-function area, fully consumed ---
    let mut r = ParamReader::new(&param);
    let raw = RawParams::decode(&mut r)?;
    if raw.distance_tag != D::TAG {
        return Err(SnapshotError::DistanceMismatch { expected: D::TAG, found: raw.distance_tag });
    }
    if raw.family_tag != F::TAG {
        return Err(SnapshotError::FamilyMismatch { expected: F::TAG, found: raw.family_tag });
    }
    if raw.expected_sections() != header.dir_count as usize {
        return Err(SnapshotError::Malformed("directory entry count disagrees with parameters"));
    }
    let decode_family = |blob: &[u8]| -> Result<F, SnapshotError> {
        let mut fr = ParamReader::new(blob);
        let family = F::decode_params(&mut fr)?;
        fr.finish()?;
        Ok(family)
    };
    let family = decode_family(&raw.rnnr.family)?;
    let level_families = match &raw.topk {
        Some(tk) => {
            tk.levels.iter().map(|g| decode_family(&g.family)).collect::<Result<Vec<_>, _>>()?
        }
        None => Vec::new(),
    };
    let decode_gfn = |r: &mut ParamReader, k: usize| -> Result<F::GFn, SnapshotError> {
        let g = F::decode_gfn(r)?;
        if F::gfn_shape(&g) != (raw.dim, k) {
            return Err(SnapshotError::Malformed("g-function shape disagrees with parameters"));
        }
        Ok(g)
    };
    let mut rnnr_gfns: Vec<Vec<F::GFn>> = Vec::with_capacity(raw.shards);
    let mut topk_gfns: Vec<Vec<Vec<F::GFn>>> = Vec::new();
    if header.version == VERSION_V1 {
        // v1: every g-function verbatim — all shards' radius tables,
        // then all shards' ladder tables.
        for _ in 0..raw.shards {
            let gfns = (0..raw.rnnr.tables)
                .map(|_| decode_gfn(&mut r, raw.rnnr.k))
                .collect::<Result<Vec<_>, _>>()?;
            rnnr_gfns.push(gfns);
        }
        if let Some(tk) = &raw.topk {
            for _ in 0..raw.shards {
                let mut per_level = Vec::with_capacity(tk.levels.len());
                for g in &tk.levels {
                    per_level.push(
                        (0..g.tables)
                            .map(|_| decode_gfn(&mut r, g.k))
                            .collect::<Result<Vec<_>, _>>()?,
                    );
                }
                topk_gfns.push(per_level);
            }
        }
        r.finish()?;
    } else {
        // v2: the area is stored once (shards carry byte-identical
        // g-functions — the writer verified it); decode it afresh per
        // shard so no `Clone` bound is needed on the g-function type.
        let area = r.take_rest();
        for _ in 0..raw.shards {
            let mut ar = ParamReader::new(area);
            let gfns = (0..raw.rnnr.tables)
                .map(|_| decode_gfn(&mut ar, raw.rnnr.k))
                .collect::<Result<Vec<_>, _>>()?;
            rnnr_gfns.push(gfns);
            if let Some(tk) = &raw.topk {
                let mut per_level = Vec::with_capacity(tk.levels.len());
                for g in &tk.levels {
                    per_level.push(
                        (0..g.tables)
                            .map(|_| decode_gfn(&mut ar, g.k))
                            .collect::<Result<Vec<_>, _>>()?,
                    );
                }
                topk_gfns.push(per_level);
            }
            ar.finish()?;
        }
    }

    // --- sections, in the writer's fixed order ---
    let entries = decode_entries(&header, &dir)?;
    // One forward pass over the file for the read source (no-op for the
    // mapping): stage every section's bytes in offset order.
    src.preload(&entries)?;
    let mut cur = EntryCursor { entries: &entries, pos: 0 };
    let hll = raw.rnnr.hll_config();
    let cost = raw.rnnr.cost_model();
    let has_topk = raw.topk.is_some();
    let mut owners_all: Vec<Vec<PointId>> = Vec::with_capacity(raw.shards);
    let mut data_secs: Vec<Section<f32>> = Vec::with_capacity(raw.shards);
    let mut seen = vec![false; raw.n];
    let mut rnnr_shards = Vec::with_capacity(raw.shards);
    for gfns in rnnr_gfns {
        let (i, e) = cur.next()?;
        let owners_sec: Section<PointId> = src.section(i, e)?;
        let owners = owners_sec.to_vec();
        for &g in &owners {
            if (g as usize) >= raw.n || std::mem::replace(&mut seen[g as usize], true) {
                return Err(SnapshotError::Malformed("owner lists do not partition the ids"));
            }
        }
        let (i, e) = cur.next()?;
        let mut data_sec: Section<f32> = src.section(i, e)?;
        if owners.len().checked_mul(raw.dim) != Some(data_sec.len()) {
            return Err(SnapshotError::Malformed("data section size disagrees with owner list"));
        }
        // When a ladder shares this shard, promote an owned buffer to a
        // shared backing so both indexes clone the same allocation.
        if has_topk && !data_sec.is_shared() {
            data_sec = Section::shared(Arc::new(data_sec.into_vec()));
        }
        let tables = gfns
            .into_iter()
            .map(|g| Ok(HashTable::from_parts(g, load_store(&mut src, &mut cur, hll)?)))
            .collect::<Result<Vec<_>, SnapshotError>>()?;
        rnnr_shards.push(HybridLshIndex::assemble(
            DenseDataset::from_section(data_sec.clone(), raw.dim),
            family.clone(),
            D::default(),
            tables,
            hll,
            raw.rnnr.lazy,
            cost,
            raw.rnnr.k,
        ));
        owners_all.push(owners);
        data_secs.push(data_sec);
    }
    if !seen.into_iter().all(|b| b) {
        return Err(SnapshotError::Malformed("owner lists do not cover the ids"));
    }

    let assignment = ShardAssignment::new(raw.seed, raw.shards);
    let mut topk_index = None;
    if let Some(tk) = &raw.topk {
        let schedule = RadiusSchedule::new(tk.base, tk.ratio, tk.levels.len());
        let mut ladders = Vec::with_capacity(raw.shards);
        for (s, per_level) in topk_gfns.into_iter().enumerate() {
            let data = Arc::new(DenseDataset::from_section(data_secs[s].clone(), raw.dim));
            let mut levels = Vec::with_capacity(tk.levels.len());
            for (group, (gfns, lvl_family)) in
                tk.levels.iter().zip(per_level.into_iter().zip(&level_families))
            {
                let tables = gfns
                    .into_iter()
                    .map(|g| {
                        Ok(HashTable::from_parts(
                            g,
                            load_store(&mut src, &mut cur, group.hll_config())?,
                        ))
                    })
                    .collect::<Result<Vec<_>, SnapshotError>>()?;
                levels.push(HybridLshIndex::assemble(
                    Arc::clone(&data),
                    lvl_family.clone(),
                    D::default(),
                    tables,
                    group.hll_config(),
                    group.lazy,
                    group.cost_model(),
                    group.k,
                ));
            }
            ladders.push(TopKIndex::assemble(data, schedule, levels));
        }
        topk_index = Some(ShardedTopKIndex::assemble(
            ladders,
            owners_all.clone(),
            assignment,
            schedule,
            raw.n,
        ));
    }
    let rnnr = ShardedIndex::assemble(rnnr_shards, owners_all, assignment, raw.n);
    Ok(LoadedSnapshot { rnnr, topk: topk_index, manifest: manifest_of(&raw), plan })
}
